(* The paper's worked example (§3.2): the full defect-oriented test path
   for the flash converter's comparator macro.

   Reproduces Table 1 (fault mix), Table 2 (voltage signatures), Table 3
   (current signatures) and Fig. 3 (detection overlap), then demonstrates
   the sensitization/propagation argument: the voltage signature
   categories map one-to-one onto the missing-code measurement at the
   converter's edge.

   Run with:  dune exec examples/comparator_study.exe                    *)

let section title = Format.printf "@.--- %s ---@." title

let () =
  Format.printf
    "Comparator macro study (paper §3.2)@.\
     A balanced three-phase clocked comparator with its flipflop: most of@.\
     the converter's area, and the cell where analog meets digital.@.";

  let macro = Adc.Comparator.macro Adc.Comparator.default_options in
  let config = Core.Pipeline.Config.(default |> with_defects 25_000) in

  section "macro cell";
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  Format.printf "%a — %d instances in the converter@." Layout.Cell.pp_summary
    cell macro.Macro.Macro_cell.instances;
  let netlist = Adc.Comparator.layout_netlist Adc.Comparator.default_options in
  Format.printf "LVS check: %s@."
    (match Layout.Extract.check_against (Layout.Extract.extract cell) netlist with
    | [] -> "layout matches schematic"
    | violations -> String.concat "; " violations);

  section "defect simulation + fault collapsing (Table 1)";
  let analysis = Core.Pipeline.analyze config macro in
  Format.printf "%d defects -> %d effective -> %d classes@.%s@."
    analysis.Core.Pipeline.sprinkled analysis.Core.Pipeline.effective
    (List.length analysis.Core.Pipeline.classes_catastrophic)
    (Util.Table.render (Core.Report.table1 analysis));

  section "voltage fault signatures (Table 2)";
  Format.printf
    "The balanced design with small bias currents makes stuck-at the@.\
     dominant signature: a fault easily tips the balance to one side.@.%s@."
    (Util.Table.render (Core.Report.table2 analysis));

  section "current fault signatures (Table 3)";
  Format.printf
    "IDDQ is the quiescent current of the clock generator: comparator@.\
     faults on the clock distribution lines load its buffers.@.%s@."
    (Util.Table.render (Core.Report.table3 analysis));

  section "detectability overlap (Fig. 3)";
  Format.printf "%s@." (Util.Table.render (Core.Report.figure3 analysis));

  section "sensitization / propagation";
  Format.printf
    "Voltage signatures need to be propagated to the circuit edge; the@.\
     behavioural converter shows the one-to-one mapping onto missing codes:@.";
  let prng = Util.Prng.create 1 in
  List.iter
    (fun v ->
      let causes = Testgen.Detection.propagate_voltage ~samples:8000 v prng in
      Format.printf "  %-18s -> %s@."
        (Macro.Signature.voltage_name v)
        (if causes then "missing code(s)" else "all codes present"))
    Macro.Signature.all_voltage;

  section "test time";
  Format.printf "%a@." Testgen.Test_time.pp_budget ()
