(* Extending the library with your own macro: a sample-and-hold stage.

   The methodology is not tied to the flash-ADC macros: any analog block
   becomes analysable by packing four things into a [Macro.Macro_cell.t]:

     - [build]    : process sample -> netlist (block + test bench),
     - [cell]     : a layout (here synthesized from the netlist),
     - [measure]  : netlist -> named scalar vector,
     - [classify_voltage] : interpret the voltage-domain measurements.

   Everything else — defect sprinkling, fault collapsing, good-space
   compilation, fault simulation, coverage — is generic.

   Run with:  dune exec examples/custom_macro.exe                        *)

let tech = Process.Tech.cmos1um

(* A sample-and-hold: NMOS sampling switch, hold capacitor, and an NMOS
   source-follower output buffer biased by a current-source transistor. *)
let build (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  let n = Circuit.Netlist.node nl in
  let gnd = Circuit.Netlist.ground in
  let nmos w =
    {
      Circuit.Netlist.polarity = Circuit.Mos_model.Nmos;
      params =
        {
          Circuit.Mos_model.default_nmos with
          vth = Circuit.Mos_model.default_nmos.Circuit.Mos_model.vth
                +. s.Process.Variation.vth_n_shift;
          kp = Circuit.Mos_model.default_nmos.Circuit.Mos_model.kp
               *. s.Process.Variation.beta_factor;
        };
      w;
      l = 1e-6;
    }
  in
  (* Macro devices. *)
  Circuit.Netlist.add_mosfet nl ~name:"MSW" ~drain:(n "hold") ~gate:(n "sclk")
    ~source:(n "vin") ~bulk:gnd (nmos 6e-6);
  Circuit.Netlist.add_capacitor nl ~name:"CHOLD" (n "hold") gnd
    (1e-12 *. s.Process.Variation.capacitance_factor);
  Circuit.Netlist.add_mosfet nl ~name:"MSF" ~drain:(n "vdd") ~gate:(n "hold")
    ~source:(n "out") ~bulk:gnd (nmos 20e-6);
  Circuit.Netlist.add_mosfet nl ~name:"MBIAS" ~drain:(n "out") ~gate:(n "biasn")
    ~source:gnd ~bulk:gnd (nmos 6e-6);
  (* Test bench: supply, input, sampling clock, bias through the bias
     generator's output impedance. *)
  Circuit.Netlist.add_vsource nl ~name:"VDDA" ~pos:(n "vdd") ~neg:gnd
    (Circuit.Waveform.dc s.Process.Variation.vdd);
  Circuit.Netlist.add_vsource nl ~name:"VIN" ~pos:(n "vin") ~neg:gnd
    (Circuit.Waveform.dc 2.0);
  Circuit.Netlist.add_vsource nl ~name:"VSCLK" ~pos:(n "sclk") ~neg:gnd
    (Circuit.Waveform.pulse ~v0:5.0 ~v1:0.0 ~delay:100e-9 ~rise:4e-9 ~fall:4e-9
       ~width:290e-9 ~period:400e-9);
  let bias_src = n "biasn_src" in
  Circuit.Netlist.add_vsource nl ~name:"VBIASN" ~pos:bias_src ~neg:gnd
    (Circuit.Waveform.dc 1.2);
  Circuit.Netlist.add_resistor nl ~name:"RBIASN" bias_src (n "biasn") 50_000.0;
  nl

(* Track the input for 100 ns, open the switch, and watch the held value:
   the follower output must sit one Vgs below the held sample and droop
   must stay negligible. *)
let measure nl =
  let sols = Circuit.Engine.transient nl ~stop:300e-9 ~step:1e-9 in
  let at t =
    List.nth sols (min (int_of_float (t /. 1e-9)) (List.length sols - 1))
  in
  let v t name = Circuit.Engine.voltage (at t) (Circuit.Netlist.node nl name) in
  [
    "v:tracked", v 90e-9 "hold";
    "v:held", v 150e-9 "hold";
    "v:held:late", v 280e-9 "hold";
    "v:out", v 150e-9 "out";
    "ivdd:hold", Circuit.Engine.source_current (at 150e-9) "VDDA";
    "iin:vin", Circuit.Engine.source_current (at 150e-9) "VIN";
    "iin:biasn", Circuit.Engine.source_current (at 150e-9) "VBIASN";
  ]

let classify_voltage ~golden ~faulty =
  let dev name =
    Float.abs
      (Macro.Macro_cell.get faulty name -. Macro.Macro_cell.get golden name)
  in
  let droop =
    Float.abs
      (Macro.Macro_cell.get faulty "v:held:late"
      -. Macro.Macro_cell.get faulty "v:held")
  in
  if dev "v:held" > 1.0 || dev "v:out" > 1.0 then Macro.Signature.Output_stuck_at
  else if dev "v:held" > 0.01 || dev "v:out" > 0.02 || droop > 0.01 then
    Macro.Signature.Offset_too_large
  else Macro.Signature.No_voltage_deviation

let macro =
  {
    Macro.Macro_cell.name = "sample-and-hold";
    build;
    cell =
      lazy
        (Layout.Synthesize.synthesize
           ~options:
             {
               Layout.Synthesize.default_options with
               track_order = [ "sclk"; "biasn"; "vin"; "out" ];
             }
           (build (Process.Variation.nominal tech))
           ~name:"sample_hold");
    measure;
    classify_voltage;
    instances = 1;
  }

let () =
  Format.printf "Custom macro: defect-oriented test of a sample-and-hold@.@.";
  let golden = macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build (Process.Variation.nominal tech)) in
  Format.printf "golden measurements:@.";
  List.iter (fun (name, v) -> Format.printf "  %-14s %10.4g@." name v) golden;

  let config =
    Core.Pipeline.Config.(
      default |> with_defects 20_000 |> with_good_space_dies 24)
  in
  let analysis = Core.Pipeline.analyze config macro in
  Format.printf "@.%s@." (Util.Table.render (Core.Report.table1 analysis));
  Format.printf "%s@." (Util.Table.render (Core.Report.table2 analysis));
  let venn =
    Testgen.Overlap.venn_of_partition
      (Testgen.Overlap.partition analysis.Core.Pipeline.outcomes_catastrophic)
  in
  Format.printf "simple-test coverage of the sample-and-hold: %.1f%%@."
    (100. *. Testgen.Overlap.coverage venn);
  Format.printf "(%a)@." Testgen.Overlap.pp_venn venn
