(* Quickstart: the defect-oriented test path on a five-device cell.

   This walks the whole methodology end to end on a circuit small enough
   to read in one screen: a CMOS inverter driving an RC load.

     1. describe the circuit (a netlist with its test bench),
     2. synthesize a layout for it,
     3. sprinkle spot defects and extract circuit-level faults,
     4. collapse them into fault classes,
     5. fault-simulate each class and classify its signature,
     6. report what a simple voltage + supply-current test catches.

   Run with:  dune exec examples/quickstart.exe                          *)

let tech = Process.Tech.cmos1um

(* Step 1: the circuit. The builder interns nodes by name; those names
   become the layout's net labels and the vocabulary faults are reported
   in. The [sample] parameter applies die-to-die process variation. *)
let build (sample : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  let n = Circuit.Netlist.node nl in
  let gnd = Circuit.Netlist.ground in
  let nmos =
    {
      Circuit.Netlist.polarity = Circuit.Mos_model.Nmos;
      params =
        {
          Circuit.Mos_model.default_nmos with
          vth = Circuit.Mos_model.default_nmos.Circuit.Mos_model.vth
                +. sample.Process.Variation.vth_n_shift;
        };
      w = 10e-6;
      l = 1e-6;
    }
  in
  let pmos =
    {
      Circuit.Netlist.polarity = Circuit.Mos_model.Pmos;
      params = Circuit.Mos_model.default_pmos;
      w = 25e-6;
      l = 1e-6;
    }
  in
  Circuit.Netlist.add_vsource nl ~name:"VDDA" ~pos:(n "vdd") ~neg:gnd
    (Circuit.Waveform.dc sample.Process.Variation.vdd);
  Circuit.Netlist.add_vsource nl ~name:"VIN" ~pos:(n "in") ~neg:gnd
    (Circuit.Waveform.dc 0.0);
  Circuit.Netlist.add_mosfet nl ~name:"MN" ~drain:(n "out") ~gate:(n "in")
    ~source:gnd ~bulk:gnd nmos;
  Circuit.Netlist.add_mosfet nl ~name:"MP" ~drain:(n "out") ~gate:(n "in")
    ~source:(n "vdd") ~bulk:(n "vdd") pmos;
  Circuit.Netlist.add_resistor nl ~name:"RL" (n "out") (n "load") 10_000.0;
  Circuit.Netlist.add_capacitor nl ~name:"CL" (n "load") gnd 1e-12;
  nl

(* Step 5 ingredients: what we measure and how we interpret it. The
   inverter output must follow the input rail to rail; the supply current
   of a healthy static CMOS gate is ~0. *)
let measure nl =
  let at_input v =
    let nl = Circuit.Netlist.copy nl in
    let input = Circuit.Netlist.node nl "in" in
    Circuit.Netlist.remove_device nl "VIN";
    Circuit.Netlist.add_vsource nl ~name:"VIN" ~pos:input
      ~neg:Circuit.Netlist.ground (Circuit.Waveform.dc v);
    Circuit.Engine.dc_operating_point nl, nl
  in
  let low, nl_low = at_input 0.0 in
  let high, nl_high = at_input 5.0 in
  [
    "v:out:low", Circuit.Engine.voltage low (Circuit.Netlist.node nl_low "out");
    "v:out:high", Circuit.Engine.voltage high (Circuit.Netlist.node nl_high "out");
    "ivdd:low", Circuit.Engine.source_current low "VDDA";
    "ivdd:high", Circuit.Engine.source_current high "VDDA";
  ]

let classify_voltage ~golden ~faulty =
  ignore golden;
  let f name = Macro.Macro_cell.get faulty name in
  (* Rail-to-rail behaviour lost => stuck; degraded levels => offset. *)
  if f "v:out:low" < 4.0 && f "v:out:high" > 1.0 then
    Macro.Signature.Output_stuck_at
  else if f "v:out:low" < 4.75 || f "v:out:high" > 0.25 then
    Macro.Signature.Offset_too_large
  else Macro.Signature.No_voltage_deviation

let macro =
  {
    Macro.Macro_cell.name = "inverter";
    build;
    cell =
      lazy
        (* Step 2: layout synthesis from the netlist (sources get no
           shapes — they are the test bench). *)
        (Layout.Synthesize.synthesize
           (build (Process.Variation.nominal tech))
           ~name:"inverter");
    measure;
    classify_voltage;
    instances = 1;
  }

let () =
  Format.printf "dotest quickstart: defect-oriented test of a CMOS inverter@.@.";
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  Format.printf "layout: %a@." Layout.Cell.pp_summary cell;

  (* Steps 3-5 are packaged by the pipeline. *)
  let config =
    Core.Pipeline.Config.(
      default |> with_defects 20_000 |> with_good_space_dies 24)
  in
  let analysis = Core.Pipeline.analyze config macro in
  Format.printf "sprinkled %d spot defects; %d were effective@."
    analysis.Core.Pipeline.sprinkled analysis.Core.Pipeline.effective;
  Format.printf "%d catastrophic fault classes (%d faults)@.@."
    (List.length analysis.Core.Pipeline.classes_catastrophic)
    (Core.Pipeline.fault_count analysis Fault.Types.Catastrophic);

  Format.printf "fault-type mix (compare: shorts dominate in any metal-rich cell)@.";
  Format.printf "%s@.@." (Util.Table.render (Core.Report.table1 analysis));

  (* Step 6: what do the simple tests catch? *)
  let cells =
    Testgen.Overlap.partition analysis.Core.Pipeline.outcomes_catastrophic
  in
  Format.printf "detection-mechanism overlap:@.";
  List.iter
    (fun (c : Testgen.Overlap.cell) ->
      Format.printf "  %5.1f%%  %a@." (100. *. c.share) Testgen.Detection.pp
        c.combination)
    cells;
  let venn = Testgen.Overlap.venn_of_partition cells in
  Format.printf "@.fault coverage of the simple tests: %.1f%%@."
    (100. *. Testgen.Overlap.coverage venn)
