(* The full case study (§3.3-3.4): all five macro types of the 8-bit
   flash ADC, global scaling, and the Design-for-Testability measures.

   Reproduces Fig. 4 (global detectability), the per-macro current
   detectability claims, and Fig. 5 (after DfT).

   Run with:  dune exec examples/adc_full_flow.exe                       *)

let section title = Format.printf "@.--- %s ---@." title

let () =
  Format.printf
    "Flash ADC full flow: 256 comparators, dual reference ladder, bias@.\
     generator, clock generator and thermometer decoder.@.";

  let config = Core.Pipeline.Config.default in

  section "per-macro analysis";
  let macros = Dft.Measures.original () in
  let analyses = Core.Pipeline.analyze_all config macros in
  List.iter2
    (fun macro (a : Core.Pipeline.macro_analysis) ->
      Format.printf
        "  %-16s %6d defects -> %4d classes; cell %9d um^2 x %d@."
        macro.Macro.Macro_cell.name a.Core.Pipeline.sprinkled
        (List.length a.Core.Pipeline.classes_catastrophic)
        (Layout.Cell.area (Lazy.force macro.Macro.Macro_cell.cell) / 1_000_000)
        macro.Macro.Macro_cell.instances)
    macros analyses;

  section "global scaling (Fig. 4)";
  let g = Core.Global.combine analyses in
  Format.printf
    "Per-macro signature probabilities scaled by area x instances@.\
     (defect density is uniform per unit area):@.%s@."
    (Util.Table.render (Core.Report.figure4 g));

  section "per-macro current detectability (§3.3)";
  Format.printf "%s@." (Util.Table.render (Core.Report.macro_current g));

  section "why do faults escape?";
  let comparator = List.hd analyses in
  let undetected =
    List.filter
      (fun (o : Macro.Evaluate.outcome) ->
        not (Testgen.Detection.detected (Testgen.Detection.of_outcome o)))
      comparator.Core.Pipeline.outcomes_catastrophic
  in
  Format.printf "undetected catastrophic comparator fault classes:@.";
  List.iter
    (fun (o : Macro.Evaluate.outcome) ->
      Format.printf "  x%-3d %a@." o.fault_class.Fault.Collapse.count
        Fault.Types.pp_fault o.fault_class.representative.Fault.Types.fault)
    undetected;
  Format.printf
    "Two mechanisms dominate: moderate IVdd deviations hide in the@.\
     flipflop-leakage spread, and shorts between the two almost-equal@.\
     bias lines change nothing observable.@.";

  section "applying the DfT measures (Fig. 5)";
  List.iter
    (fun m -> Format.printf "  - %s@." (Dft.Measures.describe m))
    Dft.Measures.all_measures;
  let improved =
    Core.Global.combine
      (Core.Pipeline.analyze_all config (Dft.Measures.improved ()))
  in
  Format.printf "%s@." (Util.Table.render (Core.Report.figure4 improved));
  Format.printf "coverage: %.1f%% -> %.1f%% (catastrophic)@."
    (100. *. Core.Global.coverage g Fault.Types.Catastrophic)
    (100. *. Core.Global.coverage improved Fault.Types.Catastrophic);

  section "general DfT guidelines (§4)";
  List.iter (fun gl -> Format.printf "  * %s@." gl) Dft.Measures.guidelines
