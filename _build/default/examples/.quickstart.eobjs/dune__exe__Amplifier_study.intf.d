examples/amplifier_study.mli:
