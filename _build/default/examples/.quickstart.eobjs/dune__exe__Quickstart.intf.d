examples/quickstart.mli:
