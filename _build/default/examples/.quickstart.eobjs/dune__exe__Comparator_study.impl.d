examples/comparator_study.ml: Adc Core Format Layout Lazy List Macro String Testgen Util
