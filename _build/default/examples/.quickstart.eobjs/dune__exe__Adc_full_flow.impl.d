examples/adc_full_flow.ml: Core Dft Fault Format Layout Lazy List Macro Testgen Util
