examples/custom_macro.ml: Circuit Core Float Format Layout List Macro Process Testgen Util
