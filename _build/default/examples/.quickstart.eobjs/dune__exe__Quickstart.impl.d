examples/quickstart.ml: Circuit Core Fault Format Layout Lazy List Macro Process Testgen Util
