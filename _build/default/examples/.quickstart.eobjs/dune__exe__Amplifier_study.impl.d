examples/amplifier_study.ml: Amplifier Core Fault Format Layout Lazy List Macro Process String Util
