examples/comparator_study.mli:
