examples/adc_full_flow.mli:
