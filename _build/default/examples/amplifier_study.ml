(* The amplifier case study: defect-oriented test of a Class-AB opamp.

   The paper builds on an earlier silicon experiment (its reference [6]):
   most process defects in a Class AB amplifier are detectable by simple
   DC, transient and AC measurements, with current measurements catching
   part of the remainder. This example reproduces that study's structure
   with the same machinery used for the flash ADC — demonstrating that
   the methodology generalizes beyond clocked macros.

   Run with:  dune exec examples/amplifier_study.exe                     *)

let section title = Format.printf "@.--- %s ---@." title

let () =
  Format.printf
    "Class-AB amplifier study: a two-stage Miller opamp in unity-gain@.\
     follower configuration, measured in all three simple test domains.@.";

  let macro = Amplifier.Class_ab.macro () in

  section "golden behaviour";
  let golden =
    macro.Macro.Macro_cell.measure
      (macro.Macro.Macro_cell.build
         (Process.Variation.nominal Process.Tech.cmos1um))
  in
  List.iter
    (fun (name, v) -> Format.printf "  %-16s %12.5g@." name v)
    golden;

  section "layout";
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  Format.printf "%a@." Layout.Cell.pp_summary cell;
  Format.printf "DRC: %d violations; LVS: %s@."
    (List.length (Layout.Drc.check cell))
    (match
       Layout.Extract.check_against
         (Layout.Extract.extract cell)
         (Amplifier.Class_ab.layout_netlist ())
     with
    | [] -> "clean"
    | v -> String.concat "; " v);

  section "defect study";
  let result = Amplifier.Study.run () in
  Format.printf "%d fault classes from %d sprinkled defects@.@.%s@."
    (List.length result.Amplifier.Study.reports)
    result.analysis.Core.Pipeline.sprinkled
    (Util.Table.render (Amplifier.Study.report_table result));

  section "escaping faults";
  List.iter
    (fun (r : Amplifier.Study.fault_report) ->
      if r.families = [] then
        Format.printf "  x%-3d %a@." r.fault_class.Fault.Collapse.count
          Fault.Types.pp_fault r.fault_class.representative.Fault.Types.fault)
    result.reports;
  Format.printf
    "@.As in the original experiment, a small population of faults leaves@.\
     every simple measurement inside its acceptance window.@."
