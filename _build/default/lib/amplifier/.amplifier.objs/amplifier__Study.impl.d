lib/amplifier/study.ml: Circuit Class_ab Core Fault List Macro Process Util
