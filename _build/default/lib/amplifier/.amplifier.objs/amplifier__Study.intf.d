lib/amplifier/study.mli: Class_ab Core Fault Util
