lib/amplifier/class_ab.ml: Circuit Float Layout List Macro Process String
