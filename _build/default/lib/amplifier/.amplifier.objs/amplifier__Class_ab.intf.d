lib/amplifier/class_ab.mli: Circuit Macro Process
