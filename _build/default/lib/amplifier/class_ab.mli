(** The Class-AB amplifier case study.

    The paper builds on Sachdev's earlier silicon demonstration (its
    ref. [6]): most process defects in a Class AB amplifier are detectable
    with simple DC, transient and AC measurements. This library module
    reproduces that study with the same defect-oriented machinery used
    for the flash ADC.

    The amplifier: a two-stage CMOS opamp — PMOS differential pair into
    an NMOS mirror, Miller-compensated class-AB push-pull output stage —
    measured in unity-gain follower configuration. The measurement plan
    covers the three simple test domains:

    - {b DC}: follower tracking error at three input levels, quiescent
      supply current, input terminal current;
    - {b transient}: a 1 V step — slewing value shortly after the edge
      and the settled value;
    - {b AC}: closed-loop magnitude in the passband and near the
      closed-loop corner.

    All of these are named measurements, so the good-signature machinery
    and the current-domain classification are inherited unchanged. *)

(** Netlist of the amplifier alone — the layout view. *)
val layout_netlist : unit -> Circuit.Netlist.t

(** Amplifier in follower configuration with its test bench. *)
val bench_netlist : Process.Variation.sample -> Circuit.Netlist.t

(** The macro-cell bundle. *)
val macro : unit -> Macro.Macro_cell.t

(** The measurement families of the study, with the measurement-name
    prefix that selects each: DC, transient, AC, and the supply/input
    currents. *)
type family = Dc | Transient | Ac | Current

val family_name : family -> string
val all_families : family list

(** [family_of_measurement name] — which family a measurement belongs
    to. *)
val family_of_measurement : string -> family option
