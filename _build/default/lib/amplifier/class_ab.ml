
let sized (s : Process.Variation.sample) polarity w =
  let base, shift =
    match (polarity : Circuit.Mos_model.polarity) with
    | Circuit.Mos_model.Nmos ->
      Circuit.Mos_model.default_nmos, s.Process.Variation.vth_n_shift
    | Circuit.Mos_model.Pmos ->
      Circuit.Mos_model.default_pmos, s.Process.Variation.vth_p_shift
  in
  {
    Circuit.Netlist.polarity;
    params =
      {
        base with
        Circuit.Mos_model.vth = base.Circuit.Mos_model.vth +. shift;
        kp = base.Circuit.Mos_model.kp *. s.Process.Variation.beta_factor;
      };
    w;
    l = 1e-6;
  }

(* Two-stage Miller amplifier: PMOS pair into an NMOS mirror; the second
   stage is a complementary push-pull follower (class-AB output with a
   small crossover region), Miller-compensated back to the first-stage
   output. The bias branch is a diode-connected PMOS with a degeneration
   resistor, giving the tail current source its gate line [biasp]. *)
let add_macro_devices (s : Process.Variation.sample) nl =
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  let vdd = n "vdd" in
  let pm = sized s Circuit.Mos_model.Pmos and nm = sized s Circuit.Mos_model.Nmos in
  let add name ~d ~g ~src ~b spec =
    Circuit.Netlist.add_mosfet nl ~name ~drain:d ~gate:g ~source:src ~bulk:b spec
  in
  (* Bias branch. *)
  add "MBIAS" ~d:(n "biasp") ~g:(n "biasp") ~src:vdd ~b:vdd (pm 20e-6);
  Circuit.Netlist.add_resistor nl ~name:"RBIAS" (n "biasp") gnd
    (48_000.0 *. s.Process.Variation.resistance_factor);
  (* First stage. *)
  add "MTAIL" ~d:(n "tailp") ~g:(n "biasp") ~src:vdd ~b:vdd (pm 20e-6);
  add "M1" ~d:(n "o1m") ~g:(n "inp") ~src:(n "tailp") ~b:vdd (pm 15e-6);
  add "M2" ~d:(n "o1") ~g:(n "inn") ~src:(n "tailp") ~b:vdd (pm 15e-6);
  add "M3" ~d:(n "o1m") ~g:(n "o1m") ~src:gnd ~b:gnd (nm 8e-6);
  add "M4" ~d:(n "o1") ~g:(n "o1m") ~src:gnd ~b:gnd (nm 8e-6);
  (* Class-AB push-pull output followers. *)
  add "M6" ~d:vdd ~g:(n "o1") ~src:(n "out") ~b:gnd (nm 30e-6);
  add "M7" ~d:gnd ~g:(n "o1") ~src:(n "out") ~b:vdd (pm 60e-6);
  (* Miller compensation. *)
  Circuit.Netlist.add_capacitor nl ~name:"CC" (n "o1") (n "out")
    (2e-12 *. s.Process.Variation.capacitance_factor)

let layout_netlist () =
  let nl = Circuit.Netlist.create () in
  add_macro_devices (Process.Variation.nominal Process.Tech.cmos1um) nl;
  nl

let bench_netlist (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  add_macro_devices s nl;
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  Circuit.Netlist.add_vsource nl ~name:"VDDA" ~pos:(n "vdd") ~neg:gnd
    (Circuit.Waveform.dc s.Process.Variation.vdd);
  Circuit.Netlist.add_vsource nl ~name:"VINP" ~pos:(n "inp") ~neg:gnd
    (Circuit.Waveform.dc 2.5);
  (* Unity-gain feedback: a wire-resistance link keeps the [inn] net (and
     its fault vocabulary) distinct from [out]. *)
  Circuit.Netlist.add_resistor nl ~name:"RFB" (n "out") (n "inn") 1.0;
  (* Load of the follower. *)
  Circuit.Netlist.add_resistor nl ~name:"RLOAD" (n "out") gnd 100_000.0;
  Circuit.Netlist.add_capacitor nl ~name:"CLOAD" (n "out") gnd 10e-12;
  nl

let set_vinp nl v =
  let inp = Circuit.Netlist.node nl "inp" in
  Circuit.Netlist.remove_device nl "VINP";
  Circuit.Netlist.add_vsource nl ~name:"VINP" ~pos:inp
    ~neg:Circuit.Netlist.ground v

let measure nl =
  (* DC tracking at three input levels, quiescent and input currents at
     mid scale. *)
  let dc_point v =
    let nl = Circuit.Netlist.copy nl in
    set_vinp nl (Circuit.Waveform.dc v);
    let sol = Circuit.Engine.dc_operating_point nl in
    sol, nl
  in
  let sol_lo, nl_lo = dc_point 1.5 in
  let sol_mid, nl_mid = dc_point 2.5 in
  let sol_hi, nl_hi = dc_point 3.5 in
  let out sol nl = Circuit.Engine.voltage sol (Circuit.Netlist.node nl "out") in
  (* Transient: a 1 V step at 1 us; slewing and settled values. *)
  let nl_tr = Circuit.Netlist.copy nl in
  set_vinp nl_tr
    (Circuit.Waveform.pwl [ 0.0, 2.0; 1e-6, 2.0; 1.01e-6, 3.0; 4e-6, 3.0 ]);
  let sols = Circuit.Engine.transient nl_tr ~stop:3e-6 ~step:10e-9 in
  let at t =
    List.nth sols (min (int_of_float (t /. 10e-9)) (List.length sols - 1))
  in
  let v_tr t = Circuit.Engine.voltage (at t) (Circuit.Netlist.node nl_tr "out") in
  (* AC: closed-loop magnitude in the passband and near the corner. *)
  let nl_ac = Circuit.Netlist.copy nl in
  let ac =
    Circuit.Engine.ac_sweep nl_ac ~source:"VINP" ~frequencies:[ 1e4; 1e7 ]
  in
  let ac_db f =
    match List.assoc_opt f (List.map (fun (freq, sol) -> freq, sol) ac) with
    | Some sol ->
      Circuit.Engine.ac_magnitude_db sol (Circuit.Netlist.node nl_ac "out")
    | None -> nan
  in
  [
    "v:dc:track:lo", out sol_lo nl_lo -. 1.5;
    "v:dc:track:mid", out sol_mid nl_mid -. 2.5;
    "v:dc:track:hi", out sol_hi nl_hi -. 3.5;
    "v:tr:slew", v_tr 1.1e-6;
    "v:tr:settle", v_tr 2.9e-6;
    "v:ac:pass", ac_db 1e4;
    "v:ac:corner", ac_db 1e7;
    "ivdd:q", Circuit.Engine.source_current sol_mid "VDDA";
    "iin:inp", Circuit.Engine.source_current sol_mid "VINP";
  ]

let classify_voltage ~golden ~faulty =
  let dev name =
    match
      Macro.Macro_cell.get_opt golden name, Macro.Macro_cell.get_opt faulty name
    with
    | Some g, Some f -> Float.abs (f -. g)
    | (None | Some _), _ -> 0.0
  in
  let worst_dc =
    Float.max (dev "v:dc:track:lo")
      (Float.max (dev "v:dc:track:mid") (dev "v:dc:track:hi"))
  in
  if worst_dc > 1.0 then Macro.Signature.Output_stuck_at
  else if worst_dc > 0.01 then Macro.Signature.Offset_too_large
  else Macro.Signature.No_voltage_deviation

let macro () =
  {
    Macro.Macro_cell.name = "class-AB amplifier";
    build = bench_netlist;
    cell =
      lazy
        (Layout.Synthesize.synthesize
           ~options:
             {
               Layout.Synthesize.default_options with
               track_order = [ "inp"; "inn"; "out"; "biasp"; "vdd"; "0" ];
             }
           (layout_netlist ()) ~name:"class_ab");
    measure;
    classify_voltage;
    instances = 1;
  }

type family = Dc | Transient | Ac | Current

let family_name = function
  | Dc -> "DC"
  | Transient -> "transient"
  | Ac -> "AC"
  | Current -> "current"

let all_families = [ Dc; Transient; Ac; Current ]

let prefixed prefix name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let family_of_measurement name =
  if prefixed "v:dc:" name then Some Dc
  else if prefixed "v:tr:" name then Some Transient
  else if prefixed "v:ac:" name then Some Ac
  else if Macro.Signature.current_kind_of_measurement name <> None then
    Some Current
  else None
