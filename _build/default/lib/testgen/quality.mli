(** Outgoing product quality: from fault coverage to defect level.

    The paper's motivation is economic: limited functional verification
    lets defective parts ship ("causing potential reliability problems").
    This module quantifies that with the classic production models:

    - Poisson yield: [Y = exp (-A·D)] for die area [A] and defect
      density [D];
    - Williams–Brown defect level: [DL = 1 - Y^(1-T)] — the fraction of
      shipped parts that are defective, given yield [Y] and fault
      coverage [T].

    Used by the benchmark harness to translate the measured coverage
    (before and after DfT) into parts-per-million escape rates. *)

(** [poisson_yield ~area_mm2 ~defects_per_cm2] — fraction of fault-free
    dies. Both arguments must be non-negative. *)
val poisson_yield : area_mm2:float -> defects_per_cm2:float -> float

(** [defect_level ~yield ~coverage] — Williams–Brown. [yield] in (0, 1],
    [coverage] in [0, 1]. *)
val defect_level : yield:float -> coverage:float -> float

(** [dpm ~yield ~coverage] — defective parts per million shipped. *)
val dpm : yield:float -> coverage:float -> float

(** [required_coverage ~yield ~target_dpm] — the fault coverage needed to
    reach a target escape rate at a given yield.
    @raise Invalid_argument when the target is unreachable ([yield] = 1
    needs no coverage; [target_dpm] must be positive). *)
val required_coverage : yield:float -> target_dpm:float -> float
