(** The test-time model of §3.2.

    The missing-code test samples a triangular waveform at full conversion
    speed; the current test performs six DC measurements (three phases ×
    two input polarities), each needing a settling wait for transients to
    die out. *)

val missing_code_samples : int
(** 1000, the paper's stimulus length. *)

val missing_code_time : samples:int -> float
(** [samples] conversions at full speed. *)

val current_measurements : int
(** 6 = 3 phases × 2 input conditions. *)

val settle_time : float
(** 100 µs per DC current measurement. *)

val current_test_time : float

(** Total simple-test time: ramp + current measurements. *)
val total : float

val pp_budget : Format.formatter -> unit -> unit
