lib/testgen/detection.mli: Format Macro Util
