lib/testgen/overlap.ml: Detection Fault Format Hashtbl List Macro
