lib/testgen/test_time.ml: Adc Format
