lib/testgen/detection.ml: Adc Format Fun List Macro String
