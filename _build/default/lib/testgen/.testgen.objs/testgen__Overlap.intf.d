lib/testgen/overlap.mli: Detection Format Macro
