lib/testgen/test_time.mli: Format
