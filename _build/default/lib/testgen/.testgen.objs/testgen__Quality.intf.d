lib/testgen/quality.mli:
