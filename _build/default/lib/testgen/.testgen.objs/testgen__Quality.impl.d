lib/testgen/quality.ml: Float
