type mechanisms = {
  missing_code : bool;
  ivdd : bool;
  iddq : bool;
  iinput : bool;
}

let none = { missing_code = false; ivdd = false; iddq = false; iinput = false }

let of_signature (s : Macro.Signature.t) =
  let missing_code =
    match s.voltage with
    | Macro.Signature.Output_stuck_at | Macro.Signature.Offset_too_large -> true
    | Macro.Signature.Mixed | Macro.Signature.Clock_value
    | Macro.Signature.No_voltage_deviation -> false
  in
  {
    missing_code;
    ivdd = List.mem Macro.Signature.IVdd s.currents;
    iddq = List.mem Macro.Signature.IDDQ s.currents;
    iinput = List.mem Macro.Signature.Iinput s.currents;
  }

let of_outcome (o : Macro.Evaluate.outcome) = of_signature o.signature

let voltage_detected m = m.missing_code
let current_detected m = m.ivdd || m.iddq || m.iinput
let detected m = voltage_detected m || current_detected m

let propagate_voltage ?(samples = 1000) voltage prng =
  let comparator_index = Adc.Flash_adc.comparators / 2 in
  let adc =
    match voltage with
    | Macro.Signature.Output_stuck_at ->
      Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal comparator_index
        Adc.Flash_adc.Stuck_high
    | Macro.Signature.Offset_too_large ->
      (* Just beyond the 8 mV limit: more than one LSB of input-referred
         offset. *)
      Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal comparator_index
        (Adc.Flash_adc.Functional (1.5 *. Adc.Params.offset_limit))
    | Macro.Signature.Mixed ->
      Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal comparator_index
        Adc.Flash_adc.Erratic
    | Macro.Signature.Clock_value | Macro.Signature.No_voltage_deviation ->
      Adc.Flash_adc.ideal
  in
  Adc.Flash_adc.missing_codes adc prng ~samples <> []

let pp ppf m =
  let tags =
    List.filter_map Fun.id
      [
        (if m.missing_code then Some "missing-code" else None);
        (if m.ivdd then Some "IVdd" else None);
        (if m.iddq then Some "IDDQ" else None);
        (if m.iinput then Some "Iinput" else None);
      ]
  in
  Format.pp_print_string ppf
    (match tags with [] -> "undetected" | tags -> String.concat "+" tags)
