type cell = { combination : Detection.mechanisms; share : float }

let partition outcomes =
  let total =
    float_of_int
      (max 1
         (List.fold_left
            (fun acc (o : Macro.Evaluate.outcome) ->
              acc + o.fault_class.Fault.Collapse.count)
            0 outcomes))
  in
  let table = Hashtbl.create 16 in
  List.iter
    (fun (o : Macro.Evaluate.outcome) ->
      let mechanisms = Detection.of_outcome o in
      let weight = o.fault_class.Fault.Collapse.count in
      let existing = try Hashtbl.find table mechanisms with Not_found -> 0 in
      Hashtbl.replace table mechanisms (existing + weight))
    outcomes;
  Hashtbl.fold
    (fun combination weight acc ->
      { combination; share = float_of_int weight /. total } :: acc)
    table []
  |> List.sort (fun a b -> compare b.share a.share)

type venn = {
  voltage_only : float;
  both : float;
  current_only : float;
  undetected : float;
}

let venn_of_partition cells =
  List.fold_left
    (fun acc { combination; share } ->
      let v = Detection.voltage_detected combination in
      let c = Detection.current_detected combination in
      match v, c with
      | true, false -> { acc with voltage_only = acc.voltage_only +. share }
      | true, true -> { acc with both = acc.both +. share }
      | false, true -> { acc with current_only = acc.current_only +. share }
      | false, false -> { acc with undetected = acc.undetected +. share })
    { voltage_only = 0.; both = 0.; current_only = 0.; undetected = 0. }
    cells

let coverage venn = 1.0 -. venn.undetected

let mechanism_share cells =
  let share_of pred =
    List.fold_left
      (fun acc { combination; share } ->
        if pred combination then acc +. share else acc)
      0.0 cells
  in
  [
    "missing-code", share_of (fun m -> m.Detection.missing_code);
    "IVdd", share_of (fun m -> m.Detection.ivdd);
    "IDDQ", share_of (fun m -> m.Detection.iddq);
    "Iinput", share_of (fun m -> m.Detection.iinput);
  ]

let only_detected_by cells ~mechanism =
  let matches (m : Detection.mechanisms) =
    match mechanism with
    | "missing-code" -> m.missing_code && not (m.ivdd || m.iddq || m.iinput)
    | "IVdd" -> m.ivdd && not (m.missing_code || m.iddq || m.iinput)
    | "IDDQ" -> m.iddq && not (m.missing_code || m.ivdd || m.iinput)
    | "Iinput" -> m.iinput && not (m.missing_code || m.ivdd || m.iddq)
    | _ -> invalid_arg "Overlap.only_detected_by: unknown mechanism"
  in
  List.fold_left
    (fun acc { combination; share } ->
      if matches combination then acc +. share else acc)
    0.0 cells

let pp_venn ppf v =
  Format.fprintf ppf
    "voltage-only %.1f%% / both %.1f%% / current-only %.1f%% / undetected %.1f%%"
    (100. *. v.voltage_only) (100. *. v.both) (100. *. v.current_only)
    (100. *. v.undetected)
