let poisson_yield ~area_mm2 ~defects_per_cm2 =
  if area_mm2 < 0. || defects_per_cm2 < 0. then
    invalid_arg "Quality.poisson_yield: negative argument";
  exp (-.area_mm2 /. 100.0 *. defects_per_cm2)

let defect_level ~yield ~coverage =
  if yield <= 0. || yield > 1. then
    invalid_arg "Quality.defect_level: yield must be in (0, 1]";
  if coverage < 0. || coverage > 1. then
    invalid_arg "Quality.defect_level: coverage must be in [0, 1]";
  1.0 -. (yield ** (1.0 -. coverage))

let dpm ~yield ~coverage = 1e6 *. defect_level ~yield ~coverage

let required_coverage ~yield ~target_dpm =
  if target_dpm <= 0. then
    invalid_arg "Quality.required_coverage: target must be positive";
  if yield <= 0. || yield >= 1. then
    invalid_arg "Quality.required_coverage: yield must be in (0, 1)";
  let target_dl = target_dpm /. 1e6 in
  if target_dl >= 1.0 -. yield then 0.0
  else begin
    (* Invert DL = 1 - Y^(1-T):  T = 1 - ln(1 - DL) / ln Y. *)
    let coverage = 1.0 -. (log (1.0 -. target_dl) /. log yield) in
    Float.min 1.0 (Float.max 0.0 coverage)
  end
