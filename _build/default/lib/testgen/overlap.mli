(** Detection-mechanism overlap analysis (Fig. 3 / Fig. 4 of the paper).

    Faults are partitioned by the exact set of mechanisms that detect
    them; shares are weighted by fault-class magnitude. The partition
    drives both the per-macro overlap picture (missing-code × IVdd ×
    IDDQ × Iinput, Fig. 3) and the global voltage/current Venn
    (voltage-only / both / current-only / undetected, Fig. 4/5). *)

(** A weighted partition cell: a mechanism combination and its share of
    all faults (weights sum to 1 over the whole partition). *)
type cell = { combination : Detection.mechanisms; share : float }

val partition : Macro.Evaluate.outcome list -> cell list

(** Aggregated voltage/current view of a partition (shares in \[0, 1\]):
    Fig. 4's three regions plus the undetected remainder. *)
type venn = {
  voltage_only : float;
  both : float;
  current_only : float;
  undetected : float;
}

val venn_of_partition : cell list -> venn

(** Total fault coverage, [1 - undetected]. *)
val coverage : venn -> float

(** Shares detected by each single mechanism (overlaps included) and the
    share detectable by exactly one mechanism class. *)
val mechanism_share : cell list -> (string * float) list

(** [only_detected_by cells ~mechanism] — share of faults detected by the
    named mechanism ("missing-code", "IVdd", "IDDQ", "Iinput") and by
    nothing else. *)
val only_detected_by : cell list -> mechanism:string -> float

val pp_venn : Format.formatter -> venn -> unit
