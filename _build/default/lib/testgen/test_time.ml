let missing_code_samples = 1000

let missing_code_time ~samples = float_of_int samples *. Adc.Params.period

let current_measurements = 6
let settle_time = 100e-6
let current_test_time = float_of_int current_measurements *. settle_time

let total = missing_code_time ~samples:missing_code_samples +. current_test_time

let pp_budget ppf () =
  Format.fprintf ppf
    "missing-code: %d samples x %.0f ns = %.0f us; current: %d x %.0f us = %.0f us; total %.0f us"
    missing_code_samples
    (Adc.Params.period *. 1e9)
    (missing_code_time ~samples:missing_code_samples *. 1e6)
    current_measurements (settle_time *. 1e6) (current_test_time *. 1e6)
    (total *. 1e6)
