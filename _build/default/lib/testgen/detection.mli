(** Detection: from macro-level fault signatures to circuit-edge verdicts.

    This is the sensitization/propagation step of the test path (§2-3.2).
    Current signatures need no propagation — they are already defined as
    deviations of currents at circuit terminals. Voltage signatures map
    one-to-one onto the missing-code test: the [Output_stuck_at] and
    [Offset_too_large] categories produce missing output codes, the
    others do not (paper: "the first two fault signature categories cause
    missing codes, the others do not"). [propagate_voltage] validates
    that mapping against the behavioural converter model. *)

(** Which of the four detection mechanisms catch a fault. *)
type mechanisms = {
  missing_code : bool;
  ivdd : bool;
  iddq : bool;
  iinput : bool;
}

val none : mechanisms

(** [of_signature s] applies the propagation mapping. *)
val of_signature : Macro.Signature.t -> mechanisms

val of_outcome : Macro.Evaluate.outcome -> mechanisms

(** Voltage-detected = caught by the missing-code measurement. *)
val voltage_detected : mechanisms -> bool

(** Current-detected = any of the three current measurements deviates. *)
val current_detected : mechanisms -> bool

val detected : mechanisms -> bool

(** [propagate_voltage signature] builds a one-faulty-comparator
    behavioural ADC exhibiting the signature and runs the missing-code
    stimulus, returning whether any code is lost. Agreement with
    [of_signature] (checked in the test suite and exercised by the
    examples) is the justification for the one-to-one mapping. *)
val propagate_voltage :
  ?samples:int -> Macro.Signature.voltage -> Util.Prng.t -> bool

val pp : Format.formatter -> mechanisms -> unit
