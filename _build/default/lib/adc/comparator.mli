(** The comparator macro cell — the paper's worked example (§3.2).

    A fully balanced, three-phase clocked comparator loaded with a
    flipflop:

    - {b sampling} (clk1): the input and reference are tracked onto the
      sampling capacitors through NMOS switches; the class-A amplifier is
      off, so the only analog supply current is the flipflop leak device;
    - {b amplification} (clk2): the differential pair, biased by the
      [biasn] line, develops the decision across diode-connected PMOS
      loads;
    - {b latching} (clk3): a cross-coupled NMOS pair biased by the
      (marginally different) [biaslt] line regenerates the decision, and
      the flipflop captures it through pass transistors.

    The test bench mirrors the macro's environment in the flash ADC:
    the three clock lines are driven by small CMOS buffers on a separate
    digital supply ([iddq:] measurements), the bias lines come through
    the bias generator's output impedance, and the analog supply, input
    and reference are ideal sources ([ivdd:]/[iin:] measurements). *)

type options = {
  leaky_flipflop : bool;
      (** the original flipflop has a process-sensitive leak device; the
          DfT redesign ([false]) removes it *)
  bias_adjacent : bool;
      (** route [biasn] and [biaslt] on adjacent tracks (original layout);
          the DfT reorder ([false]) separates them *)
}

val default_options : options

(** Both DfT measures applied. *)
val dft_options : options

(** Netlist of the macro alone (no sources) — the layout view. *)
val layout_netlist : options -> Circuit.Netlist.t

(** Macro + test bench at a process point. *)
val bench_netlist : options -> Process.Variation.sample -> Circuit.Netlist.t

(** Synthesized layout. *)
val layout : options -> Layout.Cell.t

(** The macro-cell bundle (256 instances in the flash ADC). *)
val macro : options -> Macro.Macro_cell.t

(** Decision measurement names, exposed for tests: the comparator decision
    (sign of the flipflop differential) at small and large positive and
    negative overdrives. *)
val decision_measurements : string list
