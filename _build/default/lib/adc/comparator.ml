type options = { leaky_flipflop : bool; bias_adjacent : bool }

let default_options = { leaky_flipflop = true; bias_adjacent = true }
let dft_options = { leaky_flipflop = false; bias_adjacent = false }

let nmos ?(params = Circuit.Mos_model.default_nmos) w =
  { Circuit.Netlist.polarity = Circuit.Mos_model.Nmos; params; w; l = 1e-6 }

let pmos ?(params = Circuit.Mos_model.default_pmos) w =
  { Circuit.Netlist.polarity = Circuit.Mos_model.Pmos; params; w; l = 1e-6 }

(* Apply a process sample to device parameters. *)
let vary_nmos (s : Process.Variation.sample) w =
  let p = Circuit.Mos_model.default_nmos in
  nmos
    ~params:
      {
        p with
        Circuit.Mos_model.vth = p.Circuit.Mos_model.vth +. s.vth_n_shift;
        kp = p.Circuit.Mos_model.kp *. s.beta_factor;
      }
    w

let vary_pmos (s : Process.Variation.sample) w =
  let p = Circuit.Mos_model.default_pmos in
  pmos
    ~params:
      {
        p with
        Circuit.Mos_model.vth = p.Circuit.Mos_model.vth +. s.vth_p_shift;
        kp = p.Circuit.Mos_model.kp *. s.beta_factor;
      }
    w

(* The macro's devices, shared by the layout view and the test bench.
   Node names are the net labels the defect simulator reports faults
   against. *)
let add_macro_devices options (s : Process.Variation.sample) nl =
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  let vdd = n "vdd" in
  let vin = n "vin" and vref = n "vref" in
  let clk1 = n "clk1" and clk2 = n "clk2" and clk3 = n "clk3" in
  let biasn = n "biasn" and biaslt = n "biaslt" in
  let inp = n "inp" and inn = n "inn" in
  let tail = n "tail" and tailsrc = n "tailsrc" in
  let outp = n "outp" and outn = n "outn" in
  let ltail = n "ltail" and ltsrc = n "ltsrc" in
  let ffp = n "ffp" and ffn = n "ffn" in
  let nm = vary_nmos s and pm = vary_pmos s in
  let cf = s.capacitance_factor in
  let add_m name ~d ~g ~sN ~b spec =
    Circuit.Netlist.add_mosfet nl ~name ~drain:d ~gate:g ~source:sN ~bulk:b spec
  in
  (* Sampling switches and capacitors. *)
  add_m "MSWIN" ~d:inp ~g:clk1 ~sN:vin ~b:gnd (nm 4e-6);
  add_m "MSWREF" ~d:inn ~g:clk1 ~sN:vref ~b:gnd (nm 4e-6);
  Circuit.Netlist.add_capacitor nl ~name:"CINP" inp gnd (200e-15 *. cf);
  Circuit.Netlist.add_capacitor nl ~name:"CINN" inn gnd (200e-15 *. cf);
  (* Class-A amplifier: differential pair, diode PMOS loads, tail current
     source on the biasn line, enabled in the amplify and latch phases. *)
  add_m "MA1" ~d:outn ~g:inp ~sN:tail ~b:gnd (nm 20e-6);
  add_m "MA2" ~d:outp ~g:inn ~sN:tail ~b:gnd (nm 20e-6);
  add_m "MEN2" ~d:tail ~g:clk2 ~sN:tailsrc ~b:gnd (nm 20e-6);
  add_m "MEN3" ~d:tail ~g:clk3 ~sN:tailsrc ~b:gnd (nm 20e-6);
  add_m "MTAIL" ~d:tailsrc ~g:biasn ~sN:gnd ~b:gnd (nm 10e-6);
  add_m "MLP1" ~d:outn ~g:outn ~sN:vdd ~b:vdd (pm 8e-6);
  add_m "MLP2" ~d:outp ~g:outp ~sN:vdd ~b:vdd (pm 8e-6);
  (* Regenerative latch on the biaslt line. The cross pair is sized below
     the loads' transconductance: it acts as a negative conductance that
     boosts the latch-phase gain while keeping the static solution
     uniquely determined by the input (bistable statics would make the
     quasi-static fault simulation history-dependent). *)
  add_m "MX1" ~d:outn ~g:outp ~sN:ltail ~b:gnd (nm 3e-6);
  add_m "MX2" ~d:outp ~g:outn ~sN:ltail ~b:gnd (nm 3e-6);
  add_m "MLTEN" ~d:ltail ~g:clk3 ~sN:ltsrc ~b:gnd (nm 10e-6);
  add_m "MLTAIL" ~d:ltsrc ~g:biaslt ~sN:gnd ~b:gnd (nm 4e-6);
  (* Flipflop: a balanced dynamic latch — pass devices transfer the
     decision onto the storage nodes during the latching phase and the
     charge holds it afterwards. Its quiescent current is zero in the
     amplification and latching phases, exactly as the paper describes. *)
  add_m "MPASS1" ~d:ffp ~g:clk3 ~sN:outp ~b:gnd (nm 6e-6);
  add_m "MPASS2" ~d:ffn ~g:clk3 ~sN:outn ~b:gnd (nm 6e-6);
  if options.leaky_flipflop then begin
    (* The flipflop leak: a wide device biased just above threshold whose
       current varies strongly with process, and which only flows while
       clk1 is high — the paper's flipflop draws quiescent current in the
       sampling phase alone, and its spread is what masks IVdd-detectable
       faults there (§3.4). *)
    let biasff = n "biasff" in
    let leakmid = n "leakmid" in
    add_m "MLEAKEN" ~d:vdd ~g:clk1 ~sN:leakmid ~b:gnd (nm 600e-6);
    add_m "MLEAK" ~d:leakmid ~g:biasff ~sN:gnd ~b:gnd (nm 600e-6)
  end

let layout_netlist options =
  let nl = Circuit.Netlist.create () in
  add_macro_devices options
    (Process.Variation.nominal Process.Tech.cmos1um)
    nl;
  nl


let bench_netlist options (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  add_macro_devices options s nl;
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  (* Analog supply. *)
  Circuit.Netlist.add_vsource nl ~name:"VDDA" ~pos:(n "vdd") ~neg:gnd
    (Circuit.Waveform.dc s.vdd);
  (* Digital supply + clock buffers: the clock generator's face toward the
     comparator. Their quiescent current is the IDDQ observable. *)
  Circuit.Netlist.add_vsource nl ~name:"VDDD" ~pos:(n "vddd") ~neg:gnd
    (Circuit.Waveform.dc s.vdd);
  List.iter
    (fun i ->
      let raw = n (Printf.sprintf "rawclk%d" i) in
      let clk = n (Printf.sprintf "clk%d" i) in
      Circuit.Netlist.add_vsource nl
        ~name:(Printf.sprintf "VRAW%d" i)
        ~pos:raw ~neg:gnd (Clocks.raw_phase i);
      Circuit.Netlist.add_mosfet nl
        ~name:(Printf.sprintf "MCBP%d" i)
        ~drain:clk ~gate:raw ~source:(n "vddd") ~bulk:(n "vddd")
        (vary_pmos s 200e-6);
      Circuit.Netlist.add_mosfet nl
        ~name:(Printf.sprintf "MCBN%d" i)
        ~drain:clk ~gate:raw ~source:gnd ~bulk:gnd (vary_nmos s 100e-6))
    [ 1; 2; 3 ];
  (* Analog input and reference. *)
  Circuit.Netlist.add_vsource nl ~name:"VIN" ~pos:(n "vin") ~neg:gnd
    (Circuit.Waveform.dc 2.0);
  Circuit.Netlist.add_vsource nl ~name:"VREF" ~pos:(n "vref") ~neg:gnd
    (Circuit.Waveform.dc 2.0);
  (* Bias lines through the bias generator's output impedance. *)
  let bias name node level =
    let src = n (name ^ "_src") in
    Circuit.Netlist.add_vsource nl ~name:("V" ^ String.uppercase_ascii name)
      ~pos:src ~neg:gnd
      (Circuit.Waveform.dc level);
    Circuit.Netlist.add_resistor nl ~name:("R" ^ String.uppercase_ascii name)
      src node Params.bias_output_impedance
  in
  bias "biasn" (n "biasn") Params.bias_tail;
  bias "biaslt" (n "biaslt") Params.bias_latch;
  if options.leaky_flipflop then bias "biasff" (n "biasff") Params.bias_ff_leak;
  (* Parasitic load capacitances (wire + gate): not drawn in the layout,
     but essential for the latch to regenerate from the amplified state
     rather than resolving statically. *)
  let cf = s.capacitance_factor in
  Circuit.Netlist.add_capacitor nl ~name:"CPOUTP" (n "outp") gnd (100e-15 *. cf);
  Circuit.Netlist.add_capacitor nl ~name:"CPOUTN" (n "outn") gnd (100e-15 *. cf);
  Circuit.Netlist.add_capacitor nl ~name:"CPFFP" (n "ffp") gnd (30e-15 *. cf);
  Circuit.Netlist.add_capacitor nl ~name:"CPFFN" (n "ffn") gnd (30e-15 *. cf);
  nl

(* --- measurement ------------------------------------------------------- *)

let decision_measurements = [ "v:dec:p8"; "v:dec:m8"; "v:dec:p300"; "v:dec:m300" ]

let set_vin nl v =
  let vin = Circuit.Netlist.node nl "vin" in
  Circuit.Netlist.remove_device nl "VIN";
  Circuit.Netlist.add_vsource nl ~name:"VIN" ~pos:vin ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc v)

let solution_at solutions t =
  let step = Params.sim_step in
  let index = int_of_float (Float.round (t /. step)) in
  List.nth solutions (min index (List.length solutions - 1))

(* Decision encoding. A real flipflop resolves a near-metastable input
   through its own input offset, always falling to the same side — that is
   why the balanced comparator is so prone to stuck-at signatures (§3.2).
   We model a +12 mV systematic flipflop offset: the decision is high only
   when the stored differential clears it; a narrow band around the
   tipping point is reported as ambiguous (0). *)
let flipflop_tip = 0.012

let decision sol nl =
  let v name = Circuit.Engine.voltage sol (Circuit.Netlist.node nl name) in
  let diff = v "ffp" -. v "ffn" in
  if diff > flipflop_tip +. 0.002 then 1.0
  else if diff < flipflop_tip -. 0.002 then -1.0
  else 0.0

let transient_run nl vin_value =
  let nl = Circuit.Netlist.copy nl in
  set_vin nl vin_value;
  let stop = 2.0 *. Params.period in
  nl, Circuit.Engine.transient nl ~stop ~step:Params.sim_step

let measure nl =
  let vref = 2.0 in
  let nl_p8, sols_p8 = transient_run nl (vref +. 0.008) in
  let nl_m8, sols_m8 = transient_run nl (vref -. 0.008) in
  let nl_hi, sols_hi = transient_run nl (vref +. 0.3) in
  let nl_lo, sols_lo = transient_run nl (vref -. 0.3) in
  let dec sols nl = decision (solution_at sols Params.decision_time) nl in
  let currents tag sols =
    let at t name = Circuit.Engine.source_current (solution_at sols t) name in
    [
      Printf.sprintf "ivdd:sample:%s" tag, at Params.mid_sample "VDDA";
      Printf.sprintf "ivdd:amp:%s" tag, at Params.mid_amplify "VDDA";
      Printf.sprintf "ivdd:latch:%s" tag, at Params.mid_latch "VDDA";
      Printf.sprintf "iddq:sample:%s" tag, at Params.mid_sample "VDDD";
      Printf.sprintf "iddq:amp:%s" tag, at Params.mid_amplify "VDDD";
      Printf.sprintf "iddq:latch:%s" tag, at Params.mid_latch "VDDD";
      Printf.sprintf "iin:vin:%s" tag, at Params.mid_sample "VIN";
      Printf.sprintf "iin:vref:%s" tag, at Params.mid_sample "VREF";
      Printf.sprintf "iin:biasn:%s" tag, at Params.mid_amplify "VBIASN";
      Printf.sprintf "iin:biaslt:%s" tag, at Params.mid_latch "VBIASLT";
    ]
  in
  let clock_levels sols nl =
    let v t name = Circuit.Engine.voltage (solution_at sols t) (Circuit.Netlist.node nl name) in
    [
      "v:clk1:hi", v Params.mid_sample "clk1";
      "v:clk1:lo", v Params.mid_amplify "clk1";
      "v:clk2:hi", v Params.mid_amplify "clk2";
      "v:clk2:lo", v Params.mid_sample "clk2";
      "v:clk3:hi", v Params.mid_latch "clk3";
      "v:clk3:lo", v Params.mid_sample "clk3";
      "v:biasn", v Params.mid_amplify "biasn";
      "v:biaslt", v Params.mid_latch "biaslt";
    ]
  in
  [
    "v:dec:p8", dec sols_p8 nl_p8;
    "v:dec:m8", dec sols_m8 nl_m8;
    "v:dec:p300", dec sols_hi nl_hi;
    "v:dec:m300", dec sols_lo nl_lo;
  ]
  @ currents "hi" sols_hi @ currents "lo" sols_lo @ clock_levels sols_hi nl_hi

(* --- voltage classification -------------------------------------------- *)

let classify_voltage ~golden ~faulty =
  let g name = Macro.Macro_cell.get golden name in
  let f name = Macro.Macro_cell.get faulty name in
  let p300 = f "v:dec:p300" and m300 = f "v:dec:m300" in
  let p8 = f "v:dec:p8" and m8 = f "v:dec:m8" in
  let distribution_deviates =
    List.exists
      (fun name -> Float.abs (f name -. g name) > 0.1)
      [ "v:clk1:hi"; "v:clk1:lo"; "v:clk2:hi"; "v:clk2:lo"; "v:clk3:hi";
        "v:clk3:lo"; "v:biasn"; "v:biaslt" ]
  in
  if p300 = 1.0 && m300 = -1.0 then
    if p8 = 1.0 && m8 = -1.0 then
      if distribution_deviates then Macro.Signature.Clock_value
      else Macro.Signature.No_voltage_deviation
    else Macro.Signature.Offset_too_large
  else if p300 = m300 && p300 <> 0.0 then Macro.Signature.Output_stuck_at
  else Macro.Signature.Mixed

(* --- macro bundle ------------------------------------------------------- *)

let track_order options =
  if options.bias_adjacent then
    [ "clk1"; "clk2"; "clk3"; "biasn"; "biaslt"; "biasff"; "vin"; "vref";
      "vdd"; "0" ]
  else
    (* DfT reorder: the almost-equal bias lines are separated by strongly
       different signals. *)
    [ "biasn"; "clk1"; "vdd"; "biaslt"; "clk2"; "0"; "biasff"; "clk3";
      "vin"; "vref" ]

let layout options =
  let synth_options =
    { Layout.Synthesize.default_options with track_order = track_order options }
  in
  Layout.Synthesize.synthesize ~options:synth_options (layout_netlist options)
    ~name:(if options.bias_adjacent then "comparator" else "comparator_dft")

let macro options =
  {
    Macro.Macro_cell.name = "comparator";
    build = bench_netlist options;
    cell = lazy (layout options);
    measure;
    classify_voltage;
    instances = 256;
  }
