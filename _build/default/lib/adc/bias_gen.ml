let nmos_diode (s : Process.Variation.sample) w =
  let p = Circuit.Mos_model.default_nmos in
  {
    Circuit.Netlist.polarity = Circuit.Mos_model.Nmos;
    params =
      {
        p with
        Circuit.Mos_model.vth = p.Circuit.Mos_model.vth +. s.vth_n_shift;
        kp = p.Circuit.Mos_model.kp *. s.beta_factor;
      };
    w;
    l = 1e-6;
  }

let add_macro_devices (s : Process.Variation.sample) nl =
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  let vdd = n "vdd" in
  let rf = s.Process.Variation.resistance_factor in
  (* biasn branch: sized so the diode sits at ~1.50 V. *)
  Circuit.Netlist.add_resistor nl ~name:"RREFN" vdd (n "biasn") (15_500. *. rf);
  Circuit.Netlist.add_mosfet nl ~name:"MREFN" ~drain:(n "biasn")
    ~gate:(n "biasn") ~source:gnd ~bulk:gnd (nmos_diode s 10e-6);
  (* biaslt branch: a narrower diode lands ~50 mV higher. *)
  Circuit.Netlist.add_resistor nl ~name:"RREFLT" vdd (n "biaslt") (17_100. *. rf);
  Circuit.Netlist.add_mosfet nl ~name:"MREFLT" ~drain:(n "biaslt")
    ~gate:(n "biaslt") ~source:gnd ~bulk:gnd (nmos_diode s 8e-6);
  (* biasff divider. *)
  Circuit.Netlist.add_resistor nl ~name:"RFFA" vdd (n "biasff") (41_600. *. rf);
  Circuit.Netlist.add_resistor nl ~name:"RFFB" (n "biasff") gnd (8_400. *. rf)

let layout_netlist () =
  let nl = Circuit.Netlist.create () in
  add_macro_devices (Process.Variation.nominal Process.Tech.cmos1um) nl;
  nl

let bench_netlist (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  add_macro_devices s nl;
  Circuit.Netlist.add_vsource nl ~name:"VDDA"
    ~pos:(Circuit.Netlist.node nl "vdd") ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc s.Process.Variation.vdd);
  nl

let measure nl =
  let sol = Circuit.Engine.dc_operating_point nl in
  let v name = Circuit.Engine.voltage sol (Circuit.Netlist.node nl name) in
  [
    "v:biasn", v "biasn";
    "v:biaslt", v "biaslt";
    "v:biasff", v "biasff";
    "ivdd:bias", Circuit.Engine.source_current sol "VDDA";
  ]

(* The comparator tail current goes as (biasn - vth)²: a 300 mV shift
   starves or floods the whole array (stuck codes); tens of millivolts
   shift every threshold (offsets); the leak bias only disturbs a
   monitoring line. *)
let classify_voltage ~golden ~faulty =
  let dev name =
    match Macro.Macro_cell.get_opt golden name, Macro.Macro_cell.get_opt faulty name with
    | Some g, Some f -> Float.abs (f -. g)
    | (None | Some _), _ -> 0.0
  in
  let main = Float.max (dev "v:biasn") (dev "v:biaslt") in
  if main > 0.3 then Macro.Signature.Output_stuck_at
  else if main > 0.03 then Macro.Signature.Offset_too_large
  else if dev "v:biasff" > 0.1 then Macro.Signature.Clock_value
  else Macro.Signature.No_voltage_deviation

let macro () =
  {
    Macro.Macro_cell.name = "bias generator";
    build = bench_netlist;
    cell =
      lazy (Layout.Synthesize.synthesize (layout_netlist ()) ~name:"bias_gen");
    measure;
    classify_voltage;
    instances = 1;
  }
