let pulse_phase ~active_high index =
  if index < 1 || index > 3 then invalid_arg "Clocks: phase index";
  let p = Params.phase in
  let edge = 4e-9 in
  let v0, v1 = if active_high then 0.0, 5.0 else 5.0, 0.0 in
  Circuit.Waveform.pulse ~v0 ~v1
    ~delay:(float_of_int (index - 1) *. p)
    ~rise:edge ~fall:edge
    ~width:(p -. (2. *. edge))
    ~period:Params.period

let raw_phase = pulse_phase ~active_high:false
let direct_phase = pulse_phase ~active_high:true
