let sized (s : Process.Variation.sample) polarity w =
  let base, shift =
    match (polarity : Circuit.Mos_model.polarity) with
    | Circuit.Mos_model.Nmos -> Circuit.Mos_model.default_nmos, s.Process.Variation.vth_n_shift
    | Circuit.Mos_model.Pmos -> Circuit.Mos_model.default_pmos, s.Process.Variation.vth_p_shift
  in
  {
    Circuit.Netlist.polarity;
    params =
      {
        base with
        Circuit.Mos_model.vth = base.Circuit.Mos_model.vth +. shift;
        kp = base.Circuit.Mos_model.kp *. s.Process.Variation.beta_factor;
      };
    w;
    l = 1e-6;
  }

(* Two-stage buffer per phase: shaping inverter into a large driver. *)
let add_macro_devices (s : Process.Variation.sample) nl =
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  let vddd = n "vddd" in
  let inverter tag ~input ~output ~wp ~wn =
    Circuit.Netlist.add_mosfet nl ~name:("MP" ^ tag) ~drain:output ~gate:input
      ~source:vddd ~bulk:vddd (sized s Circuit.Mos_model.Pmos wp);
    Circuit.Netlist.add_mosfet nl ~name:("MN" ^ tag) ~drain:output ~gate:input
      ~source:gnd ~bulk:gnd (sized s Circuit.Mos_model.Nmos wn)
  in
  List.iter
    (fun i ->
      let raw = n (Printf.sprintf "rawclk%d" i) in
      let mid = n (Printf.sprintf "mid%d" i) in
      let clk = n (Printf.sprintf "clk%d" i) in
      inverter (Printf.sprintf "S%d" i) ~input:raw ~output:mid ~wp:6e-6 ~wn:3e-6;
      inverter (Printf.sprintf "D%d" i) ~input:mid ~output:clk ~wp:200e-6 ~wn:100e-6)
    [ 1; 2; 3 ]

let layout_netlist () =
  let nl = Circuit.Netlist.create () in
  add_macro_devices (Process.Variation.nominal Process.Tech.cmos1um) nl;
  nl

let bench_netlist (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  add_macro_devices s nl;
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  Circuit.Netlist.add_vsource nl ~name:"VDDD" ~pos:(n "vddd") ~neg:gnd
    (Circuit.Waveform.dc s.Process.Variation.vdd);
  List.iter
    (fun i ->
      Circuit.Netlist.add_vsource nl
        ~name:(Printf.sprintf "VRAW%d" i)
        ~pos:(n (Printf.sprintf "rawclk%d" i))
        ~neg:gnd (Clocks.direct_phase i);
      (* The comparator array loads each clock line with its switch
         gates: ~5 pF of distributed capacitance. The double stage must
         still slew it within a fraction of the phase. *)
      Circuit.Netlist.add_capacitor nl
        ~name:(Printf.sprintf "CLOAD%d" i)
        (n (Printf.sprintf "clk%d" i))
        gnd 5e-12)
    [ 1; 2; 3 ];
  nl

(* The two-stage buffers are non-inverting: clk_i follows the active-high
   phase input. One full period is simulated; levels and IDDQ are read
   mid-phase. *)
let measure nl =
  let sols = Circuit.Engine.transient nl ~stop:Params.period ~step:Params.sim_step in
  let at t =
    let index = int_of_float (Float.round (t /. Params.sim_step)) in
    List.nth sols (min index (List.length sols - 1))
  in
  let mid i = (float_of_int (i - 1) +. 0.5) *. Params.phase in
  let v t name = Circuit.Engine.voltage (at t) (Circuit.Netlist.node nl name) in
  List.concat
    [
      List.concat_map
        (fun i ->
          let clk = Printf.sprintf "clk%d" i in
          let own = mid i in
          let other = mid (1 + (i mod 3)) in
          [
            Printf.sprintf "v:%s:hi" clk, v own clk;
            Printf.sprintf "v:%s:lo" clk, v other clk;
          ])
        [ 1; 2; 3 ];
      List.map
        (fun i ->
          ( Printf.sprintf "iddq:phase%d" i,
            Circuit.Engine.source_current (at (mid i)) "VDDD" ))
        [ 1; 2; 3 ];
    ]

(* A clock that no longer toggles freezes the comparator array: stuck.
   A shifted level is the "Clock value" signature. *)
let classify_voltage ~golden ~faulty =
  ignore golden;
  let f name = Macro.Macro_cell.get faulty name in
  let stuck =
    List.exists
      (fun i ->
        let hi = f (Printf.sprintf "v:clk%d:hi" i) in
        let lo = f (Printf.sprintf "v:clk%d:lo" i) in
        Float.abs (hi -. lo) < 2.5)
      [ 1; 2; 3 ]
  in
  if stuck then Macro.Signature.Output_stuck_at
  else begin
    let shifted =
      List.exists
        (fun i ->
          f (Printf.sprintf "v:clk%d:hi" i) < 4.5
          || f (Printf.sprintf "v:clk%d:lo" i) > 0.5)
        [ 1; 2; 3 ]
    in
    if shifted then Macro.Signature.Clock_value
    else Macro.Signature.No_voltage_deviation
  end

let macro () =
  {
    Macro.Macro_cell.name = "clock generator";
    build = bench_netlist;
    cell =
      lazy (Layout.Synthesize.synthesize (layout_netlist ()) ~name:"clock_gen");
    measure;
    classify_voltage;
    instances = 1;
  }
