type comparator_state =
  | Functional of float
  | Stuck_high
  | Stuck_low
  | Erratic

let comparators = Params.levels - 1

type t = {
  states : comparator_state array;
  references : float array;
}

let reference i =
  assert (i >= 0 && i < comparators);
  Params.vref_low +. (float_of_int (i + 1) *. Params.lsb)

let ideal =
  {
    states = Array.make comparators (Functional 0.0);
    references = Array.init comparators reference;
  }

let with_comparator t i state =
  if i < 0 || i >= comparators then invalid_arg "Flash_adc.with_comparator";
  let states = Array.copy t.states in
  states.(i) <- state;
  { t with states }

let with_reference_shift t ~from_tap ~shift =
  let references =
    Array.mapi
      (fun i r -> if i >= from_tap then r +. shift else r)
      t.references
  in
  { t with references }

(* Topmost-one decoding, the plain thermometer-to-binary conversion of
   the case-study converter: the code is one plus the index of the
   highest comparator reporting "input above my reference". Under this
   decode a comparator offset beyond one LSB swallows exactly one code
   and a stuck comparator masks a code range — both caught by the
   missing-code measurement, as §3.2 requires. *)
let convert t prng vin =
  let topmost = ref (-1) in
  for i = 0 to comparators - 1 do
    let high =
      match t.states.(i) with
      | Functional offset -> vin > t.references.(i) +. offset
      | Stuck_high -> true
      | Stuck_low -> false
      | Erratic -> Util.Prng.bool prng
    in
    if high then topmost := i
  done;
  !topmost + 1

let codes_hit t prng ~samples =
  if samples <= 0 then invalid_arg "Flash_adc.codes_hit";
  let hit = Array.make Params.levels false in
  (* Triangular ramp overshooting full scale by one LSB on both ends so
     the extreme codes are exercised. *)
  let lo = Params.vref_low -. Params.lsb in
  let hi = Params.vref_high +. Params.lsb in
  for k = 0 to samples - 1 do
    let phase = float_of_int k /. float_of_int (max 1 (samples - 1)) in
    let ramp = if phase <= 0.5 then 2.0 *. phase else 2.0 *. (1.0 -. phase) in
    let vin = lo +. (ramp *. (hi -. lo)) in
    hit.(convert t prng vin) <- true
  done;
  hit

let missing_codes t prng ~samples =
  let hit = codes_hit t prng ~samples in
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if hit.(i) then acc else i :: acc)
  in
  collect (Params.levels - 1) []
