(** Behavioural model of the full 8-bit flash ADC.

    This is the high-level model used in the fault-signature
    sensitization/propagation step (paper §2): the transistor-level
    simulation happens per macro; the effect of a macro-level fault
    signature on the converter's output codes is evaluated here, where
    255 comparator instances can be swept over a full-scale ramp in
    microseconds of CPU time.

    The converter: 255 comparators against ladder references, topmost-one
    thermometer decoding (under which an offset beyond one LSB swallows a
    code and a stuck comparator masks a code range — the paper's
    missing-code mechanism). *)

(** Behaviour of one comparator instance. *)
type comparator_state =
  | Functional of float  (** input-referred offset, V *)
  | Stuck_high
  | Stuck_low
  | Erratic  (** resolves pseudo-randomly: the [Mixed] signature *)

type t

(** Number of comparators (levels - 1). *)
val comparators : int

(** The fault-free converter. *)
val ideal : t

(** [reference i] — the i-th ladder tap voltage (i ∈ 0..comparators-1). *)
val reference : int -> float

(** [with_comparator t i state] — functional update of one comparator. *)
val with_comparator : t -> int -> comparator_state -> t

(** [with_reference_shift t ~from_tap ~shift] adds [shift] volts to every
    reference at index ≥ [from_tap] (a ladder fault). *)
val with_reference_shift : t -> from_tap:int -> shift:float -> t

(** [convert t prng vin] — one conversion. The PRNG only matters when an
    [Erratic] comparator is present. *)
val convert : t -> Util.Prng.t -> float -> int

(** [codes_hit t prng ~samples] runs the paper's missing-code stimulus: a
    triangular ramp spanning slightly beyond full scale, [samples]
    conversions; element [c] tells whether code [c] was produced. *)
val codes_hit : t -> Util.Prng.t -> samples:int -> bool array

(** [missing_codes t prng ~samples] — the codes never produced. *)
val missing_codes : t -> Util.Prng.t -> samples:int -> int list
