(** Shared three-phase clocking of the converter. *)

(** [raw_phase i] (i ∈ 1..3) is the inverted phase-[i] waveform feeding a
    single inverting clock buffer: low during phase [i] of each conversion
    period (so the buffered clock is high), high otherwise. *)
val raw_phase : int -> Circuit.Waveform.t

(** [direct_phase i] is the active-high variant, for the clock generator's
    non-inverting two-stage buffers. *)
val direct_phase : int -> Circuit.Waveform.t
