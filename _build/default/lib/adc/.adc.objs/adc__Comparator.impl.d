lib/adc/comparator.ml: Circuit Clocks Float Layout List Macro Params Printf Process String
