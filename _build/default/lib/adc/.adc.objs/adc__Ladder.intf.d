lib/adc/ladder.mli: Circuit Macro Process
