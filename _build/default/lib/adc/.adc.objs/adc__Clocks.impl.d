lib/adc/clocks.ml: Circuit Params
