lib/adc/flash_adc.mli: Util
