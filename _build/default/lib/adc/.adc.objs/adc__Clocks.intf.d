lib/adc/clocks.mli: Circuit
