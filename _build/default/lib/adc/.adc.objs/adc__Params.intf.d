lib/adc/params.mli:
