lib/adc/bias_gen.mli: Circuit Macro Process
