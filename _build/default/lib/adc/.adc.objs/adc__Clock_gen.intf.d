lib/adc/clock_gen.mli: Circuit Macro Process
