lib/adc/bias_gen.ml: Circuit Float Layout Macro Process
