lib/adc/params.ml:
