lib/adc/decoder.mli: Circuit Macro Process
