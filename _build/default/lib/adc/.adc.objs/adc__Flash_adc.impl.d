lib/adc/flash_adc.ml: Array Params Util
