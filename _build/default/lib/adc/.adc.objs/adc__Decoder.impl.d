lib/adc/decoder.ml: Circuit Fun Layout List Macro Printf Process
