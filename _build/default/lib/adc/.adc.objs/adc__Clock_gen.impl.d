lib/adc/clock_gen.ml: Circuit Clocks Float Layout List Macro Params Printf Process
