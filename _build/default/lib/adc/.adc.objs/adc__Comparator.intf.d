lib/adc/comparator.mli: Circuit Layout Macro Process
