lib/adc/ladder.ml: Circuit Float Layout List Macro Params Printf Process
