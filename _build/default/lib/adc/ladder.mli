(** The dual reference-ladder macro.

    The flash ADC generates its 256 reference levels with a dual resistor
    ladder. The analysed macro is a 32-tap slice of it — two parallel
    strings cross-tied every eight taps — replicated [instances] times to
    represent the full ladder in the global scaling (DESIGN.md §2).

    The ladder only connects to comparator gates, so its observable
    behaviour is the tap voltages (voltage domain: a tap error ≥ ½ LSB
    produces missing codes) and the DC current drawn between the two
    reference terminals ([iin:]). Shorts and opens almost always disturb
    that current — the paper found 99.8 % of ladder faults current
    detectable. *)

val taps : int

(** Resistance of one ladder segment, Ω. *)
val segment_resistance : float

val layout_netlist : unit -> Circuit.Netlist.t
val bench_netlist : Process.Variation.sample -> Circuit.Netlist.t
val macro : unit -> Macro.Macro_cell.t
