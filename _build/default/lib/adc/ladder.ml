let taps = 32
let segment_resistance = 125.0

(* Two parallel strings between the reference rails, cross-tied every
   eight taps (the dual-ladder interconnect). Tap nets are named
   [tapN] (main string) and [ftapN] (fine string). *)
let add_macro_devices (s : Process.Variation.sample) nl =
  let n name = Circuit.Netlist.node nl name in
  let r = segment_resistance *. s.Process.Variation.resistance_factor in
  let string_of prefix =
    let node i =
      if i = 0 then n "vrl" else if i = taps then n "vrh"
      else n (Printf.sprintf "%s%d" prefix i)
    in
    let add i =
      Circuit.Netlist.add_resistor nl
        ~name:(Printf.sprintf "R%s%d" prefix i)
        (node i) (node (i + 1)) r
    in
    (* Insertion order = placement order. The physical ladder is a folded
       serpentine: segment k sits next to segment k + taps/2, so a spot
       defect bridging neighbouring segments shorts half the string — a
       current change no process spread can hide. This is what makes
       ladder faults almost fully current-detectable (§3.3). *)
    for i = 0 to (taps / 2) - 1 do
      add i;
      add (i + (taps / 2))
    done
  in
  string_of "tap";
  string_of "ftap";
  (* Cross ties. *)
  List.iter
    (fun i ->
      Circuit.Netlist.add_resistor nl
        ~name:(Printf.sprintf "RX%d" i)
        (n (Printf.sprintf "tap%d" i))
        (n (Printf.sprintf "ftap%d" i))
        1.0)
    [ 8; 16; 24 ]

let layout_netlist () =
  let nl = Circuit.Netlist.create () in
  add_macro_devices (Process.Variation.nominal Process.Tech.cmos1um) nl;
  nl

let bench_netlist (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  add_macro_devices s nl;
  let n name = Circuit.Netlist.node nl name in
  Circuit.Netlist.add_vsource nl ~name:"VRH" ~pos:(n "vrh")
    ~neg:Circuit.Netlist.ground (Circuit.Waveform.dc Params.vref_high);
  Circuit.Netlist.add_vsource nl ~name:"VRL" ~pos:(n "vrl")
    ~neg:Circuit.Netlist.ground (Circuit.Waveform.dc Params.vref_low);
  nl

let watched_taps = [ 4; 8; 12; 16; 20; 24; 28 ]

let measure nl =
  let sol = Circuit.Engine.dc_operating_point nl in
  let v name = Circuit.Engine.voltage sol (Circuit.Netlist.node nl name) in
  List.concat
    [
      List.map
        (fun i -> Printf.sprintf "v:tap%d" i, v (Printf.sprintf "tap%d" i))
        watched_taps;
      List.map
        (fun i -> Printf.sprintf "v:ftap%d" i, v (Printf.sprintf "ftap%d" i))
        [ 8; 16; 24 ];
      [
        "iin:vrh", Circuit.Engine.source_current sol "VRH";
        "iin:vrl", Circuit.Engine.source_current sol "VRL";
      ];
    ]

(* A tap error of half an LSB shifts comparator thresholds enough to lose
   codes; ten LSBs means a whole block of codes is gone. *)
let classify_voltage ~golden ~faulty =
  let worst =
    List.fold_left
      (fun acc (name, value) ->
        match Macro.Signature.current_kind_of_measurement name with
        | Some _ -> acc
        | None ->
          (match Macro.Macro_cell.get_opt golden name with
          | Some g -> Float.max acc (Float.abs (value -. g))
          | None -> acc))
      0.0 faulty
  in
  if worst > 10.0 *. Params.lsb then Macro.Signature.Output_stuck_at
  else if worst > 0.5 *. Params.lsb then Macro.Signature.Offset_too_large
  else Macro.Signature.No_voltage_deviation

(* Routing-track order mirroring the serpentine fold: neighbouring tap
   tracks are half a string apart electrically. *)
let folded_track_order =
  let fold prefix =
    List.concat_map
      (fun i -> [ Printf.sprintf "%s%d" prefix i; Printf.sprintf "%s%d" prefix (i + (taps / 2)) ])
      (List.init ((taps / 2) - 1) (fun i -> i + 1))
  in
  ("vrl" :: fold "tap") @ ("vrh" :: fold "ftap")

let macro () =
  {
    Macro.Macro_cell.name = "ladder";
    build = bench_netlist;
    cell =
      lazy
        (Layout.Synthesize.synthesize
           ~options:
             {
               Layout.Synthesize.default_options with
               track_order = folded_track_order;
             }
           (layout_netlist ()) ~name:"ladder");
    measure;
    classify_voltage;
    (* The full dual ladder has 256 taps: eight copies of this slice. *)
    instances = 8;
  }
