(** The clock-generator macro.

    Distributes the three non-overlapping comparator phases: each phase
    runs through a two-stage CMOS buffer (a small shaping inverter into a
    large driver, which is why clock lines can absorb high-ohmic defects
    without sticking — the paper's "Clock value" signature). The macro is
    digital: its quiescent supply current is the IDDQ observable, and
    shorts anywhere inside it raise IDDQ — the paper measured 93.8 % of
    its faults current detectable. *)

val layout_netlist : unit -> Circuit.Netlist.t
val bench_netlist : Process.Variation.sample -> Circuit.Netlist.t
val macro : unit -> Macro.Macro_cell.t
