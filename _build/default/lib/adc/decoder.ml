let thermometer_bits = 7
let binary_bits = 3
let expected_code k = k

let sized (s : Process.Variation.sample) polarity w =
  let base, shift =
    match (polarity : Circuit.Mos_model.polarity) with
    | Circuit.Mos_model.Nmos ->
      Circuit.Mos_model.default_nmos, s.Process.Variation.vth_n_shift
    | Circuit.Mos_model.Pmos ->
      Circuit.Mos_model.default_pmos, s.Process.Variation.vth_p_shift
  in
  {
    Circuit.Netlist.polarity;
    params =
      {
        base with
        Circuit.Mos_model.vth = base.Circuit.Mos_model.vth +. shift;
        kp = base.Circuit.Mos_model.kp *. s.Process.Variation.beta_factor;
      };
    w;
    l = 1e-6;
  }

(* Static CMOS gate builders. Series stacks get an internal node named
   after the gate; all gates share the digital supply node [vddd].

   Logic implemented (thermometer t1..t7, binary b2 b1 b0):
     b2 = t4
     b1 = t6 OR (t2 AND NOT t4)
     b0 = t7 OR (t5 AND NOT t6) OR (t3 AND NOT t4) OR (t1 AND NOT t2)   *)
let add_macro_devices (s : Process.Variation.sample) nl =
  let n name = Circuit.Netlist.node nl name in
  let gnd = Circuit.Netlist.ground in
  let vddd = n "vddd" in
  let pmos w = sized s Circuit.Mos_model.Pmos w in
  let nmos w = sized s Circuit.Mos_model.Nmos w in
  let mos name ~d ~g ~src ~b spec =
    Circuit.Netlist.add_mosfet nl ~name ~drain:d ~gate:g ~source:src ~bulk:b spec
  in
  let inv tag ~input ~output =
    mos ("MP" ^ tag) ~d:output ~g:input ~src:vddd ~b:vddd (pmos 8e-6);
    mos ("MN" ^ tag) ~d:output ~g:input ~src:gnd ~b:gnd (nmos 4e-6)
  in
  let nand2 tag ~a ~b ~output =
    mos ("MPA" ^ tag) ~d:output ~g:a ~src:vddd ~b:vddd (pmos 8e-6);
    mos ("MPB" ^ tag) ~d:output ~g:b ~src:vddd ~b:vddd (pmos 8e-6);
    let mid = n ("x" ^ tag) in
    mos ("MNA" ^ tag) ~d:output ~g:a ~src:mid ~b:gnd (nmos 8e-6);
    mos ("MNB" ^ tag) ~d:mid ~g:b ~src:gnd ~b:gnd (nmos 8e-6)
  in
  (* NOR with [inputs]: series PMOS stack, parallel NMOS. *)
  let nor tag ~inputs ~output =
    let rec pstack src = function
      | [] -> ()
      | [ last ] -> mos ("MP" ^ tag ^ last) ~d:output ~g:(n last) ~src ~b:vddd (pmos 16e-6)
      | input :: rest ->
        let mid = n ("y" ^ tag ^ input) in
        mos ("MP" ^ tag ^ input) ~d:mid ~g:(n input) ~src ~b:vddd (pmos 16e-6);
        pstack mid rest
    in
    pstack vddd inputs;
    List.iter
      (fun input ->
        mos ("MN" ^ tag ^ input) ~d:output ~g:(n input) ~src:gnd ~b:gnd (nmos 4e-6))
      inputs
  in
  (* Inverted thermometer bits used by the product terms. *)
  List.iter
    (fun i -> inv (Printf.sprintf "I%d" i)
        ~input:(n (Printf.sprintf "t%d" i))
        ~output:(n (Printf.sprintf "nt%d" i)))
    [ 2; 4; 6 ];
  (* b2 = buffer(t4). *)
  inv "B2A" ~input:(n "t4") ~output:(n "nb2");
  inv "B2B" ~input:(n "nb2") ~output:(n "b2");
  (* b1 = t6 OR (t2 AND NOT t4): and-term via NAND+INV, then NOR+INV. *)
  nand2 "A1" ~a:(n "t2") ~b:(n "nt4") ~output:(n "na1");
  inv "A1I" ~input:(n "na1") ~output:(n "a1");
  nor "B1N" ~inputs:[ "t6"; "a1" ] ~output:(n "nb1");
  inv "B1I" ~input:(n "nb1") ~output:(n "b1");
  (* b0 = t7 OR (t5·!t6) OR (t3·!t4) OR (t1·!t2). *)
  nand2 "A2" ~a:(n "t5") ~b:(n "nt6") ~output:(n "na2");
  inv "A2I" ~input:(n "na2") ~output:(n "a2");
  nand2 "A3" ~a:(n "t3") ~b:(n "nt4") ~output:(n "na3");
  inv "A3I" ~input:(n "na3") ~output:(n "a3");
  nand2 "A4" ~a:(n "t1") ~b:(n "nt2") ~output:(n "na4");
  inv "A4I" ~input:(n "na4") ~output:(n "a4");
  nor "B0N" ~inputs:[ "t7"; "a2"; "a3"; "a4" ] ~output:(n "nb0");
  inv "B0I" ~input:(n "nb0") ~output:(n "b0")

let layout_netlist () =
  let nl = Circuit.Netlist.create () in
  add_macro_devices (Process.Variation.nominal Process.Tech.cmos1um) nl;
  nl

let bench_netlist (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  add_macro_devices s nl;
  let n name = Circuit.Netlist.node nl name in
  Circuit.Netlist.add_vsource nl ~name:"VDDD" ~pos:(n "vddd")
    ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc s.Process.Variation.vdd);
  List.iter
    (fun i ->
      Circuit.Netlist.add_vsource nl
        ~name:(Printf.sprintf "VT%d" i)
        ~pos:(n (Printf.sprintf "t%d" i))
        ~neg:Circuit.Netlist.ground (Circuit.Waveform.dc 0.0))
    (List.init thermometer_bits (fun i -> i + 1));
  nl

(* Apply thermometer pattern [k] (k leading ones) and solve DC. *)
let solve_pattern nl k =
  let nl = Circuit.Netlist.copy nl in
  List.iter
    (fun i ->
      let name = Printf.sprintf "VT%d" i in
      let node = Circuit.Netlist.node nl (Printf.sprintf "t%d" i) in
      Circuit.Netlist.remove_device nl name;
      Circuit.Netlist.add_vsource nl ~name ~pos:node ~neg:Circuit.Netlist.ground
        (Circuit.Waveform.dc (if i <= k then 5.0 else 0.0)))
    (List.init thermometer_bits (fun i -> i + 1));
  nl, Circuit.Engine.dc_operating_point nl

let measure nl =
  List.concat_map
    (fun k ->
      let nl_k, sol = solve_pattern nl k in
      let v name = Circuit.Engine.voltage sol (Circuit.Netlist.node nl_k name) in
      [
        Printf.sprintf "v:b0:%d" k, v "b0";
        Printf.sprintf "v:b1:%d" k, v "b1";
        Printf.sprintf "v:b2:%d" k, v "b2";
        Printf.sprintf "iddq:p%d" k, Circuit.Engine.source_current sol "VDDD";
      ])
    (List.init (thermometer_bits + 1) Fun.id)

let classify_voltage ~golden ~faulty =
  let wrong_bit =
    List.exists
      (fun (name, value) ->
        match Macro.Signature.current_kind_of_measurement name with
        | Some _ -> false
        | None ->
          (match Macro.Macro_cell.get_opt golden name with
          | Some g -> (g > 2.5) <> (value > 2.5)
          | None -> false))
      faulty
  in
  if wrong_bit then Macro.Signature.Output_stuck_at
  else Macro.Signature.No_voltage_deviation

let macro () =
  {
    Macro.Macro_cell.name = "decoder";
    build = bench_netlist;
    cell =
      lazy (Layout.Synthesize.synthesize (layout_netlist ()) ~name:"decoder");
    measure;
    classify_voltage;
    (* The 255-input decoder of the full converter corresponds to roughly
       36 copies of this 7-input slice. *)
    instances = 36;
  }
