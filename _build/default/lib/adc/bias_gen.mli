(** The bias-generator macro.

    Produces the three bias lines the comparator array consumes: [biasn]
    (the amplifier tail bias), [biaslt] (the latch tail bias — nominally
    only 50 mV away from [biasn], which is what makes shorts between the
    two lines nearly undetectable), and [biasff] (the flipflop leak-device
    bias, just above threshold). Each current-setting branch is a resistor
    into a diode-connected NMOS; the divider branch derives [biasff].

    Observables: the bias output levels (voltage domain — a shifted bias
    throws offset or kills the comparator array) and the analog supply
    current of the generator ([ivdd:]). *)

val layout_netlist : unit -> Circuit.Netlist.t
val bench_netlist : Process.Variation.sample -> Circuit.Netlist.t
val macro : unit -> Macro.Macro_cell.t
