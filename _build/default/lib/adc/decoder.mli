(** The digital decoder macro (thermometer → binary).

    The full converter decodes 255 thermometer bits into 8 binary bits;
    the analysed macro is a 3-bit slice (7 thermometer inputs) in static
    CMOS, replicated [instances] times in the global scaling. Being fully
    static CMOS, its fault-free quiescent current is ≈ 0, so almost any
    bridging defect shows up in IDDQ; a wrong output bit means wrong or
    missing output codes (voltage detection). *)

val thermometer_bits : int

val binary_bits : int

(** [expected_code k] — binary value for [k] leading thermometer ones. *)
val expected_code : int -> int

val layout_netlist : unit -> Circuit.Netlist.t
val bench_netlist : Process.Variation.sample -> Circuit.Netlist.t
val macro : unit -> Macro.Macro_cell.t
