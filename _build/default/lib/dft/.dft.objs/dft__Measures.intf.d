lib/dft/measures.mli: Core Macro
