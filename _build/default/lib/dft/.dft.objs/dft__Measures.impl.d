lib/dft/measures.ml: Adc Core List
