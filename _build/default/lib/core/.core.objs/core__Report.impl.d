lib/core/report.ml: Fault Format Global List Macro Pipeline Printf Testgen Util
