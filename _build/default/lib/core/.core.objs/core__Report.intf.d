lib/core/report.mli: Global Pipeline Util
