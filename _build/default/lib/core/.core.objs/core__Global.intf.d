lib/core/global.mli: Fault Pipeline Testgen
