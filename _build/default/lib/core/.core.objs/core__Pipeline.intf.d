lib/core/pipeline.mli: Fault Macro Process
