lib/core/pipeline.ml: Defect Fault Lazy List Logs Macro Process Util
