lib/core/global.ml: Hashtbl List Macro Pipeline Printf Testgen
