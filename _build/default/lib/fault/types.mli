(** The circuit-level fault taxonomy of the methodology.

    These are the eight fault types of the paper's Table 1, each carried
    with enough structure to (a) collapse equivalent instances into
    classes and (b) inject the fault into a netlist for simulation.
    Nets are referred to by the node names of the macro netlist, which the
    layout synthesizer uses as wire labels. *)

(** Paper-facing category (the row of Table 1 a fault counts under). *)
type fault_type =
  | Short
  | Extra_contact
  | Gate_oxide_pinhole
  | Junction_pinhole
  | Thick_oxide_pinhole
  | Open
  | New_device
  | Shorted_device

val fault_type_name : fault_type -> string
val all_fault_types : fault_type list

(** Where a gate-oxide pinhole leaks to. The paper simulates all three
    and keeps the worst-case signature. *)
type pinhole_site = To_source | To_drain | To_channel

(** A circuit-level fault: a recipe for modifying the macro netlist. *)
type fault =
  | Bridge of {
      net_a : string;
      net_b : string;
      resistance : float;
      capacitance : float option;  (** for non-catastrophic 500 Ω ∥ 1 fF *)
      origin : fault_type;  (** [Short], [Extra_contact] or [Thick_oxide_pinhole] *)
    }
  | Bridge_cluster of {
      nets : string list;  (** three or more nets merged by one spot *)
      resistance : float;  (** per link between consecutive sorted nets *)
      capacitance : float option;
      origin : fault_type;
    }
  | Node_split of {
      net : string;
      far_pins : (string * string) list;
          (** [(device, terminal)] pins severed from the rest of the net,
              sorted; an empty list is a redundant defect *)
    }
  | Gate_pinhole of { device : string; site : pinhole_site; resistance : float }
  | Junction_leak of { net : string; bulk_net : string; resistance : float }
  | Device_ds_short of { device : string; resistance : float }
  | Parasitic_mos of { gate_net : string; net_a : string; net_b : string }

(** The Table-1 category a fault instance counts under. *)
val type_of_fault : fault -> fault_type

(** Catastrophic faults change DC connectivity; non-catastrophic
    (near-miss) faults are derived from them (§3.2). *)
type severity = Catastrophic | Non_catastrophic

(** A fault as produced by the defect simulator: the circuit-level fault
    plus its physical provenance. *)
type instance = {
  fault : fault;
  severity : severity;
  mechanism : Process.Defect_stats.mechanism;  (** physical origin *)
}

(** Canonical comparison key: instances with equal keys are circuit-level
    equivalent (same modification up to defect position). *)
val canonical_key : fault -> string

val pp_fault : Format.formatter -> fault -> unit
val pp_instance : Format.formatter -> instance -> unit
