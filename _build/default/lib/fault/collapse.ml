type fault_class = { representative : Types.instance; count : int }

let severity_tag = function
  | Types.Catastrophic -> "C"
  | Types.Non_catastrophic -> "N"

let instance_key (i : Types.instance) =
  severity_tag i.severity ^ "/" ^ Types.canonical_key i.fault

let collapse instances =
  let table = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (i : Types.instance) ->
      let key = instance_key i in
      match Hashtbl.find_opt table key with
      | None ->
        Hashtbl.replace table key (i, ref 1);
        order := key :: !order
      | Some (_, count) -> incr count)
    instances;
  List.rev_map
    (fun key ->
      let representative, count = Hashtbl.find table key in
      { representative; count = !count })
    !order
  |> List.sort (fun a b ->
         match compare b.count a.count with
         | 0 -> compare (instance_key a.representative) (instance_key b.representative)
         | c -> c)

let total_count classes = List.fold_left (fun acc c -> acc + c.count) 0 classes

let by_type classes =
  let faults_total = float_of_int (max 1 (total_count classes)) in
  let classes_total = float_of_int (max 1 (List.length classes)) in
  let tally =
    List.map
      (fun ft ->
        let members =
          List.filter
            (fun c -> Types.type_of_fault c.representative.Types.fault = ft)
            classes
        in
        let fault_share = float_of_int (total_count members) /. faults_total in
        let class_share = float_of_int (List.length members) /. classes_total in
        ft, fault_share, class_share)
      Types.all_fault_types
  in
  List.sort (fun (_, a, _) (_, b, _) -> compare b a) tally

let derive_non_catastrophic ~tech classes =
  let near_miss (c : fault_class) =
    match c.representative.Types.fault with
    | Types.Bridge ({ origin = Types.Short | Types.Extra_contact; _ } as b) ->
      Some
        {
          representative =
            {
              c.representative with
              Types.fault =
                Types.Bridge
                  {
                    b with
                    resistance = tech.Process.Tech.near_miss_resistance;
                    capacitance = Some tech.Process.Tech.near_miss_capacitance;
                  };
              severity = Types.Non_catastrophic;
            };
          count = c.count;
        }
    | Types.Bridge_cluster ({ origin = Types.Short | Types.Extra_contact; _ } as b) ->
      Some
        {
          representative =
            {
              c.representative with
              Types.fault =
                Types.Bridge_cluster
                  {
                    b with
                    resistance = tech.Process.Tech.near_miss_resistance;
                    capacitance = Some tech.Process.Tech.near_miss_capacitance;
                  };
              severity = Types.Non_catastrophic;
            };
          count = c.count;
        }
    | Types.Bridge _ | Types.Bridge_cluster _ | Types.Node_split _
    | Types.Gate_pinhole _ | Types.Junction_leak _ | Types.Device_ds_short _
    | Types.Parasitic_mos _ ->
      None
  in
  (* Re-collapse: distinct catastrophic resistances (metal vs poly bridge
     between the same nets) map onto the same 500 Ω near-miss class. *)
  let derived = List.filter_map near_miss classes in
  let expanded =
    List.concat_map
      (fun c -> List.init c.count (fun _ -> c.representative))
      derived
  in
  collapse expanded
