(** Fault injection: apply a circuit-level fault model to a netlist.

    Injection always works on a deep copy — the golden netlist is never
    mutated. Injected elements use a reserved ["FLT_"] name prefix so they
    can be recognized in debug dumps. *)

(** [inject netlist fault] returns a faulty copy of [netlist].

    - [Bridge]: a resistor (and optional parallel capacitor) between the
      two nets.
    - [Node_split]: a fresh node; the listed far pins are reconnected to
      it. Pins absent from the netlist are ignored (they may belong to
      test-bench elements not present in this view).
    - [Gate_pinhole]: a resistor from the device's gate to its source or
      drain; [To_channel] splits the leak into two 2R halves to source
      and drain.
    - [Junction_leak]: a resistor from the net to the bulk rail net.
    - [Device_ds_short]: a resistor across the device's drain and source.
    - [Parasitic_mos]: a minimum-size NMOS between the two nets, gated by
      the bridging poly's net.

    @raise Invalid_argument when a referenced net or device does not
    exist in the netlist (a pipeline bug, not a fault property). *)
val inject : Circuit.Netlist.t -> Types.fault -> Circuit.Netlist.t

(** [inject_instance netlist instance] injects [instance.fault]. *)
val inject_instance : Circuit.Netlist.t -> Types.instance -> Circuit.Netlist.t
