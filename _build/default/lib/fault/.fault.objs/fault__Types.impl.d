lib/fault/types.ml: Format List Printf Process String
