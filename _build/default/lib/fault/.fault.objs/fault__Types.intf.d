lib/fault/types.mli: Format Process
