lib/fault/collapse.ml: Hashtbl List Process Types
