lib/fault/inject.ml: Circuit List Printf Types
