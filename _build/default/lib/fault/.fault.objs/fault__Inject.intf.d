lib/fault/inject.mli: Circuit Types
