lib/fault/collapse.mli: Process Types
