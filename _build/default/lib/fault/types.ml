type fault_type =
  | Short
  | Extra_contact
  | Gate_oxide_pinhole
  | Junction_pinhole
  | Thick_oxide_pinhole
  | Open
  | New_device
  | Shorted_device

let fault_type_name = function
  | Short -> "short"
  | Extra_contact -> "extra contact"
  | Gate_oxide_pinhole -> "gate oxide pinhole"
  | Junction_pinhole -> "junction pinhole"
  | Thick_oxide_pinhole -> "thick oxide pinhole"
  | Open -> "open"
  | New_device -> "new device"
  | Shorted_device -> "shorted device"

let all_fault_types =
  [
    Short; Extra_contact; Gate_oxide_pinhole; Junction_pinhole;
    Thick_oxide_pinhole; Open; New_device; Shorted_device;
  ]

type pinhole_site = To_source | To_drain | To_channel

type fault =
  | Bridge of {
      net_a : string;
      net_b : string;
      resistance : float;
      capacitance : float option;
      origin : fault_type;
    }
  | Bridge_cluster of {
      nets : string list;
      resistance : float;
      capacitance : float option;
      origin : fault_type;
    }
  | Node_split of { net : string; far_pins : (string * string) list }
  | Gate_pinhole of { device : string; site : pinhole_site; resistance : float }
  | Junction_leak of { net : string; bulk_net : string; resistance : float }
  | Device_ds_short of { device : string; resistance : float }
  | Parasitic_mos of { gate_net : string; net_a : string; net_b : string }

let type_of_fault = function
  | Bridge { origin; _ } | Bridge_cluster { origin; _ } -> origin
  | Node_split _ -> Open
  | Gate_pinhole _ -> Gate_oxide_pinhole
  | Junction_leak _ -> Junction_pinhole
  | Device_ds_short _ -> Shorted_device
  | Parasitic_mos _ -> New_device

type severity = Catastrophic | Non_catastrophic

type instance = {
  fault : fault;
  severity : severity;
  mechanism : Process.Defect_stats.mechanism;
}

let site_name = function
  | To_source -> "src"
  | To_drain -> "drn"
  | To_channel -> "chan"

let canonical_key = function
  | Bridge { net_a; net_b; resistance; capacitance; origin } ->
    let a, b = if net_a <= net_b then net_a, net_b else net_b, net_a in
    Printf.sprintf "bridge:%s:%s:%s:%g:%b" (fault_type_name origin) a b
      resistance (capacitance <> None)
  | Bridge_cluster { nets; resistance; capacitance; origin } ->
    Printf.sprintf "cluster:%s:[%s]:%g:%b" (fault_type_name origin)
      (String.concat "," (List.sort compare nets))
      resistance (capacitance <> None)
  | Node_split { net; far_pins } ->
    let pins =
      List.sort compare far_pins
      |> List.map (fun (d, t) -> d ^ "." ^ t)
      |> String.concat ","
    in
    Printf.sprintf "open:%s:[%s]" net pins
  | Gate_pinhole { device; site; resistance } ->
    Printf.sprintf "gox:%s:%s:%g" device (site_name site) resistance
  | Junction_leak { net; bulk_net; resistance } ->
    Printf.sprintf "jcn:%s:%s:%g" net bulk_net resistance
  | Device_ds_short { device; resistance } ->
    Printf.sprintf "dshort:%s:%g" device resistance
  | Parasitic_mos { gate_net; net_a; net_b } ->
    let a, b = if net_a <= net_b then net_a, net_b else net_b, net_a in
    Printf.sprintf "newdev:%s:%s:%s" gate_net a b

let pp_fault ppf = function
  | Bridge { net_a; net_b; resistance; capacitance; origin } ->
    Format.fprintf ppf "%s %s-%s (%g ohm%s)" (fault_type_name origin) net_a
      net_b resistance
      (match capacitance with None -> "" | Some c -> Format.asprintf " || %gF" c)
  | Bridge_cluster { nets; resistance; origin; capacitance = _ } ->
    Format.fprintf ppf "%s cluster %s (%g ohm)" (fault_type_name origin)
      (String.concat "-" nets) resistance
  | Node_split { net; far_pins } ->
    Format.fprintf ppf "open on %s cutting %d pin(s)" net (List.length far_pins)
  | Gate_pinhole { device; site; resistance } ->
    Format.fprintf ppf "gate-oxide pinhole %s->%s (%g ohm)" device
      (site_name site) resistance
  | Junction_leak { net; bulk_net; resistance } ->
    Format.fprintf ppf "junction pinhole %s->%s (%g ohm)" net bulk_net resistance
  | Device_ds_short { device; resistance } ->
    Format.fprintf ppf "shorted device %s (%g ohm)" device resistance
  | Parasitic_mos { gate_net; net_a; net_b } ->
    Format.fprintf ppf "new device gate=%s %s-%s" gate_net net_a net_b

let pp_instance ppf i =
  Format.fprintf ppf "%a [%s, %a]" pp_fault i.fault
    (match i.severity with
    | Catastrophic -> "catastrophic"
    | Non_catastrophic -> "non-catastrophic")
    Process.Defect_stats.pp_mechanism i.mechanism
