(** Fault collapsing: equivalence classes of circuit-level faults.

    The defect simulator produces one fault per effective defect; many are
    circuit-level equivalent (e.g. every extra-metal spot bridging the same
    two nets). This step groups them by {!Types.canonical_key}; the class
    magnitude — the number of member instances — is the likelihood weight
    that the coverage figures are computed over (paper §2: "the magnitude
    of a fault class determines the likelihood of this particular type of
    fault"). *)

type fault_class = {
  representative : Types.instance;
  count : int;       (** class magnitude *)
}

(** [collapse instances] groups by canonical key, keeping the first
    instance of each class as representative; classes are returned sorted
    by decreasing magnitude (then key, for determinism). Severity is part
    of the key — catastrophic and derived non-catastrophic faults never
    merge. *)
val collapse : Types.instance list -> fault_class list

(** [total_count classes] is the number of underlying fault instances. *)
val total_count : fault_class list -> int

(** [by_type classes] tabulates, per Table-1 fault type, the share of
    faults (weighted by magnitude) and the share of classes. Returned as
    [(fault_type, fault_share, class_share)] with shares in \[0, 1\],
    sorted by decreasing fault share. *)
val by_type : fault_class list -> (Types.fault_type * float * float) list

(** [derive_non_catastrophic ~tech classes] evolves near-miss faults from
    the catastrophic shorts and extra contacts (paper §3.2): each such
    class yields a class of equal magnitude whose bridge is replaced by
    500 Ω ∥ 1 fF. Other fault types are already high-ohmic and yield
    nothing. *)
val derive_non_catastrophic :
  tech:Process.Tech.t -> fault_class list -> fault_class list
