(** Uniform-grid spatial index over rectangles.

    Defect sprinkling queries "which shapes does this disc touch?" millions
    of times; a bucket grid over the cell bounding box turns that from
    O(shapes) into O(1) for realistic layouts. Values of type ['a] are the
    caller's shape payloads (layer, net, device terminal…). *)

type 'a t

(** [create ~bounds ~cell_size] builds an empty index covering [bounds];
    [cell_size] is the bucket edge in nm and must be positive. *)
val create : bounds:Rect.t -> cell_size:int -> 'a t

(** [insert t rect payload] registers a rectangle. Rectangles may extend
    beyond [bounds]; they are clamped into the boundary buckets. *)
val insert : 'a t -> Rect.t -> 'a -> unit

(** [query_rect t rect f] applies [f] to every [(rect, payload)] whose
    rectangle overlaps-or-touches [rect], exactly once each. *)
val query_rect : 'a t -> Rect.t -> (Rect.t -> 'a -> unit) -> unit

(** [query_circle t circle f] applies [f] to every entry whose rectangle
    intersects the disc, exactly once each. *)
val query_circle : 'a t -> Circle.t -> (Rect.t -> 'a -> unit) -> unit

(** Total number of inserted rectangles. *)
val length : 'a t -> int
