type t = { cx : int; cy : int; radius : float }

let create ~cx ~cy ~radius =
  if radius <= 0. then invalid_arg "Circle.create: non-positive radius";
  { cx; cy; radius }

let diameter t = 2.0 *. t.radius

let distance_to_rect t (r : Rect.t) =
  let clamp v lo hi = max lo (min hi v) in
  let nx = clamp t.cx r.Rect.x0 r.Rect.x1 in
  let ny = clamp t.cy r.Rect.y0 r.Rect.y1 in
  Float.hypot (float_of_int (t.cx - nx)) (float_of_int (t.cy - ny))

let intersects_rect t r = distance_to_rect t r <= t.radius

let covers_rect_span t r ~axis =
  (* The disc severs the wire when it contains a full cross-section of the
     rectangle: both long edges must dip inside the disc at a common
     position, and the resulting chord interval must land on the
     rectangle. For axis [`X] the disc spans the rectangle's width; the
     cross-section runs along y. *)
  let spans ~lo ~hi ~centre ~other_lo ~other_hi ~other_centre =
    let d_lo = float_of_int (lo - centre) in
    let d_hi = float_of_int (hi - centre) in
    let reach = Float.max (Float.abs d_lo) (Float.abs d_hi) in
    reach < t.radius
    && begin
         let half_chord = sqrt ((t.radius *. t.radius) -. (reach *. reach)) in
         float_of_int other_lo < float_of_int other_centre +. half_chord
         && float_of_int other_hi > float_of_int other_centre -. half_chord
       end
  in
  match axis with
  | `X ->
    spans ~lo:r.Rect.x0 ~hi:r.Rect.x1 ~centre:t.cx ~other_lo:r.Rect.y0
      ~other_hi:r.Rect.y1 ~other_centre:t.cy
  | `Y ->
    spans ~lo:r.Rect.y0 ~hi:r.Rect.y1 ~centre:t.cy ~other_lo:r.Rect.x0
      ~other_hi:r.Rect.x1 ~other_centre:t.cx

let bridges t a b = intersects_rect t a && intersects_rect t b

let bounds t =
  let r = int_of_float (Float.ceil t.radius) in
  Rect.create ~x0:(t.cx - r) ~y0:(t.cy - r) ~x1:(t.cx + r) ~y1:(t.cy + r)

let pp ppf t = Format.fprintf ppf "circle(%d,%d r=%.1f)" t.cx t.cy t.radius
