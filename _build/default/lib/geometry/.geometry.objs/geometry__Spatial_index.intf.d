lib/geometry/spatial_index.mli: Circle Rect
