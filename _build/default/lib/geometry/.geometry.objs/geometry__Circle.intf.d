lib/geometry/circle.mli: Format Rect
