lib/geometry/spatial_index.ml: Array Circle List Rect
