lib/geometry/circle.ml: Float Format Rect
