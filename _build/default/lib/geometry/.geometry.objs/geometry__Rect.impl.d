lib/geometry/rect.ml: Float Format List
