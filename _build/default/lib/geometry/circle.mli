(** Circular spot defects.

    VLASIC-style defect simulators model a spot defect as a disc of extra
    or missing material. Centre coordinates are integer nanometres; the
    radius is kept as a float because defect sizes are drawn from a
    continuous 1/x³ distribution. *)

type t = { cx : int; cy : int; radius : float }

(** [create ~cx ~cy ~radius] with [radius > 0]. *)
val create : cx:int -> cy:int -> radius:float -> t

val diameter : t -> float

(** [intersects_rect c r] is [true] when the disc and the rectangle share
    any point (boundary contact counts: a defect grazing a wire already
    disturbs it). *)
val intersects_rect : t -> Rect.t -> bool

(** [covers_rect_span c r ~axis] tests whether the disc completely spans
    the rectangle across the given axis (i.e. a missing-material defect
    severs the wire). [`X] means the disc covers the full width. *)
val covers_rect_span : t -> Rect.t -> axis:[ `X | `Y ] -> bool

(** [bridges c a b] is [true] when the disc touches both rectangles, i.e.
    an extra-material spot electrically connects them. *)
val bridges : t -> Rect.t -> Rect.t -> bool

(** Bounding box of the disc (ceiling-expanded to the integer grid). *)
val bounds : t -> Rect.t

val pp : Format.formatter -> t -> unit
