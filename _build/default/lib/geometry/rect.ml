type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let create ~x0 ~y0 ~x1 ~y1 =
  let x0, x1 = if x0 <= x1 then x0, x1 else x1, x0 in
  let y0, y1 = if y0 <= y1 then y0, y1 else y1, y0 in
  if x0 = x1 || y0 = y1 then invalid_arg "Rect.create: zero area";
  { x0; y0; x1; y1 }

let of_size ~x ~y ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Rect.of_size: non-positive size";
  { x0 = x; y0 = y; x1 = x + w; y1 = y + h }

let width t = t.x1 - t.x0
let height t = t.y1 - t.y0
let area t = width t * height t
let center t = (t.x0 + t.x1) / 2, (t.y0 + t.y1) / 2

let contains t (x, y) = x >= t.x0 && x <= t.x1 && y >= t.y0 && y <= t.y1

let overlaps a b = a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

let touches_or_overlaps a b =
  a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let intersection a b =
  let x0 = max a.x0 b.x0 and x1 = min a.x1 b.x1 in
  let y0 = max a.y0 b.y0 and y1 = min a.y1 b.y1 in
  if x0 < x1 && y0 < y1 then Some { x0; y0; x1; y1 } else None

let inflate t margin =
  let r =
    { x0 = t.x0 - margin; y0 = t.y0 - margin; x1 = t.x1 + margin; y1 = t.y1 + margin }
  in
  if r.x0 >= r.x1 || r.y0 >= r.y1 then invalid_arg "Rect.inflate: collapsed";
  r

let translate t ~dx ~dy =
  { x0 = t.x0 + dx; y0 = t.y0 + dy; x1 = t.x1 + dx; y1 = t.y1 + dy }

let union_bounds a b =
  { x0 = min a.x0 b.x0; y0 = min a.y0 b.y0; x1 = max a.x1 b.x1; y1 = max a.y1 b.y1 }

let bounding_box = function
  | [] -> invalid_arg "Rect.bounding_box: empty list"
  | r :: rest -> List.fold_left union_bounds r rest

let separation a b =
  let gap_x = max 0 (max (a.x0 - b.x1) (b.x0 - a.x1)) in
  let gap_y = max 0 (max (a.y0 - b.y1) (b.y0 - a.y1)) in
  if gap_x = 0 then float_of_int gap_y
  else if gap_y = 0 then float_of_int gap_x
  else Float.hypot (float_of_int gap_x) (float_of_int gap_y)

let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1

let pp ppf t =
  Format.fprintf ppf "[%d,%d %dx%d]" t.x0 t.y0 (width t) (height t)
