type 'a entry = { id : int; rect : Rect.t; payload : 'a }

type 'a t = {
  bounds : Rect.t;
  cell_size : int;
  cols : int;
  rows : int;
  buckets : 'a entry list array;
  mutable count : int;
  mutable stamp : int;
  (* Deduplication scratch: seen.(id) = stamp means the entry was already
     visited during the current query. Grown on demand. *)
  mutable seen : int array;
}

let create ~bounds ~cell_size =
  if cell_size <= 0 then invalid_arg "Spatial_index.create: cell_size";
  let cols = max 1 ((Rect.width bounds + cell_size - 1) / cell_size) in
  let rows = max 1 ((Rect.height bounds + cell_size - 1) / cell_size) in
  {
    bounds;
    cell_size;
    cols;
    rows;
    buckets = Array.make (cols * rows) [];
    count = 0;
    stamp = 0;
    seen = Array.make 64 0;
  }

let length t = t.count

let clamp v lo hi = max lo (min hi v)

let bucket_range t (r : Rect.t) =
  let col_of x = clamp ((x - t.bounds.Rect.x0) / t.cell_size) 0 (t.cols - 1) in
  let row_of y = clamp ((y - t.bounds.Rect.y0) / t.cell_size) 0 (t.rows - 1) in
  col_of r.Rect.x0, row_of r.Rect.y0, col_of r.Rect.x1, row_of r.Rect.y1

let insert t rect payload =
  let id = t.count in
  t.count <- t.count + 1;
  if id >= Array.length t.seen then begin
    let bigger = Array.make (2 * Array.length t.seen) 0 in
    Array.blit t.seen 0 bigger 0 (Array.length t.seen);
    t.seen <- bigger
  end;
  let entry = { id; rect; payload } in
  let c0, r0, c1, r1 = bucket_range t rect in
  for row = r0 to r1 do
    for col = c0 to c1 do
      let idx = (row * t.cols) + col in
      t.buckets.(idx) <- entry :: t.buckets.(idx)
    done
  done

let visit t region keep f =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let c0, r0, c1, r1 = bucket_range t region in
  for row = r0 to r1 do
    for col = c0 to c1 do
      let bucket = t.buckets.((row * t.cols) + col) in
      List.iter
        (fun e ->
          if t.seen.(e.id) <> stamp then begin
            t.seen.(e.id) <- stamp;
            if keep e.rect then f e.rect e.payload
          end)
        bucket
    done
  done

let query_rect t rect f = visit t rect (Rect.touches_or_overlaps rect) f

let query_circle t circle f =
  visit t (Circle.bounds circle) (Circle.intersects_rect circle) f
