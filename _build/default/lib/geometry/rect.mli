(** Axis-aligned rectangles on the layout grid.

    Coordinates are integers in nanometres. A rectangle is half-open in
    spirit but stored by corners; [width]/[height] are [x1 - x0] and
    [y1 - y0]. Degenerate (zero-area) rectangles are rejected by
    [create]. *)

type t = private { x0 : int; y0 : int; x1 : int; y1 : int }

(** [create ~x0 ~y0 ~x1 ~y1] normalizes corner order.
    @raise Invalid_argument when the area would be zero. *)
val create : x0:int -> y0:int -> x1:int -> y1:int -> t

(** [of_size ~x ~y ~w ~h] is the rectangle with lower-left corner [(x, y)].
    [w] and [h] must be positive. *)
val of_size : x:int -> y:int -> w:int -> h:int -> t

val width : t -> int
val height : t -> int

(** Area in nm². *)
val area : t -> int

(** Centre point, rounded toward the lower-left on odd sizes. *)
val center : t -> int * int

(** [contains t (x, y)] tests closed containment of a point. *)
val contains : t -> int * int -> bool

(** [overlaps a b] is [true] when the rectangles share interior area
    (touching edges do not count). *)
val overlaps : t -> t -> bool

(** [touches_or_overlaps a b] also accepts shared edges/corners; used for
    connectivity, where abutting shapes on one layer connect. *)
val touches_or_overlaps : t -> t -> bool

(** [intersection a b] is the shared interior area, if any. *)
val intersection : t -> t -> t option

(** [inflate t margin] grows the rectangle by [margin] on all four sides
    ([margin] may be negative if the result keeps positive area). *)
val inflate : t -> int -> t

(** [translate t ~dx ~dy] shifts the rectangle. *)
val translate : t -> dx:int -> dy:int -> t

(** [union_bounds a b] is the smallest rectangle containing both. *)
val union_bounds : t -> t -> t

(** [bounding_box rects] covers all rectangles of a non-empty list. *)
val bounding_box : t list -> t

(** [separation a b] is the Euclidean distance between the closest points
    of the two rectangles, [0.] when they overlap or touch. Used to decide
    whether one circular spot defect can bridge both. *)
val separation : t -> t -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
