(** Descriptive statistics used to compile good-signature spaces.

    The paper accepts a circuit as fault-free when each observed quantity
    lies inside a [k]·σ window around its nominal value, compiled by
    Monte-Carlo over process/voltage/temperature variation (§2). This
    module provides the accumulators and windows for that procedure. *)

(** Welford online accumulator: numerically stable single-pass mean and
    variance. *)
type accumulator

val accumulator : unit -> accumulator

(** [add acc x] folds one observation into [acc]. *)
val add : accumulator -> float -> unit

(** Number of observations folded so far. *)
val count : accumulator -> int

(** Arithmetic mean. @raise Invalid_argument on an empty accumulator. *)
val mean : accumulator -> float

(** Unbiased sample variance (0 for fewer than two observations). *)
val variance : accumulator -> float

(** Sample standard deviation, [sqrt (variance acc)]. *)
val stddev : accumulator -> float

val min_value : accumulator -> float
val max_value : accumulator -> float

(** Closed pass window [\[centre - k·σ, centre + k·σ\]]. *)
type window = { low : float; high : float }

(** [sigma_window ?k acc] is the [k]-sigma acceptance window around the
    accumulated mean; [k] defaults to 3, the paper's setting. *)
val sigma_window : ?k:float -> accumulator -> window

(** [inside w x] tests membership of the closed window. *)
val inside : window -> float -> bool

(** [widen w ~by] grows the window by [by] on each side (used to model the
    extra spread a DfT redesign removes). *)
val widen : window -> by:float -> window

val pp_window : Format.formatter -> window -> unit

(** [mean_of xs] and [stddev_of xs] are one-shot conveniences over a list. *)
val mean_of : float list -> float

val stddev_of : float list -> float

(** [percentile p xs] is the [p]-th percentile (0-100, linear
    interpolation) of a non-empty list. *)
val percentile : float -> float list -> float
