(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the library (defect sprinkling,
    Monte-Carlo process spread, workload generation) draws from a [Prng.t]
    so that whole experiments are reproducible from a single integer seed.
    The generator is xoshiro256**, seeded through splitmix64 as its authors
    recommend; [split] derives an independent stream, which lets concurrent
    pipeline stages consume randomness without coupling their schedules. *)

type t

(** [create seed] builds a generator whose entire sequence is determined by
    [seed]. Equal seeds yield equal sequences. *)
val create : int -> t

(** [copy t] is a generator with the same state as [t]; advancing one does
    not affect the other. *)
val copy : t -> t

(** [split t] advances [t] and returns a statistically independent
    generator. Use one split per subsystem so adding draws to one subsystem
    does not perturb another. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t n] is uniform in \[0, n). @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [float t x] is uniform in \[0, x). [x] must be positive and finite. *)
val float : t -> float -> float

(** [uniform t ~lo ~hi] is uniform in \[lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to \[0, 1\]). *)
val bernoulli : t -> float -> bool
