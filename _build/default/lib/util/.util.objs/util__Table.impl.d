lib/util/table.ml: Format List Option Printf String
