lib/util/prng.mli:
