lib/util/distribution.mli: Prng
