lib/util/distribution.ml: Array Float List Prng
