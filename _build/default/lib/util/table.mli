(** Plain-text table rendering for experiment reports.

    The benchmark harness prints each reproduced paper table/figure as an
    aligned ASCII table; this module centralizes the layout logic. *)

type align = Left | Right

(** A table: a header row plus data rows. Rows shorter than the header are
    padded with empty cells. *)
type t

(** [create ~columns] starts a table; each column is [(title, alignment)]. *)
val create : columns:(string * align) list -> t

(** [add_row t cells] appends a data row. *)
val add_row : t -> string list -> unit

(** [add_separator t] appends a horizontal rule between data rows. *)
val add_separator : t -> unit

(** [render t] lays the table out with box-drawing rules. *)
val render : t -> string

val pp : Format.formatter -> t -> unit

(** [cell_float ?decimals v] formats a float cell ([decimals] defaults
    to 1). *)
val cell_float : ?decimals:int -> float -> string

(** [cell_pct ?decimals v] formats [v] (already in percent) with a [%]
    suffix. *)
val cell_pct : ?decimals:int -> float -> string
