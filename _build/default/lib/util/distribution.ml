let normal prng ~mean ~sigma =
  (* Box–Muller; one variate per call keeps the stream layout simple and
     reproducible across refactors. *)
  let u1 = 1.0 -. Prng.float prng 1.0 in
  let u2 = Prng.float prng 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let truncated_normal prng ~mean ~sigma ~lo ~hi =
  if lo >= hi then invalid_arg "Distribution.truncated_normal: empty range";
  let rec draw attempts =
    if attempts = 0 then Float.max lo (Float.min hi mean)
    else
      let x = normal prng ~mean ~sigma in
      if x >= lo && x <= hi then x else draw (attempts - 1)
  in
  draw 1000

let power_law_size prng ~x_min ~x_max =
  assert (x_min > 0. && x_max > x_min);
  (* Inverse-CDF sampling of f(x) ∝ x^-3 on [x_min, x_max]:
     F^-1(u) = (x_min^-2 - u (x_min^-2 - x_max^-2))^-1/2. *)
  let a = 1.0 /. (x_min *. x_min) in
  let b = 1.0 /. (x_max *. x_max) in
  let u = Prng.float prng 1.0 in
  1.0 /. sqrt (a -. (u *. (a -. b)))

type 'a discrete = { cumulative : float array; values : 'a array; total : float }

let discrete cases =
  let cases = List.filter (fun (w, _) -> w > 0.) cases in
  if cases = [] then invalid_arg "Distribution.discrete: no positive weights";
  List.iter
    (fun (w, _) ->
      if w < 0. || not (Float.is_finite w) then
        invalid_arg "Distribution.discrete: weights must be finite and >= 0")
    cases;
  let n = List.length cases in
  let cumulative = Array.make n 0. in
  let values =
    match cases with
    | (_, v) :: _ -> Array.make n v
    | [] -> assert false
  in
  let running = ref 0. in
  List.iteri
    (fun i (w, v) ->
      running := !running +. w;
      cumulative.(i) <- !running;
      values.(i) <- v)
    cases;
  { cumulative; values; total = !running }

let draw prng d =
  let u = Prng.float prng d.total in
  (* Binary search for the first cumulative weight exceeding u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if d.cumulative.(mid) > u then search lo mid else search (mid + 1) hi
  in
  d.values.(search 0 (Array.length d.cumulative - 1))

let cases d =
  Array.to_list
    (Array.mapi
       (fun i v ->
         let prev = if i = 0 then 0. else d.cumulative.(i - 1) in
         ((d.cumulative.(i) -. prev) /. d.total, v))
       d.values)

let shuffle prng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int prng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
