type accumulator = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let accumulator () =
  { n = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
  if x < acc.min_v then acc.min_v <- x;
  if x > acc.max_v then acc.max_v <- x

let count acc = acc.n

let mean acc =
  if acc.n = 0 then invalid_arg "Stats.mean: empty accumulator";
  acc.mean

let variance acc = if acc.n < 2 then 0. else acc.m2 /. float_of_int (acc.n - 1)
let stddev acc = sqrt (variance acc)
let min_value acc = acc.min_v
let max_value acc = acc.max_v

type window = { low : float; high : float }

let sigma_window ?(k = 3.0) acc =
  let m = mean acc and s = stddev acc in
  { low = m -. (k *. s); high = m +. (k *. s) }

let inside w x = x >= w.low && x <= w.high
let widen w ~by = { low = w.low -. by; high = w.high +. by }

let pp_window ppf w = Format.fprintf ppf "[%g, %g]" w.low w.high

let mean_of xs =
  let acc = accumulator () in
  List.iter (add acc) xs;
  mean acc

let stddev_of xs =
  let acc = accumulator () in
  List.iter (add acc) xs;
  stddev acc

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    assert (p >= 0. && p <= 100.);
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
