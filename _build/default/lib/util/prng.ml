type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state and to
   derive split streams, per the xoshiro authors' guidance. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let state = ref seed64 in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top bits keeps the distribution exact for
     every bound, not just powers of two. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw n64 in
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int n64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t x =
  assert (x > 0. && Float.is_finite x);
  (* 53 uniform mantissa bits in [0, 1). *)
  let mantissa = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float mantissa *. 0x1p-53 *. x

let uniform t ~lo ~hi =
  assert (hi > lo);
  lo +. float t (hi -. lo)

let bool t = Int64.compare (bits64 t) 0L < 0

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p
