type t = { parent : int array; rank : int array; mutable sets : int }

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let size t = Array.length t.parent

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri = rj then false
  else begin
    t.sets <- t.sets - 1;
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end;
    true
  end

let same t i j = find t i = find t j
let set_count t = t.sets

let groups t =
  let n = size t in
  let table = Hashtbl.create (max 16 n) in
  for i = n - 1 downto 0 do
    let root = find t i in
    let members = try Hashtbl.find table root with Not_found -> [] in
    Hashtbl.replace table root (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) table []
  |> List.sort (fun a b ->
         match a, b with
         | x :: _, y :: _ -> compare x y
         | _, _ -> assert false)
