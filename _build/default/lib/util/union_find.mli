(** Disjoint-set forest with path compression and union by rank.

    Used by layout connectivity extraction (merging shapes into nets) and
    by fault collapsing (merging equivalent circuit-level faults). *)

type t

(** [create n] builds [n] singleton sets labelled [0 .. n-1]. *)
val create : int -> t

(** Number of elements. *)
val size : t -> int

(** [find t i] is the canonical representative of [i]'s set. *)
val find : t -> int -> int

(** [union t i j] merges the sets of [i] and [j]; returns [true] when the
    sets were previously distinct. *)
val union : t -> int -> int -> bool

(** [same t i j] tests whether [i] and [j] are in one set. *)
val same : t -> int -> int -> bool

(** Number of disjoint sets currently represented. *)
val set_count : t -> int

(** [groups t] lists the sets, each as the list of its members in
    increasing order; groups are ordered by their smallest member. *)
val groups : t -> int list list
