(** Fault signatures at the macro level (paper Tables 2 and 3).

    A fault signature models the faulty behaviour at the edge of the macro
    cell in just enough detail to decide detectability of the simple test
    methods: five voltage categories and three observable DC currents. *)

(** Voltage-domain behaviour of the faulty macro. *)
type voltage =
  | Output_stuck_at
      (** the macro output no longer follows the input at all *)
  | Offset_too_large
      (** functional, but input-referred offset beyond the limit
          (8 mV — half an LSB of the case-study ADC) *)
  | Mixed
      (** erratic behaviour: decisions flip inconsistently *)
  | Clock_value
      (** the macro works, but a clock/bias distribution line it loads
          sits at a deviating level *)
  | No_voltage_deviation

val voltage_name : voltage -> string
val all_voltage : voltage list

(** The three DC currents observable at the circuit edge (§3.2). *)
type current_kind =
  | IVdd    (** analog supply current *)
  | IDDQ    (** quiescent supply of the digital part (clock generator) *)
  | Iinput  (** current drawn from / supplied to an input terminal *)

val current_name : current_kind -> string
val all_current : current_kind list

(** Complete macro-level signature of one fault class. *)
type t = {
  voltage : voltage;
  currents : current_kind list;  (** deviating beyond 3σ; [] = none *)
}

val fault_free : t

(** [current_kind_of_measurement name] sorts a measurement into a current
    class by its name prefix ([ivdd:], [iddq:], [iin:]); [None] for
    voltage-domain measurements. *)
val current_kind_of_measurement : string -> current_kind option

val pp : Format.formatter -> t -> unit
