type voltage =
  | Output_stuck_at
  | Offset_too_large
  | Mixed
  | Clock_value
  | No_voltage_deviation

let voltage_name = function
  | Output_stuck_at -> "Output Stuck At"
  | Offset_too_large -> "Offset (> 8mV)"
  | Mixed -> "Mixed"
  | Clock_value -> "Clock value"
  | No_voltage_deviation -> "No deviations"

let all_voltage =
  [ Output_stuck_at; Offset_too_large; Mixed; Clock_value; No_voltage_deviation ]

type current_kind = IVdd | IDDQ | Iinput

let current_name = function
  | IVdd -> "IVdd"
  | IDDQ -> "IDDQ"
  | Iinput -> "Iinput"

let all_current = [ IVdd; IDDQ; Iinput ]

type t = { voltage : voltage; currents : current_kind list }

let fault_free = { voltage = No_voltage_deviation; currents = [] }

let current_kind_of_measurement name =
  let prefixed p = String.length name >= String.length p
                   && String.sub name 0 (String.length p) = p in
  if prefixed "ivdd:" then Some IVdd
  else if prefixed "iddq:" then Some IDDQ
  else if prefixed "iin:" then Some Iinput
  else None

let pp ppf t =
  Format.fprintf ppf "%s / [%s]" (voltage_name t.voltage)
    (String.concat "," (List.map current_name t.currents))
