type vector = (string * float) list

type t = {
  name : string;
  build : Process.Variation.sample -> Circuit.Netlist.t;
  cell : Layout.Cell.t Lazy.t;
  measure : Circuit.Netlist.t -> vector;
  classify_voltage : golden:vector -> faulty:vector -> Signature.voltage;
  instances : int;
}

let get vector name = List.assoc name vector
let get_opt vector name = List.assoc_opt name vector

let area_weight t =
  float_of_int (Layout.Cell.area (Lazy.force t.cell)) *. float_of_int t.instances
