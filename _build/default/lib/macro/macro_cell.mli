(** The macro-cell abstraction: the unit of divide-and-conquer analysis.

    A macro bundles everything the per-macro defect-oriented test path of
    Fig. 1 needs: a variation-aware netlist builder (macro plus embedded
    test bench), a synthesized layout, a measurement procedure producing a
    named scalar vector, and a voltage-signature classifier comparing a
    faulty vector against the golden one.

    Measurement naming convention: current measurements carry an [ivdd:],
    [iddq:] or [iin:] prefix and are classified generically against the
    good-signature windows; anything else is voltage-domain and is
    interpreted by the macro's own [classify_voltage]. *)

type vector = (string * float) list

type t = {
  name : string;
  build : Process.Variation.sample -> Circuit.Netlist.t;
      (** netlist of the macro with its test bench, at a given process/
          supply/temperature point *)
  cell : Layout.Cell.t Lazy.t;
      (** synthesized layout (lazy: building it costs real time) *)
  measure : Circuit.Netlist.t -> vector;
      (** run the analyses and extract the signature measurements *)
  classify_voltage : golden:vector -> faulty:vector -> Signature.voltage;
      (** macro-specific interpretation of the voltage-domain
          measurements *)
  instances : int;
      (** number of copies of this macro in the full circuit *)
}

(** [get vector name] @raise Not_found when absent. *)
val get : vector -> string -> float

val get_opt : vector -> string -> float option

(** [area_weight macro] — layout area × instance count, the global-scaling
    weight (defect density is uniform per unit area). *)
val area_weight : t -> float
