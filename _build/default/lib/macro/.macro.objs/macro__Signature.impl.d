lib/macro/signature.ml: Format List String
