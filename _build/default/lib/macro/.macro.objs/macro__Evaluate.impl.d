lib/macro/evaluate.ml: Circuit Fault Good_space List Logs Macro_cell Process Signature
