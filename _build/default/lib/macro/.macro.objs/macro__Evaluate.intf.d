lib/macro/evaluate.mli: Fault Good_space Macro_cell Signature
