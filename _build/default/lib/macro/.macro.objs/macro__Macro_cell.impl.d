lib/macro/macro_cell.ml: Circuit Layout Lazy List Process Signature
