lib/macro/good_space.ml: Format List Macro_cell Option Process Signature Util
