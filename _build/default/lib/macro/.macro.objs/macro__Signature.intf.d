lib/macro/signature.mli: Format
