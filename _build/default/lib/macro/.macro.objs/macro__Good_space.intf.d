lib/macro/good_space.mli: Format Macro_cell Process Signature Util
