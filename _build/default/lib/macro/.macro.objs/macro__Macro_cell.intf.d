lib/macro/macro_cell.mli: Circuit Layout Lazy Process Signature
