type pulse_spec = {
  v0 : float;
  v1 : float;
  delay : float;
  rise : float;
  fall : float;
  width : float;
  period : float;
}

type shape =
  | Dc of float
  | Pwl of (float * float) array
  | Pulse of pulse_spec

type t = { shape : shape; gain : float }

let dc v = { shape = Dc v; gain = 1.0 }

let pwl points =
  (match points with
  | [] -> invalid_arg "Waveform.pwl: no points"
  | _ :: rest ->
    ignore
      (List.fold_left
         (fun prev (t, _) ->
           if t <= prev then invalid_arg "Waveform.pwl: times must increase";
           t)
         (fst (List.hd points))
         rest));
  { shape = Pwl (Array.of_list points); gain = 1.0 }

let pulse ~v0 ~v1 ~delay ~rise ~fall ~width ~period =
  if rise <= 0. || fall <= 0. || width < 0. then
    invalid_arg "Waveform.pulse: edges must be positive";
  if period < rise +. width +. fall then
    invalid_arg "Waveform.pulse: period shorter than pulse";
  { shape = Pulse { v0; v1; delay; rise; fall; width; period }; gain = 1.0 }

let triangle ~lo ~hi ~period =
  if period <= 0. then invalid_arg "Waveform.triangle: period";
  let half = period /. 2.0 in
  pulse ~v0:lo ~v1:hi ~delay:0.0 ~rise:half ~fall:half
    ~width:0.0 ~period

let scale k w = { w with gain = k *. w.gain }

let eval_pwl points t =
  let n = Array.length points in
  let t0, v0 = points.(0) in
  let tn, vn = points.(n - 1) in
  if t <= t0 then v0
  else if t >= tn then vn
  else begin
    (* Binary search for the segment containing t. *)
    let rec search lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if fst points.(mid) <= t then search mid hi else search lo mid
    in
    let i = search 0 (n - 1) in
    let ta, va = points.(i) and tb, vb = points.(i + 1) in
    va +. ((vb -. va) *. (t -. ta) /. (tb -. ta))
  end

let eval_pulse p t =
  if t < p.delay then p.v0
  else begin
    let phase = Float.rem (t -. p.delay) p.period in
    if phase < p.rise then p.v0 +. ((p.v1 -. p.v0) *. phase /. p.rise)
    else if phase < p.rise +. p.width then p.v1
    else if phase < p.rise +. p.width +. p.fall then
      p.v1 +. ((p.v0 -. p.v1) *. (phase -. p.rise -. p.width) /. p.fall)
    else p.v0
  end

let value w t =
  let raw =
    match w.shape with
    | Dc v -> v
    | Pwl points -> eval_pwl points t
    | Pulse p -> eval_pulse p t
  in
  w.gain *. raw

let dc_value w = value w 0.0

type view =
  | View_dc of float
  | View_pwl of (float * float) list
  | View_pulse of {
      v0 : float;
      v1 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }

let view w =
  let k = w.gain in
  match w.shape with
  | Dc v -> View_dc (k *. v)
  | Pwl points ->
    View_pwl (Array.to_list (Array.map (fun (t, v) -> t, k *. v) points))
  | Pulse p ->
    View_pulse
      {
        v0 = k *. p.v0;
        v1 = k *. p.v1;
        delay = p.delay;
        rise = p.rise;
        fall = p.fall;
        width = p.width;
        period = p.period;
      }
