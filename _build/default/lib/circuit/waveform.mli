(** Source waveforms: DC levels, piecewise-linear ramps and clock pulses.

    Times are seconds, values are volts (or amperes for current sources).
    Waveforms are pure functions of time so that transient stepping and
    repeated fault simulations never share mutable state. *)

type t

(** Constant level. *)
val dc : float -> t

(** [pwl points] interpolates linearly between [(time, value)] breakpoints
    and holds the edge values outside the covered span. Points must have
    strictly increasing times. @raise Invalid_argument otherwise. *)
val pwl : (float * float) list -> t

(** [pulse ~v0 ~v1 ~delay ~rise ~fall ~width ~period] is the SPICE-style
    periodic pulse: level [v0] until [delay], then a [rise] to [v1], held
    for [width], a [fall] back, repeating every [period]. *)
val pulse :
  v0:float ->
  v1:float ->
  delay:float ->
  rise:float ->
  fall:float ->
  width:float ->
  period:float ->
  t

(** [triangle ~lo ~hi ~period] ramps [lo]→[hi]→[lo] symmetrically — the
    paper's missing-code stimulus. *)
val triangle : lo:float -> hi:float -> period:float -> t

(** [scale k w] multiplies the waveform by [k] (used by source stepping). *)
val scale : float -> t -> t

(** [value w t] evaluates the waveform. *)
val value : t -> float -> float

(** [dc_value w] is the waveform at [t = 0] — the level DC analyses use. *)
val dc_value : t -> float

(** Structural view of a waveform, for serialization. The [gain] from
    {!scale} is folded into the values. *)
type view =
  | View_dc of float
  | View_pwl of (float * float) list
  | View_pulse of {
      v0 : float;
      v1 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }

val view : t -> view
