(** Circuit netlists: nodes, devices, and the mutation hooks fault
    injection needs.

    A netlist is a mutable builder. Nodes are interned by name; ground is
    the distinguished node ["0"]. Devices are named, and every terminal
    can be re-pointed at another node ([reconnect]) — this is how opens
    (node splits), shorts (bridging resistors) and device defects are
    injected without rebuilding the circuit. [copy] yields an independent
    deep copy so the golden netlist survives any number of injections. *)

type t

type node

(** The ground reference; implicitly present in every netlist. *)
val ground : node

val create : unit -> t

(** [node t name] interns a node (creating it on first use).
    @raise Invalid_argument on the reserved name ["0"]. *)
val node : t -> string -> node

(** [fresh_node t prefix] creates a new node with a unique generated name
    ([prefix], [prefix'], …). *)
val fresh_node : t -> string -> node

val find_node : t -> string -> node option
val node_name : t -> node -> string

(** All non-ground nodes, in creation order. *)
val nodes : t -> node list

(** Number of non-ground nodes. *)
val node_count : t -> int

val node_equal : node -> node -> bool

(** {1 Devices} *)

type mosfet_spec = {
  polarity : Mos_model.polarity;
  params : Mos_model.params;
  w : float;  (** channel width, m *)
  l : float;  (** channel length, m *)
}

(** Device names must be unique per netlist; all [add_*] functions raise
    [Invalid_argument] on a duplicate name or a non-positive element
    value. *)

val add_resistor : t -> name:string -> node -> node -> float -> unit

val add_capacitor : t -> name:string -> node -> node -> float -> unit

val add_vsource : t -> name:string -> pos:node -> neg:node -> Waveform.t -> unit

val add_isource : t -> name:string -> pos:node -> neg:node -> Waveform.t -> unit

val add_mosfet :
  t ->
  name:string ->
  drain:node -> gate:node -> source:node -> bulk:node ->
  mosfet_spec ->
  unit

(** {1 Inspection} *)

type pin = { device : string; role : string }
(** A terminal reference: MOSFET roles are ["d"], ["g"], ["s"], ["b"];
    two-terminal devices use ["+"] and ["-"]. *)

val device_names : t -> string list
val has_device : t -> string -> bool
val device_count : t -> int

(** [pins_of_node t n] lists every terminal currently tied to [n]. *)
val pins_of_node : t -> node -> pin list

(** [pin_node t pin] is the node a terminal is tied to.
    @raise Not_found for an unknown device or role. *)
val pin_node : t -> pin -> node

(** {1 Mutation (fault injection)} *)

(** [reconnect t pin n] moves one device terminal to node [n].
    @raise Not_found for an unknown device or role. *)
val reconnect : t -> pin -> node -> unit

(** [remove_device t name] deletes a device. @raise Not_found if absent. *)
val remove_device : t -> string -> unit

(** [copy t] is a deep, independent copy. *)
val copy : t -> t

(** {1 Engine access}

    The view the simulation engine compiles; [index_of_node] maps ground
    to [0] and other nodes to contiguous indices [1..node_count]. *)

type device_kind =
  | Resistor of float
  | Capacitor of float
  | Vsource of Waveform.t
  | Isource of Waveform.t
  | Mosfet of mosfet_spec

type device_view = {
  dev_name : string;
  kind : device_kind;
  pin_nodes : (string * node) list;  (** role → node, in stamping order *)
}

val devices : t -> device_view list

(** [index_of_node n] is stable across copies of a netlist: ground is [0],
    other nodes are [1..node_count] in creation order. *)
val index_of_node : node -> int

val pp : Format.formatter -> t -> unit
