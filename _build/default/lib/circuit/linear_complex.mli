(** Dense complex linear algebra for AC (small-signal) analysis.

    Same algorithm as {!Linear} — LU with partial pivoting — over
    [Complex.t]. Matrices are row-major [Complex.t array array]. *)

exception Singular

(** [solve a b] solves [a · x = b] in place and returns [b].
    @raise Singular when no usable pivot exists.
    @raise Invalid_argument on shape mismatch. *)
val solve : Complex.t array array -> Complex.t array -> Complex.t array

(** [solve_copy a b] leaves the inputs untouched. *)
val solve_copy : Complex.t array array -> Complex.t array -> Complex.t array

(** [matrix n] is a fresh n×n zero matrix. *)
val matrix : int -> Complex.t array array

(** [residual a x b] is the max modulus of [a·x - b]. *)
val residual : Complex.t array array -> Complex.t array -> Complex.t array -> float
