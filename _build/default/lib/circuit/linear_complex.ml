exception Singular

let matrix n = Array.make_matrix n n Complex.zero

let solve a b =
  let n = Array.length b in
  if Array.length a <> n || (n > 0 && Array.length a.(0) <> n) then
    invalid_arg "Linear_complex.solve: shape mismatch";
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    let pivot_mag = ref (Complex.norm a.(k).(k)) in
    for i = k + 1 to n - 1 do
      let mag = Complex.norm a.(i).(k) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if !pivot_mag < 1e-300 then raise Singular;
    if !pivot_row <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!pivot_row);
      a.(!pivot_row) <- tmp;
      let tb = b.(k) in
      b.(k) <- b.(!pivot_row);
      b.(!pivot_row) <- tb
    end;
    let akk = a.(k).(k) in
    for i = k + 1 to n - 1 do
      if a.(i).(k) <> Complex.zero then begin
        let factor = Complex.div a.(i).(k) akk in
        a.(i).(k) <- factor;
        for j = k + 1 to n - 1 do
          a.(i).(j) <- Complex.sub a.(i).(j) (Complex.mul factor a.(k).(j))
        done;
        b.(i) <- Complex.sub b.(i) (Complex.mul factor b.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let sum = ref b.(i) in
    for j = i + 1 to n - 1 do
      sum := Complex.sub !sum (Complex.mul a.(i).(j) b.(j))
    done;
    b.(i) <- Complex.div !sum a.(i).(i)
  done;
  b

let solve_copy a b =
  let a' = Array.map Array.copy a in
  let b' = Array.copy b in
  solve a' b'

let residual a x b =
  let n = Array.length b in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let sum = ref Complex.zero in
    for j = 0 to n - 1 do
      sum := Complex.add !sum (Complex.mul a.(i).(j) x.(j))
    done;
    worst := Float.max !worst (Complex.norm (Complex.sub !sum b.(i)))
  done;
  !worst
