lib/circuit/waveform.mli:
