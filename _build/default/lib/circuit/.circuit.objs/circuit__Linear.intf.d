lib/circuit/linear.mli:
