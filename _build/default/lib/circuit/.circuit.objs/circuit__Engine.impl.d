lib/circuit/engine.ml: Array Complex Float Hashtbl Linear Linear_complex List Mos_model Netlist Printf Waveform
