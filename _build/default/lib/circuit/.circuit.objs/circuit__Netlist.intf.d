lib/circuit/netlist.mli: Format Mos_model Waveform
