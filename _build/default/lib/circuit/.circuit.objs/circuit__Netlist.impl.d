lib/circuit/netlist.ml: Array Float Format Fun Hashtbl List Mos_model Printf String Waveform
