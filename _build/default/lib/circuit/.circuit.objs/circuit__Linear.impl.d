lib/circuit/linear.ml: Array Float
