lib/circuit/waveform.ml: Array Float List
