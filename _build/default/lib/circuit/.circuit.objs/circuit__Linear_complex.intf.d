lib/circuit/linear_complex.mli: Complex
