lib/circuit/linear_complex.ml: Array Complex Float
