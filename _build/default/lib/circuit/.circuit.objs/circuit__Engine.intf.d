lib/circuit/engine.mli: Complex Netlist
