lib/circuit/spice.ml: Buffer Char Format List Mos_model Netlist Printf Result String Waveform
