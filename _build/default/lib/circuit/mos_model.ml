type polarity = Nmos | Pmos

type params = { vth : float; kp : float; lambda : float }

let default_nmos = { vth = 0.80; kp = 90e-6; lambda = 0.03 }
let default_pmos = { vth = 0.90; kp = 30e-6; lambda = 0.03 }

type operating_point = { id : float; gm : float; gds : float }

(* Square-law NMOS with vds >= 0 assumed. *)
let nmos_forward params ~w ~l ~vgs ~vds =
  let beta = params.kp *. w /. l in
  let vgst = vgs -. params.vth in
  if vgst <= 0. then { id = 0.; gm = 0.; gds = 0. }
  else if vds < vgst then begin
    (* Triode. *)
    let clm = 1. +. (params.lambda *. vds) in
    let core = (vgst *. vds) -. (0.5 *. vds *. vds) in
    {
      id = beta *. core *. clm;
      gm = beta *. vds *. clm;
      gds = beta *. (((vgst -. vds) *. clm) +. (params.lambda *. core));
    }
  end
  else begin
    (* Saturation. *)
    let clm = 1. +. (params.lambda *. vds) in
    let core = 0.5 *. vgst *. vgst in
    {
      id = beta *. core *. clm;
      gm = beta *. vgst *. clm;
      gds = beta *. params.lambda *. core;
    }
  end

(* Handle drain/source symmetry: for vds < 0 the physical source and drain
   exchange roles. The returned derivatives are with respect to the
   original vgs/vds, obtained by the chain rule on
   Id(vgs, vds) = -Id'(vgs - vds, -vds). *)
let nmos_symmetric params ~w ~l ~vgs ~vds =
  if vds >= 0. then nmos_forward params ~w ~l ~vgs ~vds
  else begin
    let swapped = nmos_forward params ~w ~l ~vgs:(vgs -. vds) ~vds:(-.vds) in
    {
      id = -.swapped.id;
      gm = -.swapped.gm;
      gds = swapped.gm +. swapped.gds;
    }
  end

(* PMOS mirrors NMOS: Id_p(vgs, vds) = -Id_n(-vgs, -vds); both derivative
   signs cancel, so gm and gds carry over unchanged. *)
let evaluate ~polarity ~params ~w ~l ~vgs ~vds =
  match polarity with
  | Nmos -> nmos_symmetric params ~w ~l ~vgs ~vds
  | Pmos ->
    let mirrored = nmos_symmetric params ~w ~l ~vgs:(-.vgs) ~vds:(-.vds) in
    { id = -.mirrored.id; gm = mirrored.gm; gds = mirrored.gds }

type region = Cutoff | Triode | Saturation

let region ~polarity ~params ~vgs ~vds =
  let vgs, vds =
    match polarity with Nmos -> vgs, vds | Pmos -> -.vgs, -.vds
  in
  let vgs, vds = if vds >= 0. then vgs, vds else vgs -. vds, -.vds in
  let vgst = vgs -. params.vth in
  if vgst <= 0. then Cutoff else if vds < vgst then Triode else Saturation
