type node = int

let ground = 0

type mosfet_spec = {
  polarity : Mos_model.polarity;
  params : Mos_model.params;
  w : float;
  l : float;
}

type device_kind =
  | Resistor of float
  | Capacitor of float
  | Vsource of Waveform.t
  | Isource of Waveform.t
  | Mosfet of mosfet_spec

type device = {
  name : string;
  kind : device_kind;
  roles : string array;
  pins : node array;  (* mutable cells, parallel to roles *)
}

type t = {
  node_ids : (string, node) Hashtbl.t;
  mutable node_names : string list;  (* reverse creation order, excl. ground *)
  mutable next_node : int;
  device_table : (string, device) Hashtbl.t;
  mutable device_order : string list;  (* reverse insertion order *)
  mutable fresh_counter : int;
}

let create () =
  let node_ids = Hashtbl.create 64 in
  Hashtbl.replace node_ids "0" ground;
  {
    node_ids;
    node_names = [];
    next_node = 1;
    device_table = Hashtbl.create 64;
    device_order = [];
    fresh_counter = 0;
  }

let node t name =
  if name = "0" then invalid_arg "Netlist.node: \"0\" is reserved for ground";
  match Hashtbl.find_opt t.node_ids name with
  | Some id -> id
  | None ->
    let id = t.next_node in
    t.next_node <- id + 1;
    Hashtbl.replace t.node_ids name id;
    t.node_names <- name :: t.node_names;
    id

let fresh_node t prefix =
  let rec pick () =
    t.fresh_counter <- t.fresh_counter + 1;
    let name = Printf.sprintf "%s~%d" prefix t.fresh_counter in
    if Hashtbl.mem t.node_ids name then pick () else name
  in
  node t (pick ())

let find_node t name = Hashtbl.find_opt t.node_ids name

let node_name t id =
  if id = ground then "0"
  else begin
    let found = ref None in
    Hashtbl.iter (fun name i -> if i = id then found := Some name) t.node_ids;
    match !found with
    | Some name -> name
    | None -> invalid_arg "Netlist.node_name: unknown node"
  end

let nodes t = List.rev_map (Hashtbl.find t.node_ids) t.node_names
let node_count t = t.next_node - 1
let node_equal (a : node) b = a = b

let add_device t name kind roles pins =
  if Hashtbl.mem t.device_table name then
    invalid_arg (Printf.sprintf "Netlist: duplicate device %S" name);
  Hashtbl.replace t.device_table name { name; kind; roles; pins };
  t.device_order <- name :: t.device_order

let check_positive what v =
  if v <= 0. || not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Netlist: %s must be positive and finite" what)

let add_resistor t ~name n1 n2 r =
  check_positive "resistance" r;
  add_device t name (Resistor r) [| "+"; "-" |] [| n1; n2 |]

let add_capacitor t ~name n1 n2 c =
  check_positive "capacitance" c;
  add_device t name (Capacitor c) [| "+"; "-" |] [| n1; n2 |]

let add_vsource t ~name ~pos ~neg wave =
  add_device t name (Vsource wave) [| "+"; "-" |] [| pos; neg |]

let add_isource t ~name ~pos ~neg wave =
  add_device t name (Isource wave) [| "+"; "-" |] [| pos; neg |]

let add_mosfet t ~name ~drain ~gate ~source ~bulk spec =
  check_positive "width" spec.w;
  check_positive "length" spec.l;
  add_device t name (Mosfet spec) [| "d"; "g"; "s"; "b" |]
    [| drain; gate; source; bulk |]

type pin = { device : string; role : string }

let device_names t = List.rev t.device_order
let has_device t name = Hashtbl.mem t.device_table name
let device_count t = Hashtbl.length t.device_table

let pins_of_node t n =
  List.rev t.device_order
  |> List.concat_map (fun dev_name ->
         let d = Hashtbl.find t.device_table dev_name in
         Array.to_list
           (Array.mapi
              (fun i role ->
                if d.pins.(i) = n then Some { device = dev_name; role }
                else None)
              d.roles)
         |> List.filter_map Fun.id)

let role_index d role =
  let rec scan i =
    if i >= Array.length d.roles then raise Not_found
    else if d.roles.(i) = role then i
    else scan (i + 1)
  in
  scan 0

let pin_node t pin =
  match Hashtbl.find_opt t.device_table pin.device with
  | None -> raise Not_found
  | Some d -> d.pins.(role_index d pin.role)

let reconnect t pin n =
  match Hashtbl.find_opt t.device_table pin.device with
  | None -> raise Not_found
  | Some d -> d.pins.(role_index d pin.role) <- n

let remove_device t name =
  if not (Hashtbl.mem t.device_table name) then raise Not_found;
  Hashtbl.remove t.device_table name;
  t.device_order <- List.filter (fun n -> n <> name) t.device_order

let copy t =
  let device_table = Hashtbl.create (Hashtbl.length t.device_table) in
  Hashtbl.iter
    (fun name d ->
      Hashtbl.replace device_table name
        { d with pins = Array.copy d.pins; roles = Array.copy d.roles })
    t.device_table;
  {
    node_ids = Hashtbl.copy t.node_ids;
    node_names = t.node_names;
    next_node = t.next_node;
    device_table;
    device_order = t.device_order;
    fresh_counter = t.fresh_counter;
  }

type device_view = {
  dev_name : string;
  kind : device_kind;
  pin_nodes : (string * node) list;
}

let devices t =
  List.rev t.device_order
  |> List.map (fun name ->
         let d = Hashtbl.find t.device_table name in
         {
           dev_name = name;
           kind = d.kind;
           pin_nodes =
             Array.to_list (Array.mapi (fun i role -> role, d.pins.(i)) d.roles);
         })

let index_of_node n = n

let pp ppf t =
  Format.fprintf ppf "netlist: %d nodes, %d devices@." (node_count t)
    (device_count t);
  List.iter
    (fun dv ->
      let pins =
        String.concat " "
          (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) dv.pin_nodes)
      in
      let kind =
        match dv.kind with
        | Resistor r -> Printf.sprintf "R %g" r
        | Capacitor c -> Printf.sprintf "C %g" c
        | Vsource _ -> "V"
        | Isource _ -> "I"
        | Mosfet spec ->
          (match spec.polarity with Mos_model.Nmos -> "NMOS" | Mos_model.Pmos -> "PMOS")
      in
      Format.fprintf ppf "  %-12s %-6s %s@." dv.dev_name kind pins)
    (devices t)
