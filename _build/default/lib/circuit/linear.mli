(** Dense linear algebra for MNA systems.

    Circuits in this library are macro cells of a few dozen nodes, so a
    dense LU with partial pivoting beats any sparse machinery both in
    speed and in simplicity. Matrices are row-major [float array array]. *)

exception Singular

(** [solve a b] solves [a · x = b], overwriting both [a] (with its LU
    factors) and [b] (with the solution), and returns [b].
    @raise Singular when pivoting finds no usable pivot.
    @raise Invalid_argument on shape mismatch. *)
val solve : float array array -> float array -> float array

(** [solve_copy a b] is [solve] on copies, leaving inputs untouched. *)
val solve_copy : float array array -> float array -> float array

(** [matrix n] is a fresh n×n zero matrix. *)
val matrix : int -> float array array

(** [residual a x b] is the max-norm of [a·x - b]; for tests. *)
val residual : float array array -> float array -> float array -> float
