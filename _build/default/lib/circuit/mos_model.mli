(** Level-1 (Shichman–Hodges) MOSFET model.

    Sufficient for the qualitative fault signatures the methodology
    classifies (stuck-at, offset, current deviation): square-law drain
    current with channel-length modulation, symmetric in drain/source.
    Parameters are per-polarity; variation (Vth shift, β factor) is
    applied when a netlist is instantiated. *)

type polarity = Nmos | Pmos

type params = {
  vth : float;      (** threshold voltage, V (positive for both polarities) *)
  kp : float;       (** process transconductance µCox, A/V² *)
  lambda : float;   (** channel-length modulation, 1/V *)
}

(** Default 1 µm process devices: NMOS Vth 0.8 V, KP 90 µA/V²;
    PMOS Vth 0.9 V, KP 30 µA/V²; λ = 0.03 V⁻¹. *)
val default_nmos : params

val default_pmos : params

(** Linearized operating point of a device for MNA stamping. All values
    use drain-to-source conventions of the *reported* terminal order (the
    model handles internal drain/source swap for negative Vds). *)
type operating_point = {
  id : float;   (** drain current, A, positive into the drain for NMOS *)
  gm : float;   (** ∂Id/∂Vgs *)
  gds : float;  (** ∂Id/∂Vds *)
}

(** [evaluate ~polarity ~params ~w ~l ~vgs ~vds] computes the DC current
    and small-signal derivatives. [w]/[l] in metres. For PMOS, pass the
    actual (negative-leaning) [vgs]/[vds]; the model mirrors internally
    and returns [id] with the convention that a conducting PMOS has
    negative drain current. *)
val evaluate :
  polarity:polarity -> params:params -> w:float -> l:float ->
  vgs:float -> vds:float -> operating_point

(** Region report for tests and debugging. *)
type region = Cutoff | Triode | Saturation

val region :
  polarity:polarity -> params:params -> vgs:float -> vds:float -> region
