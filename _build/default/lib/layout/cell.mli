(** Layout cells: labelled rectangles on process layers.

    Every shape carries an {e owner} describing its electrical role. Nets
    are not stored — they are recomputed by {!Extract} from geometry — but
    wires are labelled with the net they are supposed to implement, and
    device shapes with the device terminal they realize, so extraction can
    be checked against the source netlist (LVS-lite) and so the defect
    analyzer can translate a geometric event into a circuit-level fault. *)

type owner =
  | Wire of string
      (** interconnect implementing the named net *)
  | Device_terminal of { device : string; terminal : string }
      (** conducting shape bonded to a device pin (MOS s/d diffusion,
          resistor end, capacitor plate) *)
  | Gate of { device : string }
      (** poly gate strip over the channel *)
  | Channel of { device : string }
      (** active area under the gate; not a static conductor *)
  | Cut of { connects_up : bool }
      (** contact or via; [connects_up] is informational *)

type shape = {
  id : int;
  layer : Process.Layer.t;
  rect : Geometry.Rect.t;
  owner : owner;
}

type t

(** [builder name] starts an empty cell. *)
type builder

val builder : string -> builder

(** [add_shape b ~layer ~rect ~owner] registers a shape, returning its id. *)
val add_shape :
  builder -> layer:Process.Layer.t -> rect:Geometry.Rect.t -> owner:owner -> int

(** [finish b] freezes the builder. @raise Invalid_argument on an empty
    cell. *)
val finish : builder -> t

val name : t -> string
val shapes : t -> shape array
val shape : t -> int -> shape
val bounds : t -> Geometry.Rect.t

(** Total drawn area (nm²) on one layer; the global scaling step weighs
    macros by area. *)
val layer_area : t -> Process.Layer.t -> int

(** Total cell area = bounding box area. *)
val area : t -> int

(** [index t] is a spatial index over all shapes (payload: shape id),
    built lazily and cached. *)
val index : t -> int Geometry.Spatial_index.t

val pp_summary : Format.formatter -> t -> unit
