type violation = {
  rule : string;
  layer : Process.Layer.t;
  shape_a : int;
  shape_b : int option;
  detail : string;
}

let cut_enclosure = 100

let checked_layer layer =
  Process.Layer.is_conducting layer || Process.Layer.is_cut layer

let width_violations tech cell =
  Array.to_list (Cell.shapes cell)
  |> List.filter_map (fun (s : Cell.shape) ->
         if not (checked_layer s.layer) then None
         else begin
           let w = min (Geometry.Rect.width s.rect) (Geometry.Rect.height s.rect) in
           let min_w = tech.Process.Tech.min_width s.layer in
           if w < min_w then
             Some
               {
                 rule = "width";
                 layer = s.layer;
                 shape_a = s.id;
                 shape_b = None;
                 detail = Printf.sprintf "%d nm < %d nm minimum" w min_w;
               }
           else None
         end)

let spacing_violations tech cell extraction =
  let index = Cell.index cell in
  (* Device bodies (MOS channels, resistor mid-sections) electrically
     separate their terminals but physically fill the gap between them:
     two shapes joined by a common channel shape are one piece of
     material, not a spacing violation. *)
  let channels =
    Array.to_list (Cell.shapes cell)
    |> List.filter (fun (s : Cell.shape) ->
           match s.owner with
           | Cell.Channel _ -> true
           | Cell.Wire _ | Cell.Device_terminal _ | Cell.Gate _ | Cell.Cut _ ->
             false)
  in
  let bridged (a : Cell.shape) (b : Cell.shape) =
    List.exists
      (fun (chan : Cell.shape) ->
        Process.Layer.equal chan.layer a.layer
        && Geometry.Rect.touches_or_overlaps chan.rect a.rect
        && Geometry.Rect.touches_or_overlaps chan.rect b.rect)
      channels
  in
  let out = ref [] in
  Array.iter
    (fun (s : Cell.shape) ->
      if checked_layer s.layer then begin
        let spacing = tech.Process.Tech.min_spacing s.layer in
        let probe = Geometry.Rect.inflate s.rect spacing in
        Geometry.Spatial_index.query_rect index probe (fun _ other_id ->
            (* Each unordered pair once. *)
            if other_id > s.id then begin
              let other = Cell.shape cell other_id in
              if Process.Layer.equal other.layer s.layer then begin
                let gap = Geometry.Rect.separation s.rect other.rect in
                let same_net =
                  match
                    ( Extract.net_of_shape extraction s.id,
                      Extract.net_of_shape extraction other_id )
                  with
                  | Some a, Some b -> a = b
                  | _, _ -> true
                    (* channels/removed shapes: same-device material *)
                in
                if
                  (not same_net)
                  && gap > 0.0
                  && gap < float_of_int spacing
                  && not (bridged s other)
                then
                  out :=
                    {
                      rule = "spacing";
                      layer = s.layer;
                      shape_a = s.id;
                      shape_b = Some other_id;
                      detail =
                        Printf.sprintf "%.0f nm < %d nm minimum" gap spacing;
                    }
                    :: !out
              end
            end)
      end)
    (Cell.shapes cell);
  !out

(* A cut must be enclosed by material on every layer it connects. The
   contact's lower layer may be either poly or active — one suffices. *)
let enclosure_violations cell =
  let index = Cell.index cell in
  let covered (cut : Cell.shape) layers =
    (* The enclosing material may be a union of abutting shapes (e.g. a
       segmented routing track); sample the nine characteristic points of
       the required region against the union. *)
    let needed = Geometry.Rect.inflate cut.rect cut_enclosure in
    let covering = ref [] in
    Geometry.Spatial_index.query_rect index needed (fun rect other_id ->
        let other = Cell.shape cell other_id in
        if other_id <> cut.id && List.exists (Process.Layer.equal other.layer) layers
        then covering := rect :: !covering);
    let xs = [ needed.Geometry.Rect.x0; (needed.Geometry.Rect.x0 + needed.Geometry.Rect.x1) / 2; needed.Geometry.Rect.x1 ] in
    let ys = [ needed.Geometry.Rect.y0; (needed.Geometry.Rect.y0 + needed.Geometry.Rect.y1) / 2; needed.Geometry.Rect.y1 ] in
    List.for_all
      (fun x ->
        List.for_all
          (fun y ->
            List.exists (fun r -> Geometry.Rect.contains r (x, y)) !covering)
          ys)
      xs
  in
  Array.to_list (Cell.shapes cell)
  |> List.filter_map (fun (s : Cell.shape) ->
         if not (Process.Layer.is_cut s.layer) then None
         else begin
           let requirements =
             match s.layer with
             | Process.Layer.Contact ->
               [ [ Process.Layer.Poly; Process.Layer.Active ];
                 [ Process.Layer.Metal1 ] ]
             | Process.Layer.Via ->
               [ [ Process.Layer.Metal1 ]; [ Process.Layer.Metal2 ] ]
             | Process.Layer.Nwell | Process.Layer.Active | Process.Layer.Poly
             | Process.Layer.Metal1 | Process.Layer.Metal2 -> []
           in
           let missing =
             List.filter (fun layers -> not (covered s layers)) requirements
           in
           match missing with
           | [] -> None
           | layers :: _ ->
             Some
               {
                 rule = "enclosure";
                 layer = s.layer;
                 shape_a = s.id;
                 shape_b = None;
                 detail =
                   Printf.sprintf "cut not enclosed by %s (+%d nm)"
                     (String.concat "/" (List.map Process.Layer.name layers))
                     cut_enclosure;
               }
         end)

let check ?(tech = Process.Tech.cmos1um) cell =
  let extraction = Extract.extract cell in
  width_violations tech cell
  @ spacing_violations tech cell extraction
  @ enclosure_violations cell

let summary violations =
  let table = Hashtbl.create 4 in
  List.iter
    (fun v ->
      let count = try Hashtbl.find table v.rule with Not_found -> 0 in
      Hashtbl.replace table v.rule (count + 1))
    violations;
  Hashtbl.fold (fun rule count acc -> (rule, count) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp_violation ppf v =
  Format.fprintf ppf "%s on %a: shape %d%s — %s" v.rule Process.Layer.pp
    v.layer v.shape_a
    (match v.shape_b with
    | Some other -> Printf.sprintf " vs %d" other
    | None -> "")
    v.detail
