(** Netlist-driven layout synthesis.

    Substitutes for the proprietary cell layouts of the case study (see
    DESIGN.md §2): devices are placed in a row — MOS transistors as
    active/channel/gate stacks with contacted source/drain, resistors as
    poly bars, capacitors as poly/metal1 plate pairs — and every net is
    routed as a full-width horizontal metal1 track reached through
    metal2 risers, in the style of early-90s full-custom channel routing.

    The generated layout is electrically faithful: {!Extract.check_against}
    passes against the source netlist, and the metallization dominates the
    critical area, reproducing the paper's observation that >95 % of spot
    defects become shorts.

    The [track_order] option controls which nets occupy adjacent routing
    tracks. Long parallel neighbouring tracks are exactly where
    extra-material defects cause shorts, so this knob implements the
    paper's DfT measure of separating bias lines that carry nearly
    identical signals. *)

type options = {
  tech : Process.Tech.t;
  track_order : string list;
      (** net names to place on the first routing tracks, in this order;
          remaining nets follow sorted by name *)
}

val default_options : options

(** [synthesize ?options netlist ~name] draws the cell. Voltage and
    current sources are test-bench elements and get no shapes; every
    resistor, capacitor and MOSFET does. MOS bulk pins are not drawn
    (they tie to the substrate/well).
    @raise Invalid_argument if the netlist has no drawable device. *)
val synthesize : ?options:options -> Circuit.Netlist.t -> name:string -> Cell.t
