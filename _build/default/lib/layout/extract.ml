type net = int

type t = {
  cell : Cell.t;
  group_of_shape : int option array;  (* canonical group id per shape *)
  members : (net, int list) Hashtbl.t;
  names : (net, string) Hashtbl.t;
  name_conflicts : (net * string list) list;
}

(* A shape participates in extraction when it is a static conductor or a
   cut. Channels and wells do not. *)
let participates (s : Cell.shape) =
  match s.owner with
  | Cell.Channel _ -> false
  | Cell.Wire _ | Cell.Device_terminal _ | Cell.Gate _ | Cell.Cut _ ->
    Process.Layer.is_conducting s.layer || Process.Layer.is_cut s.layer

(* Layers a cut shape bonds together. Contacts land on poly or active and
   rise to metal1; vias join the metals. *)
let cut_targets layer =
  match (layer : Process.Layer.t) with
  | Process.Layer.Contact -> [ Process.Layer.Poly; Process.Layer.Active; Process.Layer.Metal1 ]
  | Process.Layer.Via -> [ Process.Layer.Metal1; Process.Layer.Metal2 ]
  | Process.Layer.Nwell | Process.Layer.Active | Process.Layer.Poly
  | Process.Layer.Metal1 | Process.Layer.Metal2 -> []

let build cell ~removed =
  let shapes = Cell.shapes cell in
  let n = Array.length shapes in
  let removed_mask = Array.make n false in
  List.iter (fun id -> if id >= 0 && id < n then removed_mask.(id) <- true) removed;
  let uf = Util.Union_find.create n in
  let idx = Cell.index cell in
  let active s = (not removed_mask.(s.Cell.id)) && participates s in
  Array.iter
    (fun (s : Cell.shape) ->
      if active s then begin
        let connect_layers =
          if Process.Layer.is_cut s.layer then cut_targets s.layer
          else [ s.layer ]
        in
        Geometry.Spatial_index.query_rect idx s.rect (fun _ other_id ->
            if other_id <> s.id then begin
              let other = Cell.shape cell other_id in
              if
                active other
                && (not (Process.Layer.is_cut other.layer))
                && List.exists (Process.Layer.equal other.layer) connect_layers
                && Geometry.Rect.touches_or_overlaps s.rect other.rect
              then ignore (Util.Union_find.union uf s.id other.id)
            end)
      end)
    shapes;
  let group_of_shape = Array.make n None in
  let members = Hashtbl.create 64 in
  Array.iter
    (fun (s : Cell.shape) ->
      if active s then begin
        let g = Util.Union_find.find uf s.id in
        group_of_shape.(s.id) <- Some g;
        let existing = try Hashtbl.find members g with Not_found -> [] in
        Hashtbl.replace members g (s.id :: existing)
      end)
    shapes;
  (* Net names from wire labels; detect conflicts. *)
  let names = Hashtbl.create 16 in
  let conflicts = Hashtbl.create 4 in
  Array.iter
    (fun (s : Cell.shape) ->
      match s.owner, group_of_shape.(s.id) with
      | Cell.Wire net_name, Some g ->
        (match Hashtbl.find_opt names g with
        | None -> Hashtbl.replace names g net_name
        | Some existing when existing = net_name -> ()
        | Some existing ->
          let clash = try Hashtbl.find conflicts g with Not_found -> [ existing ] in
          if not (List.mem net_name clash) then
            Hashtbl.replace conflicts g (net_name :: clash);
          (* Keep the lexicographically first name deterministically. *)
          if net_name < existing then Hashtbl.replace names g net_name)
      | (Cell.Wire _ | Cell.Device_terminal _ | Cell.Gate _ | Cell.Channel _ | Cell.Cut _), _ -> ())
    shapes;
  let name_conflicts =
    Hashtbl.fold (fun g clash acc -> (g, List.sort compare clash) :: acc) conflicts []
  in
  { cell; group_of_shape; members; names; name_conflicts }

let extract cell = build cell ~removed:[]
let extract_without cell ~removed = build cell ~removed

let net_of_shape t id =
  if id < 0 || id >= Array.length t.group_of_shape then None
  else t.group_of_shape.(id)

let nets t = Hashtbl.fold (fun g _ acc -> g :: acc) t.members [] |> List.sort compare

let shapes_of_net t net =
  try List.sort compare (Hashtbl.find t.members net) with Not_found -> []

let net_name t net = Hashtbl.find_opt t.names net

let net_of_name t name =
  Hashtbl.fold
    (fun g n acc -> if n = name && acc = None then Some g else acc)
    t.names None

let terminals_of_net t net =
  shapes_of_net t net
  |> List.filter_map (fun id ->
         match (Cell.shape t.cell id).owner with
         | Cell.Device_terminal { device; terminal } -> Some (device, terminal)
         | Cell.Gate { device } -> Some (device, "g")
         | Cell.Wire _ | Cell.Channel _ | Cell.Cut _ -> None)
  |> List.sort_uniq compare

let check_against t netlist =
  let violations = ref [] in
  let report fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun (g, clash) ->
      report "net %d shorts distinct labels: %s" g (String.concat ", " clash))
    t.name_conflicts;
  (* Every device pin with a shape must land on the net the netlist names. *)
  Array.iter
    (fun (s : Cell.shape) ->
      let pin =
        match s.owner with
        | Cell.Device_terminal { device; terminal } -> Some (device, terminal)
        | Cell.Gate { device } -> Some (device, "g")
        | Cell.Wire _ | Cell.Channel _ | Cell.Cut _ -> None
      in
      match pin with
      | None -> ()
      | Some (device, terminal) ->
        (match net_of_shape t s.id with
        | None -> report "pin %s.%s has a non-conducting shape" device terminal
        | Some g ->
          let expected =
            try
              let node =
                Circuit.Netlist.pin_node netlist
                  { Circuit.Netlist.device; role = terminal }
              in
              Some (Circuit.Netlist.node_name netlist node)
            with Not_found -> None
          in
          (match expected, net_name t g with
          | None, _ -> report "pin %s.%s not present in netlist" device terminal
          | Some want, Some got when want <> got ->
            report "pin %s.%s extracted on net %S, netlist says %S" device
              terminal got want
          | Some want, None ->
            (* Unlabelled net: acceptable only for internal nets; a named
               node in the netlist must have a labelled wire. *)
            if String.length want > 0 && want.[0] <> '_' then
              report "pin %s.%s on unlabelled net, netlist says %S" device
                terminal want
          | Some _, Some _ -> ())))
    (Cell.shapes t.cell);
  (* All pins of one netlist node must extract into a single group — two
     disjoint groups sharing a label would otherwise pass silently. *)
  let group_of_node = Hashtbl.create 16 in
  Array.iter
    (fun (s : Cell.shape) ->
      let pin =
        match s.owner with
        | Cell.Device_terminal { device; terminal } -> Some (device, terminal)
        | Cell.Gate { device } -> Some (device, "g")
        | Cell.Wire _ | Cell.Channel _ | Cell.Cut _ -> None
      in
      match pin, net_of_shape t s.id with
      | Some (device, terminal), Some g ->
        (try
           let node =
             Circuit.Netlist.pin_node netlist
               { Circuit.Netlist.device; role = terminal }
           in
           let node_key = Circuit.Netlist.index_of_node node in
           match Hashtbl.find_opt group_of_node node_key with
           | None -> Hashtbl.replace group_of_node node_key g
           | Some g0 when g0 = g -> ()
           | Some _ ->
             report "pin %s.%s is disconnected from other pins of node %s"
               device terminal
               (Circuit.Netlist.node_name netlist node)
         with Not_found -> ())
      | (Some _ | None), _ -> ())
    (Cell.shapes t.cell);
  List.rev !violations
