(** Design-rule checking on layout cells.

    Three rule families, parameterized by the technology:

    - {b width}: every drawn shape on a patterned layer is at least the
      layer's minimum width in its narrow dimension;
    - {b spacing}: two shapes on one layer that belong to different
      electrical nets keep the layer's minimum spacing (same-net shapes
      may abut — they merge);
    - {b enclosure}: every contact/via is covered by conducting material
      on each layer it joins, with the minimum enclosure margin.

    The checker is used both as a library feature and as a guard on the
    layout synthesizer: all generated macro cells must come out clean
    (enforced in the test suite). *)

type violation = {
  rule : string;        (** "width", "spacing" or "enclosure" *)
  layer : Process.Layer.t;
  shape_a : int;        (** offending shape id *)
  shape_b : int option; (** the partner, for spacing violations *)
  detail : string;      (** human-readable measurement *)
}

(** Enclosure margin required around cuts, nm. *)
val cut_enclosure : int

(** [check ?tech cell] runs all rules (default technology:
    {!Process.Tech.cmos1um}). *)
val check : ?tech:Process.Tech.t -> Cell.t -> violation list

(** [summary violations] — count per rule name, sorted by count. *)
val summary : violation list -> (string * int) list

val pp_violation : Format.formatter -> violation -> unit
