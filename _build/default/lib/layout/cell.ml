type owner =
  | Wire of string
  | Device_terminal of { device : string; terminal : string }
  | Gate of { device : string }
  | Channel of { device : string }
  | Cut of { connects_up : bool }

type shape = {
  id : int;
  layer : Process.Layer.t;
  rect : Geometry.Rect.t;
  owner : owner;
}

type t = {
  cell_name : string;
  cell_shapes : shape array;
  cell_bounds : Geometry.Rect.t;
  mutable cached_index : int Geometry.Spatial_index.t option;
}

type builder = { b_name : string; mutable rev_shapes : shape list; mutable next : int }

let builder name = { b_name = name; rev_shapes = []; next = 0 }

let add_shape b ~layer ~rect ~owner =
  let id = b.next in
  b.next <- id + 1;
  b.rev_shapes <- { id; layer; rect; owner } :: b.rev_shapes;
  id

let finish b =
  if b.rev_shapes = [] then invalid_arg "Cell.finish: empty cell";
  let cell_shapes = Array.of_list (List.rev b.rev_shapes) in
  let cell_bounds =
    Geometry.Rect.bounding_box
      (Array.to_list (Array.map (fun s -> s.rect) cell_shapes))
  in
  { cell_name = b.b_name; cell_shapes; cell_bounds; cached_index = None }

let name t = t.cell_name
let shapes t = t.cell_shapes
let shape t id = t.cell_shapes.(id)
let bounds t = t.cell_bounds

let layer_area t layer =
  Array.fold_left
    (fun acc s ->
      if Process.Layer.equal s.layer layer then acc + Geometry.Rect.area s.rect
      else acc)
    0 t.cell_shapes

let area t = Geometry.Rect.area t.cell_bounds

let index t =
  match t.cached_index with
  | Some idx -> idx
  | None ->
    let span = max (Geometry.Rect.width t.cell_bounds) (Geometry.Rect.height t.cell_bounds) in
    let cell_size = max 1000 (span / 64) in
    let idx = Geometry.Spatial_index.create ~bounds:t.cell_bounds ~cell_size in
    Array.iter (fun s -> Geometry.Spatial_index.insert idx s.rect s.id) t.cell_shapes;
    t.cached_index <- Some idx;
    idx

let pp_summary ppf t =
  Format.fprintf ppf "cell %s: %d shapes, %dx%d nm" t.cell_name
    (Array.length t.cell_shapes)
    (Geometry.Rect.width t.cell_bounds)
    (Geometry.Rect.height t.cell_bounds)
