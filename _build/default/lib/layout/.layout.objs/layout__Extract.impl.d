lib/layout/extract.ml: Array Cell Circuit Format Geometry Hashtbl List Process String Util
