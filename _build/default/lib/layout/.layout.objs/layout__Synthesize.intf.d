lib/layout/synthesize.mli: Cell Circuit Process
