lib/layout/extract.mli: Cell Circuit
