lib/layout/synthesize.ml: Cell Circuit Float Geometry Hashtbl List Process
