lib/layout/drc.mli: Cell Format Process
