lib/layout/cell.mli: Format Geometry Process
