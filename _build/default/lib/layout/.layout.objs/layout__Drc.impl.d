lib/layout/drc.ml: Array Cell Extract Format Geometry Hashtbl List Printf Process String
