lib/layout/cell.ml: Array Format Geometry List Process
