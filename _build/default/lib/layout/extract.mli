(** Connectivity extraction: from drawn geometry to electrical nets.

    Conducting shapes on one layer connect when they touch or overlap;
    contacts connect poly/active to metal1 and vias connect metal1 to
    metal2. Channel shapes are not static conductors, so the source and
    drain of a transistor stay separate — exactly the property the defect
    analyzer relies on when deciding whether a spot changed the circuit.

    The extraction is also the reference for fault analysis on a damaged
    cell: [extract_without] recomputes nets with some shapes removed,
    which is how opens (severed wires, missing contacts) are classified. *)

type t

(** Net identifiers are small ints, stable for one extraction only. *)
type net = int

val extract : Cell.t -> t

(** [extract_without cell ~removed] extracts pretending the listed shape
    ids do not exist. *)
val extract_without : Cell.t -> removed:int list -> t

(** [net_of_shape t id] is the net of a conducting or cut shape; [None]
    for channels, wells, or removed shapes. *)
val net_of_shape : t -> int -> net option

(** All nets, each listed once. *)
val nets : t -> net list

(** [shapes_of_net t net] — member shape ids. *)
val shapes_of_net : t -> net -> int list

(** [net_name t net] is the name carried by the net's [Wire] labels;
    [None] when unlabelled. Conflicting labels are reported by
    {!check_against}, and the lexicographically first name wins here. *)
val net_name : t -> net -> string option

(** [net_of_name t name] — reverse lookup over wire labels. *)
val net_of_name : t -> string -> net option

(** [terminals_of_net t net] lists the [(device, terminal)] pins bonded to
    the net through [Device_terminal] and [Gate] shapes (gates report
    terminal ["g"]). *)
val terminals_of_net : t -> net -> (string * string) list

(** [check_against t netlist] verifies the layout implements the netlist:
    every wire-labelled net is internally consistent (a single name), and
    every device pin's extracted net carries exactly the node name the
    netlist gives that pin. Returns the list of human-readable violations
    (empty = clean). *)
val check_against : t -> Circuit.Netlist.t -> string list
