type options = { tech : Process.Tech.t; track_order : string list }

let default_options = { tech = Process.Tech.cmos1um; track_order = [] }

(* One riser to draw after placement: a pin already contacted to a small
   metal1 stub at [(x, y)] that must reach the track of [net]. *)
type pending_riser = { net : string; x : int; stub_y : int }

let nm metres = int_of_float (Float.round (metres *. 1e9))

let clamp v lo hi = max lo (min hi v)

(* Pin riser pitch: metal2 width + spacing with headroom. *)
let riser_pitch = 3_500

let synthesize ?(options = default_options) netlist ~name =
  let tech = options.tech in
  let b = Cell.builder name in
  let net_of_pin device role =
    Circuit.Netlist.node_name netlist
      (Circuit.Netlist.pin_node netlist { Circuit.Netlist.device; role })
  in
  let drawable =
    List.filter
      (fun (dv : Circuit.Netlist.device_view) ->
        match dv.kind with
        | Circuit.Netlist.Resistor _ | Circuit.Netlist.Capacitor _
        | Circuit.Netlist.Mosfet _ -> true
        | Circuit.Netlist.Vsource _ | Circuit.Netlist.Isource _ -> false)
      (Circuit.Netlist.devices netlist)
  in
  if drawable = [] then invalid_arg "Synthesize: no drawable device";
  let risers = ref [] in
  let rect = Geometry.Rect.of_size in
  let add ~layer ~rect ~owner = ignore (Cell.add_shape b ~layer ~rect ~owner) in
  let contact_size = tech.Process.Tech.contact_size in
  (* A contacted pin: contact cut + metal1 stub, queueing the riser. *)
  let pin_contact ~under_layer ~device ~terminal ~net ~x ~y =
    ignore device;
    ignore terminal;
    ignore under_layer;
    add ~layer:Process.Layer.Contact
      ~rect:(rect ~x ~y ~w:contact_size ~h:contact_size)
      ~owner:(Cell.Cut { connects_up = true });
    let stub =
      rect ~x:(x - 300) ~y:(y - 300) ~w:(contact_size + 600) ~h:(contact_size + 600)
    in
    add ~layer:Process.Layer.Metal1 ~rect:stub ~owner:(Cell.Wire net);
    risers := { net; x = x - 300; stub_y = y - 300 } :: !risers
  in
  (* --- device generators; each returns its drawn width ----------------
     Pin contacts of one device land on three x-slots 3 um apart, so the
     metal2 risers keep their minimum spacing (DRC-clean by
     construction). *)
  let draw_mosfet ~x0 ~device spec =
    let w_nm = clamp (nm spec.Circuit.Netlist.w) 3_000 60_000 in
    let l_nm = clamp (nm spec.Circuit.Netlist.l) 1_000 2_000 in
    let src_w = 2_800 in
    let y0 = 2_000 in
    let net_d = net_of_pin device "d"
    and net_g = net_of_pin device "g"
    and net_s = net_of_pin device "s" in
    let slot i = x0 + (i * 3_000) in
    (* Source / channel / drain slices of the active area. *)
    add ~layer:Process.Layer.Active
      ~rect:(rect ~x:x0 ~y:y0 ~w:src_w ~h:w_nm)
      ~owner:(Cell.Device_terminal { device; terminal = "s" });
    add ~layer:Process.Layer.Active
      ~rect:(rect ~x:(x0 + src_w) ~y:y0 ~w:l_nm ~h:w_nm)
      ~owner:(Cell.Channel { device });
    add ~layer:Process.Layer.Active
      ~rect:
        (Geometry.Rect.create ~x0:(x0 + src_w + l_nm) ~y0
           ~x1:(x0 + 7_600) ~y1:(y0 + w_nm))
      ~owner:(Cell.Device_terminal { device; terminal = "d" });
    (* Gate poly crosses the channel, rises above the active, and straps
       over field oxide to a contact pad on the middle slot. *)
    let gate_top = y0 + w_nm + 3_000 in
    add ~layer:Process.Layer.Poly
      ~rect:
        (Geometry.Rect.create ~x0:(x0 + src_w) ~y0:(y0 - 1_000)
           ~x1:(x0 + src_w + l_nm) ~y1:gate_top)
      ~owner:(Cell.Gate { device });
    let pad_x = slot 1 in
    add ~layer:Process.Layer.Poly
      ~rect:
        (Geometry.Rect.create
           ~x0:(min (x0 + src_w) pad_x)
           ~y0:(gate_top - 1_700)
           ~x1:(max (x0 + src_w + l_nm) (pad_x + 1_600))
           ~y1:gate_top)
      ~owner:(Cell.Gate { device });
    pin_contact ~under_layer:Process.Layer.Active ~device ~terminal:"s" ~net:net_s
      ~x:(slot 0 + 300)
      ~y:(y0 + 500);
    pin_contact ~under_layer:Process.Layer.Active ~device ~terminal:"d" ~net:net_d
      ~x:(slot 2 + 300)
      ~y:(y0 + 500);
    pin_contact ~under_layer:Process.Layer.Poly ~device ~terminal:"g" ~net:net_g
      ~x:(pad_x + 300)
      ~y:(gate_top - 1_400);
    7_600
  in
  let draw_resistor ~x0 ~device r =
    let width = tech.Process.Tech.min_width Process.Layer.Poly in
    let squares = r /. tech.Process.Tech.sheet_resistance Process.Layer.Poly in
    (* Lower bound keeps the two terminal risers a full metal2 pitch
       apart. *)
    let len = clamp (int_of_float (squares *. float_of_int width)) 5_000 80_000 in
    let y0 = 4_000 in
    let half = (len / 2) - 500 in
    let net_p = net_of_pin device "+" and net_n = net_of_pin device "-" in
    (* The resistive mid-section must not merge the terminal nets during
       extraction — like a MOS channel, it is a device body, not a wire. *)
    add ~layer:Process.Layer.Poly
      ~rect:(rect ~x:x0 ~y:y0 ~w:half ~h:width)
      ~owner:(Cell.Device_terminal { device; terminal = "+" });
    add ~layer:Process.Layer.Poly
      ~rect:(rect ~x:(x0 + half) ~y:y0 ~w:1_000 ~h:width)
      ~owner:(Cell.Channel { device });
    add ~layer:Process.Layer.Poly
      ~rect:(rect ~x:(x0 + half + 1_000) ~y:y0 ~w:(len - half - 1_000) ~h:width)
      ~owner:(Cell.Device_terminal { device; terminal = "-" });
    (* Contact landing pads at both ends. *)
    add ~layer:Process.Layer.Poly
      ~rect:(rect ~x:x0 ~y:y0 ~w:1_600 ~h:1_700)
      ~owner:(Cell.Device_terminal { device; terminal = "+" });
    add ~layer:Process.Layer.Poly
      ~rect:(rect ~x:(x0 + len - 1_600) ~y:y0 ~w:1_600 ~h:1_700)
      ~owner:(Cell.Device_terminal { device; terminal = "-" });
    pin_contact ~under_layer:Process.Layer.Poly ~device ~terminal:"+" ~net:net_p
      ~x:(x0 + 300) ~y:(y0 + 350);
    pin_contact ~under_layer:Process.Layer.Poly ~device ~terminal:"-" ~net:net_n
      ~x:(x0 + len - 1_300)
      ~y:(y0 + 350);
    len
  in
  let draw_capacitor ~x0 ~device c =
    (* Poly bottom plate with a metal1 top plate; ~1 fF/µm². The minimum
       side keeps the top-plate riser a metal2 pitch from the bottom-plate
       contact riser, and the lip contact sits a metal1 pitch beyond the
       top plate. *)
    let area_um2 = c /. 1e-15 in
    let side = clamp (int_of_float (sqrt area_um2 *. 1_000.)) 6_000 50_000 in
    let y0 = 3_000 in
    let net_p = net_of_pin device "+" and net_n = net_of_pin device "-" in
    add ~layer:Process.Layer.Poly
      ~rect:(rect ~x:x0 ~y:y0 ~w:(side + 3_200) ~h:side)
      ~owner:(Cell.Device_terminal { device; terminal = "+" });
    add ~layer:Process.Layer.Metal1
      ~rect:(rect ~x:x0 ~y:y0 ~w:side ~h:side)
      ~owner:(Cell.Device_terminal { device; terminal = "-" });
    pin_contact ~under_layer:Process.Layer.Poly ~device ~terminal:"+" ~net:net_p
      ~x:(x0 + side + 1_800)
      ~y:(y0 + 500);
    (* Top plate connects straight up: register a riser from the plate. *)
    risers := { net = net_n; x = x0 + (side / 2); stub_y = y0 + side - 1_600 } :: !risers;
    side + 3_200
  in
  (* --- placement ------------------------------------------------------ *)
  let cursor = ref 2_000 in
  let row_top = ref 0 in
  List.iter
    (fun (dv : Circuit.Netlist.device_view) ->
      let x0 = !cursor in
      let width =
        match dv.kind with
        | Circuit.Netlist.Mosfet spec -> draw_mosfet ~x0 ~device:dv.dev_name spec
        | Circuit.Netlist.Resistor r -> draw_resistor ~x0 ~device:dv.dev_name r
        | Circuit.Netlist.Capacitor c -> draw_capacitor ~x0 ~device:dv.dev_name c
        | Circuit.Netlist.Vsource _ | Circuit.Netlist.Isource _ -> assert false
      in
      (* Reserve enough pitch that metal2 risers of neighbouring devices
         keep their spacing. *)
      cursor := x0 + max (width + 4_000) (3 * riser_pitch);
      let top =
        match dv.kind with
        | Circuit.Netlist.Mosfet spec ->
          2_000 + clamp (nm spec.Circuit.Netlist.w) 3_000 60_000 + 3_000 + 1_000
        | Circuit.Netlist.Resistor _ -> 8_000
        | Circuit.Netlist.Capacitor _ -> 56_000
        | Circuit.Netlist.Vsource _ | Circuit.Netlist.Isource _ -> assert false
      in
      row_top := max !row_top top)
    drawable;
  let row_width = !cursor in
  (* --- routing tracks -------------------------------------------------- *)
  let m1w = tech.Process.Tech.min_width Process.Layer.Metal1 in
  let m1s = tech.Process.Tech.min_spacing Process.Layer.Metal1 in
  let track_pitch = m1w + m1s in
  let nets_used =
    List.sort_uniq compare (List.map (fun riser -> riser.net) !risers)
  in
  let ordered =
    let chosen = List.filter (fun n -> List.mem n nets_used) options.track_order in
    chosen @ List.filter (fun n -> not (List.mem n chosen)) nets_used
  in
  let first_track_y = !row_top + 5_000 in
  let track_y = Hashtbl.create 16 in
  List.iteri
    (fun i net -> Hashtbl.replace track_y net (first_track_y + (i * track_pitch)))
    ordered;
  (* Tracks are drawn as chains of abutting segments so a missing-material
     defect severs the wire locally instead of deleting it whole — the
     open-fault analysis depends on this granularity. *)
  let segment_length = 20_000 in
  List.iter
    (fun net ->
      let y = Hashtbl.find track_y net in
      let rec segments x =
        if x < row_width then begin
          let w = min segment_length (row_width - x) in
          add ~layer:Process.Layer.Metal1
            ~rect:(rect ~x ~y ~w ~h:m1w)
            ~owner:(Cell.Wire net);
          segments (x + w)
        end
      in
      segments 0)
    ordered;
  (* --- risers ----------------------------------------------------------- *)
  let m2w = tech.Process.Tech.min_width Process.Layer.Metal2 in
  let via = tech.Process.Tech.contact_size in
  List.iter
    (fun riser ->
      let y_track = Hashtbl.find track_y riser.net in
      (* metal2 from the stub up to (and overlapping) the track. *)
      add ~layer:Process.Layer.Metal2
        ~rect:
          (Geometry.Rect.create ~x0:riser.x ~y0:riser.stub_y
             ~x1:(riser.x + m2w)
             ~y1:(y_track + m1w))
        ~owner:(Cell.Wire riser.net);
      (* via bonding metal2 to the stub metal1 … *)
      add ~layer:Process.Layer.Via
        ~rect:(rect ~x:(riser.x + 200) ~y:(riser.stub_y + 200) ~w:via ~h:via)
        ~owner:(Cell.Cut { connects_up = true });
      (* … and to the destination track. *)
      add ~layer:Process.Layer.Via
        ~rect:(rect ~x:(riser.x + 200) ~y:(y_track + 100) ~w:via ~h:(m1w - 200))
        ~owner:(Cell.Cut { connects_up = true }))
    !risers;
  Cell.finish b
