lib/defect/simulate.mli: Circuit Fault Geometry Layout Process Util
