lib/defect/simulate.ml: Circuit Fault Geometry Hashtbl Layout List Logs Option Process Util
