type t = {
  name : string;
  min_width : Layer.t -> int;
  min_spacing : Layer.t -> int;
  contact_size : int;
  grid : int;
  sheet_resistance : Layer.t -> float;
  short_resistance : Layer.t -> float;
  extra_contact_resistance : float;
  gate_oxide_pinhole_resistance : float;
  junction_pinhole_resistance : float;
  thick_oxide_pinhole_resistance : float;
  shorted_device_resistance : float;
  near_miss_resistance : float;
  near_miss_capacitance : float;
  vdd : float;
  temperature : float;
}

let cmos1um =
  let min_width = function
    | Layer.Nwell -> 2000
    | Layer.Active -> 1000
    | Layer.Poly -> 1000
    | Layer.Contact -> 1000
    | Layer.Metal1 -> 1200
    | Layer.Via -> 1000
    | Layer.Metal2 -> 1400
  in
  let min_spacing = function
    | Layer.Nwell -> 4000
    | Layer.Active -> 1400
    | Layer.Poly -> 1200
    | Layer.Contact -> 1200
    | Layer.Metal1 -> 1400
    | Layer.Via -> 1400
    | Layer.Metal2 -> 1600
  in
  let sheet_resistance = function
    | Layer.Active -> 35.0
    | Layer.Poly -> 25.0
    | Layer.Metal1 -> 0.07
    | Layer.Metal2 -> 0.04
    | Layer.Nwell -> 1500.0
    | Layer.Contact | Layer.Via ->
      invalid_arg "Tech.sheet_resistance: cut layer"
  in
  (* Extra-material bridge resistance depends on the material of the spot
     (paper §3.2: 0.2 Ω metal; polysilicon and diffusion bridges are far
     more resistive). *)
  let short_resistance = function
    | Layer.Metal1 | Layer.Metal2 -> 0.2
    | Layer.Poly -> 50.0
    | Layer.Active -> 100.0
    | Layer.Nwell | Layer.Contact | Layer.Via ->
      invalid_arg "Tech.short_resistance: layer cannot bridge"
  in
  {
    name = "cmos-1um-2M";
    min_width;
    min_spacing;
    contact_size = 1000;
    grid = 100;
    sheet_resistance;
    short_resistance;
    extra_contact_resistance = 2.0;
    gate_oxide_pinhole_resistance = 2_000.0;
    junction_pinhole_resistance = 2_000.0;
    thick_oxide_pinhole_resistance = 2_000.0;
    shorted_device_resistance = 100.0;
    near_miss_resistance = 500.0;
    near_miss_capacitance = 1e-15;
    vdd = 5.0;
    temperature = 27.0;
  }

let wire_resistance t layer ~squares = t.sheet_resistance layer *. squares
