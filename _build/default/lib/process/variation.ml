type sample = {
  vth_n_shift : float;
  vth_p_shift : float;
  beta_factor : float;
  resistance_factor : float;
  capacitance_factor : float;
  vdd : float;
  temperature : float;
}

let nominal (tech : Tech.t) =
  {
    vth_n_shift = 0.;
    vth_p_shift = 0.;
    beta_factor = 1.;
    resistance_factor = 1.;
    capacitance_factor = 1.;
    vdd = tech.Tech.vdd;
    temperature = tech.Tech.temperature;
  }

type spread = {
  vth_sigma : float;
  beta_sigma : float;
  resistance_sigma : float;
  capacitance_sigma : float;
  vdd_tolerance : float;
  temperature_range : float * float;
}

let default_spread =
  {
    vth_sigma = 0.015;
    beta_sigma = 0.04;
    resistance_sigma = 0.08;
    capacitance_sigma = 0.05;
    vdd_tolerance = 0.25;
    temperature_range = 0., 70.;
  }

let draw spread (tech : Tech.t) prng =
  let open Util in
  let gauss sigma = Distribution.normal prng ~mean:0.0 ~sigma in
  let factor sigma =
    Distribution.truncated_normal prng ~mean:1.0 ~sigma ~lo:0.5 ~hi:1.5
  in
  let t_lo, t_hi = spread.temperature_range in
  {
    vth_n_shift = gauss spread.vth_sigma;
    vth_p_shift = gauss spread.vth_sigma;
    beta_factor = factor spread.beta_sigma;
    resistance_factor = factor spread.resistance_sigma;
    capacitance_factor = factor spread.capacitance_sigma;
    vdd =
      Prng.uniform prng ~lo:(tech.Tech.vdd -. spread.vdd_tolerance)
        ~hi:(tech.Tech.vdd +. spread.vdd_tolerance);
    temperature = Prng.uniform prng ~lo:t_lo ~hi:t_hi;
  }

let monte_carlo ?(n = 64) spread tech prng =
  if n < 1 then invalid_arg "Variation.monte_carlo: n must be >= 1";
  nominal tech :: List.init (n - 1) (fun _ -> draw spread tech prng)

let corners spread (tech : Tech.t) =
  let t_lo, t_hi = spread.temperature_range in
  let base = nominal tech in
  let supply = [ tech.Tech.vdd -. spread.vdd_tolerance; tech.Tech.vdd +. spread.vdd_tolerance ] in
  let speeds =
    (* slow: high Vth, low beta, high R; fast: the opposite. Each at 3σ. *)
    [
      3.0 *. spread.vth_sigma, 1.0 -. (3.0 *. spread.beta_sigma), 1.0 +. (3.0 *. spread.resistance_sigma);
      -3.0 *. spread.vth_sigma, 1.0 +. (3.0 *. spread.beta_sigma), 1.0 -. (3.0 *. spread.resistance_sigma);
    ]
  in
  let temps = [ t_lo; t_hi ] in
  List.concat_map
    (fun vdd ->
      List.concat_map
        (fun (dvth, beta, rf) ->
          List.map
            (fun temperature ->
              {
                base with
                vth_n_shift = dvth;
                vth_p_shift = dvth;
                beta_factor = beta;
                resistance_factor = rf;
                vdd;
                temperature;
              })
            temps)
        speeds)
    supply

let pp ppf s =
  Format.fprintf ppf
    "{dVthN=%.3f dVthP=%.3f beta=%.2f R=%.2f C=%.2f Vdd=%.2f T=%.0f}"
    s.vth_n_shift s.vth_p_shift s.beta_factor s.resistance_factor
    s.capacitance_factor s.vdd s.temperature
