type mechanism =
  | Extra_material of Layer.t
  | Missing_material of Layer.t
  | Gate_oxide_pinhole
  | Junction_pinhole
  | Thick_oxide_pinhole
  | Extra_contact
  | Missing_contact

let mechanism_name = function
  | Extra_material layer -> "extra-" ^ Layer.name layer
  | Missing_material layer -> "missing-" ^ Layer.name layer
  | Gate_oxide_pinhole -> "gate-oxide-pinhole"
  | Junction_pinhole -> "junction-pinhole"
  | Thick_oxide_pinhole -> "thick-oxide-pinhole"
  | Extra_contact -> "extra-contact"
  | Missing_contact -> "missing-contact"

let pp_mechanism ppf m = Format.pp_print_string ppf (mechanism_name m)

type entry = {
  mechanism : mechanism;
  relative_rate : float;
  size_min : float;
  size_max : float;
}

type t = {
  table : entry list;
  mechanism_dist : mechanism Util.Distribution.discrete;
}

let create entries =
  if entries = [] then invalid_arg "Defect_stats.create: empty table";
  List.iter
    (fun e ->
      if e.relative_rate <= 0. then
        invalid_arg "Defect_stats.create: rates must be positive";
      if e.size_min <= 0. || e.size_max <= e.size_min then
        invalid_arg "Defect_stats.create: bad size range")
    entries;
  let mechanism_dist =
    Util.Distribution.discrete
      (List.map (fun e -> e.relative_rate, e.mechanism) entries)
  in
  { table = entries; mechanism_dist }

let entries t = t.table

let default =
  (* Rates fitted so the resulting *fault* mix matches the paper's Table 1:
     extra material in the metallization dominates, opens exist but are
     rare as faults (a hole must fully sever a wire). Sizes are drawn from
     the 1/x³ spot density between the print limit and a cutoff. *)
  let material layer rate =
    { mechanism = Extra_material layer; relative_rate = rate;
      size_min = 600.; size_max = 12_000. }
  in
  let hole layer rate =
    { mechanism = Missing_material layer; relative_rate = rate;
      size_min = 400.; size_max = 8_000. }
  in
  create
    [
      material Layer.Metal1 460.0;
      material Layer.Metal2 300.0;
      material Layer.Poly 90.0;
      material Layer.Active 45.0;
      hole Layer.Metal1 3.0;
      hole Layer.Metal2 2.0;
      hole Layer.Poly 1.5;
      hole Layer.Active 1.0;
      { mechanism = Gate_oxide_pinhole; relative_rate = 10.0;
        size_min = 100.; size_max = 600. };
      { mechanism = Junction_pinhole; relative_rate = 6.0;
        size_min = 100.; size_max = 600. };
      { mechanism = Thick_oxide_pinhole; relative_rate = 1.2;
        size_min = 100.; size_max = 600. };
      { mechanism = Extra_contact; relative_rate = 2.5;
        size_min = 300.; size_max = 1_500. };
      { mechanism = Missing_contact; relative_rate = 1.0;
        size_min = 300.; size_max = 1_500. };
    ]

let sample_mechanism t prng = Util.Distribution.draw prng t.mechanism_dist

let sample_size t prng mech =
  match List.find_opt (fun e -> e.mechanism = mech) t.table with
  | None -> invalid_arg "Defect_stats.sample_size: unknown mechanism"
  | Some e ->
    Util.Distribution.power_law_size prng ~x_min:e.size_min ~x_max:e.size_max
