type t = Nwell | Active | Poly | Contact | Metal1 | Via | Metal2

let all = [ Nwell; Active; Poly; Contact; Metal1; Via; Metal2 ]
let conducting = [ Active; Poly; Metal1; Metal2 ]

let is_conducting = function
  | Active | Poly | Metal1 | Metal2 -> true
  | Nwell | Contact | Via -> false

let is_cut = function
  | Contact | Via -> true
  | Nwell | Active | Poly | Metal1 | Metal2 -> false

let connects = function
  | Contact -> Poly, Metal1 (* also Active-Metal1; resolved by what lies under *)
  | Via -> Metal1, Metal2
  | Nwell | Active | Poly | Metal1 | Metal2 ->
    invalid_arg "Layer.connects: not a cut layer"

let name = function
  | Nwell -> "nwell"
  | Active -> "active"
  | Poly -> "poly"
  | Contact -> "contact"
  | Metal1 -> "metal1"
  | Via -> "via"
  | Metal2 -> "metal2"

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp ppf t = Format.pp_print_string ppf (name t)
