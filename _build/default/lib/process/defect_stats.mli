(** Spot-defect statistics of the fabrication line.

    The defect simulator needs, per defect mechanism, (a) a relative rate —
    how often the mechanism occurs per unit area — and (b) a size
    distribution for the spot diameter. Extra material in the metallization
    steps dominates real CMOS lines, which is what makes shorts >95 % of
    all faults in the paper's Table 1; the synthetic table below encodes
    that dominance (see DESIGN.md §2, substitution of the Philips line
    statistics). *)

(** A physical defect mechanism the line can produce. *)
type mechanism =
  | Extra_material of Layer.t    (** conducting spot bridging shapes *)
  | Missing_material of Layer.t  (** hole severing a shape *)
  | Gate_oxide_pinhole           (** gate leaks to channel/source/drain *)
  | Junction_pinhole             (** source/drain junction leaks to bulk *)
  | Thick_oxide_pinhole          (** field-oxide leak between crossing layers *)
  | Extra_contact                (** spurious vertical connection *)
  | Missing_contact              (** open contact/via *)

val mechanism_name : mechanism -> string
val pp_mechanism : Format.formatter -> mechanism -> unit

(** Per-mechanism statistics. *)
type entry = {
  mechanism : mechanism;
  relative_rate : float;  (** occurrences per unit of sprinkling weight *)
  size_min : float;       (** nm, smallest printable spot *)
  size_max : float;       (** nm, upper cutoff of the 1/x³ density *)
}

type t

(** [create entries] checks rates are positive and builds the table. *)
val create : entry list -> t

val entries : t -> entry list

(** [default] — the synthetic line statistics fitted to the paper's fault
    mix: metallization extra-material dominates, followed by gate-oxide
    and junction pinholes, with opens and contact defects rare. *)
val default : t

(** [sampler t prng] draws mechanisms proportionally to their rates. *)
val sample_mechanism : t -> Util.Prng.t -> mechanism

(** [sample_size t prng mech] draws a spot diameter (nm) for the mechanism
    from its 1/x³ size law. *)
val sample_size : t -> Util.Prng.t -> mechanism -> float
