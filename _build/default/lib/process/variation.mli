(** Process / supply-voltage / temperature variation of fault-free devices.

    The good signature of an analog macro is a region, not a point: §2 of
    the paper compiles it per stimulus over environmental conditions. A
    [sample] multiplies or shifts the nominal device parameters of one
    simulated die; [monte_carlo] draws dies for the good-space compilation
    and [corners] gives the deterministic extreme points. *)

type sample = {
  vth_n_shift : float;   (** V, additive shift of NMOS threshold *)
  vth_p_shift : float;   (** V, additive shift of |PMOS threshold| *)
  beta_factor : float;   (** multiplicative on transconductance *)
  resistance_factor : float;  (** multiplicative on resistors/sheet rho *)
  capacitance_factor : float; (** multiplicative on capacitors *)
  vdd : float;           (** actual supply, V *)
  temperature : float;   (** °C *)
}

(** The centred sample: nominal everything at the technology's Vdd. *)
val nominal : Tech.t -> sample

(** Spread description: 1σ for Gaussian parameters, half-range for the
    uniform supply and temperature. *)
type spread = {
  vth_sigma : float;
  beta_sigma : float;
  resistance_sigma : float;
  capacitance_sigma : float;
  vdd_tolerance : float;      (** ±V around nominal *)
  temperature_range : float * float;
}

(** Spread of the case-study process: σ(Vth) = 15 mV, σ(β) = 4 %,
    σ(R) = 8 %, σ(C) = 5 %, Vdd ± 0.25 V, 0–70 °C. *)
val default_spread : spread

(** [draw spread tech prng] samples one die. *)
val draw : spread -> Tech.t -> Util.Prng.t -> sample

(** [monte_carlo ?n spread tech prng] draws [n] dies (default 64),
    nominal first so the nominal signature is always in the good space. *)
val monte_carlo : ?n:int -> spread -> Tech.t -> Util.Prng.t -> sample list

(** [corners spread tech] is the 8-point deterministic corner set
    (slow/fast × low/high Vdd × cold/hot). *)
val corners : spread -> Tech.t -> sample list

val pp : Format.formatter -> sample -> unit
