(** Mask layers of the single-poly double-metal CMOS process.

    The case-study ADC is fabricated in an early-90s CMOS process; the
    layer set below carries everything the defect simulator needs:
    conducting layers that can short or open, the gate stack for oxide
    pinholes, and contacts/vias for extra-contact defects. *)

type t =
  | Nwell
  | Active       (** diffusion: transistor source/drain and well ties *)
  | Poly         (** polysilicon: gates and short interconnect/resistors *)
  | Contact      (** active/poly to metal1 *)
  | Metal1
  | Via          (** metal1 to metal2 *)
  | Metal2

(** All layers, bottom-up. *)
val all : t list

(** Layers that carry signal current and can be shorted or opened by spot
    defects: [Active], [Poly], [Metal1], [Metal2]. *)
val conducting : t list

val is_conducting : t -> bool

(** Layers connecting two conducting layers vertically. *)
val is_cut : t -> bool

(** [connects layer] is the pair of conducting layers a cut layer joins.
    @raise Invalid_argument on a non-cut layer. *)
val connects : t -> t * t

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
