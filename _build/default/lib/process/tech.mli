(** Technology parameters of the target process.

    Dimensions are in nanometres on the layout grid; resistances in ohms,
    capacitances in farads. The fault-model resistances follow §3.2 of the
    paper: metal shorts 0.2 Ω, extra contacts 2 Ω, oxide/junction pinholes
    2 kΩ, near-miss (non-catastrophic) shorts 500 Ω ∥ 1 fF. *)

type t = {
  name : string;
  (* --- design rules (nm) --- *)
  min_width : Layer.t -> int;     (** minimum drawn width per layer *)
  min_spacing : Layer.t -> int;   (** minimum same-layer spacing *)
  contact_size : int;             (** contact/via edge *)
  grid : int;                     (** layout grid pitch *)
  (* --- electrical --- *)
  sheet_resistance : Layer.t -> float;  (** Ω/□ of conducting layers *)
  short_resistance : Layer.t -> float;  (** Ω of an extra-material bridge *)
  extra_contact_resistance : float;
  gate_oxide_pinhole_resistance : float;
  junction_pinhole_resistance : float;
  thick_oxide_pinhole_resistance : float;
  shorted_device_resistance : float;    (** drain-source bridge of a device *)
  near_miss_resistance : float;         (** non-catastrophic short, 500 Ω *)
  near_miss_capacitance : float;        (** parallel 1 fF *)
  (* --- nominal supplies --- *)
  vdd : float;
  temperature : float;            (** °C, nominal *)
}

(** The double-metal 1 µm CMOS process used throughout the case study,
    with the paper's fault-model resistances. *)
val cmos1um : t

(** [wire_resistance t layer ~squares] is the series resistance of a wire
    of the given number of squares. *)
val wire_resistance : t -> Layer.t -> squares:float -> float
