lib/process/tech.ml: Layer
