lib/process/defect_stats.mli: Format Layer Util
