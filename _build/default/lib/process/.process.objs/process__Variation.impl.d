lib/process/variation.ml: Distribution Format List Prng Tech Util
