lib/process/tech.mli: Layer
