lib/process/layer.mli: Format
