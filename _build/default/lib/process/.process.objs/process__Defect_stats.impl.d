lib/process/defect_stats.ml: Format Layer List Util
