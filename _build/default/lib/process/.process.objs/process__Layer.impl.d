lib/process/layer.ml: Format Stdlib
