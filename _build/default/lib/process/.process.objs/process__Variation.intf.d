lib/process/variation.mli: Format Tech Util
