(* Unit and property tests for the dotest.geometry library. *)

open Geometry

let rect ~x0 ~y0 ~x1 ~y1 = Rect.create ~x0 ~y0 ~x1 ~y1
let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Rect                                                                *)
(* ------------------------------------------------------------------ *)

let test_rect_normalization () =
  let r = rect ~x0:10 ~y0:20 ~x1:0 ~y1:5 in
  Alcotest.(check int) "width" 10 (Rect.width r);
  Alcotest.(check int) "height" 15 (Rect.height r);
  Alcotest.(check int) "area" 150 (Rect.area r)

let test_rect_zero_area_rejected () =
  Alcotest.check_raises "degenerate" (Invalid_argument "Rect.create: zero area")
    (fun () -> ignore (rect ~x0:0 ~y0:0 ~x1:0 ~y1:10))

let test_rect_of_size () =
  let r = Rect.of_size ~x:5 ~y:6 ~w:10 ~h:20 in
  Alcotest.(check bool) "equal" true
    (Rect.equal r (rect ~x0:5 ~y0:6 ~x1:15 ~y1:26))

let test_rect_contains () =
  let r = rect ~x0:0 ~y0:0 ~x1:10 ~y1:10 in
  Alcotest.(check bool) "inside" true (Rect.contains r (5, 5));
  Alcotest.(check bool) "edge" true (Rect.contains r (10, 0));
  Alcotest.(check bool) "outside" false (Rect.contains r (11, 5))

let test_rect_overlap_semantics () =
  let a = rect ~x0:0 ~y0:0 ~x1:10 ~y1:10 in
  let touching = rect ~x0:10 ~y0:0 ~x1:20 ~y1:10 in
  let overlapping = rect ~x0:9 ~y0:9 ~x1:15 ~y1:15 in
  let apart = rect ~x0:20 ~y0:20 ~x1:30 ~y1:30 in
  Alcotest.(check bool) "touch is not overlap" false (Rect.overlaps a touching);
  Alcotest.(check bool) "touch connects" true (Rect.touches_or_overlaps a touching);
  Alcotest.(check bool) "overlap" true (Rect.overlaps a overlapping);
  Alcotest.(check bool) "disjoint" false (Rect.touches_or_overlaps a apart)

let test_rect_intersection () =
  let a = rect ~x0:0 ~y0:0 ~x1:10 ~y1:10 in
  let b = rect ~x0:5 ~y0:5 ~x1:15 ~y1:15 in
  (match Rect.intersection a b with
  | Some i -> Alcotest.(check bool) "intersection" true (Rect.equal i (rect ~x0:5 ~y0:5 ~x1:10 ~y1:10))
  | None -> Alcotest.fail "expected intersection");
  let c = rect ~x0:10 ~y0:0 ~x1:20 ~y1:10 in
  Alcotest.(check bool) "edge contact has no interior" true
    (Rect.intersection a c = None)

let test_rect_inflate_translate () =
  let r = rect ~x0:5 ~y0:5 ~x1:10 ~y1:10 in
  let big = Rect.inflate r 2 in
  Alcotest.(check bool) "inflated" true (Rect.equal big (rect ~x0:3 ~y0:3 ~x1:12 ~y1:12));
  let moved = Rect.translate r ~dx:(-5) ~dy:10 in
  Alcotest.(check bool) "translated" true (Rect.equal moved (rect ~x0:0 ~y0:15 ~x1:5 ~y1:20));
  Alcotest.check_raises "over-deflate" (Invalid_argument "Rect.inflate: collapsed")
    (fun () -> ignore (Rect.inflate r (-3)))

let test_rect_bounding_box () =
  let rects = [ rect ~x0:0 ~y0:0 ~x1:1 ~y1:1; rect ~x0:5 ~y0:(-2) ~x1:7 ~y1:3 ] in
  Alcotest.(check bool) "bbox" true
    (Rect.equal (Rect.bounding_box rects) (rect ~x0:0 ~y0:(-2) ~x1:7 ~y1:3))

let test_rect_separation () =
  let a = rect ~x0:0 ~y0:0 ~x1:10 ~y1:10 in
  check_float "overlapping" 0.0 (Rect.separation a a);
  let right = rect ~x0:13 ~y0:0 ~x1:20 ~y1:10 in
  check_float "horizontal gap" 3.0 (Rect.separation a right);
  let diag = rect ~x0:13 ~y0:14 ~x1:20 ~y1:20 in
  check_float "diagonal gap" 5.0 (Rect.separation a diag);
  check_float "symmetric" (Rect.separation a diag) (Rect.separation diag a)

(* ------------------------------------------------------------------ *)
(* Circle                                                              *)
(* ------------------------------------------------------------------ *)

let test_circle_intersects_rect () =
  let r = rect ~x0:0 ~y0:0 ~x1:10 ~y1:10 in
  let inside = Circle.create ~cx:5 ~cy:5 ~radius:1.0 in
  let grazing = Circle.create ~cx:13 ~cy:5 ~radius:3.0 in
  let outside = Circle.create ~cx:20 ~cy:20 ~radius:2.0 in
  Alcotest.(check bool) "inside" true (Circle.intersects_rect inside r);
  Alcotest.(check bool) "grazing" true (Circle.intersects_rect grazing r);
  Alcotest.(check bool) "outside" false (Circle.intersects_rect outside r)

let test_circle_bridges () =
  let a = rect ~x0:0 ~y0:0 ~x1:10 ~y1:100 in
  let b = rect ~x0:20 ~y0:0 ~x1:30 ~y1:100 in
  let big = Circle.create ~cx:15 ~cy:50 ~radius:6.0 in
  let small = Circle.create ~cx:15 ~cy:50 ~radius:4.0 in
  Alcotest.(check bool) "big spans the gap" true (Circle.bridges big a b);
  Alcotest.(check bool) "small does not" false (Circle.bridges small a b)

let test_circle_covers_span () =
  (* A vertical wire 10 wide; a defect of radius 8 centred on it severs it,
     radius 4 does not. *)
  let wire = rect ~x0:0 ~y0:0 ~x1:10 ~y1:100 in
  let sever = Circle.create ~cx:5 ~cy:50 ~radius:8.0 in
  let nick = Circle.create ~cx:5 ~cy:50 ~radius:4.0 in
  Alcotest.(check bool) "severs" true (Circle.covers_rect_span sever wire ~axis:`X);
  Alcotest.(check bool) "nicks only" false (Circle.covers_rect_span nick wire ~axis:`X)

let test_circle_bounds () =
  let c = Circle.create ~cx:10 ~cy:10 ~radius:2.5 in
  let b = Circle.bounds c in
  Alcotest.(check bool) "bounds contain centre" true (Rect.contains b (10, 10));
  Alcotest.(check bool) "bounds wide enough" true (Rect.width b >= 5)

(* ------------------------------------------------------------------ *)
(* Spatial_index                                                       *)
(* ------------------------------------------------------------------ *)

let test_index_query_rect () =
  let bounds = rect ~x0:0 ~y0:0 ~x1:1000 ~y1:1000 in
  let idx = Spatial_index.create ~bounds ~cell_size:100 in
  Spatial_index.insert idx (rect ~x0:10 ~y0:10 ~x1:20 ~y1:20) "a";
  Spatial_index.insert idx (rect ~x0:500 ~y0:500 ~x1:600 ~y1:600) "b";
  Alcotest.(check int) "length" 2 (Spatial_index.length idx);
  let hits = ref [] in
  Spatial_index.query_rect idx (rect ~x0:0 ~y0:0 ~x1:50 ~y1:50) (fun _ p ->
      hits := p :: !hits);
  Alcotest.(check (list string)) "only a" [ "a" ] !hits

let test_index_no_duplicates () =
  (* A rectangle spanning many buckets must still be reported once. *)
  let bounds = rect ~x0:0 ~y0:0 ~x1:1000 ~y1:1000 in
  let idx = Spatial_index.create ~bounds ~cell_size:10 in
  Spatial_index.insert idx (rect ~x0:0 ~y0:0 ~x1:900 ~y1:900) "wide";
  let count = ref 0 in
  Spatial_index.query_rect idx (rect ~x0:0 ~y0:0 ~x1:1000 ~y1:1000) (fun _ _ ->
      incr count);
  Alcotest.(check int) "once" 1 !count

let test_index_circle_query () =
  let bounds = rect ~x0:0 ~y0:0 ~x1:100 ~y1:100 in
  let idx = Spatial_index.create ~bounds ~cell_size:10 in
  Spatial_index.insert idx (rect ~x0:0 ~y0:0 ~x1:10 ~y1:10) 1;
  Spatial_index.insert idx (rect ~x0:50 ~y0:50 ~x1:60 ~y1:60) 2;
  let hits = ref [] in
  Spatial_index.query_circle idx (Circle.create ~cx:55 ~cy:55 ~radius:3.0)
    (fun _ p -> hits := p :: !hits);
  Alcotest.(check (list int)) "only payload 2" [ 2 ] !hits

let test_index_outside_bounds_clamped () =
  let bounds = rect ~x0:0 ~y0:0 ~x1:100 ~y1:100 in
  let idx = Spatial_index.create ~bounds ~cell_size:10 in
  Spatial_index.insert idx (rect ~x0:(-50) ~y0:(-50) ~x1:(-10) ~y1:(-10)) "out";
  let hits = ref 0 in
  Spatial_index.query_rect idx (rect ~x0:(-100) ~y0:(-100) ~x1:0 ~y1:0) (fun _ _ ->
      incr hits);
  Alcotest.(check int) "clamped entry still found" 1 !hits

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let rect_gen =
  QCheck.Gen.(
    let* x0 = int_range (-500) 500 in
    let* y0 = int_range (-500) 500 in
    let* w = int_range 1 200 in
    let* h = int_range 1 200 in
    return (Rect.of_size ~x:x0 ~y:y0 ~w ~h))

let arb_rect = QCheck.make ~print:(Format.asprintf "%a" Rect.pp) rect_gen

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"rect: intersection area <= both areas" (pair arb_rect arb_rect)
      (fun (a, b) ->
        match Rect.intersection a b with
        | None -> true
        | Some i -> Rect.area i <= Rect.area a && Rect.area i <= Rect.area b);
    Test.make ~name:"rect: intersection implies overlap and vice versa"
      (pair arb_rect arb_rect) (fun (a, b) ->
        Rect.overlaps a b = Option.is_some (Rect.intersection a b));
    Test.make ~name:"rect: overlap is symmetric" (pair arb_rect arb_rect)
      (fun (a, b) -> Rect.overlaps a b = Rect.overlaps b a);
    Test.make ~name:"rect: separation 0 iff touches-or-overlaps"
      (pair arb_rect arb_rect) (fun (a, b) ->
        Rect.touches_or_overlaps a b = (Rect.separation a b = 0.));
    Test.make ~name:"rect: union bounds contains both" (pair arb_rect arb_rect)
      (fun (a, b) ->
        let u = Rect.union_bounds a b in
        Option.is_some (Rect.intersection u a) && Option.is_some (Rect.intersection u b)
        && Rect.area u >= max (Rect.area a) (Rect.area b));
    Test.make ~name:"circle: bridging implies intersecting both"
      (triple arb_rect arb_rect (pair (pair (int_range (-500) 500) (int_range (-500) 500)) (float_range 1. 100.)))
      (fun (a, b, ((cx, cy), radius)) ->
        let c = Circle.create ~cx ~cy ~radius in
        Circle.bridges c a b = (Circle.intersects_rect c a && Circle.intersects_rect c b));
    Test.make ~name:"index: query_rect finds exactly the overlapping rects"
      (pair (list_of_size (Gen.int_range 0 30) arb_rect) arb_rect)
      (fun (rects, probe) ->
        let bounds = Rect.create ~x0:(-1000) ~y0:(-1000) ~x1:1000 ~y1:1000 in
        let idx = Spatial_index.create ~bounds ~cell_size:50 in
        List.iteri (fun i r -> Spatial_index.insert idx r i) rects;
        let found = ref [] in
        Spatial_index.query_rect idx probe (fun _ i -> found := i :: !found);
        let expected =
          List.filteri (fun _ _ -> true) rects
          |> List.mapi (fun i r -> (i, r))
          |> List.filter (fun (_, r) -> Rect.touches_or_overlaps probe r)
          |> List.map fst
        in
        List.sort compare !found = List.sort compare expected);
  ]

let suites =
  [
    ( "geometry.rect",
      [
        Alcotest.test_case "normalization" `Quick test_rect_normalization;
        Alcotest.test_case "zero area rejected" `Quick test_rect_zero_area_rejected;
        Alcotest.test_case "of_size" `Quick test_rect_of_size;
        Alcotest.test_case "contains" `Quick test_rect_contains;
        Alcotest.test_case "overlap semantics" `Quick test_rect_overlap_semantics;
        Alcotest.test_case "intersection" `Quick test_rect_intersection;
        Alcotest.test_case "inflate/translate" `Quick test_rect_inflate_translate;
        Alcotest.test_case "bounding box" `Quick test_rect_bounding_box;
        Alcotest.test_case "separation" `Quick test_rect_separation;
      ] );
    ( "geometry.circle",
      [
        Alcotest.test_case "intersects rect" `Quick test_circle_intersects_rect;
        Alcotest.test_case "bridges" `Quick test_circle_bridges;
        Alcotest.test_case "covers span" `Quick test_circle_covers_span;
        Alcotest.test_case "bounds" `Quick test_circle_bounds;
      ] );
    ( "geometry.spatial_index",
      [
        Alcotest.test_case "query rect" `Quick test_index_query_rect;
        Alcotest.test_case "no duplicates" `Quick test_index_no_duplicates;
        Alcotest.test_case "circle query" `Quick test_index_circle_query;
        Alcotest.test_case "outside bounds clamped" `Quick test_index_outside_bounds_clamped;
      ] );
    "geometry.properties", List.map QCheck_alcotest.to_alcotest qcheck_props;
  ]
