test/test_testgen.ml: Adc Alcotest Fault Float List Macro Process QCheck QCheck_alcotest Testgen Util
