test/test_amplifier.ml: Alcotest Amplifier Core Fault Float Layout Lazy List Macro Process
