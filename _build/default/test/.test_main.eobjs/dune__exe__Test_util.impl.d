test/test_util.ml: Alcotest Array Distribution Float Fun Gen Int64 List Prng QCheck QCheck_alcotest Stats String Table Test Union_find Util
