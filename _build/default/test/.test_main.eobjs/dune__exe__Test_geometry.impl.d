test/test_geometry.ml: Alcotest Circle Format Gen Geometry List Option QCheck QCheck_alcotest Rect Spatial_index Test
