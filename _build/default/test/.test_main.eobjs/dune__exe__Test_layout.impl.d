test/test_layout.ml: Alcotest Array Cell Circuit Drc Extract Geometry Layout List Printf Process QCheck QCheck_alcotest Synthesize Test
