test/test_spice.ml: Adc Alcotest Circuit Engine Gen List Netlist Printf Process QCheck QCheck_alcotest Spice String Test
