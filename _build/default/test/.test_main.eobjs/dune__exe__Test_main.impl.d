test/test_main.ml: Alcotest Test_adc Test_amplifier Test_circuit Test_core Test_fault Test_geometry Test_layout Test_macro Test_spice Test_testgen Test_util
