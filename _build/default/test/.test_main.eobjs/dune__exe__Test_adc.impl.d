test/test_adc.ml: Adc Alcotest Array Circuit Float Fun Geometry Layout Lazy List Macro Printf Process Util
