test/test_macro.ml: Alcotest Circuit Fault Float Layout List Macro Process Util
