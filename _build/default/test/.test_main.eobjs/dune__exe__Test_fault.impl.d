test/test_fault.ml: Alcotest Array Circuit Defect Fault Float Gen Geometry Layout List Process QCheck QCheck_alcotest Test Util
