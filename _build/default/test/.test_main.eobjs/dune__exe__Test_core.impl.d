test/test_core.ml: Adc Alcotest Core Dft Fault Lazy List Macro Printf String Testgen Util
