test/test_circuit.ml: Alcotest Array Circuit Complex Engine Float Gen Linear List Mos_model Netlist Printf QCheck QCheck_alcotest Test Waveform
