(* Tests for the dotest.layout library: cells, extraction, synthesis. *)

open Layout

let rect = Geometry.Rect.of_size

(* ------------------------------------------------------------------ *)
(* Cell                                                                *)
(* ------------------------------------------------------------------ *)

let test_cell_builder () =
  let b = Cell.builder "c" in
  let id0 =
    Cell.add_shape b ~layer:Process.Layer.Metal1 ~rect:(rect ~x:0 ~y:0 ~w:10 ~h:10)
      ~owner:(Cell.Wire "a")
  in
  let id1 =
    Cell.add_shape b ~layer:Process.Layer.Poly ~rect:(rect ~x:20 ~y:0 ~w:10 ~h:10)
      ~owner:(Cell.Wire "b")
  in
  let cell = Cell.finish b in
  Alcotest.(check int) "ids sequential" 0 id0;
  Alcotest.(check int) "ids sequential" 1 id1;
  Alcotest.(check int) "shape count" 2 (Array.length (Cell.shapes cell));
  Alcotest.(check int) "metal1 area" 100 (Cell.layer_area cell Process.Layer.Metal1);
  Alcotest.(check int) "bbox area" 300 (Cell.area cell)

let test_cell_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Cell.finish: empty cell")
    (fun () -> ignore (Cell.finish (Cell.builder "e")))

(* ------------------------------------------------------------------ *)
(* Extract: hand-drawn scenarios                                       *)
(* ------------------------------------------------------------------ *)

(* Two metal1 wires joined by an abutting third. *)
let test_extract_same_layer_merge () =
  let b = Cell.builder "m" in
  let s0 =
    Cell.add_shape b ~layer:Process.Layer.Metal1 ~rect:(rect ~x:0 ~y:0 ~w:100 ~h:10)
      ~owner:(Cell.Wire "n1")
  in
  let s1 =
    Cell.add_shape b ~layer:Process.Layer.Metal1
      ~rect:(rect ~x:100 ~y:0 ~w:100 ~h:10) ~owner:(Cell.Wire "n1")
  in
  let s2 =
    Cell.add_shape b ~layer:Process.Layer.Metal1
      ~rect:(rect ~x:0 ~y:50 ~w:100 ~h:10) ~owner:(Cell.Wire "n2")
  in
  let ex = Extract.extract (Cell.finish b) in
  Alcotest.(check bool) "abutting merge" true
    (Extract.net_of_shape ex s0 = Extract.net_of_shape ex s1);
  Alcotest.(check bool) "separate nets" true
    (Extract.net_of_shape ex s0 <> Extract.net_of_shape ex s2);
  Alcotest.(check int) "two nets" 2 (List.length (Extract.nets ex))

(* Poly under metal1: connected only when a contact is present. *)
let test_extract_cut_connects () =
  let build with_contact =
    let b = Cell.builder "c" in
    let poly =
      Cell.add_shape b ~layer:Process.Layer.Poly ~rect:(rect ~x:0 ~y:0 ~w:100 ~h:20)
        ~owner:(Cell.Wire "p")
    in
    let metal =
      Cell.add_shape b ~layer:Process.Layer.Metal1
        ~rect:(rect ~x:0 ~y:0 ~w:100 ~h:20) ~owner:(Cell.Wire "m")
    in
    if with_contact then
      ignore
        (Cell.add_shape b ~layer:Process.Layer.Contact
           ~rect:(rect ~x:40 ~y:5 ~w:10 ~h:10)
           ~owner:(Cell.Cut { connects_up = true }));
    let ex = Extract.extract (Cell.finish b) in
    Extract.net_of_shape ex poly = Extract.net_of_shape ex metal
  in
  Alcotest.(check bool) "no contact, no connection" false (build false);
  Alcotest.(check bool) "contact connects" true (build true)

(* The channel does not conduct: S and D of a transistor stay separate. *)
let test_extract_channel_isolates () =
  let b = Cell.builder "t" in
  let s =
    Cell.add_shape b ~layer:Process.Layer.Active ~rect:(rect ~x:0 ~y:0 ~w:30 ~h:100)
      ~owner:(Cell.Device_terminal { device = "M1"; terminal = "s" })
  in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Active
       ~rect:(rect ~x:30 ~y:0 ~w:10 ~h:100)
       ~owner:(Cell.Channel { device = "M1" }));
  let d =
    Cell.add_shape b ~layer:Process.Layer.Active
      ~rect:(rect ~x:40 ~y:0 ~w:30 ~h:100)
      ~owner:(Cell.Device_terminal { device = "M1"; terminal = "d" })
  in
  let ex = Extract.extract (Cell.finish b) in
  Alcotest.(check bool) "s and d separate" true
    (Extract.net_of_shape ex s <> Extract.net_of_shape ex d);
  Alcotest.(check bool) "channel has no net" true
    (Extract.net_of_shape ex 1 = None)

let test_extract_without_removal_splits () =
  (* Removing the middle of three collinear wires splits the net. *)
  let b = Cell.builder "w" in
  let s0 =
    Cell.add_shape b ~layer:Process.Layer.Metal1 ~rect:(rect ~x:0 ~y:0 ~w:100 ~h:10)
      ~owner:(Cell.Wire "n")
  in
  let s1 =
    Cell.add_shape b ~layer:Process.Layer.Metal1
      ~rect:(rect ~x:100 ~y:0 ~w:100 ~h:10) ~owner:(Cell.Wire "n")
  in
  let s2 =
    Cell.add_shape b ~layer:Process.Layer.Metal1
      ~rect:(rect ~x:200 ~y:0 ~w:100 ~h:10) ~owner:(Cell.Wire "n")
  in
  let cell = Cell.finish b in
  let whole = Extract.extract cell in
  Alcotest.(check bool) "whole: one net" true
    (Extract.net_of_shape whole s0 = Extract.net_of_shape whole s2);
  let cut = Extract.extract_without cell ~removed:[ s1 ] in
  Alcotest.(check bool) "cut: split" true
    (Extract.net_of_shape cut s0 <> Extract.net_of_shape cut s2);
  Alcotest.(check bool) "removed shape netless" true
    (Extract.net_of_shape cut s1 = None)

let test_extract_net_names () =
  let b = Cell.builder "n" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1 ~rect:(rect ~x:0 ~y:0 ~w:10 ~h:10)
       ~owner:(Cell.Wire "vdd"));
  let ex = Extract.extract (Cell.finish b) in
  match Extract.net_of_name ex "vdd" with
  | Some net ->
    Alcotest.(check (option string)) "name" (Some "vdd") (Extract.net_name ex net)
  | None -> Alcotest.fail "net not found by name"

(* ------------------------------------------------------------------ *)
(* Synthesis + LVS                                                     *)
(* ------------------------------------------------------------------ *)

let nmos_spec =
  {
    Circuit.Netlist.polarity = Circuit.Mos_model.Nmos;
    params = Circuit.Mos_model.default_nmos;
    w = 10e-6;
    l = 1e-6;
  }

let pmos_spec =
  {
    Circuit.Netlist.polarity = Circuit.Mos_model.Pmos;
    params = Circuit.Mos_model.default_pmos;
    w = 20e-6;
    l = 1e-6;
  }

let build_test_netlist () =
  let nl = Circuit.Netlist.create () in
  let vdd = Circuit.Netlist.node nl "vdd" in
  let vin = Circuit.Netlist.node nl "in" in
  let out = Circuit.Netlist.node nl "out" in
  let mid = Circuit.Netlist.node nl "mid" in
  Circuit.Netlist.add_vsource nl ~name:"VDD" ~pos:vdd ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc 5.0);
  Circuit.Netlist.add_mosfet nl ~name:"MN" ~drain:out ~gate:vin
    ~source:Circuit.Netlist.ground ~bulk:Circuit.Netlist.ground nmos_spec;
  Circuit.Netlist.add_mosfet nl ~name:"MP" ~drain:out ~gate:vin ~source:vdd
    ~bulk:vdd pmos_spec;
  Circuit.Netlist.add_resistor nl ~name:"R1" out mid 5_000.0;
  Circuit.Netlist.add_capacitor nl ~name:"C1" mid Circuit.Netlist.ground 1e-12;
  nl

let test_synthesize_passes_lvs () =
  let nl = build_test_netlist () in
  let cell = Synthesize.synthesize nl ~name:"inv_rc" in
  let ex = Extract.extract cell in
  Alcotest.(check (list string)) "LVS clean" [] (Extract.check_against ex nl)

let test_synthesize_metal_dominates () =
  (* The substitution argument requires metallization to dominate the
     conducting critical area. *)
  let nl = build_test_netlist () in
  let cell = Synthesize.synthesize nl ~name:"inv_rc" in
  let metal =
    Cell.layer_area cell Process.Layer.Metal1 + Cell.layer_area cell Process.Layer.Metal2
  in
  let other =
    Cell.layer_area cell Process.Layer.Poly + Cell.layer_area cell Process.Layer.Active
  in
  Alcotest.(check bool) "metal > poly+active" true (metal > other)

let test_synthesize_track_order_respected () =
  let nl = build_test_netlist () in
  let options =
    { Synthesize.default_options with track_order = [ "out"; "in" ] }
  in
  let cell = Synthesize.synthesize ~options nl ~name:"ordered" in
  (* Tracks are horizontal rows of wide metal1 segments; identify each
     row by its y and report nets in bottom-up order. *)
  let tracks =
    Array.to_list (Cell.shapes cell)
    |> List.filter_map (fun s ->
           match s.Cell.owner with
           | Cell.Wire net
             when Process.Layer.equal s.Cell.layer Process.Layer.Metal1
                  && Geometry.Rect.width s.Cell.rect
                     > Geometry.Rect.height s.Cell.rect * 3 ->
             Some (snd (Geometry.Rect.center s.Cell.rect), net)
           | Cell.Wire _ | Cell.Device_terminal _ | Cell.Gate _ | Cell.Channel _
           | Cell.Cut _ -> None)
    |> List.sort_uniq compare
    |> List.map snd
  in
  match tracks with
  | first :: second :: _ ->
    Alcotest.(check string) "first track" "out" first;
    Alcotest.(check string) "second track" "in" second
  | _ -> Alcotest.fail "expected at least two tracks"

let test_synthesize_no_drawable () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  Circuit.Netlist.add_vsource nl ~name:"V1" ~pos:a ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc 1.0);
  Alcotest.check_raises "nothing to draw"
    (Invalid_argument "Synthesize: no drawable device") (fun () ->
      ignore (Synthesize.synthesize nl ~name:"x"))

let test_synthesize_deterministic () =
  let nl = build_test_netlist () in
  let c1 = Synthesize.synthesize nl ~name:"a" in
  let c2 = Synthesize.synthesize nl ~name:"a" in
  Alcotest.(check int) "same shape count"
    (Array.length (Cell.shapes c1))
    (Array.length (Cell.shapes c2));
  Alcotest.(check int) "same area" (Cell.area c1) (Cell.area c2)


(* ------------------------------------------------------------------ *)
(* DRC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_drc_width_violation () =
  let b = Cell.builder "narrow" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:0 ~y:0 ~w:400 ~h:5_000) ~owner:(Cell.Wire "a"));
  let violations = Drc.check (Cell.finish b) in
  Alcotest.(check bool) "width flagged" true
    (List.exists (fun v -> v.Drc.rule = "width") violations)

let test_drc_spacing_violation () =
  let b = Cell.builder "close" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:0 ~y:0 ~w:2_000 ~h:2_000) ~owner:(Cell.Wire "a"));
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:2_500 ~y:0 ~w:2_000 ~h:2_000) ~owner:(Cell.Wire "b"));
  let violations = Drc.check (Cell.finish b) in
  Alcotest.(check bool) "spacing flagged" true
    (List.exists (fun v -> v.Drc.rule = "spacing") violations)

let test_drc_same_net_abutting_ok () =
  let b = Cell.builder "abut" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:0 ~y:0 ~w:2_000 ~h:2_000) ~owner:(Cell.Wire "a"));
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:2_000 ~y:0 ~w:2_000 ~h:2_000) ~owner:(Cell.Wire "a"));
  Alcotest.(check (list string)) "clean" []
    (List.map (fun v -> v.Drc.rule) (Drc.check (Cell.finish b)))

let test_drc_channel_bridges_spacing () =
  (* Two device terminals separated by the device's channel: one piece of
     material, not a spacing violation. *)
  let b = Cell.builder "device" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Active
       ~rect:(rect ~x:0 ~y:0 ~w:2_800 ~h:5_000)
       ~owner:(Cell.Device_terminal { device = "M1"; terminal = "s" }));
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Active
       ~rect:(rect ~x:2_800 ~y:0 ~w:1_000 ~h:5_000)
       ~owner:(Cell.Channel { device = "M1" }));
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Active
       ~rect:(rect ~x:3_800 ~y:0 ~w:2_800 ~h:5_000)
       ~owner:(Cell.Device_terminal { device = "M1"; terminal = "d" }));
  let spacing =
    List.filter (fun v -> v.Drc.rule = "spacing") (Drc.check (Cell.finish b))
  in
  Alcotest.(check int) "no spacing violation across channel" 0
    (List.length spacing)

let test_drc_enclosure_violation () =
  let b = Cell.builder "bare-cut" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Contact
       ~rect:(rect ~x:0 ~y:0 ~w:1_000 ~h:1_000)
       ~owner:(Cell.Cut { connects_up = true }));
  let violations = Drc.check (Cell.finish b) in
  Alcotest.(check bool) "enclosure flagged" true
    (List.exists (fun v -> v.Drc.rule = "enclosure") violations)

let test_drc_enclosure_union_coverage () =
  (* A via straddling two abutting metal1 segments is properly enclosed
     by their union. *)
  let b = Cell.builder "union" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:0 ~y:0 ~w:2_000 ~h:2_000) ~owner:(Cell.Wire "a"));
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:2_000 ~y:0 ~w:2_000 ~h:2_000) ~owner:(Cell.Wire "a"));
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal2
       ~rect:(rect ~x:0 ~y:0 ~w:4_000 ~h:2_000) ~owner:(Cell.Wire "a"));
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Via
       ~rect:(rect ~x:1_500 ~y:500 ~w:1_000 ~h:1_000)
       ~owner:(Cell.Cut { connects_up = true }));
  let enclosure =
    List.filter (fun v -> v.Drc.rule = "enclosure") (Drc.check (Cell.finish b))
  in
  Alcotest.(check int) "union covers" 0 (List.length enclosure)

let test_drc_synthesized_cells_clean () =
  let nl = build_test_netlist () in
  let cell = Synthesize.synthesize nl ~name:"drc_target" in
  Alcotest.(check int) "synthesizer output is DRC-clean" 0
    (List.length (Drc.check cell))

let test_drc_summary () =
  let b = Cell.builder "two" in
  ignore
    (Cell.add_shape b ~layer:Process.Layer.Metal1
       ~rect:(rect ~x:0 ~y:0 ~w:400 ~h:400) ~owner:(Cell.Wire "a"));
  let violations = Drc.check (Cell.finish b) in
  match Drc.summary violations with
  | (rule, count) :: _ ->
    Alcotest.(check string) "width tops" "width" rule;
    Alcotest.(check bool) "count positive" true (count > 0)
  | [] -> Alcotest.fail "expected violations"

(* ------------------------------------------------------------------ *)
(* QCheck: random RC ladders always synthesize clean                   *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~count:30 ~name:"synthesize+extract: random R ladders pass LVS"
      (int_range 1 12)
      (fun n ->
        let nl = Circuit.Netlist.create () in
        let top = Circuit.Netlist.node nl "top" in
        Circuit.Netlist.add_vsource nl ~name:"V" ~pos:top
          ~neg:Circuit.Netlist.ground (Circuit.Waveform.dc 5.0);
        let rec chain i prev =
          if i = n then
            Circuit.Netlist.add_resistor nl ~name:(Printf.sprintf "R%d" i) prev
              Circuit.Netlist.ground 1_000.0
          else begin
            let next = Circuit.Netlist.node nl (Printf.sprintf "n%d" i) in
            Circuit.Netlist.add_resistor nl ~name:(Printf.sprintf "R%d" i) prev
              next 1_000.0;
            chain (i + 1) next
          end
        in
        chain 1 top;
        let cell = Synthesize.synthesize nl ~name:"ladder" in
        Extract.check_against (Extract.extract cell) nl = []);
  ]

let suites =
  [
    ( "layout.cell",
      [
        Alcotest.test_case "builder" `Quick test_cell_builder;
        Alcotest.test_case "empty rejected" `Quick test_cell_empty_rejected;
      ] );
    ( "layout.extract",
      [
        Alcotest.test_case "same-layer merge" `Quick test_extract_same_layer_merge;
        Alcotest.test_case "cut connects" `Quick test_extract_cut_connects;
        Alcotest.test_case "channel isolates" `Quick test_extract_channel_isolates;
        Alcotest.test_case "removal splits net" `Quick test_extract_without_removal_splits;
        Alcotest.test_case "net names" `Quick test_extract_net_names;
      ] );
    ( "layout.synthesize",
      [
        Alcotest.test_case "passes LVS" `Quick test_synthesize_passes_lvs;
        Alcotest.test_case "metal dominates" `Quick test_synthesize_metal_dominates;
        Alcotest.test_case "track order" `Quick test_synthesize_track_order_respected;
        Alcotest.test_case "no drawable device" `Quick test_synthesize_no_drawable;
        Alcotest.test_case "deterministic" `Quick test_synthesize_deterministic;
      ] );
    ( "layout.drc",
      [
        Alcotest.test_case "width violation" `Quick test_drc_width_violation;
        Alcotest.test_case "spacing violation" `Quick test_drc_spacing_violation;
        Alcotest.test_case "same-net abutting ok" `Quick test_drc_same_net_abutting_ok;
        Alcotest.test_case "channel bridges spacing" `Quick test_drc_channel_bridges_spacing;
        Alcotest.test_case "enclosure violation" `Quick test_drc_enclosure_violation;
        Alcotest.test_case "enclosure union coverage" `Quick test_drc_enclosure_union_coverage;
        Alcotest.test_case "synthesized cells clean" `Quick test_drc_synthesized_cells_clean;
        Alcotest.test_case "summary" `Quick test_drc_summary;
      ] );
    "layout.properties", List.map QCheck_alcotest.to_alcotest qcheck_props;
  ]
