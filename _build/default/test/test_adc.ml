(* Tests for the dotest.adc case-study library. *)

let nominal = Process.Variation.nominal Process.Tech.cmos1um

let get = Macro.Macro_cell.get

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_consistency () =
  Alcotest.(check int) "levels" 256 Adc.Params.levels;
  Alcotest.(check (float 1e-9)) "lsb" ((3.0 -. 1.0) /. 256.0) Adc.Params.lsb;
  Alcotest.(check bool) "offset limit about one lsb" true
    (Adc.Params.offset_limit > Adc.Params.lsb *. 0.9);
  Alcotest.(check bool) "measure times inside second cycle" true
    (Adc.Params.mid_sample > Adc.Params.period
    && Adc.Params.decision_time < 2.0 *. Adc.Params.period)

(* ------------------------------------------------------------------ *)
(* Clocks                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_phases_complementary () =
  let t_mid i = (float_of_int (i - 1) +. 0.5) *. Adc.Params.phase in
  List.iter
    (fun i ->
      let raw = Circuit.Waveform.value (Adc.Clocks.raw_phase i) (t_mid i) in
      let direct = Circuit.Waveform.value (Adc.Clocks.direct_phase i) (t_mid i) in
      Alcotest.(check (float 1e-9)) "raw low in own phase" 0.0 raw;
      Alcotest.(check (float 1e-9)) "direct high in own phase" 5.0 direct;
      let other = t_mid (1 + (i mod 3)) in
      Alcotest.(check (float 1e-9)) "raw high elsewhere" 5.0
        (Circuit.Waveform.value (Adc.Clocks.raw_phase i) other))
    [ 1; 2; 3 ]

let test_clock_phases_periodic () =
  let w = Adc.Clocks.raw_phase 2 in
  let t = 1.5 *. Adc.Params.phase in
  Alcotest.(check (float 1e-9)) "periodic"
    (Circuit.Waveform.value w t)
    (Circuit.Waveform.value w (t +. Adc.Params.period))

(* ------------------------------------------------------------------ *)
(* Comparator                                                          *)
(* ------------------------------------------------------------------ *)

let comparator_golden =
  lazy
    (let macro = Adc.Comparator.macro Adc.Comparator.default_options in
     macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal))

let test_comparator_decisions () =
  let v = Lazy.force comparator_golden in
  Alcotest.(check (float 0.0)) "p8" 1.0 (get v "v:dec:p8");
  Alcotest.(check (float 0.0)) "m8" (-1.0) (get v "v:dec:m8");
  Alcotest.(check (float 0.0)) "p300" 1.0 (get v "v:dec:p300");
  Alcotest.(check (float 0.0)) "m300" (-1.0) (get v "v:dec:m300")

let test_comparator_phase_currents () =
  let v = Lazy.force comparator_golden in
  (* Sampling: only the (clk1-gated) flipflop leak flows; amplification
     draws the tail current instead; latching adds the latch tail. *)
  let sample = get v "ivdd:sample:hi" in
  let amp = get v "ivdd:amp:hi" in
  let latch = get v "ivdd:latch:hi" in
  Alcotest.(check bool) "sample leak-only" true (sample > 1e-6 && sample < 1e-3);
  Alcotest.(check bool) "amp draws tail" true (amp > 50e-6);
  Alcotest.(check bool) "latch adds more" true (latch > amp +. 20e-6)

let test_comparator_iddq_negligible () =
  let v = Lazy.force comparator_golden in
  Alcotest.(check bool) "digital quiescent ~0" true
    (Float.abs (get v "iddq:sample:hi") < 1e-6)

let test_comparator_dft_removes_leak () =
  let macro = Adc.Comparator.macro Adc.Comparator.dft_options in
  let v = macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal) in
  Alcotest.(check bool) "sampling current collapses" true
    (Float.abs (get v "ivdd:sample:hi") < 1e-6);
  Alcotest.(check (float 0.0)) "still decides" 1.0 (get v "v:dec:p300")

let track_rows cell =
  Array.to_list (Layout.Cell.shapes cell)
  |> List.filter_map (fun (s : Layout.Cell.shape) ->
         match s.owner with
         | Layout.Cell.Wire net
           when Process.Layer.equal s.layer Process.Layer.Metal1
                && Geometry.Rect.width s.rect > Geometry.Rect.height s.rect * 3 ->
           Some (snd (Geometry.Rect.center s.rect), net)
         | _ -> None)
  |> List.sort_uniq compare

let test_comparator_dft_separates_bias_tracks () =
  let adjacent options =
    let cell = Adc.Comparator.layout options in
    let rows = track_rows cell in
    let rec scan = function
      | (_, a) :: ((_, b) :: _ as rest) ->
        if (a = "biasn" && b = "biaslt") || (a = "biaslt" && b = "biasn") then
          true
        else scan rest
      | [ _ ] | [] -> false
    in
    scan rows
  in
  Alcotest.(check bool) "original adjacent" true
    (adjacent Adc.Comparator.default_options);
  Alcotest.(check bool) "DfT separated" false
    (adjacent Adc.Comparator.dft_options)

let test_comparator_layout_lvs () =
  let options = Adc.Comparator.default_options in
  let cell = Adc.Comparator.layout options in
  let ex = Layout.Extract.extract cell in
  Alcotest.(check (list string)) "clean" []
    (Layout.Extract.check_against ex (Adc.Comparator.layout_netlist options))

(* ------------------------------------------------------------------ *)
(* Other macros: LVS + golden behaviour                                *)
(* ------------------------------------------------------------------ *)

let test_all_macro_layouts_pass_lvs () =
  let cases =
    [
      "ladder", Adc.Ladder.layout_netlist ();
      "bias_gen", Adc.Bias_gen.layout_netlist ();
      "clock_gen", Adc.Clock_gen.layout_netlist ();
      "decoder", Adc.Decoder.layout_netlist ();
    ]
  in
  List.iter
    (fun (name, netlist) ->
      let macro =
        match name with
        | "ladder" -> Adc.Ladder.macro ()
        | "bias_gen" -> Adc.Bias_gen.macro ()
        | "clock_gen" -> Adc.Clock_gen.macro ()
        | _ -> Adc.Decoder.macro ()
      in
      let cell = Lazy.force macro.Macro.Macro_cell.cell in
      let ex = Layout.Extract.extract cell in
      Alcotest.(check (list string)) (name ^ " LVS") []
        (Layout.Extract.check_against ex netlist))
    cases

let test_all_macro_layouts_drc_clean () =
  List.iter
    (fun (macro : Macro.Macro_cell.t) ->
      let cell = Lazy.force macro.Macro.Macro_cell.cell in
      let violations = Layout.Drc.check cell in
      Alcotest.(check int)
        (macro.Macro.Macro_cell.name ^ " DRC clean")
        0 (List.length violations))
    [
      Adc.Comparator.macro Adc.Comparator.default_options;
      Adc.Comparator.macro Adc.Comparator.dft_options;
      Adc.Ladder.macro ();
      Adc.Bias_gen.macro ();
      Adc.Clock_gen.macro ();
      Adc.Decoder.macro ();
    ]

let test_ladder_taps_linear () =
  let macro = Adc.Ladder.macro () in
  let v = macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal) in
  Alcotest.(check (float 1e-6)) "tap16 middle" 2.0 (get v "v:tap16");
  Alcotest.(check (float 1e-6)) "tap8 quarter" 1.5 (get v "v:tap8");
  Alcotest.(check (float 1e-6)) "strings agree" (get v "v:tap24") (get v "v:ftap24")

let test_ladder_current_balance () =
  let macro = Adc.Ladder.macro () in
  let v = macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal) in
  Alcotest.(check (float 1e-9)) "in = out" (get v "iin:vrh") (-.get v "iin:vrl");
  Alcotest.(check bool) "about 1 mA" true
    (Float.abs (get v "iin:vrh" -. 1e-3) < 1e-4)

let test_ladder_serpentine_placement () =
  (* Folded placement: the second drawn resistor is electrically half the
     string away from the first. *)
  let nl = Adc.Ladder.layout_netlist () in
  match Circuit.Netlist.device_names nl with
  | first :: second :: _ ->
    Alcotest.(check string) "first segment" "Rtap0" first;
    Alcotest.(check string) "fold partner next" "Rtap16" second
  | _ -> Alcotest.fail "no devices"

let test_bias_gen_levels () =
  let macro = Adc.Bias_gen.macro () in
  let v = macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal) in
  Alcotest.(check bool) "biasn ~1.5" true (Float.abs (get v "v:biasn" -. 1.5) < 0.05);
  Alcotest.(check bool) "biaslt just above" true
    (get v "v:biaslt" -. get v "v:biasn" > 0.02
    && get v "v:biaslt" -. get v "v:biasn" < 0.09);
  Alcotest.(check (float 1e-6)) "biasff divider" 0.84 (get v "v:biasff")

let test_clock_gen_toggles () =
  let macro = Adc.Clock_gen.macro () in
  let v = macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal) in
  List.iter
    (fun i ->
      Alcotest.(check bool) "rail to rail" true
        (get v (Printf.sprintf "v:clk%d:hi" i) > 4.5
        && get v (Printf.sprintf "v:clk%d:lo" i) < 0.5))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "IDDQ ~0" true (Float.abs (get v "iddq:phase1") < 1e-6)

let test_decoder_codes () =
  let macro = Adc.Decoder.macro () in
  let v = macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal) in
  List.iter
    (fun k ->
      let bit b = if get v (Printf.sprintf "v:b%d:%d" b k) > 2.5 then 1 else 0 in
      let code = bit 0 lor (bit 1 lsl 1) lor (bit 2 lsl 2) in
      Alcotest.(check int) (Printf.sprintf "code %d" k) (Adc.Decoder.expected_code k) code)
    (List.init 8 Fun.id)

(* ------------------------------------------------------------------ *)
(* Flash_adc behavioural model                                         *)
(* ------------------------------------------------------------------ *)

let prng () = Util.Prng.create 21

let test_flash_ideal_monotone () =
  let p = prng () in
  let codes =
    List.map
      (fun i ->
        Adc.Flash_adc.convert Adc.Flash_adc.ideal p
          (1.0 +. (float_of_int i *. 0.01)))
      (List.init 200 Fun.id)
  in
  let monotone =
    List.for_all2 (fun a b -> b >= a)
      (List.filteri (fun i _ -> i < 199) codes)
      (List.tl codes)
  in
  Alcotest.(check bool) "monotone" true monotone;
  Alcotest.(check int) "bottom" 0 (Adc.Flash_adc.convert Adc.Flash_adc.ideal p 0.5);
  Alcotest.(check int) "top" 255 (Adc.Flash_adc.convert Adc.Flash_adc.ideal p 3.5)

let test_flash_ideal_no_missing_codes () =
  Alcotest.(check (list int)) "none" []
    (Adc.Flash_adc.missing_codes Adc.Flash_adc.ideal (prng ()) ~samples:2000)

let test_flash_offset_loses_one_code () =
  let adc =
    Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
      (Adc.Flash_adc.Functional (1.5 *. Adc.Params.lsb))
  in
  Alcotest.(check (list int)) "code 101" [ 101 ]
    (Adc.Flash_adc.missing_codes adc (prng ()) ~samples:4000)

let test_flash_small_offset_harmless () =
  let adc =
    Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
      (Adc.Flash_adc.Functional (0.4 *. Adc.Params.lsb))
  in
  Alcotest.(check (list int)) "none" []
    (Adc.Flash_adc.missing_codes adc (prng ()) ~samples:4000)

let test_flash_stuck_masks_codes () =
  let adc =
    Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100 Adc.Flash_adc.Stuck_high
  in
  let missing = Adc.Flash_adc.missing_codes adc (prng ()) ~samples:4000 in
  Alcotest.(check bool) "codes below masked" true (List.mem 50 missing);
  Alcotest.(check bool) "codes above fine" true (not (List.mem 200 missing))

let test_flash_reference_shift () =
  let adc =
    Adc.Flash_adc.with_reference_shift Adc.Flash_adc.ideal ~from_tap:128
      ~shift:(2.0 *. Adc.Params.lsb)
  in
  let missing = Adc.Flash_adc.missing_codes adc (prng ()) ~samples:4000 in
  Alcotest.(check bool) "ladder fault loses codes" true (missing <> [])

let test_flash_reference_spacing () =
  Alcotest.(check (float 1e-12)) "lsb spacing" Adc.Params.lsb
    (Adc.Flash_adc.reference 10 -. Adc.Flash_adc.reference 9)

let suites =
  [
    ( "adc.params",
      [ Alcotest.test_case "consistency" `Quick test_params_consistency ] );
    ( "adc.clocks",
      [
        Alcotest.test_case "complementary" `Quick test_clock_phases_complementary;
        Alcotest.test_case "periodic" `Quick test_clock_phases_periodic;
      ] );
    ( "adc.comparator",
      [
        Alcotest.test_case "decisions" `Slow test_comparator_decisions;
        Alcotest.test_case "phase currents" `Slow test_comparator_phase_currents;
        Alcotest.test_case "iddq negligible" `Slow test_comparator_iddq_negligible;
        Alcotest.test_case "dft removes leak" `Slow test_comparator_dft_removes_leak;
        Alcotest.test_case "dft separates bias tracks" `Quick
          test_comparator_dft_separates_bias_tracks;
        Alcotest.test_case "layout LVS" `Quick test_comparator_layout_lvs;
      ] );
    ( "adc.macros",
      [
        Alcotest.test_case "all layouts LVS" `Quick test_all_macro_layouts_pass_lvs;
        Alcotest.test_case "all layouts DRC clean" `Quick test_all_macro_layouts_drc_clean;
        Alcotest.test_case "ladder taps" `Quick test_ladder_taps_linear;
        Alcotest.test_case "ladder current" `Quick test_ladder_current_balance;
        Alcotest.test_case "ladder serpentine" `Quick test_ladder_serpentine_placement;
        Alcotest.test_case "bias levels" `Quick test_bias_gen_levels;
        Alcotest.test_case "clock toggles" `Quick test_clock_gen_toggles;
        Alcotest.test_case "decoder codes" `Quick test_decoder_codes;
      ] );
    ( "adc.flash",
      [
        Alcotest.test_case "monotone" `Quick test_flash_ideal_monotone;
        Alcotest.test_case "no missing codes" `Quick test_flash_ideal_no_missing_codes;
        Alcotest.test_case "offset loses one code" `Quick test_flash_offset_loses_one_code;
        Alcotest.test_case "small offset harmless" `Quick test_flash_small_offset_harmless;
        Alcotest.test_case "stuck masks codes" `Quick test_flash_stuck_masks_codes;
        Alcotest.test_case "reference shift" `Quick test_flash_reference_shift;
        Alcotest.test_case "reference spacing" `Quick test_flash_reference_spacing;
      ] );
  ]
