(* Tests for the dotest.macro library: signatures, good space, evaluate. *)

let tech = Process.Tech.cmos1um

(* A toy macro: a resistor divider whose ratio shifts with the process
   sample; measurements expose the mid voltage and the supply current. *)
let toy_build (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  let vin = Circuit.Netlist.node nl "in" in
  let mid = Circuit.Netlist.node nl "mid" in
  Circuit.Netlist.add_vsource nl ~name:"VDDA" ~pos:vin ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc s.Process.Variation.vdd);
  Circuit.Netlist.add_resistor nl ~name:"R1" vin mid
    (1_000.0 *. s.Process.Variation.resistance_factor);
  Circuit.Netlist.add_resistor nl ~name:"R2" mid Circuit.Netlist.ground
    (3_000.0 *. s.Process.Variation.resistance_factor);
  nl

let toy_measure nl =
  let sol = Circuit.Engine.dc_operating_point nl in
  [
    "v:mid", Circuit.Engine.voltage sol (Circuit.Netlist.node nl "mid");
    "ivdd:supply", Circuit.Engine.source_current sol "VDDA";
  ]

let toy_classify ~golden ~faulty =
  let g = Macro.Macro_cell.get golden "v:mid" in
  let f = Macro.Macro_cell.get faulty "v:mid" in
  if Float.abs (f -. g) > 1.0 then Macro.Signature.Output_stuck_at
  else if Float.abs (f -. g) > 0.05 then Macro.Signature.Offset_too_large
  else Macro.Signature.No_voltage_deviation

let toy_macro () =
  {
    Macro.Macro_cell.name = "toy divider";
    build = toy_build;
    cell = lazy (Layout.Synthesize.synthesize (toy_build (Process.Variation.nominal tech)) ~name:"toy");
    measure = toy_measure;
    classify_voltage = toy_classify;
    instances = 1;
  }

(* ------------------------------------------------------------------ *)
(* Signature                                                           *)
(* ------------------------------------------------------------------ *)

let test_signature_prefixes () =
  let check name expect =
    Alcotest.(check bool) name true
      (Macro.Signature.current_kind_of_measurement name = expect)
  in
  check "ivdd:sample" (Some Macro.Signature.IVdd);
  check "iddq:phase1" (Some Macro.Signature.IDDQ);
  check "iin:vin:hi" (Some Macro.Signature.Iinput);
  check "v:dec:p8" None;
  check "ivd" None

let test_signature_names_unique () =
  let names = List.map Macro.Signature.voltage_name Macro.Signature.all_voltage in
  Alcotest.(check int) "distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Good_space                                                          *)
(* ------------------------------------------------------------------ *)

let compile_good ?(n = 24) ?k () =
  Macro.Good_space.compile ~n ?k ~tech (toy_macro ()) (Util.Prng.create 5)

let test_good_space_contains_nominal () =
  let good = compile_good () in
  let nominal = toy_measure (toy_build (Process.Variation.nominal tech)) in
  Alcotest.(check (list string)) "nominal inside" []
    (Macro.Good_space.deviating good nominal)

let test_good_space_flags_outlier () =
  let good = compile_good () in
  Alcotest.(check bool) "far voltage flagged" true
    (List.mem "v:mid"
       (Macro.Good_space.deviating good [ "v:mid", 0.0; "ivdd:supply", 2.5e-3 ]))

let test_good_space_current_floor () =
  (* Fault-free supply current ~1.25 mA with an 8 % sigma resistor spread;
     a 0.1 uA shift must stay inside the window (the 2 uA floor). *)
  let good = compile_good () in
  match Macro.Good_space.window good "ivdd:supply" with
  | None -> Alcotest.fail "no window"
  | Some w ->
    Alcotest.(check bool) "floor honoured" true
      (w.Util.Stats.high -. w.Util.Stats.low >= 4e-6)

let test_good_space_deviating_currents () =
  let good = compile_good () in
  let kinds =
    Macro.Good_space.deviating_currents good
      [ "v:mid", 3.75; "ivdd:supply", 0.5 ]
  in
  Alcotest.(check bool) "current kind mapped" true
    (kinds = [ Macro.Signature.IVdd ])

let test_good_space_widen () =
  let good = compile_good () in
  let wide = Macro.Good_space.widen good ~name:"ivdd:supply" ~by:10.0 in
  Alcotest.(check (list string)) "everything inside now" []
    (Macro.Good_space.deviating wide [ "ivdd:supply", 5.0 ])

let test_good_space_sigma_scales () =
  let narrow = compile_good ~k:1.0 () in
  let wide = compile_good ~k:6.0 () in
  let width t =
    match Macro.Good_space.window t "v:mid" with
    | Some w -> w.Util.Stats.high -. w.Util.Stats.low
    | None -> Alcotest.fail "no window"
  in
  Alcotest.(check bool) "wider k, wider window" true (width wide > width narrow)

(* ------------------------------------------------------------------ *)
(* Evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let mech = Process.Defect_stats.Extra_material Process.Layer.Metal1

let fault_class fault =
  {
    Fault.Collapse.representative =
      { Fault.Types.fault; severity = Fault.Types.Catastrophic; mechanism = mech };
    count = 3;
  }

let test_evaluate_detects_hard_short () =
  let macro = toy_macro () in
  let good = compile_good () in
  let nominal = toy_build (Process.Variation.nominal tech) in
  let golden = toy_measure nominal in
  let fc =
    fault_class
      (Fault.Types.Bridge
         { net_a = "mid"; net_b = "0"; resistance = 1.0; capacitance = None;
           origin = Fault.Types.Short })
  in
  let o = Macro.Evaluate.evaluate_class ~macro ~nominal ~good ~golden fc in
  Alcotest.(check bool) "stuck" true
    (o.signature.Macro.Signature.voltage = Macro.Signature.Output_stuck_at);
  Alcotest.(check bool) "IVdd deviates" true
    (List.mem Macro.Signature.IVdd o.signature.Macro.Signature.currents);
  Alcotest.(check bool) "simulation fine" false
    (Macro.Evaluate.simulation_failed o);
  Alcotest.(check bool) "converged first try" true
    (o.status = Macro.Evaluate.Converged)

let test_evaluate_benign_fault () =
  let macro = toy_macro () in
  let good = compile_good () in
  let nominal = toy_build (Process.Variation.nominal tech) in
  let golden = toy_measure nominal in
  (* A 10 Mohm bridge moves nothing measurable. *)
  let fc =
    fault_class
      (Fault.Types.Bridge
         { net_a = "mid"; net_b = "0"; resistance = 1e7; capacitance = None;
           origin = Fault.Types.Short })
  in
  let o = Macro.Evaluate.evaluate_class ~macro ~nominal ~good ~golden fc in
  Alcotest.(check bool) "no deviation" true
    (o.signature = Macro.Signature.fault_free)

let test_evaluate_sim_failure_is_gross () =
  let macro =
    { (toy_macro ()) with
      Macro.Macro_cell.measure =
        (fun _ -> raise (Circuit.Engine.No_convergence "forced"))
    }
  in
  let good = compile_good () in
  let nominal = toy_build (Process.Variation.nominal tech) in
  let golden = toy_measure nominal in
  let fc =
    fault_class
      (Fault.Types.Bridge
         { net_a = "mid"; net_b = "0"; resistance = 1.0; capacitance = None;
           origin = Fault.Types.Short })
  in
  let o = Macro.Evaluate.evaluate_class ~macro ~nominal ~good ~golden fc in
  Alcotest.(check bool) "flagged" true (Macro.Evaluate.simulation_failed o);
  (match o.status with
  | Macro.Evaluate.Unresolved { attempts; error } ->
    (* default: one escalated retry after the first failure *)
    Alcotest.(check int) "attempts" 2 attempts;
    Alcotest.(check bool) "error recorded" true (error = "forced")
  | Macro.Evaluate.Converged | Macro.Evaluate.Recovered _ ->
    Alcotest.fail "expected Unresolved");
  Alcotest.(check bool) "stuck with all currents" true
    (o.signature.Macro.Signature.voltage = Macro.Signature.Output_stuck_at
    && o.signature.Macro.Signature.currents = Macro.Signature.all_current)

(* Eight copies of a benign class, indexes 0..7; with fraction 1.0 every
   index is injected — about half persistently (Unresolved), the rest
   only on the first attempt (Recovered on the escalated retry). *)
let injected_classes =
  List.init 8 (fun _ ->
      fault_class
        (Fault.Types.Bridge
           { net_a = "mid"; net_b = "0"; resistance = 1e7; capacitance = None;
             origin = Fault.Types.Short }))

let test_evaluate_injection_exercises_both_paths () =
  let macro = toy_macro () in
  let good = compile_good () in
  let inject = { Macro.Evaluate.seed = 42; fraction = 1.0 } in
  let outcomes = Macro.Evaluate.run ~inject ~macro ~good injected_classes in
  let recovered, unresolved =
    List.fold_left
      (fun (r, u) (o : Macro.Evaluate.outcome) ->
        match o.status with
        | Macro.Evaluate.Recovered { attempts } ->
          Alcotest.(check int) "recovered on retry" 2 attempts;
          r + 1, u
        | Macro.Evaluate.Unresolved { attempts; _ } ->
          Alcotest.(check int) "exhausted retries" 2 attempts;
          r, u + 1
        | Macro.Evaluate.Converged -> Alcotest.fail "injection missed a class")
      (0, 0) outcomes
  in
  Alcotest.(check bool) "both paths hit" true (recovered > 0 && unresolved > 0);
  Alcotest.(check int) "all classes accounted" 8 (recovered + unresolved)

let test_evaluate_injection_jobs_invariant () =
  let macro = toy_macro () in
  let good = compile_good () in
  let inject = { Macro.Evaluate.seed = 42; fraction = 0.5 } in
  let statuses jobs =
    List.map
      (fun (o : Macro.Evaluate.outcome) -> o.status)
      (Macro.Evaluate.run ~jobs ~inject ~macro ~good injected_classes)
  in
  Alcotest.(check bool) "same statuses at jobs 1 and 4" true
    (statuses 1 = statuses 4)

let test_evaluate_no_retries_means_one_attempt () =
  let macro = toy_macro () in
  let good = compile_good () in
  let inject = { Macro.Evaluate.seed = 42; fraction = 1.0 } in
  let outcomes =
    Macro.Evaluate.run ~retries:0 ~inject ~macro ~good injected_classes
  in
  List.iter
    (fun (o : Macro.Evaluate.outcome) ->
      match o.status with
      | Macro.Evaluate.Unresolved { attempts; _ } ->
        Alcotest.(check int) "single attempt" 1 attempts
      | Macro.Evaluate.Converged | Macro.Evaluate.Recovered _ ->
        Alcotest.fail "with zero retries every injected class is unresolved")
    outcomes

let test_evaluate_strict_fails_fast_with_index () =
  let macro = toy_macro () in
  let good = compile_good () in
  let inject = { Macro.Evaluate.seed = 42; fraction = 1.0 } in
  (* The reference (contained) run tells us the lowest unresolved index. *)
  let outcomes = Macro.Evaluate.run ~inject ~macro ~good injected_classes in
  let first_unresolved =
    let rec scan i = function
      | [] -> Alcotest.fail "no unresolved class in reference run"
      | o :: rest ->
        if Macro.Evaluate.simulation_failed o then i else scan (i + 1) rest
    in
    scan 0 outcomes
  in
  let check_strict jobs =
    match Macro.Evaluate.run ~jobs ~strict:true ~inject ~macro ~good
            injected_classes
    with
    | _ -> Alcotest.fail "strict run must raise"
    | exception
        Util.Pool.Worker_failure
          (i, Macro.Evaluate.Simulation_failed { index; attempts; _ }) ->
      Alcotest.(check int) "wrapped index" first_unresolved i;
      Alcotest.(check int) "payload index" first_unresolved index;
      Alcotest.(check int) "attempts reported" 2 attempts
  in
  check_strict 1;
  check_strict 4

let test_evaluate_fatal_exception_not_contained () =
  let macro =
    { (toy_macro ()) with
      Macro.Macro_cell.measure = (fun _ -> failwith "programming error")
    }
  in
  let good = compile_good () in
  let nominal = toy_build (Process.Variation.nominal tech) in
  let golden = toy_measure nominal in
  let fc =
    fault_class
      (Fault.Types.Bridge
         { net_a = "mid"; net_b = "0"; resistance = 1.0; capacitance = None;
           origin = Fault.Types.Short })
  in
  match
    Macro.Evaluate.evaluate_class ~retries:3 ~macro ~nominal ~good ~golden fc
  with
  | _ -> Alcotest.fail "fatal exception must propagate"
  | exception Failure msg ->
    Alcotest.(check string) "original exception" "programming error" msg

let test_voltage_table_sums_to_one () =
  let macro = toy_macro () in
  let good = compile_good () in
  let classes =
    [
      fault_class
        (Fault.Types.Bridge
           { net_a = "mid"; net_b = "0"; resistance = 1.0; capacitance = None;
             origin = Fault.Types.Short });
      fault_class
        (Fault.Types.Bridge
           { net_a = "in"; net_b = "mid"; resistance = 1.0; capacitance = None;
             origin = Fault.Types.Short });
    ]
  in
  let outcomes = Macro.Evaluate.run ~macro ~good classes in
  let table = Macro.Evaluate.voltage_table outcomes in
  let sum = List.fold_left (fun acc (_, share) -> acc +. share) 0.0 table in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 sum;
  let currents, none = Macro.Evaluate.current_table outcomes in
  Alcotest.(check bool) "current shares within [0,1]" true
    (List.for_all (fun (_, share) -> share >= 0. && share <= 1.) currents
    && none >= 0. && none <= 1.)

let test_area_weight_scales_with_instances () =
  let one = toy_macro () in
  let many = { one with Macro.Macro_cell.instances = 5 } in
  Alcotest.(check (float 1e-6)) "5x weight"
    (5.0 *. Macro.Macro_cell.area_weight one)
    (Macro.Macro_cell.area_weight many)

let suites =
  [
    ( "macro.signature",
      [
        Alcotest.test_case "prefixes" `Quick test_signature_prefixes;
        Alcotest.test_case "names unique" `Quick test_signature_names_unique;
      ] );
    ( "macro.good_space",
      [
        Alcotest.test_case "contains nominal" `Quick test_good_space_contains_nominal;
        Alcotest.test_case "flags outlier" `Quick test_good_space_flags_outlier;
        Alcotest.test_case "current floor" `Quick test_good_space_current_floor;
        Alcotest.test_case "deviating currents" `Quick test_good_space_deviating_currents;
        Alcotest.test_case "widen" `Quick test_good_space_widen;
        Alcotest.test_case "sigma scales window" `Quick test_good_space_sigma_scales;
      ] );
    ( "macro.evaluate",
      [
        Alcotest.test_case "hard short detected" `Quick test_evaluate_detects_hard_short;
        Alcotest.test_case "benign fault" `Quick test_evaluate_benign_fault;
        Alcotest.test_case "sim failure is gross" `Quick test_evaluate_sim_failure_is_gross;
        Alcotest.test_case "injection: both paths" `Quick test_evaluate_injection_exercises_both_paths;
        Alcotest.test_case "injection: jobs invariant" `Quick test_evaluate_injection_jobs_invariant;
        Alcotest.test_case "zero retries" `Quick test_evaluate_no_retries_means_one_attempt;
        Alcotest.test_case "strict fails fast" `Quick test_evaluate_strict_fails_fast_with_index;
        Alcotest.test_case "fatal not contained" `Quick test_evaluate_fatal_exception_not_contained;
        Alcotest.test_case "voltage table sums" `Quick test_voltage_table_sums_to_one;
        Alcotest.test_case "area weight" `Quick test_area_weight_scales_with_instances;
      ] );
  ]
