(* Integration tests for the dotest.core pipeline and global scaling.

   These exercise the whole methodology end to end on reduced defect
   counts, so they are registered as `Slow (run with `dune runtest`, can
   be filtered with ALCOTEST_QUICK_TESTS). *)

let small_config =
  Core.Pipeline.Config.(default |> with_defects 4_000 |> with_good_space_dies 12)

let comparator_analysis =
  lazy
    (Core.Pipeline.analyze small_config
       (Adc.Comparator.macro Adc.Comparator.default_options))

let test_pipeline_produces_outcomes () =
  let a = Lazy.force comparator_analysis in
  Alcotest.(check bool) "found faults" true (a.Core.Pipeline.effective > 0);
  Alcotest.(check int) "outcome per class"
    (List.length a.Core.Pipeline.classes_catastrophic)
    (List.length a.Core.Pipeline.outcomes_catastrophic);
  Alcotest.(check bool) "non-catastrophic derived" true
    (a.Core.Pipeline.classes_non_catastrophic <> [])

let test_pipeline_deterministic () =
  let a = Lazy.force comparator_analysis in
  let b =
    Core.Pipeline.analyze small_config
      (Adc.Comparator.macro Adc.Comparator.default_options)
  in
  Alcotest.(check int) "same effective" a.Core.Pipeline.effective
    b.Core.Pipeline.effective;
  Alcotest.(check int) "same fault count"
    (Core.Pipeline.fault_count a Fault.Types.Catastrophic)
    (Core.Pipeline.fault_count b Fault.Types.Catastrophic);
  let coverage x =
    Testgen.Overlap.coverage
      (Testgen.Overlap.venn_of_partition
         (Testgen.Overlap.partition x.Core.Pipeline.outcomes_catastrophic))
  in
  Alcotest.(check (float 1e-12)) "same coverage" (coverage a) (coverage b)

let test_pipeline_jobs_invariant () =
  (* The hard determinism requirement of the parallel layer: the analysis
     must be bit-identical whatever the worker-domain count. *)
  let with_jobs jobs =
    let saved = Util.Pool.jobs () in
    Util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Util.Pool.set_jobs saved)
      (fun () ->
        Core.Pipeline.analyze small_config
          (Adc.Comparator.macro Adc.Comparator.default_options))
  in
  let a = with_jobs 1 in
  let b = with_jobs 4 in
  Alcotest.(check int) "same sprinkled" a.Core.Pipeline.sprinkled
    b.Core.Pipeline.sprinkled;
  Alcotest.(check int) "same effective" a.Core.Pipeline.effective
    b.Core.Pipeline.effective;
  Alcotest.(check bool) "same catastrophic classes" true
    (a.Core.Pipeline.classes_catastrophic
    = b.Core.Pipeline.classes_catastrophic);
  Alcotest.(check bool) "same non-catastrophic classes" true
    (a.Core.Pipeline.classes_non_catastrophic
    = b.Core.Pipeline.classes_non_catastrophic);
  let signatures x =
    List.map
      (fun (o : Macro.Evaluate.outcome) -> o.signature)
      x.Core.Pipeline.outcomes_catastrophic
  in
  Alcotest.(check bool) "same signatures" true (signatures a = signatures b);
  let render x =
    Util.Table.render (Core.Report.table2 x)
    ^ Util.Table.render (Core.Report.table3 x)
  in
  Alcotest.(check string) "byte-identical coverage tables" (render a) (render b)

let test_pipeline_seed_changes_results () =
  let a = Lazy.force comparator_analysis in
  let b =
    Core.Pipeline.analyze (Core.Pipeline.Config.with_seed 77 small_config)
      (Adc.Comparator.macro Adc.Comparator.default_options)
  in
  (* Different defect placement: almost surely different instance count. *)
  Alcotest.(check bool) "different sample" true
    (Core.Pipeline.fault_count a Fault.Types.Catastrophic
     <> Core.Pipeline.fault_count b Fault.Types.Catastrophic
    || a.Core.Pipeline.effective <> b.Core.Pipeline.effective)

let test_pipeline_comparator_shape () =
  (* The load-bearing qualitative claims of the paper, on the comparator:
     shorts dominate, stuck-at is the leading voltage signature, a
     nontrivial share of faults is only current-detectable. *)
  let a = Lazy.force comparator_analysis in
  (match Fault.Collapse.by_type a.Core.Pipeline.classes_catastrophic with
  | (ft, share, _) :: _ ->
    Alcotest.(check string) "shorts dominate" "short"
      (Fault.Types.fault_type_name ft);
    Alcotest.(check bool) "heavily" true (share > 0.7)
  | [] -> Alcotest.fail "no faults");
  let voltage = Macro.Evaluate.voltage_table a.Core.Pipeline.outcomes_catastrophic in
  let stuck = List.assoc Macro.Signature.Output_stuck_at voltage in
  List.iter
    (fun (v, share) ->
      if v <> Macro.Signature.Output_stuck_at then
        Alcotest.(check bool) "stuck leads" true (stuck >= share))
    voltage;
  let venn =
    Testgen.Overlap.venn_of_partition
      (Testgen.Overlap.partition a.Core.Pipeline.outcomes_catastrophic)
  in
  Alcotest.(check bool) "current-only matters" true
    (venn.Testgen.Overlap.current_only > 0.1);
  Alcotest.(check bool) "coverage high but imperfect" true
    (let c = Testgen.Overlap.coverage venn in
     c > 0.75 && c < 1.0)

(* --- resilience / run health ------------------------------------------ *)

let injected_config =
  Core.Pipeline.Config.with_inject_failures (Some 0.2) small_config

let injected_analysis =
  lazy
    (Core.Pipeline.analyze injected_config
       (Adc.Comparator.macro Adc.Comparator.default_options))

let test_pipeline_clean_run_health () =
  let a = Lazy.force comparator_analysis in
  let h = a.Core.Pipeline.health in
  Alcotest.(check int) "no retries" 0 h.Core.Pipeline.retried;
  Alcotest.(check int) "no degradation" 0 h.Core.Pipeline.degraded;
  Alcotest.(check int) "no unresolved" 0 h.Core.Pipeline.unresolved;
  Alcotest.(check int) "all classes counted"
    (List.length a.Core.Pipeline.outcomes_catastrophic
    + List.length a.Core.Pipeline.outcomes_non_catastrophic)
    h.Core.Pipeline.classes;
  Alcotest.(check bool) "stages timed" true
    (List.map fst h.Core.Pipeline.stage_seconds
    = [ "sprinkle"; "collapse"; "good-space"; "evaluate-cat"; "evaluate-ncat" ])

let test_pipeline_injected_run_completes_degraded () =
  (* With 20 % of the simulations forced to fail, the run must complete —
     no exception — and report nonzero unresolved and recovered counts. *)
  let a = Lazy.force injected_analysis in
  let h = a.Core.Pipeline.health in
  Alcotest.(check bool) "unresolved classes reported" true
    (h.Core.Pipeline.unresolved > 0);
  Alcotest.(check bool) "recovered classes reported" true
    (h.Core.Pipeline.degraded > 0);
  Alcotest.(check bool) "retried covers both" true
    (h.Core.Pipeline.retried
    >= h.Core.Pipeline.degraded + h.Core.Pipeline.unresolved)

let test_pipeline_injected_health_jobs_invariant () =
  let with_jobs jobs =
    let saved = Util.Pool.jobs () in
    Util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Util.Pool.set_jobs saved)
      (fun () ->
        Core.Pipeline.analyze injected_config
          (Adc.Comparator.macro Adc.Comparator.default_options))
  in
  let a = with_jobs 1 in
  let b = with_jobs 4 in
  let counters x =
    let h = x.Core.Pipeline.health in
    ( h.Core.Pipeline.classes,
      h.Core.Pipeline.retried,
      h.Core.Pipeline.degraded,
      h.Core.Pipeline.unresolved )
  in
  Alcotest.(check bool) "same health counters" true (counters a = counters b);
  let render x =
    Util.Table.render (Core.Report.run_health (Core.Pipeline.run_health [ x ]))
  in
  Alcotest.(check string) "byte-identical health table" (render a) (render b);
  let bounds x =
    let g = Core.Global.combine [ x ] in
    ( Core.Global.coverage_bounds g Fault.Types.Catastrophic,
      Core.Global.coverage_bounds g Fault.Types.Non_catastrophic )
  in
  Alcotest.(check bool) "identical bounds" true (bounds a = bounds b)

let test_pipeline_bounds_bracket_clean_coverage () =
  let clean = Lazy.force comparator_analysis in
  let injected = Lazy.force injected_analysis in
  List.iter
    (fun severity ->
      let reference =
        Core.Global.coverage (Core.Global.combine [ clean ]) severity
      in
      let pessimistic, optimistic =
        Core.Global.coverage_bounds (Core.Global.combine [ injected ]) severity
      in
      Alcotest.(check bool)
        (Printf.sprintf "bracket (%.4f <= %.4f <= %.4f)" pessimistic reference
           optimistic)
        true
        (pessimistic <= reference +. 1e-9 && reference <= optimistic +. 1e-9))
    [ Fault.Types.Catastrophic; Fault.Types.Non_catastrophic ]

let test_pipeline_clean_bounds_collapse () =
  let g = Core.Global.combine [ Lazy.force comparator_analysis ] in
  let pessimistic, optimistic =
    Core.Global.coverage_bounds g Fault.Types.Catastrophic
  in
  let c = Core.Global.coverage g Fault.Types.Catastrophic in
  Alcotest.(check (float 1e-12)) "pessimistic = coverage" c pessimistic;
  Alcotest.(check (float 1e-12)) "optimistic = coverage" c optimistic

let test_pipeline_strict_fails_fast () =
  match
    Core.Pipeline.analyze
      (Core.Pipeline.Config.with_strict true injected_config)
      (Adc.Comparator.macro Adc.Comparator.default_options)
  with
  | _ -> Alcotest.fail "strict injected run must raise"
  | exception
      Util.Pool.Worker_failure
        (_, Macro.Evaluate.Simulation_failed { index; _ }) ->
    Alcotest.(check bool) "failing class index attached" true (index >= 0)

let test_pipeline_failure_budget () =
  match
    Core.Pipeline.analyze
      (Core.Pipeline.Config.with_failure_budget (Some 0) injected_config)
      (Adc.Comparator.macro Adc.Comparator.default_options)
  with
  | _ -> Alcotest.fail "zero budget must be exhausted"
  | exception Util.Resilience.Budget_exhausted { failures; limit } ->
    Alcotest.(check int) "limit echoed" 0 limit;
    Alcotest.(check bool) "failures counted" true (failures > 0)

let test_run_health_report_renders () =
  let a = Lazy.force injected_analysis in
  let health = Core.Pipeline.run_health [ a ] in
  Alcotest.(check int) "totals match" health.Core.Pipeline.total_unresolved
    a.Core.Pipeline.health.Core.Pipeline.unresolved;
  let s = Util.Table.render (Core.Report.run_health health) in
  Alcotest.(check bool) "renders" true (String.length s > 50)

(* --- telemetry --------------------------------------------------------- *)

let telemetry_config =
  Core.Pipeline.Config.(
    small_config |> with_defects 2_000 |> with_good_space_dies 8)

(* Run one analysis with an In_memory sink at a given worker count and
   return the aggregated metrics. Durations never enter the aggregate,
   so the result must not depend on [jobs]. *)
let metrics_with_jobs ~config jobs =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Util.Pool.set_jobs saved)
    (fun () ->
      let memory = Util.Telemetry.in_memory () in
      let config =
        Core.Pipeline.Config.with_telemetry
          (Util.Telemetry.memory_sink memory)
          config
      in
      let _ =
        Core.Pipeline.analyze config
          (Adc.Comparator.macro Adc.Comparator.default_options)
      in
      Util.Telemetry.metrics memory)

let check_metrics_jobs_invariant config =
  let a = metrics_with_jobs ~config 1 in
  let b = metrics_with_jobs ~config 4 in
  (* Compare through the user-facing rendering: byte-identical tables. *)
  let render m = Core.Report.render ~format:`Text (Core.Report.metrics m) in
  Alcotest.(check string) "byte-identical metrics" (render a) (render b);
  Alcotest.(check bool) "counters present" true
    (List.mem_assoc "newton_iterations" a.Util.Telemetry.Metrics.counters
    && List.mem_assoc "classes_simulated" a.Util.Telemetry.Metrics.counters
    && List.mem_assoc "samples_drawn" a.Util.Telemetry.Metrics.counters)

let test_telemetry_counters_jobs_invariant_clean () =
  check_metrics_jobs_invariant telemetry_config

let test_telemetry_counters_jobs_invariant_injected () =
  let config =
    Core.Pipeline.Config.with_inject_failures (Some 0.2) telemetry_config
  in
  let a = metrics_with_jobs ~config 1 in
  check_metrics_jobs_invariant config;
  Alcotest.(check bool) "retries counted" true
    (match List.assoc_opt "retries" a.Util.Telemetry.Metrics.counters with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check bool) "escalation gauge kept" true
    (match
       List.assoc_opt "escalation_level" a.Util.Telemetry.Metrics.gauges
     with
    | Some v -> v >= 1.0
    | None -> false)

let test_telemetry_jsonl_roundtrip () =
  let path = Filename.temp_file "dotest_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let config =
            Core.Pipeline.Config.with_telemetry
              (Util.Telemetry.jsonl oc)
              telemetry_config
          in
          let _ =
            Core.Pipeline.analyze config
              (Adc.Comparator.macro Adc.Comparator.default_options)
          in
          ());
      let lines =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | line -> go (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            go [])
      in
      Alcotest.(check bool) "trace non-empty" true (List.length lines > 10);
      (* Every line must parse back into an event. *)
      let events =
        List.map
          (fun line ->
            match Util.Telemetry.event_of_json (line |> fun s ->
              match Util.Json.of_string s with
              | Ok j -> j
              | Error e -> Alcotest.failf "bad json line: %s" e)
            with
            | Ok e -> e
            | Error e -> Alcotest.failf "bad event: %s" e)
          lines
      in
      (* Spans balance and nest: every end has a start, every parent is a
         known span id, and pipeline.stage spans sit under pipeline.macro. *)
      let starts = Hashtbl.create 64 in
      List.iter
        (function
          | Util.Telemetry.Span_start { id; name; _ } ->
            Hashtbl.replace starts id name
          | _ -> ())
        events;
      let ends =
        List.filter_map
          (function
            | Util.Telemetry.Span_end { id; parent; name; _ } ->
              Some (id, parent, name)
            | _ -> None)
          events
      in
      Alcotest.(check int) "starts balance ends" (Hashtbl.length starts)
        (List.length ends);
      List.iter
        (fun (id, parent, name) ->
          Alcotest.(check bool) "end has start" true (Hashtbl.mem starts id);
          (match parent with
          | None -> ()
          | Some p ->
            Alcotest.(check bool) "parent known" true (Hashtbl.mem starts p));
          if name = "pipeline.stage" then
            match parent with
            | Some p ->
              Alcotest.(check string) "stage under macro" "pipeline.macro"
                (Hashtbl.find starts p)
            | None -> Alcotest.fail "pipeline.stage must have a parent")
        ends;
      Alcotest.(check bool) "has a pipeline.macro span" true
        (Hashtbl.fold (fun _ n acc -> acc || n = "pipeline.macro") starts false))

(* --- report formats ---------------------------------------------------- *)

let test_report_render_formats_golden () =
  let t =
    Util.Table.create
      ~columns:[ "metric", Util.Table.Left; "value, n", Util.Table.Right ]
  in
  Util.Table.add_row t [ "alpha"; "1" ];
  Util.Table.add_row t [ "b \"q\""; "2,5" ];
  Alcotest.(check string) "text"
    "+--------+----------+\n\
     | metric | value, n |\n\
     +--------+----------+\n\
     | alpha  |        1 |\n\
     | b \"q\"  |      2,5 |\n\
     +--------+----------+"
    (Core.Report.render ~format:`Text t);
  Alcotest.(check string) "csv"
    "metric,\"value, n\"\nalpha,1\n\"b \"\"q\"\"\",\"2,5\""
    (Core.Report.render ~format:`Csv t);
  Alcotest.(check string) "json"
    "[{\"metric\":\"alpha\",\"value, n\":\"1\"},{\"metric\":\"b \\\"q\\\"\",\"value, n\":\"2,5\"}]"
    (Core.Report.render ~format:`Json t)

let test_report_metrics_table () =
  let m = metrics_with_jobs ~config:telemetry_config 2 in
  let text = Core.Report.render ~format:`Text (Core.Report.metrics m) in
  Alcotest.(check bool) "mentions newton_iterations" true
    (let needle = "newton_iterations" in
     let n = String.length needle and h = String.length text in
     let rec scan i =
       i + n <= h && (String.sub text i n = needle || scan (i + 1))
     in
     scan 0)

(* --- result cache ------------------------------------------------------ *)

let with_cache_dir f =
  let dir = Filename.temp_file "dotest_cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* Everything the analysis reports, rendered: two runs are equivalent iff
   these strings are byte-identical. Stage wall-clock is excluded by
   construction (run_health and bounds never print it). *)
let analysis_fingerprint (a : Core.Pipeline.macro_analysis) =
  let g = Core.Global.combine [ a ] in
  String.concat "\n"
    [
      Util.Table.render (Core.Report.table1 a);
      Util.Table.render (Core.Report.table2 a);
      Util.Table.render (Core.Report.table3 a);
      Util.Table.render (Core.Report.figure3 a);
      Util.Table.render (Core.Report.run_health (Core.Pipeline.run_health [ a ]));
      Util.Table.render (Core.Report.coverage_bounds g);
    ]

let analyze_cached ~dir ~jobs config =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Util.Pool.set_jobs saved)
    (fun () ->
      (* A fresh handle per run: hits must come through the disk layer,
         exactly like a separate process would see them. *)
      let cache = Util.Cache.create ~dir ~version:Core.Codec.version () in
      let config = Core.Pipeline.Config.with_cache_handle (Some cache) config in
      let a =
        Core.Pipeline.analyze config
          (Adc.Comparator.macro Adc.Comparator.default_options)
      in
      a, Util.Cache.stats cache)

let test_cache_warm_equals_cold () =
  with_cache_dir @@ fun dir ->
  let cold, cold_stats = analyze_cached ~dir ~jobs:1 telemetry_config in
  Alcotest.(check int) "cold run misses" 1 cold_stats.Util.Cache.misses;
  Alcotest.(check int) "cold run has no hits" 0 cold_stats.Util.Cache.hits;
  (* Warm at jobs=1 and jobs=4: byte-identical to the cold run either way. *)
  List.iter
    (fun jobs ->
      let warm, warm_stats = analyze_cached ~dir ~jobs telemetry_config in
      Alcotest.(check int)
        (Printf.sprintf "warm run hits (jobs=%d)" jobs)
        1 warm_stats.Util.Cache.hits;
      Alcotest.(check int)
        (Printf.sprintf "warm run misses (jobs=%d)" jobs)
        0 warm_stats.Util.Cache.misses;
      Alcotest.(check string)
        (Printf.sprintf "byte-identical output (jobs=%d)" jobs)
        (analysis_fingerprint cold)
        (analysis_fingerprint warm);
      Alcotest.(check bool) "stage timings empty on a hit" true
        (warm.Core.Pipeline.health.Core.Pipeline.stage_seconds = []))
    [ 1; 4 ]

let test_cache_hit_skips_simulation () =
  with_cache_dir @@ fun dir ->
  let _ = analyze_cached ~dir ~jobs:1 telemetry_config in
  (* Second run with an in-memory sink: the simulation counters must stay
     silent — the analysis came from the cache, not the solver. *)
  let memory = Util.Telemetry.in_memory () in
  let config =
    Core.Pipeline.Config.with_telemetry
      (Util.Telemetry.memory_sink memory)
      telemetry_config
  in
  let _, stats = analyze_cached ~dir ~jobs:1 config in
  Alcotest.(check int) "hit" 1 stats.Util.Cache.hits;
  let m = Util.Telemetry.metrics memory in
  Alcotest.(check (option int)) "no classes simulated" None
    (List.assoc_opt "classes_simulated" m.Util.Telemetry.Metrics.counters);
  Alcotest.(check (option int)) "no samples drawn" None
    (List.assoc_opt "samples_drawn" m.Util.Telemetry.Metrics.counters);
  Alcotest.(check (option int)) "macro still counted" (Some 1)
    (List.assoc_opt "macros_analyzed" m.Util.Telemetry.Metrics.counters)

let test_cache_key_sensitivity () =
  with_cache_dir @@ fun dir ->
  let _ = analyze_cached ~dir ~jobs:1 telemetry_config in
  (* A changed seed must miss (and then store its own entry)... *)
  let seeded = Core.Pipeline.Config.with_seed 77 telemetry_config in
  let _, s = analyze_cached ~dir ~jobs:1 seeded in
  Alcotest.(check int) "different seed misses" 1 s.Util.Cache.misses;
  (* The solver backend is part of the key: even though all backends are
     required to produce identical tables, a backend regression must
     never be able to poison a warm cache for the others. *)
  let dense =
    Core.Pipeline.Config.with_solver Circuit.Engine.Dense telemetry_config
  in
  let _, sd = analyze_cached ~dir ~jobs:1 dense in
  Alcotest.(check int) "different solver misses" 1 sd.Util.Cache.misses;
  (* ...while the DfT comparator variant shares the macro name but not
     the netlist, so it must also miss rather than alias. *)
  let cache = Util.Cache.create ~dir ~version:Core.Codec.version () in
  let config =
    Core.Pipeline.Config.with_cache_handle (Some cache) telemetry_config
  in
  let _ =
    Core.Pipeline.analyze config (Adc.Comparator.macro Adc.Comparator.dft_options)
  in
  Alcotest.(check int) "dft variant misses" 1
    (Util.Cache.stats cache).Util.Cache.misses;
  (* And the original entry is still intact: a final warm run hits. *)
  let _, s3 = analyze_cached ~dir ~jobs:1 telemetry_config in
  Alcotest.(check int) "original still hits" 1 s3.Util.Cache.hits

let test_cache_warm_run_recheck_budget () =
  (* The failure budget is NOT part of the key: a warm hit re-checks it,
     so tightening the budget after a degraded run still aborts. *)
  with_cache_dir @@ fun dir ->
  let injected =
    Core.Pipeline.Config.with_inject_failures (Some 0.2) telemetry_config
  in
  let cold, _ = analyze_cached ~dir ~jobs:1 injected in
  Alcotest.(check bool) "degraded cold run" true
    (cold.Core.Pipeline.health.Core.Pipeline.unresolved > 0);
  let strict_budget =
    Core.Pipeline.Config.with_failure_budget (Some 0) injected
  in
  match analyze_cached ~dir ~jobs:1 strict_budget with
  | _ -> Alcotest.fail "warm hit must still honour the budget"
  | exception Util.Resilience.Budget_exhausted { limit; _ } ->
    Alcotest.(check int) "limit echoed" 0 limit

let test_cache_analyze_all_warm () =
  with_cache_dir @@ fun dir ->
  let run jobs =
    let saved = Util.Pool.jobs () in
    Util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Util.Pool.set_jobs saved)
      (fun () ->
        let cache = Util.Cache.create ~dir ~version:Core.Codec.version () in
        let config =
          Core.Pipeline.Config.with_cache_handle (Some cache) telemetry_config
        in
        let analyses =
          Core.Pipeline.analyze_all config (Dft.Measures.original ())
        in
        let g = Core.Global.combine analyses in
        let rendered =
          Util.Table.render (Core.Report.figure4 g)
          ^ Util.Table.render (Core.Report.summary g)
          ^ Util.Table.render
              (Core.Report.run_health (Core.Pipeline.run_health analyses))
        in
        rendered, Util.Cache.stats cache)
    in
  let cold, cold_stats = run 1 in
  Alcotest.(check int) "five macros missed" 5 cold_stats.Util.Cache.misses;
  let warm, warm_stats = run 4 in
  Alcotest.(check int) "five macros hit" 5 warm_stats.Util.Cache.hits;
  Alcotest.(check int) "no warm misses" 0 warm_stats.Util.Cache.misses;
  Alcotest.(check string) "byte-identical global output" cold warm

(* --- run survival: deadlines, checkpoint/resume, shutdown -------------- *)

(* A shutdown raised inside a worker domain may surface wrapped in
   [Pool.Worker_failure]; unwrap before matching. *)
let rec survival_root_cause = function
  | Util.Pool.Worker_failure (_, cause) -> survival_root_cause cause
  | e -> e

let analyze_survival ~dir ~jobs ~checkpoint config =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Util.Pool.set_jobs saved)
    (fun () ->
      let cache = Util.Cache.create ~dir ~version:Core.Codec.version () in
      let config =
        config
        |> Core.Pipeline.Config.with_cache_handle (Some cache)
        |> Core.Pipeline.Config.with_checkpoint (Some checkpoint)
      in
      Core.Pipeline.analyze config
        (Adc.Comparator.macro Adc.Comparator.default_options))

let test_checkpoint_kill_and_resume () =
  (* The headline guarantee: a run killed mid-evaluation and resumed
     produces the same bytes as a run that was never interrupted — at
     any job count. The [interrupt_after] hook stands in for a real
     SIGTERM, making the kill point deterministic. *)
  let clean = analysis_fingerprint (Lazy.force comparator_analysis) in
  let config = Core.Pipeline.Config.with_cache_handle None small_config in
  List.iter
    (fun jobs ->
      with_cache_dir @@ fun dir ->
      Fun.protect ~finally:Util.Watchdog.reset_shutdown @@ fun () ->
      (* Phase 1: kill the run after 10 checkpointed classes. *)
      let interrupted = Core.Checkpoint.create ~interrupt_after:10 () in
      (match analyze_survival ~dir ~jobs ~checkpoint:interrupted config with
      | _ -> Alcotest.fail "interrupted run must not complete"
      | exception e -> (
        match survival_root_cause e with
        | Util.Watchdog.Interrupted _ -> ()
        | other -> raise other));
      let s = Core.Checkpoint.stats interrupted in
      Alcotest.(check bool)
        (Printf.sprintf "progress checkpointed before kill (jobs=%d)" jobs)
        true
        (s.Core.Checkpoint.recorded >= 10 && s.Core.Checkpoint.flushes > 0);
      Util.Watchdog.reset_shutdown ();
      (* Phase 2: resume with a fresh registry and cache handle. *)
      let resumed = Core.Checkpoint.create ~resume:true () in
      let a = analyze_survival ~dir ~jobs ~checkpoint:resumed config in
      let s = Core.Checkpoint.stats resumed in
      Alcotest.(check bool)
        (Printf.sprintf "classes restored on resume (jobs=%d)" jobs)
        true
        (s.Core.Checkpoint.restored >= 10);
      Alcotest.(check string)
        (Printf.sprintf "resume equals uninterrupted (jobs=%d)" jobs)
        clean (analysis_fingerprint a))
    [ 1; 4 ]

let test_checkpoint_finish_removes_partial () =
  (* A completed run leaves only its full analysis entry on disk: the
     partial payload is retired by [Checkpoint.finish]. *)
  with_cache_dir @@ fun dir ->
  let ckpt = Core.Checkpoint.create () in
  let _ = analyze_survival ~dir ~jobs:1 ~checkpoint:ckpt telemetry_config in
  Alcotest.(check bool) "classes were checkpointed" true
    ((Core.Checkpoint.stats ckpt).Core.Checkpoint.recorded > 0);
  Alcotest.(check int) "single (full) entry on disk" 1
    (Array.length (Sys.readdir dir))

let test_deadline_unresolved_jobs_invariant () =
  (* An iteration budget no escalated retry can meet: every class walks
     the full ladder (budget doubling each rung) and lands unresolved.
     The resulting tables must still be byte-identical across jobs —
     an iteration cap is a pure function of the computation. *)
  let run jobs =
    let saved = Util.Pool.jobs () in
    Util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Util.Pool.set_jobs saved)
      (fun () ->
        let config =
          telemetry_config
          |> Core.Pipeline.Config.with_max_retries 1
          |> Core.Pipeline.Config.with_deadline
               (Some (Util.Watchdog.limits ~max_iterations:1 ()))
        in
        Core.Pipeline.analyze config
          (Adc.Comparator.macro Adc.Comparator.default_options))
  in
  let a = run 1 in
  Alcotest.(check bool) "deadline leaves classes unresolved" true
    (a.Core.Pipeline.health.Core.Pipeline.unresolved > 0);
  Alcotest.(check bool) "expiries were retried" true
    (a.Core.Pipeline.health.Core.Pipeline.retried > 0);
  let b = run 4 in
  Alcotest.(check string) "byte-identical across jobs"
    (analysis_fingerprint a) (analysis_fingerprint b)

let test_deadline_respects_failure_budget () =
  (* Deadline expiries are containment events like any other: a zero
     failure budget aborts the run on the first one. *)
  let config =
    telemetry_config
    |> Core.Pipeline.Config.with_max_retries 1
    |> Core.Pipeline.Config.with_failure_budget (Some 0)
    |> Core.Pipeline.Config.with_deadline
         (Some (Util.Watchdog.limits ~max_iterations:1 ()))
  in
  match
    Core.Pipeline.analyze config
      (Adc.Comparator.macro Adc.Comparator.default_options)
  with
  | _ -> Alcotest.fail "zero budget must be exhausted by expiries"
  | exception Util.Resilience.Budget_exhausted { limit; _ } ->
    Alcotest.(check int) "limit echoed" 0 limit

let test_deadline_part_of_cache_key () =
  (* A cached analysis from an unlimited run must not be served to a
     deadline-constrained one (or vice versa): the limits are part of
     the key, so stale checkpoints and full entries can never alias. *)
  with_cache_dir @@ fun dir ->
  let _ = analyze_cached ~dir ~jobs:1 telemetry_config in
  let constrained =
    Core.Pipeline.Config.with_deadline
      (Some (Util.Watchdog.limits ~max_iterations:1_000_000 ()))
      telemetry_config
  in
  let _, s = analyze_cached ~dir ~jobs:1 constrained in
  Alcotest.(check int) "deadline config misses" 1 s.Util.Cache.misses;
  Alcotest.(check int) "no false hit" 0 s.Util.Cache.hits

(* --- solver backends --------------------------------------------------- *)

(* The solver determinism contract: every backend produces byte-identical
   tables and health counters at any job count, clean or fault-injected.
   [Dense] at jobs=1 is the reference; the factorization-reuse backends
   must match it exactly — reuse and fallback decisions are functions of
   the numbers, never of timing or scheduling. *)
let test_solver_tables_invariant () =
  let analyze ~solver ~jobs config =
    let saved = Util.Pool.jobs () in
    Util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Util.Pool.set_jobs saved)
      (fun () ->
        Core.Pipeline.analyze
          (Core.Pipeline.Config.with_solver solver config)
          (Adc.Comparator.macro Adc.Comparator.default_options))
  in
  List.iter
    (fun (tag, config) ->
      let reference =
        analysis_fingerprint
          (analyze ~solver:Circuit.Engine.Dense ~jobs:1 config)
      in
      List.iter
        (fun solver ->
          List.iter
            (fun jobs ->
              if not (solver = Circuit.Engine.Dense && jobs = 1) then
                Alcotest.(check string)
                  (Printf.sprintf "%s equals dense (%s, jobs=%d)"
                     (Circuit.Engine.solver_name solver)
                     tag jobs)
                  reference
                  (analysis_fingerprint (analyze ~solver ~jobs config)))
            [ 1; 4 ])
        Circuit.Engine.all_solvers)
    [
      "clean", telemetry_config;
      ( "injected",
        Core.Pipeline.Config.with_inject_failures (Some 0.2) telemetry_config
      );
    ]

let test_run_survival_renders () =
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  let off = Util.Table.render (Core.Report.run_survival small_config) in
  Alcotest.(check bool) "reports checkpointing off" true (contains off "off");
  let on =
    small_config
    |> Core.Pipeline.Config.with_deadline
         (Some (Util.Watchdog.limits ~wall_seconds:30.0 ~max_iterations:5_000 ()))
    |> Core.Pipeline.Config.with_checkpoint
         (Some (Core.Checkpoint.create ~resume:true ()))
  in
  let s = Util.Table.render (Core.Report.run_survival on) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %S" needle) true
        (contains s needle))
    [ "30"; "5000 iterations"; "on (resume)"; "classes restored" ]

let global_pair =
  lazy
    (Core.Global.compare_coverage ~config:small_config ())

let test_global_weights_normalized () =
  let original, _ = Lazy.force global_pair in
  let total =
    List.fold_left
      (fun acc (a : Core.Pipeline.macro_analysis) ->
        acc +. Core.Global.weight original a.macro.Macro.Macro_cell.name)
      0.0
      (Core.Global.analyses original)
  in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 total

let test_global_partition_normalized () =
  let original, _ = Lazy.force global_pair in
  List.iter
    (fun severity ->
      let cells = Core.Global.partition original severity in
      let total =
        List.fold_left
          (fun acc (c : Testgen.Overlap.cell) -> acc +. c.share)
          0.0 cells
      in
      Alcotest.(check (float 1e-9)) "partition sums to 1" 1.0 total)
    [ Fault.Types.Catastrophic; Fault.Types.Non_catastrophic ]

let test_global_coverage_sane () =
  let original, _ = Lazy.force global_pair in
  let c = Core.Global.coverage original Fault.Types.Catastrophic in
  Alcotest.(check bool) "between 80% and 100%" true (c > 0.8 && c < 1.0)

let test_dft_improves_coverage () =
  let original, improved = Lazy.force global_pair in
  let before = Core.Global.coverage original Fault.Types.Catastrophic in
  let after = Core.Global.coverage improved Fault.Types.Catastrophic in
  Alcotest.(check bool)
    (Printf.sprintf "DfT helps (%.3f -> %.3f)" before after)
    true
    (after > before)

let test_reports_render () =
  let a = Lazy.force comparator_analysis in
  let original, _ = Lazy.force global_pair in
  List.iter
    (fun table ->
      Alcotest.(check bool) "non-empty" true
        (String.length (Util.Table.render table) > 50))
    [
      Core.Report.table1 a;
      Core.Report.table2 a;
      Core.Report.table3 a;
      Core.Report.figure3 a;
      Core.Report.figure4 original;
      Core.Report.macro_current original;
      Core.Report.summary original;
    ]

let test_dft_guidelines_exist () =
  Alcotest.(check bool) "guidelines" true (List.length Dft.Measures.guidelines >= 2);
  List.iter
    (fun m ->
      Alcotest.(check bool) "described" true
        (String.length (Dft.Measures.describe m) > 20))
    Dft.Measures.all_measures

let suites =
  [
    ( "core.pipeline",
      [
        Alcotest.test_case "produces outcomes" `Slow test_pipeline_produces_outcomes;
        Alcotest.test_case "deterministic" `Slow test_pipeline_deterministic;
        Alcotest.test_case "jobs invariant" `Slow test_pipeline_jobs_invariant;
        Alcotest.test_case "seed sensitivity" `Slow test_pipeline_seed_changes_results;
        Alcotest.test_case "paper shape holds" `Slow test_pipeline_comparator_shape;
      ] );
    ( "core.resilience",
      [
        Alcotest.test_case "clean run health" `Slow test_pipeline_clean_run_health;
        Alcotest.test_case "injected run degrades" `Slow test_pipeline_injected_run_completes_degraded;
        Alcotest.test_case "health jobs invariant" `Slow test_pipeline_injected_health_jobs_invariant;
        Alcotest.test_case "bounds bracket clean coverage" `Slow test_pipeline_bounds_bracket_clean_coverage;
        Alcotest.test_case "clean bounds collapse" `Slow test_pipeline_clean_bounds_collapse;
        Alcotest.test_case "strict fails fast" `Slow test_pipeline_strict_fails_fast;
        Alcotest.test_case "failure budget" `Slow test_pipeline_failure_budget;
        Alcotest.test_case "run health renders" `Slow test_run_health_report_renders;
      ] );
    ( "core.global",
      [
        Alcotest.test_case "weights normalized" `Slow test_global_weights_normalized;
        Alcotest.test_case "partition normalized" `Slow test_global_partition_normalized;
        Alcotest.test_case "coverage sane" `Slow test_global_coverage_sane;
        Alcotest.test_case "DfT improves coverage" `Slow test_dft_improves_coverage;
      ] );
    ( "core.telemetry",
      [
        Alcotest.test_case "counters jobs-invariant (clean)" `Slow
          test_telemetry_counters_jobs_invariant_clean;
        Alcotest.test_case "counters jobs-invariant (injected)" `Slow
          test_telemetry_counters_jobs_invariant_injected;
        Alcotest.test_case "jsonl trace round-trips" `Slow
          test_telemetry_jsonl_roundtrip;
      ] );
    ( "core.cache",
      [
        Alcotest.test_case "warm equals cold (jobs 1 and 4)" `Slow
          test_cache_warm_equals_cold;
        Alcotest.test_case "hit skips simulation" `Slow
          test_cache_hit_skips_simulation;
        Alcotest.test_case "key sensitivity" `Slow test_cache_key_sensitivity;
        Alcotest.test_case "warm run re-checks budget" `Slow
          test_cache_warm_run_recheck_budget;
        Alcotest.test_case "analyze_all warm" `Slow test_cache_analyze_all_warm;
      ] );
    ( "core.survival",
      [
        Alcotest.test_case "kill and resume (jobs 1 and 4)" `Slow
          test_checkpoint_kill_and_resume;
        Alcotest.test_case "finish removes partial" `Slow
          test_checkpoint_finish_removes_partial;
        Alcotest.test_case "deadline unresolved jobs-invariant" `Slow
          test_deadline_unresolved_jobs_invariant;
        Alcotest.test_case "deadline respects failure budget" `Slow
          test_deadline_respects_failure_budget;
        Alcotest.test_case "deadline part of cache key" `Slow
          test_deadline_part_of_cache_key;
        Alcotest.test_case "run survival renders" `Quick
          test_run_survival_renders;
      ] );
    ( "core.solver",
      [
        Alcotest.test_case "tables invariant across backends and jobs" `Slow
          test_solver_tables_invariant;
      ] );
    ( "core.report",
      [
        Alcotest.test_case "reports render" `Slow test_reports_render;
        Alcotest.test_case "render formats golden" `Quick
          test_report_render_formats_golden;
        Alcotest.test_case "metrics table" `Slow test_report_metrics_table;
        Alcotest.test_case "guidelines" `Quick test_dft_guidelines_exist;
      ] );
  ]
