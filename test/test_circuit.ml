(* Unit and property tests for the dotest.circuit analog simulator. *)

open Circuit

let check_float tolerance = Alcotest.(check (float tolerance))

(* From-scratch dense solve leaving the inputs untouched — what the
   removed [Linear.solve_copy] wrapper used to spell; tests factor on
   every call on purpose (the production paths reuse factorizations). *)
let solve_fresh a b = Linear.Factor.solve_factored (Linear.Factor.factor a) b

(* ------------------------------------------------------------------ *)
(* Linear                                                              *)
(* ------------------------------------------------------------------ *)

let test_linear_known_2x2 () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 10. |] in
  let x = solve_fresh a b in
  check_float 1e-9 "x0" 1.0 x.(0);
  check_float 1e-9 "x1" 3.0 x.(1)

let test_linear_needs_pivoting () =
  (* Zero on the initial pivot position forces a row swap. *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let b = [| 2.; 3. |] in
  let x = solve_fresh a b in
  check_float 1e-9 "x0" 3.0 x.(0);
  check_float 1e-9 "x1" 2.0 x.(1)

let test_linear_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  let b = [| 1.; 2. |] in
  Alcotest.check_raises "singular" Linear.Singular (fun () ->
      ignore (solve_fresh a b))

let test_linear_residual () =
  let a = [| [| 4.; 1.; 0. |]; [| 1.; 5.; 2. |]; [| 0.; 2.; 6. |] |] in
  let b = [| 1.; -2.; 3. |] in
  let x = solve_fresh a b in
  Alcotest.(check bool) "residual small" true (Linear.residual a x b < 1e-9)

let test_linear_scaled_singularity () =
  (* Well-conditioned but tiny: every pivot is ~1e-305, far below the
     historical absolute 1e-300 floor. The relative singularity test must
     solve it rather than raise. *)
  let a = [| [| 1e-305; 0. |]; [| 0.; 2e-305 |] |] in
  let b = [| 1e-305; 4e-305 |] in
  let x = solve_fresh a b in
  check_float 1e-9 "x0" 1.0 x.(0);
  check_float 1e-9 "x1" 2.0 x.(1);
  (* The all-zero matrix is still singular under the relative rule. *)
  Alcotest.check_raises "zero matrix" Linear.Singular (fun () ->
      ignore (solve_fresh (Linear.matrix 2) [| 0.; 0. |]))

(* ------------------------------------------------------------------ *)
(* Linear.Factor                                                       *)
(* ------------------------------------------------------------------ *)

let test_factor_matches_fresh_solve () =
  let a = [| [| 4.; 1.; 0. |]; [| 1.; 5.; 2. |]; [| 0.; 2.; 6. |] |] in
  let f = Linear.Factor.factor a in
  Alcotest.(check int) "size" 3 (Linear.Factor.size f);
  Alcotest.(check int) "no updates" 0 (Linear.Factor.updates f);
  Alcotest.(check bool) "dense kernel" false (Linear.Factor.is_banded f);
  (* One factorization, many right-hand sides: each solve must match a
     from-scratch dense solve exactly (same kernel, same arithmetic). *)
  List.iter
    (fun b ->
      let x = Linear.Factor.solve_factored f b in
      let y = solve_fresh a b in
      Array.iteri
        (fun i xi -> check_float 0.0 (Printf.sprintf "x%d" i) y.(i) xi)
        x)
    [ [| 1.; -2.; 3. |]; [| 0.5; 4.; -1. |]; [| 0.; 0.; 1. |] ]

let test_factor_rank1_agrees () =
  let a = [| [| 3.; 1.; 0. |]; [| 1.; 4.; 1. |]; [| 0.; 1.; 5. |] |] in
  let u = [| 1.; 0.; -1. |] and v = [| 0.; 2.; 1. |] and c = 0.5 in
  let f = Linear.Factor.factor a in
  match Linear.Factor.rank1_update f ~c ~u ~v with
  | None -> Alcotest.fail "guard fired on a well-conditioned update"
  | Some f' ->
    Alcotest.(check int) "one update" 1 (Linear.Factor.updates f');
    Alcotest.(check int) "original untouched" 0 (Linear.Factor.updates f);
    let a' =
      Array.init 3 (fun i ->
          Array.init 3 (fun j -> a.(i).(j) +. (c *. u.(i) *. v.(j))))
    in
    let b = [| 1.; 2.; 3. |] in
    let x = Linear.Factor.solve_factored f' b in
    let y = solve_fresh a' b in
    Array.iteri
      (fun i xi -> check_float 1e-9 (Printf.sprintf "x%d" i) y.(i) xi)
      x

let test_factor_rank1_fallback () =
  (* A = I, u = v = e0, c = -1 zeroes the (0,0) entry: the Sherman–
     Morrison denominator 1 + c·vᵀA⁻¹u is exactly 0, so the update must
     refuse and hand the caller back to a full re-factorization. *)
  let n = 3 in
  let a = Linear.matrix n in
  for i = 0 to n - 1 do
    a.(i).(i) <- 1.0
  done;
  let e0 = Array.make n 0.0 in
  e0.(0) <- 1.0;
  let f = Linear.Factor.factor a in
  (match Linear.Factor.rank1_update f ~c:(-1.0) ~u:e0 ~v:e0 with
  | None -> ()
  | Some _ -> Alcotest.fail "near-singular update must return None");
  (* A harmless update on the same base still goes through. *)
  match Linear.Factor.rank1_update f ~c:0.5 ~u:e0 ~v:e0 with
  | Some _ -> ()
  | None -> Alcotest.fail "well-conditioned update must succeed"

let test_factor_banded_permute () =
  (* A chain graph presented in scrambled order: RCM recovers a
     bandwidth-1 ordering and the band-limited kernel must agree with
     the dense one. *)
  let n = 8 in
  (* label.(i) = matrix index of chain vertex i *)
  let label = [| 3; 6; 0; 5; 1; 7; 2; 4 |] in
  let a = Linear.matrix n in
  for i = 0 to n - 1 do
    a.(i).(i) <- 4.0
  done;
  let edges = ref [] in
  for i = 0 to n - 2 do
    let p = label.(i) and q = label.(i + 1) in
    a.(p).(q) <- -1.0;
    a.(q).(p) <- -1.0;
    edges := (p, q) :: !edges
  done;
  let perm = Linear.rcm ~n !edges in
  Alcotest.(check int) "rcm bandwidth" 1 (Linear.bandwidth_under ~perm !edges);
  let f = Linear.Factor.factor ~permute:perm a in
  Alcotest.(check bool) "banded kernel" true (Linear.Factor.is_banded f);
  let b = Array.init n (fun i -> float_of_int (i - 3)) in
  let x = Linear.Factor.solve_factored f b in
  let y = solve_fresh a b in
  Array.iteri
    (fun i xi -> check_float 1e-12 (Printf.sprintf "x%d" i) y.(i) xi)
    x

(* ------------------------------------------------------------------ *)
(* Waveform                                                            *)
(* ------------------------------------------------------------------ *)

let test_waveform_dc () =
  let w = Waveform.dc 3.3 in
  check_float 1e-12 "t=0" 3.3 (Waveform.value w 0.0);
  check_float 1e-12 "t=1" 3.3 (Waveform.value w 1.0)

let test_waveform_pwl () =
  let w = Waveform.pwl [ 0.0, 0.0; 1.0, 2.0; 3.0, 0.0 ] in
  check_float 1e-12 "before" 0.0 (Waveform.value w (-1.0));
  check_float 1e-12 "midpoint" 1.0 (Waveform.value w 0.5);
  check_float 1e-12 "breakpoint" 2.0 (Waveform.value w 1.0);
  check_float 1e-12 "falling" 1.0 (Waveform.value w 2.0);
  check_float 1e-12 "after" 0.0 (Waveform.value w 5.0)

let test_waveform_pwl_rejects_unordered () =
  Alcotest.check_raises "unordered"
    (Invalid_argument "Waveform.pwl: times must increase") (fun () ->
      ignore (Waveform.pwl [ 0.0, 0.0; 0.0, 1.0 ]))

let test_waveform_pulse () =
  let w =
    Waveform.pulse ~v0:0.0 ~v1:5.0 ~delay:1e-9 ~rise:1e-9 ~fall:1e-9
      ~width:3e-9 ~period:10e-9
  in
  check_float 1e-9 "before delay" 0.0 (Waveform.value w 0.0);
  check_float 1e-9 "mid rise" 2.5 (Waveform.value w 1.5e-9);
  check_float 1e-9 "high" 5.0 (Waveform.value w 3e-9);
  check_float 1e-9 "low again" 0.0 (Waveform.value w 7e-9);
  check_float 1e-9 "periodic" 5.0 (Waveform.value w 13e-9)

let test_waveform_triangle () =
  let w = Waveform.triangle ~lo:1.0 ~hi:3.0 ~period:2.0 in
  check_float 1e-9 "start" 1.0 (Waveform.value w 0.0);
  check_float 1e-9 "peak" 3.0 (Waveform.value w 1.0);
  check_float 1e-9 "back" 1.0 (Waveform.value w 2.0);
  check_float 1e-9 "quarter" 2.0 (Waveform.value w 0.5)

let test_waveform_scale () =
  let w = Waveform.scale 0.5 (Waveform.dc 4.0) in
  check_float 1e-12 "scaled" 2.0 (Waveform.value w 0.0)

(* ------------------------------------------------------------------ *)
(* Mos_model                                                           *)
(* ------------------------------------------------------------------ *)

let nmos = Mos_model.default_nmos

let test_mos_cutoff () =
  let op =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:10e-6 ~l:1e-6
      ~vgs:0.5 ~vds:2.0
  in
  check_float 1e-15 "id" 0.0 op.Mos_model.id;
  Alcotest.(check bool) "region" true
    (Mos_model.region ~polarity:Mos_model.Nmos ~params:nmos ~vgs:0.5 ~vds:2.0
     = Mos_model.Cutoff)

let test_mos_saturation_value () =
  (* id = kp/2 * W/L * (vgs-vth)^2 * (1 + lambda vds) *)
  let vgs = 1.8 and vds = 3.0 in
  let op =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:10e-6 ~l:1e-6
      ~vgs ~vds
  in
  let vgst = vgs -. nmos.Mos_model.vth in
  let expect =
    0.5 *. nmos.Mos_model.kp *. 10. *. vgst *. vgst
    *. (1. +. (nmos.Mos_model.lambda *. vds))
  in
  check_float 1e-9 "id" expect op.Mos_model.id;
  Alcotest.(check bool) "saturation" true
    (Mos_model.region ~polarity:Mos_model.Nmos ~params:nmos ~vgs ~vds
     = Mos_model.Saturation)

let test_mos_triode_value () =
  let vgs = 3.0 and vds = 0.5 in
  let op =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:10e-6 ~l:1e-6
      ~vgs ~vds
  in
  let vgst = vgs -. nmos.Mos_model.vth in
  let expect =
    nmos.Mos_model.kp *. 10.
    *. ((vgst *. vds) -. (0.5 *. vds *. vds))
    *. (1. +. (nmos.Mos_model.lambda *. vds))
  in
  check_float 1e-9 "id" expect op.Mos_model.id

let test_mos_symmetry () =
  (* Swapping drain and source negates the current. *)
  let fwd =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:10e-6 ~l:1e-6
      ~vgs:2.0 ~vds:1.0
  in
  let rev =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:10e-6 ~l:1e-6
      ~vgs:1.0 ~vds:(-1.0)
  in
  check_float 1e-12 "antisymmetric" (-.fwd.Mos_model.id) rev.Mos_model.id

let test_mos_pmos_mirror () =
  let p = Mos_model.default_pmos in
  let op =
    Mos_model.evaluate ~polarity:Mos_model.Pmos ~params:p ~w:10e-6 ~l:1e-6
      ~vgs:(-2.0) ~vds:(-3.0)
  in
  Alcotest.(check bool) "pmos conducts negative current" true
    (op.Mos_model.id < 0.);
  let mirrored =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:p ~w:10e-6 ~l:1e-6
      ~vgs:2.0 ~vds:3.0
  in
  check_float 1e-12 "mirror" (-.mirrored.Mos_model.id) op.Mos_model.id

(* ------------------------------------------------------------------ *)
(* Engine: DC                                                          *)
(* ------------------------------------------------------------------ *)

let test_dc_voltage_divider () =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "in" in
  let mid = Netlist.node nl "mid" in
  Netlist.add_vsource nl ~name:"V1" ~pos:vin ~neg:Netlist.ground (Waveform.dc 10.0);
  Netlist.add_resistor nl ~name:"R1" vin mid 1_000.0;
  Netlist.add_resistor nl ~name:"R2" mid Netlist.ground 3_000.0;
  let sol = Engine.dc_operating_point nl in
  check_float 1e-6 "divider" 7.5 (Engine.voltage sol mid);
  (* Source delivers V/(R1+R2) into the circuit. *)
  check_float 1e-9 "supply current" (10.0 /. 4000.0) (Engine.source_current sol "V1")

let test_dc_diagnostics () =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "in" in
  let mid = Netlist.node nl "mid" in
  Netlist.add_vsource nl ~name:"V1" ~pos:vin ~neg:Netlist.ground (Waveform.dc 10.0);
  Netlist.add_resistor nl ~name:"R1" vin mid 1_000.0;
  Netlist.add_resistor nl ~name:"R2" mid Netlist.ground 3_000.0;
  let sol, diag = Engine.dc_operating_point_diag nl in
  check_float 1e-6 "same solution" 7.5 (Engine.voltage sol mid);
  Alcotest.(check bool) "iterations counted" true (diag.Engine.iterations > 0);
  Alcotest.(check bool) "linear circuit needs no fallback" true
    (diag.Engine.fallback = Engine.Plain_newton)

let test_escalation_ladder () =
  let base = Engine.default_options in
  Alcotest.(check bool) "level 0 is base" true (Engine.escalation base ~level:0 = base);
  let l1 = Engine.escalation base ~level:1 in
  let l3 = Engine.escalation base ~level:3 in
  Alcotest.(check bool) "monotonically looser reltol" true
    (base.Engine.reltol < l1.Engine.reltol && l1.Engine.reltol < l3.Engine.reltol);
  Alcotest.(check bool) "more iterations" true
    (l3.Engine.max_iterations > l1.Engine.max_iterations
    && l1.Engine.max_iterations > base.Engine.max_iterations);
  Alcotest.(check bool) "levels above the top clamp" true
    (Engine.escalation base ~level:99
    = Engine.escalation base ~level:Engine.escalation_levels)

let test_options_override_scoped () =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "in" in
  Netlist.add_vsource nl ~name:"V1" ~pos:vin ~neg:Netlist.ground (Waveform.dc 1.0);
  Netlist.add_resistor nl ~name:"R1" vin Netlist.ground 1_000.0;
  (* The override must apply inside the scope (a zero iteration budget
     fails even this linear solve) and be restored after, including when
     the scope exits with an exception. *)
  let starved = { Engine.default_options with Engine.max_iterations = 0 } in
  (match
     Engine.with_options_override starved (fun () ->
         Engine.dc_operating_point nl)
   with
  | _ -> Alcotest.fail "starved options must fail"
  | exception Engine.No_convergence _ -> ());
  ignore (Engine.dc_operating_point nl);
  (match
     Engine.with_options_override starved (fun () -> failwith "escape")
   with
  | _ -> Alcotest.fail "exception must propagate"
  | exception Failure _ -> ());
  ignore (Engine.dc_operating_point nl)

let test_dc_deadline_propagates () =
  let nl = Netlist.create () in
  let vin = Netlist.node nl "in" in
  let mid = Netlist.node nl "mid" in
  Netlist.add_vsource nl ~name:"V1" ~pos:vin ~neg:Netlist.ground (Waveform.dc 10.0);
  Netlist.add_resistor nl ~name:"R1" vin mid 1_000.0;
  Netlist.add_resistor nl ~name:"R2" mid Netlist.ground 3_000.0;
  (* A zero iteration budget expires on the Newton loop's first tick.
     The expiry must escape the engine's own fallback ladder — it is a
     deadline, not a convergence failure — and be classified upstream. *)
  (match
     Util.Watchdog.with_limits
       (Util.Watchdog.limits ~max_iterations:0 ())
       (fun () -> Engine.dc_operating_point nl)
   with
  | _ -> Alcotest.fail "armed zero budget must expire"
  | exception
      Util.Watchdog.Deadline_exceeded (Util.Watchdog.Iterations { limit }) ->
    Alcotest.(check int) "configured limit carried" 0 limit);
  (* Disarmed again: the same solve completes untouched. *)
  check_float 1e-6 "solves after disarm" 7.5
    (Engine.voltage (Engine.dc_operating_point nl) mid)

let test_dc_current_source () =
  let nl = Netlist.create () in
  let out = Netlist.node nl "out" in
  Netlist.add_isource nl ~name:"I1" ~pos:out ~neg:Netlist.ground (Waveform.dc 1e-3);
  Netlist.add_resistor nl ~name:"R1" out Netlist.ground 2_000.0;
  let sol = Engine.dc_operating_point nl in
  check_float 1e-6 "v = i*r" 2.0 (Engine.voltage sol out)

let test_dc_floating_node_gmin () =
  (* A node connected only through a capacitor is floating in DC; the gmin
     shunt must keep the system solvable and park it near ground. *)
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  Netlist.add_vsource nl ~name:"V1" ~pos:a ~neg:Netlist.ground (Waveform.dc 5.0);
  Netlist.add_capacitor nl ~name:"C1" a b 1e-12;
  let sol = Engine.dc_operating_point nl in
  check_float 1e-3 "floating node at 0" 0.0 (Engine.voltage sol b)

let nmos_spec =
  {
    Netlist.polarity = Mos_model.Nmos;
    params = Mos_model.default_nmos;
    w = 10e-6;
    l = 1e-6;
  }

let pmos_spec =
  {
    Netlist.polarity = Mos_model.Pmos;
    params = Mos_model.default_pmos;
    w = 30e-6;
    l = 1e-6;
  }

let build_inverter () =
  let nl = Netlist.create () in
  let vdd = Netlist.node nl "vdd" in
  let vin = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.add_vsource nl ~name:"VDD" ~pos:vdd ~neg:Netlist.ground (Waveform.dc 5.0);
  Netlist.add_vsource nl ~name:"VIN" ~pos:vin ~neg:Netlist.ground (Waveform.dc 0.0);
  Netlist.add_mosfet nl ~name:"MN" ~drain:out ~gate:vin ~source:Netlist.ground
    ~bulk:Netlist.ground nmos_spec;
  Netlist.add_mosfet nl ~name:"MP" ~drain:out ~gate:vin ~source:vdd ~bulk:vdd
    pmos_spec;
  nl, vin, out

let test_dc_nmos_diode () =
  (* Diode-connected NMOS fed through a resistor: check KCL consistency
     between the resistor current and the square-law current. *)
  let nl = Netlist.create () in
  let vdd = Netlist.node nl "vdd" in
  let d = Netlist.node nl "d" in
  Netlist.add_vsource nl ~name:"VDD" ~pos:vdd ~neg:Netlist.ground (Waveform.dc 5.0);
  Netlist.add_resistor nl ~name:"R1" vdd d 10_000.0;
  Netlist.add_mosfet nl ~name:"M1" ~drain:d ~gate:d ~source:Netlist.ground
    ~bulk:Netlist.ground nmos_spec;
  let sol = Engine.dc_operating_point nl in
  let v = Engine.voltage sol d in
  Alcotest.(check bool) "above threshold" true (v > 0.8 && v < 5.0);
  let i_res = (5.0 -. v) /. 10_000.0 in
  let op =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:10e-6 ~l:1e-6
      ~vgs:v ~vds:v
  in
  check_float 1e-7 "KCL" i_res op.Mos_model.id

let test_dc_inverter_rails () =
  let nl, _vin, out = build_inverter () in
  let sol = Engine.dc_operating_point nl in
  Alcotest.(check bool) "in=0 -> out near vdd" true (Engine.voltage sol out > 4.9)

let test_dc_sweep_inverter_monotone () =
  let nl, _vin, out = build_inverter () in
  let values = List.init 26 (fun i -> float_of_int i *. 0.2) in
  let sols = Engine.dc_sweep nl ~source:"VIN" ~values in
  let outs = List.map (fun s -> Engine.voltage s out) sols in
  (match outs with
  | first :: _ -> Alcotest.(check bool) "starts high" true (first > 4.9)
  | [] -> Alcotest.fail "no sweep points");
  let last = List.nth outs (List.length outs - 1) in
  Alcotest.(check bool) "ends low" true (last < 0.1);
  let monotone =
    List.for_all2
      (fun a b -> b <= a +. 1e-6)
      (List.filteri (fun i _ -> i < List.length outs - 1) outs)
      (List.tl outs)
  in
  Alcotest.(check bool) "monotone decreasing" true monotone

let test_dc_kcl_at_internal_node () =
  (* Three resistors meeting at a node: currents must balance. *)
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  let n = Netlist.node nl "n" in
  Netlist.add_vsource nl ~name:"VA" ~pos:a ~neg:Netlist.ground (Waveform.dc 3.0);
  Netlist.add_vsource nl ~name:"VB" ~pos:b ~neg:Netlist.ground (Waveform.dc 1.0);
  Netlist.add_resistor nl ~name:"R1" a n 100.0;
  Netlist.add_resistor nl ~name:"R2" b n 200.0;
  Netlist.add_resistor nl ~name:"R3" n Netlist.ground 300.0;
  let sol = Engine.dc_operating_point nl in
  let vn = Engine.voltage sol n in
  let sum = ((3.0 -. vn) /. 100.0) +. ((1.0 -. vn) /. 200.0) -. (vn /. 300.0) in
  check_float 1e-9 "KCL" 0.0 sum

(* ------------------------------------------------------------------ *)
(* Engine: transient                                                   *)
(* ------------------------------------------------------------------ *)

let test_transient_rc_charge () =
  let r = 1_000.0 and c = 1e-9 in
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  let out = Netlist.node nl "out" in
  (* Step from 0 to 5 V shortly after t=0 so the DC point starts at 0. *)
  Netlist.add_vsource nl ~name:"V1" ~pos:src ~neg:Netlist.ground
    (Waveform.pwl [ 0.0, 0.0; 1e-9, 5.0 ]);
  Netlist.add_resistor nl ~name:"R1" src out r;
  Netlist.add_capacitor nl ~name:"C1" out Netlist.ground c;
  let tau = r *. c in
  let sols = Engine.transient nl ~stop:(5. *. tau) ~step:(tau /. 200.) in
  let final = List.nth sols (List.length sols - 1) in
  check_float 0.05 "fully charged" 5.0 (Engine.voltage final out);
  (* At one time constant after the step the output is ~63 % of 5 V.
     Backward Euler with 200 steps/tau is within a percent. *)
  let at_tau =
    List.find
      (fun s -> Float.abs (Engine.time s -. (tau +. 1e-9)) < tau /. 300.)
      sols
  in
  check_float 0.05 "one tau" (5.0 *. (1. -. exp (-1.))) (Engine.voltage at_tau out)

let test_transient_capacitor_holds_charge () =
  (* A capacitor fed through a huge resistor barely moves within a time
     much shorter than tau = 1 s (the source steps after t = 0 so the DC
     point starts discharged). *)
  let nl = Netlist.create () in
  let src = Netlist.node nl "src" in
  let out = Netlist.node nl "out" in
  Netlist.add_vsource nl ~name:"V1" ~pos:src ~neg:Netlist.ground
    (Waveform.pwl [ 0.0, 0.0; 1e-9, 5.0 ]);
  Netlist.add_resistor nl ~name:"R1" src out 1e9;
  Netlist.add_capacitor nl ~name:"C1" out Netlist.ground 1e-9;
  let sols = Engine.transient nl ~stop:1e-6 ~step:1e-8 in
  let final = List.nth sols (List.length sols - 1) in
  Alcotest.(check bool) "barely charged" true (Engine.voltage final out < 0.05)

let test_transient_inverter_switches () =
  let nl = Netlist.create () in
  let vdd = Netlist.node nl "vdd" in
  let vin = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.add_vsource nl ~name:"VDD" ~pos:vdd ~neg:Netlist.ground (Waveform.dc 5.0);
  Netlist.add_vsource nl ~name:"VIN" ~pos:vin ~neg:Netlist.ground
    (Waveform.pulse ~v0:0.0 ~v1:5.0 ~delay:10e-9 ~rise:1e-9 ~fall:1e-9
       ~width:30e-9 ~period:100e-9);
  Netlist.add_mosfet nl ~name:"MN" ~drain:out ~gate:vin ~source:Netlist.ground
    ~bulk:Netlist.ground nmos_spec;
  Netlist.add_mosfet nl ~name:"MP" ~drain:out ~gate:vin ~source:vdd ~bulk:vdd
    pmos_spec;
  Netlist.add_capacitor nl ~name:"CL" out Netlist.ground 50e-15;
  let sols = Engine.transient nl ~stop:50e-9 ~step:0.5e-9 in
  let v_at t =
    let s = List.find (fun s -> Float.abs (Engine.time s -. t) < 0.2e-9) sols in
    Engine.voltage s out
  in
  Alcotest.(check bool) "high before pulse" true (v_at 5e-9 > 4.9);
  Alcotest.(check bool) "low during pulse" true (v_at 30e-9 < 0.1)

let test_transient_supply_current_inverter () =
  (* A static CMOS inverter draws (almost) no supply current at either
     rail — the IDDQ mechanism the paper exploits. *)
  let nl, _, _ = build_inverter () in
  let sol = Engine.dc_operating_point nl in
  Alcotest.(check bool) "IDDQ tiny" true
    (Float.abs (Engine.source_current sol "VDD") < 1e-6)

let test_transient_rejects_bad_grid () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.add_resistor nl ~name:"R1" a Netlist.ground 1.0;
  Alcotest.check_raises "bad grid"
    (Invalid_argument "Engine.transient: bad time grid") (fun () ->
      ignore (Engine.transient nl ~stop:1.0 ~step:0.0))

(* ------------------------------------------------------------------ *)
(* Engine: solver backends                                             *)
(* ------------------------------------------------------------------ *)

let test_solver_names_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Engine.solver_name s ^ " round-trips")
        true
        (Engine.solver_of_string (Engine.solver_name s) = Some s))
    Engine.all_solvers;
  Alcotest.(check bool) "unknown rejected" true
    (Engine.solver_of_string "cholesky" = None)

let test_with_solver_scoped () =
  Alcotest.(check bool) "default in effect" true
    (Engine.current_solver () = Engine.default_solver);
  Engine.with_solver Engine.Dense (fun () ->
      Alcotest.(check bool) "override visible" true
        (Engine.current_solver () = Engine.Dense);
      Engine.with_solver Engine.Rank1 (fun () ->
          Alcotest.(check bool) "nested override" true
            (Engine.current_solver () = Engine.Rank1));
      Alcotest.(check bool) "inner scope popped" true
        (Engine.current_solver () = Engine.Dense));
  Alcotest.(check bool) "restored" true
    (Engine.current_solver () = Engine.default_solver)

let test_solver_backends_agree () =
  (* The inverter transient under every backend: node voltages must
     agree to far tighter than any signature-classification threshold,
     and the fast path must actually fire under Rank1/Auto — otherwise
     the comparison proves nothing. *)
  let run solver =
    let nl = Netlist.create () in
    let vdd = Netlist.node nl "vdd" in
    let vin = Netlist.node nl "in" in
    let out = Netlist.node nl "out" in
    Netlist.add_vsource nl ~name:"VDD" ~pos:vdd ~neg:Netlist.ground
      (Waveform.dc 5.0);
    Netlist.add_vsource nl ~name:"VIN" ~pos:vin ~neg:Netlist.ground
      (Waveform.pulse ~v0:0.0 ~v1:5.0 ~delay:10e-9 ~rise:1e-9 ~fall:1e-9
         ~width:30e-9 ~period:100e-9);
    Netlist.add_mosfet nl ~name:"MN" ~drain:out ~gate:vin
      ~source:Netlist.ground ~bulk:Netlist.ground nmos_spec;
    Netlist.add_mosfet nl ~name:"MP" ~drain:out ~gate:vin ~source:vdd
      ~bulk:vdd pmos_spec;
    Netlist.add_capacitor nl ~name:"CL" out Netlist.ground 50e-15;
    let memory = Util.Telemetry.in_memory () in
    let sols =
      Util.Telemetry.with_sink (Util.Telemetry.memory_sink memory)
      @@ fun () ->
      Engine.with_solver solver (fun () ->
          let sols = Engine.transient nl ~stop:50e-9 ~step:0.5e-9 in
          Util.Telemetry.flush_local ();
          sols)
    in
    let counters =
      (Util.Telemetry.metrics memory).Util.Telemetry.Metrics.counters
    in
    let counter name =
      match List.assoc_opt name counters with Some n -> n | None -> 0
    in
    List.map (fun s -> Engine.time s, Engine.voltage s out) sols, counter
  in
  let dense, _ = run Engine.Dense in
  List.iter
    (fun solver ->
      let name = Engine.solver_name solver in
      let fast, counter = run solver in
      Alcotest.(check int)
        (name ^ ": same step count")
        (List.length dense) (List.length fast);
      List.iter2
        (fun (t, v) (t', v') ->
          check_float 0.0 (Printf.sprintf "%s: time %g" name t) t t';
          check_float 1e-6 (Printf.sprintf "%s: out @ %g" name t) v v')
        dense fast;
      Alcotest.(check bool)
        (name ^ ": factorizations counted")
        true
        (counter "engine.factorizations" > 0);
      Alcotest.(check bool)
        (name ^ ": fast path fired")
        true
        (counter "engine.jacobian_bypass" + counter "engine.rank1_solves" > 0))
    [ Engine.Rank1; Engine.Auto ]

(* ------------------------------------------------------------------ *)
(* Engine: AC                                                          *)
(* ------------------------------------------------------------------ *)

let rc_lowpass () =
  (* fc = 1/(2 pi RC) = 1.59 kHz for 10k / 10n. *)
  let nl = Netlist.create () in
  let vin = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.add_vsource nl ~name:"V1" ~pos:vin ~neg:Netlist.ground (Waveform.dc 0.0);
  Netlist.add_resistor nl ~name:"R1" vin out 10_000.0;
  Netlist.add_capacitor nl ~name:"C1" out Netlist.ground 10e-9;
  nl, out

let test_ac_lowpass_corner () =
  let nl, out = rc_lowpass () in
  let fc = 1.0 /. (2.0 *. Float.pi *. 10_000.0 *. 10e-9) in
  match Engine.ac_sweep nl ~source:"V1" ~frequencies:[ fc /. 100.0; fc; fc *. 100.0 ] with
  | [ (_, low); (_, corner); (_, high) ] ->
    check_float 0.05 "passband 0 dB" 0.0 (Engine.ac_magnitude_db low out);
    check_float 0.05 "-3 dB at corner" (-3.0103) (Engine.ac_magnitude_db corner out);
    check_float 1.0 "-40 dB two decades up" (-40.0) (Engine.ac_magnitude_db high out);
    check_float 0.5 "-45 degrees at corner" (-45.0) (Engine.ac_phase_deg corner out)
  | _ -> Alcotest.fail "unexpected sweep shape"

let test_ac_common_source_gain () =
  (* Common-source amplifier with a resistive load: |A| = gm * (RL || ro)
     at low frequency. *)
  let nl = Netlist.create () in
  let vdd = Netlist.node nl "vdd" in
  let vin = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.add_vsource nl ~name:"VDD" ~pos:vdd ~neg:Netlist.ground (Waveform.dc 5.0);
  Netlist.add_vsource nl ~name:"VIN" ~pos:vin ~neg:Netlist.ground (Waveform.dc 1.2);
  Netlist.add_resistor nl ~name:"RL" vdd out 10_000.0;
  Netlist.add_mosfet nl ~name:"M1" ~drain:out ~gate:vin ~source:Netlist.ground
    ~bulk:Netlist.ground nmos_spec;
  let op = Engine.dc_operating_point nl in
  let vds = Engine.voltage op out in
  let small =
    Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:10e-6 ~l:1e-6
      ~vgs:1.2 ~vds
  in
  let expected_gain =
    small.Mos_model.gm /. ((1.0 /. 10_000.0) +. small.Mos_model.gds)
  in
  (match Engine.ac_sweep nl ~source:"VIN" ~frequencies:[ 100.0 ] with
  | [ (_, sol) ] ->
    check_float 0.1 "gain magnitude" expected_gain
      (Complex.norm (Engine.ac_voltage sol out));
    (* Inverting stage: phase ~180 degrees. *)
    check_float 1.0 "inverting" 180.0 (Float.abs (Engine.ac_phase_deg sol out))
  | _ -> Alcotest.fail "unexpected sweep shape")

let test_ac_rejects_bad_source () =
  let nl, _ = rc_lowpass () in
  Alcotest.check_raises "unknown source"
    (Invalid_argument "Engine.ac_sweep: \"nope\" is not a voltage source")
    (fun () -> ignore (Engine.ac_sweep nl ~source:"nope" ~frequencies:[ 1.0 ]))

let test_ac_decades_grid () =
  let grid = Engine.decades ~lo:1.0 ~hi:1000.0 ~per_decade:1 in
  Alcotest.(check int) "4 points" 4 (List.length grid);
  check_float 1e-6 "first" 1.0 (List.nth grid 0);
  check_float 1e-3 "last" 1000.0 (List.nth grid 3)

(* ------------------------------------------------------------------ *)
(* Netlist mutation                                                    *)
(* ------------------------------------------------------------------ *)

let test_netlist_copy_is_deep () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  Netlist.add_resistor nl ~name:"R1" a b 100.0;
  let clone = Netlist.copy nl in
  Netlist.reconnect clone { Netlist.device = "R1"; role = "-" } Netlist.ground;
  let original_pin = Netlist.pin_node nl { Netlist.device = "R1"; role = "-" } in
  Alcotest.(check bool) "original untouched" true (Netlist.node_equal original_pin b)

let test_netlist_duplicate_device () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.add_resistor nl ~name:"R1" a Netlist.ground 1.0;
  Alcotest.check_raises "duplicate" (Invalid_argument "Netlist: duplicate device \"R1\"")
    (fun () -> Netlist.add_resistor nl ~name:"R1" a Netlist.ground 2.0)

let test_netlist_pins_of_node () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.add_resistor nl ~name:"R1" a Netlist.ground 1.0;
  Netlist.add_capacitor nl ~name:"C1" a Netlist.ground 1e-12;
  let pins = Netlist.pins_of_node nl a in
  Alcotest.(check int) "two pins" 2 (List.length pins)

let test_netlist_split_via_reconnect () =
  (* Simulating an open: move one resistor end to a fresh node and check
     the divider output collapses. *)
  let nl = Netlist.create () in
  let vin = Netlist.node nl "in" in
  let mid = Netlist.node nl "mid" in
  Netlist.add_vsource nl ~name:"V1" ~pos:vin ~neg:Netlist.ground (Waveform.dc 10.0);
  Netlist.add_resistor nl ~name:"R1" vin mid 1_000.0;
  Netlist.add_resistor nl ~name:"R2" mid Netlist.ground 3_000.0;
  let broken = Netlist.copy nl in
  let floating = Netlist.fresh_node broken "open" in
  Netlist.reconnect broken { Netlist.device = "R1"; role = "-" } floating;
  let sol = Engine.dc_operating_point broken in
  check_float 1e-3 "output collapses" 0.0 (Engine.voltage sol mid)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"dc: series resistor chain divides proportionally"
      (pair (int_range 2 8) (float_range 1.0 10.0))
      (fun (n, v) ->
        let nl = Netlist.create () in
        let top = Netlist.node nl "top" in
        Netlist.add_vsource nl ~name:"V" ~pos:top ~neg:Netlist.ground (Waveform.dc v);
        let rec chain i prev =
          if i = n then
            Netlist.add_resistor nl ~name:(Printf.sprintf "R%d" i) prev
              Netlist.ground 1000.0
          else begin
            let next = Netlist.node nl (Printf.sprintf "n%d" i) in
            Netlist.add_resistor nl ~name:(Printf.sprintf "R%d" i) prev next 1000.0;
            chain (i + 1) next
          end
        in
        chain 1 top;
        let sol = Engine.dc_operating_point nl in
        (* Node k of an equal chain sits at v * (n - k) / n. *)
        let ok = ref true in
        for k = 1 to n - 1 do
          let node = Netlist.node nl (Printf.sprintf "n%d" k) in
          let expect = v *. float_of_int (n - k) /. float_of_int n in
          if Float.abs (Engine.voltage sol node -. expect) > 1e-6 *. v then
            ok := false
        done;
        !ok);
    Test.make ~name:"mos: id is antisymmetric under terminal swap"
      (pair (float_range 0.0 5.0) (float_range (-5.0) 5.0))
      (fun (vgs, vds) ->
        let fwd =
          Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:5e-6
            ~l:1e-6 ~vgs ~vds
        in
        let rev =
          Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:5e-6
            ~l:1e-6 ~vgs:(vgs -. vds) ~vds:(-.vds)
        in
        Float.abs (fwd.Mos_model.id +. rev.Mos_model.id) < 1e-12);
    Test.make ~name:"mos: current increases with vgs in saturation"
      (pair (float_range 1.0 2.0) (float_range 2.5 5.0))
      (fun (vgs, vds) ->
        let at v =
          (Mos_model.evaluate ~polarity:Mos_model.Nmos ~params:nmos ~w:5e-6
             ~l:1e-6 ~vgs:v ~vds)
            .Mos_model.id
        in
        at (vgs +. 0.1) >= at vgs);
    Test.make
      ~name:"mos: packed evaluation is bit-identical to the scalar model"
      (triple bool (pair (float_range (-1.0) 5.0) (float_range (-5.0) 5.0))
         (pair (float_range 0.5 5.0) (float_range 0.5 5.0)))
      (fun (is_pmos, (vgs, vds), (w_um, l_um)) ->
        let polarity = if is_pmos then Mos_model.Pmos else Mos_model.Nmos in
        let params =
          if is_pmos then Mos_model.default_pmos else Mos_model.default_nmos
        in
        let w = w_um *. 1e-6 and l = l_um *. 1e-6 in
        (* PMOS biases lean negative; mirror the generated values. *)
        let vgs = if is_pmos then -.vgs else vgs in
        let vds = if is_pmos then -.vds else vds in
        let scalar = Mos_model.evaluate ~polarity ~params ~w ~l ~vgs ~vds in
        let id = [| Float.nan |] and gm = [| Float.nan |] and gds = [| Float.nan |] in
        Mos_model.evaluate_packed ~n:1
          ~sign:[| (if is_pmos then -1.0 else 1.0) |]
          ~vth:[| params.Mos_model.vth |]
          ~beta:[| params.Mos_model.kp *. w /. l |]
          ~lambda:[| params.Mos_model.lambda |]
          ~vgs:[| vgs |] ~vds:[| vds |] ~id ~gm ~gds;
        scalar.Mos_model.id = id.(0)
        && scalar.Mos_model.gm = gm.(0)
        && scalar.Mos_model.gds = gds.(0));
    Test.make ~name:"linear: rank-1 update agrees with from-scratch factor"
      (pair (int_range 2 8) (int_range 0 100_000))
      (fun (n, seed) ->
        (* A deterministic LCG keeps the matrix a pure function of the
           generated seed, so shrinking stays meaningful. *)
        let state = ref ((2 * seed) + 1) in
        let rand () =
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          (float_of_int !state /. float_of_int 0x3FFFFFFF) -. 0.5
        in
        let a = Array.init n (fun _ -> Array.init n (fun _ -> rand ())) in
        (* Diagonally dominant — the SPD-ish shape gmin-stamped MNA
           matrices have, and safely far from the singularity guard. *)
        for i = 0 to n - 1 do
          let s = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 a.(i) in
          a.(i).(i) <- s +. 1.0
        done;
        let u = Array.init n (fun _ -> rand ()) in
        let v = Array.init n (fun _ -> rand ()) in
        let c = rand () in
        let b = Array.init n (fun _ -> rand ()) in
        let f = Linear.Factor.factor a in
        (match Linear.Factor.rank1_update f ~c ~u ~v with
        | None -> true (* guard fired: legal, the caller re-factors *)
        | Some f' ->
          let a' =
            Array.init n (fun i ->
                Array.init n (fun j -> a.(i).(j) +. (c *. u.(i) *. v.(j))))
          in
          let x = Linear.Factor.solve_factored f' b in
          let y = solve_fresh a' b in
          let ok = ref true in
          for i = 0 to n - 1 do
            if Float.abs (x.(i) -. y.(i)) > 1e-9 then ok := false
          done;
          !ok));
    Test.make ~name:"linear: rank-1 guard refuses singular updates"
      (int_range 2 8)
      (fun n ->
        (* A = I, u = v = e0, c = -1 makes A + c·u·vᵀ exactly singular:
           the denominator guard must refuse at every size. *)
        let a = Linear.matrix n in
        for i = 0 to n - 1 do
          a.(i).(i) <- 1.0
        done;
        let e0 = Array.make n 0.0 in
        e0.(0) <- 1.0;
        let f = Linear.Factor.factor a in
        match Linear.Factor.rank1_update f ~c:(-1.0) ~u:e0 ~v:e0 with
        | None -> true
        | Some _ -> false);
    Test.make ~name:"waveform: pwl stays within value envelope"
      (pair (list_of_size (Gen.int_range 1 8) (float_range (-5.) 5.)) (float_range (-1.) 10.))
      (fun (values, t) ->
        let points = List.mapi (fun i v -> float_of_int i, v) values in
        let w = Waveform.pwl points in
        let lo = List.fold_left Float.min infinity values in
        let hi = List.fold_left Float.max neg_infinity values in
        let v = Waveform.value w t in
        v >= lo -. 1e-9 && v <= hi +. 1e-9);
  ]

let suites =
  [
    ( "circuit.linear",
      [
        Alcotest.test_case "known 2x2" `Quick test_linear_known_2x2;
        Alcotest.test_case "pivoting" `Quick test_linear_needs_pivoting;
        Alcotest.test_case "singular" `Quick test_linear_singular;
        Alcotest.test_case "residual" `Quick test_linear_residual;
        Alcotest.test_case "scaled singularity" `Quick
          test_linear_scaled_singularity;
        Alcotest.test_case "factor matches fresh solve" `Quick
          test_factor_matches_fresh_solve;
        Alcotest.test_case "rank-1 agrees" `Quick test_factor_rank1_agrees;
        Alcotest.test_case "rank-1 fallback" `Quick test_factor_rank1_fallback;
        Alcotest.test_case "banded permute" `Quick test_factor_banded_permute;
      ] );
    ( "circuit.waveform",
      [
        Alcotest.test_case "dc" `Quick test_waveform_dc;
        Alcotest.test_case "pwl" `Quick test_waveform_pwl;
        Alcotest.test_case "pwl unordered" `Quick test_waveform_pwl_rejects_unordered;
        Alcotest.test_case "pulse" `Quick test_waveform_pulse;
        Alcotest.test_case "triangle" `Quick test_waveform_triangle;
        Alcotest.test_case "scale" `Quick test_waveform_scale;
      ] );
    ( "circuit.mos_model",
      [
        Alcotest.test_case "cutoff" `Quick test_mos_cutoff;
        Alcotest.test_case "saturation" `Quick test_mos_saturation_value;
        Alcotest.test_case "triode" `Quick test_mos_triode_value;
        Alcotest.test_case "symmetry" `Quick test_mos_symmetry;
        Alcotest.test_case "pmos mirror" `Quick test_mos_pmos_mirror;
      ] );
    ( "circuit.engine.dc",
      [
        Alcotest.test_case "voltage divider" `Quick test_dc_voltage_divider;
        Alcotest.test_case "diagnostics" `Quick test_dc_diagnostics;
        Alcotest.test_case "escalation ladder" `Quick test_escalation_ladder;
        Alcotest.test_case "options override scoped" `Quick test_options_override_scoped;
        Alcotest.test_case "deadline propagates" `Quick test_dc_deadline_propagates;
        Alcotest.test_case "current source" `Quick test_dc_current_source;
        Alcotest.test_case "floating node" `Quick test_dc_floating_node_gmin;
        Alcotest.test_case "nmos diode KCL" `Quick test_dc_nmos_diode;
        Alcotest.test_case "inverter rails" `Quick test_dc_inverter_rails;
        Alcotest.test_case "inverter sweep monotone" `Quick test_dc_sweep_inverter_monotone;
        Alcotest.test_case "KCL at internal node" `Quick test_dc_kcl_at_internal_node;
      ] );
    ( "circuit.engine.transient",
      [
        Alcotest.test_case "rc charge" `Quick test_transient_rc_charge;
        Alcotest.test_case "cap holds charge" `Quick test_transient_capacitor_holds_charge;
        Alcotest.test_case "inverter switches" `Quick test_transient_inverter_switches;
        Alcotest.test_case "inverter IDDQ tiny" `Quick test_transient_supply_current_inverter;
        Alcotest.test_case "rejects bad grid" `Quick test_transient_rejects_bad_grid;
      ] );
    ( "circuit.engine.solver",
      [
        Alcotest.test_case "names round-trip" `Quick test_solver_names_roundtrip;
        Alcotest.test_case "with_solver scoped" `Quick test_with_solver_scoped;
        Alcotest.test_case "backends agree" `Quick test_solver_backends_agree;
      ] );
    ( "circuit.engine.ac",
      [
        Alcotest.test_case "rc lowpass corner" `Quick test_ac_lowpass_corner;
        Alcotest.test_case "common-source gain" `Quick test_ac_common_source_gain;
        Alcotest.test_case "rejects bad source" `Quick test_ac_rejects_bad_source;
        Alcotest.test_case "decades grid" `Quick test_ac_decades_grid;
      ] );
    ( "circuit.netlist",
      [
        Alcotest.test_case "deep copy" `Quick test_netlist_copy_is_deep;
        Alcotest.test_case "duplicate device" `Quick test_netlist_duplicate_device;
        Alcotest.test_case "pins of node" `Quick test_netlist_pins_of_node;
        Alcotest.test_case "open via reconnect" `Quick test_netlist_split_via_reconnect;
      ] );
    "circuit.properties", List.map QCheck_alcotest.to_alcotest qcheck_props;
  ]
