(* Tests for the Class-AB amplifier case study. *)

let nominal = Process.Variation.nominal Process.Tech.cmos1um

let golden =
  lazy
    (let macro = Amplifier.Class_ab.macro () in
     macro.Macro.Macro_cell.measure (macro.Macro.Macro_cell.build nominal))

let get name = Macro.Macro_cell.get (Lazy.force golden) name

let test_follower_tracks () =
  (* The two-stage loop keeps the follower within tens of millivolts. *)
  List.iter
    (fun name -> Alcotest.(check bool) name true (Float.abs (get name) < 0.1))
    [ "v:dc:track:lo"; "v:dc:track:mid"; "v:dc:track:hi" ]

let test_step_settles () =
  (* The settled output after a 2.0 -> 3.0 V step sits near 3 V (minus the
     static tracking error). *)
  Alcotest.(check bool) "settled near 3V" true
    (Float.abs (get "v:tr:settle" -. 3.0) < 0.1);
  Alcotest.(check bool) "slewing sample between rails" true
    (get "v:tr:slew" > 2.0 && get "v:tr:slew" < 3.2)

let test_ac_passband_unity () =
  Alcotest.(check bool) "~0 dB in passband" true
    (Float.abs (get "v:ac:pass") < 1.0)

let test_quiescent_current () =
  (* Bias + tail + output stage: hundreds of microamps, well-defined. *)
  let q = get "ivdd:q" in
  Alcotest.(check bool) "class-A/B quiescent" true (q > 50e-6 && q < 1e-3)

let test_layout_clean () =
  let macro = Amplifier.Class_ab.macro () in
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  Alcotest.(check (list string)) "LVS" []
    (Layout.Extract.check_against
       (Layout.Extract.extract cell)
       (Amplifier.Class_ab.layout_netlist ()));
  Alcotest.(check int) "DRC" 0 (List.length (Layout.Drc.check cell))

let test_family_classification () =
  let f = Amplifier.Class_ab.family_of_measurement in
  Alcotest.(check bool) "dc" true (f "v:dc:track:lo" = Some Amplifier.Class_ab.Dc);
  Alcotest.(check bool) "transient" true (f "v:tr:slew" = Some Amplifier.Class_ab.Transient);
  Alcotest.(check bool) "ac" true (f "v:ac:pass" = Some Amplifier.Class_ab.Ac);
  Alcotest.(check bool) "current" true (f "ivdd:q" = Some Amplifier.Class_ab.Current);
  Alcotest.(check bool) "other" true (f "v:misc" = None)

let study =
  lazy
    (Amplifier.Study.run
       ~config:
         Core.Pipeline.Config.(
           default |> with_defects 8_000 |> with_good_space_dies 16)
       ())

let test_study_shape () =
  let result = Lazy.force study in
  Alcotest.(check bool) "found faults" true
    (result.Amplifier.Study.reports <> []);
  let combined = Amplifier.Study.coverage result in
  Alcotest.(check bool) "most defects detectable" true (combined > 0.8);
  Alcotest.(check bool) "but not all (parametric escapes)" true (combined < 1.0);
  (* Each family's coverage cannot exceed the combined coverage. *)
  List.iter
    (fun (_, share) ->
      Alcotest.(check bool) "family <= combined" true (share <= combined +. 1e-9))
    (Amplifier.Study.family_coverage result)

let test_study_exclusive_sums () =
  let result = Lazy.force study in
  let exclusive_total =
    List.fold_left
      (fun acc (_, share) -> acc +. share)
      0.0
      (Amplifier.Study.exclusive_coverage result)
  in
  Alcotest.(check bool) "exclusive <= combined" true
    (exclusive_total <= Amplifier.Study.coverage result +. 1e-9)

let test_study_hard_fault_trips_families () =
  (* Grounding the first-stage output kills the loop: DC, transient and
     AC must all see it. (A supply-to-ground short, by contrast, is
     masked from the voltage domains by the ideal bench supply and only
     shows in the current — also checked.) *)
  let macro = Amplifier.Class_ab.macro () in
  let nl = macro.Macro.Macro_cell.build nominal in
  let result = Lazy.force study in
  let families_of fault =
    let faulty = Fault.Inject.inject nl fault in
    let vector = macro.Macro.Macro_cell.measure faulty in
    Macro.Good_space.deviating result.analysis.Core.Pipeline.good vector
    |> List.filter_map Amplifier.Class_ab.family_of_measurement
    |> List.sort_uniq compare
  in
  let bridge a b =
    Fault.Types.Bridge
      { net_a = a; net_b = b; resistance = 10.0; capacitance = None;
        origin = Fault.Types.Short }
  in
  let dead_loop = families_of (bridge "o1" "0") in
  List.iter
    (fun family ->
      Alcotest.(check bool)
        (Amplifier.Class_ab.family_name family ^ " sees dead loop")
        true
        (List.mem family dead_loop))
    [ Amplifier.Class_ab.Dc; Amplifier.Class_ab.Transient; Amplifier.Class_ab.Ac ];
  Alcotest.(check bool) "supply short is current-only" true
    (families_of (bridge "vdd" "0") = [ Amplifier.Class_ab.Current ])

let suites =
  [
    ( "amplifier.class_ab",
      [
        Alcotest.test_case "follower tracks" `Quick test_follower_tracks;
        Alcotest.test_case "step settles" `Quick test_step_settles;
        Alcotest.test_case "ac passband" `Quick test_ac_passband_unity;
        Alcotest.test_case "quiescent current" `Quick test_quiescent_current;
        Alcotest.test_case "layout clean" `Quick test_layout_clean;
        Alcotest.test_case "family classification" `Quick test_family_classification;
      ] );
    ( "amplifier.study",
      [
        Alcotest.test_case "shape" `Slow test_study_shape;
        Alcotest.test_case "exclusive sums" `Slow test_study_exclusive_sums;
        Alcotest.test_case "hard faults trip families" `Slow test_study_hard_fault_trips_families;
      ] );
  ]
