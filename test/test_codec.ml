(* Core.Codec: round-trip properties and decode-error totality.

   The codec is the library's single (de)serialization surface; the
   result cache depends on [of_json (to_json v) = Ok v] holding exactly
   (floats included), and on decoders returning [Error] — never raising —
   on arbitrary junk. *)

let roundtrip ~to_json ~of_json v =
  match of_json (to_json v) with
  | Ok v' -> v' = v
  | Error e -> QCheck.Test.fail_reportf "decode error: %s" e

(* Also through the printed form: the cache stores rendered strings. *)
let roundtrip_printed ~to_json ~of_json v =
  match Util.Json.of_string (Util.Json.to_string (to_json v)) with
  | Error e -> QCheck.Test.fail_reportf "reparse error: %s" e
  | Ok j -> (
    match of_json j with
    | Ok v' -> v' = v
    | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

(* --- generators -------------------------------------------------------- *)

let gen_name =
  QCheck.Gen.(
    map
      (fun (c, s) -> Printf.sprintf "n%c%s" c s)
      (pair (char_range 'a' 'z') (string_size ~gen:(char_range 'a' 'z') (0 -- 6))))

(* Finite floats only: NaN never round-trips under (=) and infinities are
   not JSON. Mix awkward magnitudes with plain ones. *)
let gen_float =
  QCheck.Gen.(
    oneof
      [
        oneofl [ 0.0; -0.0; 1.0; 500.0; 0.1; 3.14159; 1e-15; 6.02e23; ~-.7.25 ];
        float_bound_inclusive 1e6;
        map (fun f -> ~-.f) (float_bound_inclusive 1e3);
      ])

let gen_mechanism =
  QCheck.Gen.(
    oneof
      [
        map (fun l -> Process.Defect_stats.Extra_material l) (oneofl Process.Layer.all);
        map (fun l -> Process.Defect_stats.Missing_material l) (oneofl Process.Layer.all);
        oneofl
          Process.Defect_stats.
            [
              Gate_oxide_pinhole;
              Junction_pinhole;
              Thick_oxide_pinhole;
              Extra_contact;
              Missing_contact;
            ];
      ])

let gen_bridge_origin =
  QCheck.Gen.oneofl
    Fault.Types.[ Short; Extra_contact; Thick_oxide_pinhole ]

let gen_fault =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (net_a, net_b, resistance, capacitance, origin) ->
            Fault.Types.Bridge { net_a; net_b; resistance; capacitance; origin })
          (tup5 gen_name gen_name gen_float (opt gen_float) gen_bridge_origin);
        map
          (fun (nets, resistance, capacitance, origin) ->
            Fault.Types.Bridge_cluster { nets; resistance; capacitance; origin })
          (tup4 (list_size (3 -- 5) gen_name) gen_float (opt gen_float)
             gen_bridge_origin);
        map
          (fun (net, far_pins) -> Fault.Types.Node_split { net; far_pins })
          (pair gen_name (list_size (0 -- 4) (pair gen_name gen_name)));
        map
          (fun (device, site, resistance) ->
            Fault.Types.Gate_pinhole { device; site; resistance })
          (tup3 gen_name
             (oneofl Fault.Types.[ To_source; To_drain; To_channel ])
             gen_float);
        map
          (fun (net, bulk_net, resistance) ->
            Fault.Types.Junction_leak { net; bulk_net; resistance })
          (tup3 gen_name gen_name gen_float);
        map
          (fun (device, resistance) ->
            Fault.Types.Device_ds_short { device; resistance })
          (pair gen_name gen_float);
        map
          (fun (gate_net, net_a, net_b) ->
            Fault.Types.Parasitic_mos { gate_net; net_a; net_b })
          (tup3 gen_name gen_name gen_name);
      ])

let gen_instance =
  QCheck.Gen.(
    map
      (fun (fault, severity, mechanism) ->
        { Fault.Types.fault; severity; mechanism })
      (tup3 gen_fault
         (oneofl Fault.Types.[ Catastrophic; Non_catastrophic ])
         gen_mechanism))

let gen_fault_class =
  QCheck.Gen.(
    map
      (fun (representative, count) -> { Fault.Collapse.representative; count })
      (pair gen_instance (1 -- 10_000)))

let gen_signature =
  QCheck.Gen.(
    map
      (fun (voltage, currents) -> { Macro.Signature.voltage; currents })
      (pair
         (oneofl Macro.Signature.all_voltage)
         (oneofl
            ([ [] ]
            @ List.map (fun c -> [ c ]) Macro.Signature.all_current
            @ [ Macro.Signature.all_current ]))))

let gen_status =
  QCheck.Gen.(
    oneof
      [
        return Macro.Evaluate.Converged;
        map (fun attempts -> Macro.Evaluate.Recovered { attempts }) (1 -- 5);
        map
          (fun (attempts, error) -> Macro.Evaluate.Unresolved { attempts; error })
          (pair (1 -- 5) gen_name);
      ])

let gen_outcome =
  QCheck.Gen.(
    map
      (fun (fault_class, signature, status) ->
        { Macro.Evaluate.fault_class; signature; status })
      (tup3 gen_fault_class gen_signature gen_status))

let gen_good_space =
  QCheck.Gen.(
    map Macro.Good_space.of_windows
      (list_size (0 -- 6)
         (pair gen_name
            (map
               (fun (low, high) -> { Util.Stats.low; high })
               (pair gen_float gen_float)))))

let gen_analysis =
  QCheck.Gen.(
    map
      (fun ( sprinkled,
             effective,
             good,
             (classes_catastrophic, classes_non_catastrophic),
             (outcomes_catastrophic, outcomes_non_catastrophic) ) ->
        {
          Core.Codec.sprinkled;
          effective;
          good;
          classes_catastrophic;
          classes_non_catastrophic;
          outcomes_catastrophic;
          outcomes_non_catastrophic;
        })
      (tup5 (0 -- 100_000) (0 -- 10_000) gen_good_space
         (pair
            (list_size (0 -- 3) gen_fault_class)
            (list_size (0 -- 3) gen_fault_class))
         (pair
            (list_size (0 -- 3) gen_outcome)
            (list_size (0 -- 3) gen_outcome))))

(* --- round-trip properties --------------------------------------------- *)

let prop name ?(count = 500) gen ~to_json ~of_json =
  QCheck.Test.make ~name ~count (QCheck.make gen) (fun v ->
      roundtrip ~to_json ~of_json v && roundtrip_printed ~to_json ~of_json v)

let qcheck_props =
  [
    prop "voltage round-trips"
      (QCheck.Gen.oneofl Macro.Signature.all_voltage)
      ~to_json:Core.Codec.voltage_to_json ~of_json:Core.Codec.voltage_of_json;
    prop "current kind round-trips"
      (QCheck.Gen.oneofl Macro.Signature.all_current)
      ~to_json:Core.Codec.current_kind_to_json
      ~of_json:Core.Codec.current_kind_of_json;
    prop "signature round-trips" gen_signature
      ~to_json:Core.Codec.signature_to_json
      ~of_json:Core.Codec.signature_of_json;
    prop "fault round-trips" gen_fault ~to_json:Core.Codec.fault_to_json
      ~of_json:Core.Codec.fault_of_json;
    prop "instance round-trips" gen_instance
      ~to_json:Core.Codec.instance_to_json ~of_json:Core.Codec.instance_of_json;
    prop "fault class round-trips" gen_fault_class
      ~to_json:Core.Codec.fault_class_to_json
      ~of_json:Core.Codec.fault_class_of_json;
    prop "status round-trips" gen_status ~to_json:Core.Codec.status_to_json
      ~of_json:Core.Codec.status_of_json;
    prop "outcome round-trips" gen_outcome ~to_json:Core.Codec.outcome_to_json
      ~of_json:Core.Codec.outcome_of_json;
    prop "good space round-trips" gen_good_space
      ~to_json:Core.Codec.good_space_to_json
      ~of_json:Core.Codec.good_space_of_json;
    prop "analysis round-trips" ~count:200 gen_analysis
      ~to_json:Core.Codec.analysis_to_json
      ~of_json:Core.Codec.analysis_of_json;
  ]

(* --- decoder totality -------------------------------------------------- *)

(* Arbitrary JSON values: every decoder must answer Ok/Error, not raise. *)
let gen_json =
  QCheck.Gen.(
    sized_size (0 -- 3) @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Util.Json.Null;
              map (fun b -> Util.Json.Bool b) bool;
              map (fun i -> Util.Json.Int i) (-5 -- 5);
              map (fun f -> Util.Json.Float f) gen_float;
              map (fun s -> Util.Json.String s) gen_name;
            ]
        in
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun l -> Util.Json.List l) (list_size (0 -- 3) (self (n - 1)));
              map
                (fun l -> Util.Json.Obj l)
                (list_size (0 -- 3) (pair gen_name (self (n - 1))));
            ]))

let decoders : (string * (Util.Json.t -> (unit, string) result)) list =
  let hide decode j = Result.map (fun _ -> ()) (decode j) in
  [
    "voltage", hide Core.Codec.voltage_of_json;
    "current_kind", hide Core.Codec.current_kind_of_json;
    "signature", hide Core.Codec.signature_of_json;
    "fault", hide Core.Codec.fault_of_json;
    "instance", hide Core.Codec.instance_of_json;
    "fault_class", hide Core.Codec.fault_class_of_json;
    "status", hide Core.Codec.status_of_json;
    "outcome", hide Core.Codec.outcome_of_json;
    "good_space", hide Core.Codec.good_space_of_json;
    "analysis", hide Core.Codec.analysis_of_json;
  ]

let decoders_total =
  QCheck.Test.make ~name:"decoders never raise" ~count:1000 (QCheck.make gen_json)
    (fun j ->
      List.for_all
        (fun (name, decode) ->
          match decode j with
          | Ok _ | Error _ -> true
          | exception e ->
            QCheck.Test.fail_reportf "%s decoder raised %s" name
              (Printexc.to_string e))
        decoders)

(* --- targeted decode errors -------------------------------------------- *)

let test_decode_errors_are_descriptive () =
  (match Core.Codec.voltage_of_json (Util.Json.String "not-a-voltage") with
  | Error e ->
    Alcotest.(check bool) "names the bad value" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown voltage must not decode");
  (match Core.Codec.fault_of_json (Util.Json.Obj [ "kind", Util.Json.String "warp-core" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown fault tag must not decode");
  match Core.Codec.analysis_of_json Util.Json.Null with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "null is not an analysis"

let test_mechanism_encoding_injective () =
  (* mechanism_name maps Extra_material Contact and Extra_contact to the
     same string; the codec must keep them distinct. *)
  let a = Process.Defect_stats.Extra_material Process.Layer.Contact in
  let b = Process.Defect_stats.Extra_contact in
  let inst mechanism =
    {
      Fault.Types.fault =
        Fault.Types.Device_ds_short { device = "m1"; resistance = 100.0 };
      severity = Fault.Types.Catastrophic;
      mechanism;
    }
  in
  let encode i = Util.Json.to_string (Core.Codec.instance_to_json (inst i)) in
  Alcotest.(check bool) "encodings differ" true (encode a <> encode b);
  List.iter
    (fun m ->
      match Core.Codec.instance_of_json (Core.Codec.instance_to_json (inst m)) with
      | Ok i -> Alcotest.(check bool) "mechanism survives" true (i.mechanism = m)
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [ a; b ]

let test_version_stamp_shape () =
  Alcotest.(check bool) "version is non-empty" true
    (String.length Core.Codec.version > 0)

let suites =
  [
    ( "core.codec",
      List.map QCheck_alcotest.to_alcotest (qcheck_props @ [ decoders_total ])
      @ [
          Alcotest.test_case "decode errors" `Quick
            test_decode_errors_are_descriptive;
          Alcotest.test_case "mechanism encoding injective" `Quick
            test_mechanism_encoding_injective;
          Alcotest.test_case "version stamp" `Quick test_version_stamp_shape;
        ] );
  ]
