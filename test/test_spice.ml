(* Tests for the SPICE netlist reader/writer. *)

open Circuit

let parse_ok text =
  match Spice.parse text with
  | Ok nl -> nl
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err text =
  match Spice.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_divider () =
  let nl =
    parse_ok
      "* a divider\nV1 in 0 DC 10\nR1 in mid 1k\nR2 mid 0 3k\n.END\n"
  in
  Alcotest.(check int) "devices" 3 (Netlist.device_count nl);
  let sol = Engine.dc_operating_point nl in
  Alcotest.(check (float 1e-6)) "solves" 7.5
    (Engine.voltage sol (Netlist.node nl "mid"))

let test_parse_suffixes () =
  let nl =
    parse_ok "I1 a 0 DC 1m\nR1 a 0 2k\nC1 a 0 100n\nR2 a 0 1MEG\n"
  in
  let sol = Engine.dc_operating_point nl in
  (* 1 mA into 2k || 1M ~ 1.996 V *)
  Alcotest.(check (float 1e-2)) "engineering values" 2.0
    (Engine.voltage sol (Netlist.node nl "a"))

let test_parse_mosfet_with_model () =
  let nl =
    parse_ok
      "VDD vdd 0 DC 5\n\
       VIN in 0 DC 5\n\
       RL vdd out 10k\n\
       M1 out in 0 0 NCH W=10u L=1u\n\
       .MODEL NCH NMOS (VTO=0.8 KP=90u LAMBDA=0.03)\n\
       .END\n"
  in
  let sol = Engine.dc_operating_point nl in
  Alcotest.(check bool) "transistor pulls down" true
    (Engine.voltage sol (Netlist.node nl "out") < 0.5)

let test_parse_pwl_and_pulse () =
  let nl =
    parse_ok
      "V1 a 0 PWL(0 0 1u 5)\nV2 b 0 PULSE(0 5 1n 1n 1n 10n 100n)\nR1 a b 1k\n"
  in
  Alcotest.(check int) "nodes" 2 (Netlist.node_count nl);
  (* PWL midpoint check through a transient step at 0.5us. *)
  let sols = Engine.transient nl ~stop:1e-6 ~step:0.5e-6 in
  let mid = List.nth sols 1 in
  Alcotest.(check (float 0.1)) "pwl ramps" 2.5
    (Engine.voltage mid (Netlist.node nl "a"))

let test_parse_reports_line_numbers () =
  let e = parse_err "R1 a 0 1k\nR2 a 0 bogus\n" in
  Alcotest.(check bool) "mentions line 2" true (contains e "line 2")

let test_parse_unknown_model () =
  let e = parse_err "M1 d g s 0 NOPE W=1u L=1u\n" in
  Alcotest.(check bool) "unknown model" true (contains e "unknown model")

let test_parse_duplicate_model () =
  let e =
    parse_err ".MODEL N NMOS (VTO=0.8)\n.MODEL N NMOS (VTO=0.9)\nR1 a 0 1\n"
  in
  Alcotest.(check bool) "duplicate" true (contains e "duplicate model")

let test_parse_malformed_suffix_line () =
  (* A bad value suffix must come back as Error (not an exception) and
     name the offending line. *)
  let e = parse_err "R1 a 0 1k\nC1 a 0 3x7\n" in
  Alcotest.(check bool) "mentions line 2" true (contains e "line 2")

let test_parse_duplicate_device () =
  (* Re-using a device name must be a parse Error with the right line,
     not an uncaught Invalid_argument from the netlist builder. Errors
     also carry the source name ("<string>" when none is given). *)
  let e = parse_err "R1 a 0 1k\nR1 b 0 2k\n" in
  Alcotest.(check bool) "names the duplicate" true
    (contains e "duplicate device");
  Alcotest.(check bool) "mentions line 2" true (contains e "line 2");
  Alcotest.(check bool) "carries default source" true (contains e "<string>")

let test_parse_error_carries_source_name () =
  let e =
    match Spice.parse ~source:"ladder.cir" "R1 a 0 1k\nR1 b 0 2k\n" with
    | Error e -> e
    | Ok _ -> Alcotest.fail "expected parse error"
  in
  Alcotest.(check bool) "mentions the file" true (contains e "ladder.cir");
  Alcotest.(check bool) "still mentions the line" true (contains e "line 2")

let test_parse_unknown_model_line_number () =
  let e = parse_err "R1 a 0 1k\nR2 a b 2k\nM1 d g s 0 NOPE W=1u L=1u\n" in
  Alcotest.(check bool) "unknown model" true (contains e "unknown model");
  Alcotest.(check bool) "mentions line 3" true (contains e "line 3")

let test_parse_unsupported_card () =
  let e = parse_err "Q1 c b e model\n" in
  Alcotest.(check bool) "unsupported" true (contains e "unsupported card")

let test_parse_comments_and_blanks () =
  let nl = parse_ok "\n* only\n\n* comments\nR1 a 0 1k\n\n" in
  Alcotest.(check int) "one device" 1 (Netlist.device_count nl)

(* ------------------------------------------------------------------ *)
(* Writer + round trip                                                 *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_comparator () =
  (* The most demanding netlist in the repo: 20+ MOSFETs, caps, PWL and
     pulse sources, two MOS models. *)
  let nl =
    Adc.Comparator.bench_netlist Adc.Comparator.default_options
      (Process.Variation.nominal Process.Tech.cmos1um)
  in
  match Spice.roundtrip nl with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok back ->
    Alcotest.(check int) "device count" (Netlist.device_count nl)
      (Netlist.device_count back);
    Alcotest.(check int) "node count" (Netlist.node_count nl)
      (Netlist.node_count back);
    (* Electrical equivalence: identical DC operating points. *)
    let sol_a = Engine.dc_operating_point nl in
    let sol_b = Engine.dc_operating_point back in
    List.iter
      (fun name ->
        let va = Engine.voltage sol_a (Netlist.node nl name) in
        let vb = Engine.voltage sol_b (Netlist.node back name) in
        Alcotest.(check (float 1e-6)) ("node " ^ name) va vb)
      [ "vdd"; "biasn"; "biaslt"; "outp"; "outn"; "tailsrc" ]

let test_writer_emits_models () =
  let nl =
    Adc.Comparator.bench_netlist Adc.Comparator.default_options
      (Process.Variation.nominal Process.Tech.cmos1um)
  in
  let text = Spice.to_string nl in
  Alcotest.(check bool) "has NMOS model" true (contains text "NMOS");
  Alcotest.(check bool) "has PMOS model" true (contains text "PMOS");
  Alcotest.(check bool) "ends properly" true (contains text ".END")

(* ------------------------------------------------------------------ *)
(* QCheck: random RC networks round-trip                               *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~count:50 ~name:"spice: random resistor networks round-trip"
      (pair (int_range 1 10)
         (list_of_size (Gen.int_range 1 20)
            (triple (int_range 0 9) (int_range 0 9) (float_range 1.0 1e6))))
      (fun (n_nodes, edges) ->
        let nl = Netlist.create () in
        let node i =
          if i = 0 then Netlist.ground
          else Netlist.node nl (Printf.sprintf "n%d" (i mod (n_nodes + 1)))
        in
        let used = ref 0 in
        List.iter
          (fun (a, b, r) ->
            if a mod (n_nodes + 1) <> b mod (n_nodes + 1) then begin
              incr used;
              Netlist.add_resistor nl
                ~name:(Printf.sprintf "R%d" !used)
                (node a) (node b) r
            end)
          edges;
        !used = 0
        ||
        match Spice.roundtrip nl with
        | Error _ -> false
        | Ok back ->
          Netlist.device_count back = Netlist.device_count nl
          && Netlist.node_count back = Netlist.node_count nl);
  ]

let suites =
  [
    ( "circuit.spice.parse",
      [
        Alcotest.test_case "divider" `Quick test_parse_divider;
        Alcotest.test_case "suffixes" `Quick test_parse_suffixes;
        Alcotest.test_case "mosfet with model" `Quick test_parse_mosfet_with_model;
        Alcotest.test_case "pwl and pulse" `Quick test_parse_pwl_and_pulse;
        Alcotest.test_case "line numbers" `Quick test_parse_reports_line_numbers;
        Alcotest.test_case "unknown model" `Quick test_parse_unknown_model;
        Alcotest.test_case "duplicate model" `Quick test_parse_duplicate_model;
        Alcotest.test_case "malformed suffix line" `Quick test_parse_malformed_suffix_line;
        Alcotest.test_case "duplicate device" `Quick test_parse_duplicate_device;
        Alcotest.test_case "error carries source name" `Quick
          test_parse_error_carries_source_name;
        Alcotest.test_case "unknown model line" `Quick test_parse_unknown_model_line_number;
        Alcotest.test_case "unsupported card" `Quick test_parse_unsupported_card;
        Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
      ] );
    ( "circuit.spice.roundtrip",
      [
        Alcotest.test_case "comparator bench" `Quick test_roundtrip_comparator;
        Alcotest.test_case "writer emits models" `Quick test_writer_emits_models;
      ] );
    "circuit.spice.properties", List.map QCheck_alcotest.to_alcotest qcheck_props;
  ]
