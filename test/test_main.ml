let () =
  Alcotest.run "dotest"
    (Test_util.suites @ Test_geometry.suites @ Test_circuit.suites @ Test_spice.suites
    @ Test_layout.suites @ Test_fault.suites @ Test_macro.suites
    @ Test_adc.suites @ Test_testgen.suites @ Test_amplifier.suites
    @ Test_codec.suites @ Test_core.suites @ Test_serve.suites)
