(* The PR-9 service layer: Request/Response wire codecs (round-trip +
   adversarial decode), the Request/Pipeline default pinning, coalescing
   and admission control, and the serve-vs-direct byte-identity contract
   over a real Unix socket. *)

open Core

(* ------------------------------------------------------------------ *)
(* Request.default must track Pipeline.Config.default                  *)
(* ------------------------------------------------------------------ *)

(* [Request.default]'s numbers are literals (the Codec <-> Pipeline
   dependency order forbids reading them off the config); this pin is
   what keeps the two from drifting apart silently. *)
let test_default_pins_config () =
  let r = Request.default in
  let c = Pipeline.Config.default in
  Alcotest.(check int) "defects" c.Pipeline.Config.defects r.Request.defects;
  Alcotest.(check int) "good_space_dies" c.Pipeline.Config.good_space_dies
    r.Request.good_space_dies;
  Alcotest.(check (float 0.0)) "sigma" c.Pipeline.Config.sigma r.Request.sigma;
  Alcotest.(check int) "seed" c.Pipeline.Config.seed r.Request.seed;
  Alcotest.(check int) "max_retries" c.Pipeline.Config.max_retries
    r.Request.max_retries;
  Alcotest.(check bool) "strict" c.Pipeline.Config.strict r.Request.strict;
  Alcotest.(check bool) "inject_failures" true
    (c.Pipeline.Config.inject_failures = r.Request.inject_failures);
  Alcotest.(check bool) "deadline" true
    (c.Pipeline.Config.deadline = r.Request.deadline);
  Alcotest.(check string) "solver"
    (Circuit.Engine.solver_name c.Pipeline.Config.solver)
    (Circuit.Engine.solver_name r.Request.solver)

(* ------------------------------------------------------------------ *)
(* QCheck round-trips for the wire codecs                              *)
(* ------------------------------------------------------------------ *)

let gen_request =
  let open QCheck.Gen in
  let limits =
    map2
      (fun wall_seconds max_iterations ->
        { Util.Watchdog.wall_seconds; max_iterations })
      (option (float_range 0.001 3600.0))
      (option (int_range 1 1_000_000))
  in
  let target =
    map2
      (fun comparator dft ->
        if comparator then Request.Comparator { dft }
        else Request.Global { dft })
      bool bool
  in
  let id = option (map (Printf.sprintf "req-%d") (int_range 0 100000)) in
  map
    (fun ( (id, target, defects, dies, sigma),
           (seed, retries, strict, inject, deadline),
           (solver, format) ) ->
      {
        Request.id;
        target;
        defects;
        good_space_dies = dies;
        sigma;
        seed;
        max_retries = retries;
        strict;
        inject_failures = inject;
        deadline;
        solver;
        format;
      })
    (triple
       (tup5 id target (int_range 0 1_000_000) (int_range 1 10_000)
          (float_range 0.1 10.0))
       (tup5 (int_range 0 1_000_000) (int_range 0 9) bool
          (option (float_range 0.0 1.0))
          (option limits))
       (pair (oneofl Circuit.Engine.all_solvers) (oneofl Request.all_formats)))

let arbitrary_request = QCheck.make gen_request

let gen_reply =
  let open QCheck.Gen in
  let table =
    map2
      (fun title body -> { Request.title; body })
      (oneofl [ "Summary"; "Run health"; "Fig. 4: global detectability" ])
      (map (String.concat "\n") (small_list string_printable))
  in
  map
    (fun ((id, tables, hits, misses), (coalesced, queue_s, evaluate_s)) ->
      {
        Request.reply_id = id;
        tables;
        cache_hits = hits;
        cache_misses = misses;
        coalesced;
        queue_seconds = queue_s;
        evaluate_seconds = evaluate_s;
      })
    (pair
       (tup4
          (option (map (Printf.sprintf "r%d") (int_range 0 10000)))
          (list_size (int_range 0 5) table)
          (int_range 0 100) (int_range 0 100))
       (triple bool (float_range 0.0 100.0) (float_range 0.0 100.0)))

let gen_response =
  let open QCheck.Gen in
  let error =
    map
      (fun (id, code, message, retry) ->
        Error
          {
            Request.error_id = id;
            code;
            message;
            retry_after =
              (if code = Request.Overloaded then retry else None);
          })
      (tup4
         (option (map (Printf.sprintf "e%d") (int_range 0 10000)))
         (oneofl Request.all_error_codes)
         string_printable
         (option (float_range 0.0 60.0)))
  in
  oneof [ map Result.ok gen_reply; error ]

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"request json round-trip" ~count:300 arbitrary_request
      (fun r ->
        match Codec.request_of_json (Codec.request_to_json r) with
        | Ok r' -> r' = r
        | Error e -> Test.fail_reportf "decode failed: %s" e);
    Test.make ~name:"request fingerprint ignores id" ~count:100
      arbitrary_request (fun r ->
        Request.fingerprint r
        = Request.fingerprint (Request.with_id (Some "other") r));
    Test.make ~name:"response json round-trip" ~count:300
      (QCheck.make gen_response) (fun resp ->
        match Codec.response_of_json (Codec.response_to_json resp) with
        | Ok resp' -> resp' = resp
        | Error e -> Test.fail_reportf "decode failed: %s" e);
    (* Decoder totality under truncation: every strict prefix of a valid
       request line must yield a structured error, never an exception. *)
    Test.make ~name:"truncated request decodes to Error" ~count:60
      arbitrary_request (fun r ->
        let line = Util.Json.to_string (Codec.request_to_json r) in
        let n = String.length line in
        let step = max 1 (n / 37) in
        let rec check i =
          if i >= n then true
          else
            match
              Result.bind
                (Util.Json.of_string (String.sub line 0 i))
                Codec.request_of_json
            with
            | Ok _ -> Test.fail_reportf "prefix %d of %d decoded as Ok" i n
            | Error _ -> check (i + step)
        in
        check 1);
  ]

(* ------------------------------------------------------------------ *)
(* handle_line: hostile input becomes structured error responses       *)
(* ------------------------------------------------------------------ *)

let decode_response line =
  match Result.bind (Util.Json.of_string line) Codec.response_of_json with
  | Ok r -> r
  | Error e -> Alcotest.fail ("response line does not decode: " ^ e)

let error_code = function
  | Ok _ -> Alcotest.fail "expected an error response"
  | Error e -> e.Request.code

let test_handle_line_errors () =
  let service = Service.create ~max_pending:2 () in
  let code line = error_code (decode_response (Service.handle_line service line)) in
  Alcotest.(check string) "garbage" "bad_request"
    (Request.error_code_name (code "not json at all"));
  Alcotest.(check string) "trailing garbage" "bad_request"
    (Request.error_code_name (code "{} {}"));
  Alcotest.(check string) "wrong api" "unsupported_version"
    (Request.error_code_name
       (code "{\"api\":\"dotest-api/999\",\"target\":\"global\"}"));
  Alcotest.(check string) "missing api" "bad_request"
    (Request.error_code_name (code "{\"target\":\"global\"}"));
  Alcotest.(check string) "unknown target" "bad_request"
    (Request.error_code_name
       (code "{\"api\":\"dotest-api/1\",\"target\":\"adder\"}"));
  Alcotest.(check string) "negative defects" "bad_request"
    (Request.error_code_name
       (code "{\"api\":\"dotest-api/1\",\"target\":\"global\",\"defects\":-1}"));
  (* The json bomb from the depth-limit satellite, arriving as a wire
     line: still just a bad_request. *)
  Alcotest.(check string) "nesting bomb" "bad_request"
    (Request.error_code_name (code (String.make 50_000 '[')));
  (* The id is echoed even when the body is malformed. *)
  match
    decode_response
      (Service.handle_line service
         "{\"api\":\"dotest-api/1\",\"target\":\"nope\",\"id\":\"corr-7\"}")
  with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    Alcotest.(check (option string)) "id echoed" (Some "corr-7")
      e.Request.error_id

(* ------------------------------------------------------------------ *)
(* The service end to end                                              *)
(* ------------------------------------------------------------------ *)

let temp_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let small_request =
  Request.(
    default
    |> with_target (Comparator { dft = false })
    |> with_defects 400 |> with_good_space_dies 6)

(* What the CLI's [comparator] command prints for these parameters, in
   print order — the reference for the byte-identity contract. *)
let expected_tables (r : Request.t) =
  let config =
    Pipeline.Config.(
      default |> with_defects r.Request.defects
      |> with_good_space_dies r.Request.good_space_dies
      |> with_sigma r.Request.sigma |> with_seed r.Request.seed
      |> with_solver r.Request.solver)
  in
  let analysis =
    Pipeline.analyze config (Adc.Comparator.macro Adc.Comparator.default_options)
  in
  let render title table =
    { Request.title; body = Report.render ~format:r.Request.format table }
  in
  [
    render "Table 1: catastrophic faults and fault classes"
      (Report.table1 analysis);
    render "Table 2: voltage fault signatures" (Report.table2 analysis);
    render "Table 3: current fault signatures" (Report.table3 analysis);
    render "Fig. 3: detectability of catastrophic faults"
      (Report.figure3 analysis);
    render "Run health" (Report.run_health (Pipeline.run_health [ analysis ]));
  ]

let check_tables what expected (reply : Request.reply) =
  Alcotest.(check int)
    (what ^ ": table count")
    (List.length expected)
    (List.length reply.Request.tables);
  List.iter2
    (fun (e : Request.table) (got : Request.table) ->
      Alcotest.(check string) (what ^ ": title") e.Request.title got.Request.title;
      Alcotest.(check string)
        (what ^ ": " ^ e.Request.title)
        e.Request.body got.Request.body)
    expected reply.Request.tables

let test_serve_concurrent_clients () =
  let dir = temp_dir "dotest-serve-test" in
  let cache =
    Util.Cache.create
      ~dir:(Filename.concat dir "cache")
      ~version:Codec.version ()
  in
  let service = Service.create ~cache ~max_pending:32 () in
  let address = Service.Unix_socket (Filename.concat dir "test.sock") in
  let listening = ref false in
  let lock = Mutex.create () and cond = Condition.create () in
  let server =
    Thread.create
      (fun () ->
        Service.serve
          ~on_ready:(fun _ ->
            Mutex.lock lock;
            listening := true;
            Condition.broadcast cond;
            Mutex.unlock lock)
          service address)
      ()
  in
  Mutex.lock lock;
  while not !listening do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  let expected = expected_tables small_request in
  let expected_alt =
    expected_tables (Request.with_seed 1996 small_request)
  in
  (* 8 concurrent clients over the real socket: evens ask for the same
     analysis (one flight, coalesced), odds share a second key. *)
  let results = Array.make 8 None in
  let clients =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            let r =
              if i mod 2 = 0 then small_request
              else Request.with_seed 1996 small_request
            in
            let r = Request.with_id (Some (Printf.sprintf "client-%d" i)) r in
            results.(i) <- Some (Service.call address r))
          ())
  in
  List.iter Thread.join clients;
  Array.iteri
    (fun i result ->
      match result with
      | None -> Alcotest.fail "client thread did not record a result"
      | Some (Error e) ->
        Alcotest.failf "client %d failed: %s" i e.Request.message
      | Some (Ok reply) ->
        Alcotest.(check (option string))
          "id echoed"
          (Some (Printf.sprintf "client-%d" i))
          reply.Request.reply_id;
        check_tables
          (Printf.sprintf "client %d" i)
          (if i mod 2 = 0 then expected else expected_alt)
          reply)
    results;
  let s = Service.stats service in
  Alcotest.(check int) "submitted" 8 s.Service.submitted;
  Alcotest.(check bool) "duplicates coalesced" true (s.Service.coalesced >= 1);
  Alcotest.(check int) "nothing shed" 0 s.Service.shed;
  Alcotest.(check int) "no failures" 0 s.Service.failed;
  (* Warm repeat over the same socket: pure cache hits, same bytes. *)
  (match Service.call address small_request with
  | Error e -> Alcotest.fail e.Request.message
  | Ok reply ->
    check_tables "warm" expected reply;
    Alcotest.(check bool) "warm run hits the cache" true
      (reply.Request.cache_hits >= 1));
  (* Graceful drain: serve returns, the server thread joins, and new
     submissions are refused with shutting_down. *)
  Service.initiate_shutdown service;
  Thread.join server;
  Alcotest.(check string) "draining refuses" "shutting_down"
    (Request.error_code_name (error_code (Service.submit service small_request)))

let test_submit_coalesces_and_sheds () =
  (* max_pending=1: while one cold flight runs, an identical request
     attaches to it, and a different one is shed with retry_after. *)
  let service = Service.create ~max_pending:1 () in
  let slow =
    Request.(
      small_request |> with_defects 2_000 |> with_good_space_dies 8
      |> with_seed 77)
  in
  let leader = ref None and twin = ref None in
  let t_leader =
    Thread.create (fun () -> leader := Some (Service.submit service slow)) ()
  in
  (* Admit the leader before racing the twin and the shed probe. *)
  let rec wait_admitted n =
    if n = 0 then Alcotest.fail "leader never admitted";
    if (Service.stats service).Service.submitted < 1 then begin
      Thread.delay 0.01;
      wait_admitted (n - 1)
    end
  in
  wait_admitted 500;
  Thread.delay 0.05;
  let t_twin =
    Thread.create (fun () -> twin := Some (Service.submit service slow)) ()
  in
  Thread.delay 0.05;
  let probe = Service.submit service (Request.with_seed 78 slow) in
  (match probe with
  | Ok _ -> Alcotest.fail "distinct request should have been shed"
  | Error e ->
    Alcotest.(check string) "shed code" "overloaded"
      (Request.error_code_name e.Request.code);
    Alcotest.(check bool) "retry hint" true (e.Request.retry_after <> None));
  Thread.join t_leader;
  Thread.join t_twin;
  match !leader, !twin with
  | Some (Ok lead), Some (Ok tw) ->
    Alcotest.(check bool) "leader not coalesced" false lead.Request.coalesced;
    Alcotest.(check bool) "twin coalesced" true tw.Request.coalesced;
    List.iter2
      (fun (a : Request.table) (b : Request.table) ->
        Alcotest.(check string) "same bytes" a.Request.body b.Request.body)
      lead.Request.tables tw.Request.tables;
    let s = Service.stats service in
    Alcotest.(check int) "one shed" 1 s.Service.shed;
    Alcotest.(check int) "one coalesced" 1 s.Service.coalesced;
    Alcotest.(check int) "one completed" 1 s.Service.completed
  | _ -> Alcotest.fail "leader or twin did not complete"

let test_handle_line_matches_submit () =
  (* The wire entry point returns the same reply as a direct submit,
     modulo the execution-dependent counters. *)
  let service = Service.create () in
  let direct =
    match Service.submit service small_request with
    | Ok reply -> reply
    | Error e -> Alcotest.fail e.Request.message
  in
  let line =
    Service.handle_line service
      (Util.Json.to_string (Codec.request_to_json small_request))
  in
  match decode_response line with
  | Error e -> Alcotest.fail e.Request.message
  | Ok wire -> check_tables "wire" direct.Request.tables wire

let test_address_parsing () =
  let round s = Result.map Service.address_to_string (Service.address_of_string s) in
  Alcotest.(check bool) "unix prefix" true
    (round "unix:/tmp/x.sock" = Ok "unix:/tmp/x.sock");
  Alcotest.(check bool) "bare path" true
    (round "/tmp/x.sock" = Ok "unix:/tmp/x.sock");
  Alcotest.(check bool) "host:port" true
    (round "127.0.0.1:7777" = Ok "127.0.0.1:7777");
  Alcotest.(check bool) "empty host defaults" true
    (round ":7777" = Ok "127.0.0.1:7777");
  Alcotest.(check bool) "path with colon stays a path" true
    (round "/tmp/x:1" = Ok "unix:/tmp/x:1");
  Alcotest.(check bool) "bad port is an error" true
    (Result.is_error (Service.address_of_string "host:notaport"))

let suites =
  [
    ( "serve.codec",
      Alcotest.test_case "defaults pin the pipeline config" `Quick
        test_default_pins_config
      :: Alcotest.test_case "hostile wire lines" `Quick test_handle_line_errors
      :: Alcotest.test_case "address parsing" `Quick test_address_parsing
      :: List.map QCheck_alcotest.to_alcotest qcheck_props );
    ( "serve.service",
      [
        Alcotest.test_case "8 concurrent clients, byte-identical" `Slow
          test_serve_concurrent_clients;
        Alcotest.test_case "coalesce + shed under max_pending=1" `Slow
          test_submit_coalesces_and_sheds;
        Alcotest.test_case "wire equals direct submit" `Slow
          test_handle_line_matches_submit;
      ] );
  ]
