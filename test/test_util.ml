(* Unit and property tests for the dotest.util library. *)

open Util

let check_float = Alcotest.(check (float 1e-9))
let check_floatish msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  let xa = Prng.bits64 a in
  let xb = Prng.bits64 b in
  Alcotest.(check int64) "copy starts at same point" xa xb;
  ignore (Prng.bits64 a);
  let a3 = Prng.bits64 a in
  let b2 = Prng.bits64 b in
  Alcotest.(check bool) "streams advance independently"
    false (Int64.equal a3 b2 && Int64.equal a3 xb)

let test_prng_split_independent () =
  let parent = Prng.create 3 in
  let child = Prng.split parent in
  let child_first = Prng.bits64 child in
  (* Same construction must be reproducible. *)
  let parent' = Prng.create 3 in
  let child' = Prng.split parent' in
  Alcotest.(check int64) "split reproducible" child_first (Prng.bits64 child')

let test_prng_int_range () =
  let prng = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.int prng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let prng = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int prng 0))

let test_prng_float_range () =
  let prng = Prng.create 13 in
  for _ = 1 to 10_000 do
    let v = Prng.float prng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_prng_uniform_mean () =
  let prng = Prng.create 17 in
  let acc = Stats.accumulator () in
  for _ = 1 to 50_000 do
    Stats.add acc (Prng.uniform prng ~lo:(-1.0) ~hi:1.0)
  done;
  check_floatish "mean near 0" 0.02 0.0 (Stats.mean acc)

let test_prng_bernoulli_rate () =
  let prng = Prng.create 19 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bernoulli prng 0.3 then incr hits
  done;
  check_floatish "rate near 0.3" 0.02 0.3 (float_of_int !hits /. float_of_int n)

let test_prng_bernoulli_extremes () =
  let prng = Prng.create 23 in
  Alcotest.(check bool) "p=0 never" false (Prng.bernoulli prng 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.bernoulli prng 1.0);
  Alcotest.(check bool) "p<0 never" false (Prng.bernoulli prng (-0.5));
  Alcotest.(check bool) "p>1 always" true (Prng.bernoulli prng 1.5)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_known_values () =
  let acc = Stats.accumulator () in
  List.iter (Stats.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5.0 (Stats.mean acc);
  check_floatish "stddev (sample)" 1e-9 (sqrt (32. /. 7.)) (Stats.stddev acc);
  Alcotest.(check int) "count" 8 (Stats.count acc);
  check_float "min" 2.0 (Stats.min_value acc);
  check_float "max" 9.0 (Stats.max_value acc)

let test_stats_empty_mean () =
  let acc = Stats.accumulator () in
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Stats.mean: empty accumulator") (fun () ->
      ignore (Stats.mean acc))

let test_stats_single_value_variance () =
  let acc = Stats.accumulator () in
  Stats.add acc 42.0;
  check_float "variance of singleton" 0.0 (Stats.variance acc)

let test_stats_sigma_window () =
  let acc = Stats.accumulator () in
  List.iter (Stats.add acc) [ 9.; 10.; 11. ];
  let w = Stats.sigma_window ~k:3.0 acc in
  Alcotest.(check bool) "mean inside" true (Stats.inside w 10.0);
  Alcotest.(check bool) "far value outside" false (Stats.inside w 20.0);
  let wide = Stats.widen w ~by:10.0 in
  Alcotest.(check bool) "widened catches it" true (Stats.inside wide 20.0)

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "median" 3.0 (Stats.percentile 50. xs);
  check_float "p0" 1.0 (Stats.percentile 0. xs);
  check_float "p100" 5.0 (Stats.percentile 100. xs);
  check_float "p25" 2.0 (Stats.percentile 25. xs)

let test_stats_helpers () =
  check_float "mean_of" 2.0 (Stats.mean_of [ 1.; 2.; 3. ]);
  check_float "stddev_of" 1.0 (Stats.stddev_of [ 1.; 2.; 3. ])

(* ------------------------------------------------------------------ *)
(* Distribution                                                        *)
(* ------------------------------------------------------------------ *)

let test_normal_moments () =
  let prng = Prng.create 29 in
  let acc = Stats.accumulator () in
  for _ = 1 to 100_000 do
    Stats.add acc (Distribution.normal prng ~mean:5.0 ~sigma:2.0)
  done;
  check_floatish "mean" 0.05 5.0 (Stats.mean acc);
  check_floatish "sigma" 0.05 2.0 (Stats.stddev acc)

let test_truncated_normal_bounds () =
  let prng = Prng.create 31 in
  for _ = 1 to 10_000 do
    let x =
      Distribution.truncated_normal prng ~mean:0.0 ~sigma:5.0 ~lo:(-1.0) ~hi:1.0
    in
    Alcotest.(check bool) "in bounds" true (x >= -1.0 && x <= 1.0)
  done

let test_truncated_normal_unreachable_window () =
  (* Regression: a window 10 sigma away from the mean defeats rejection
     sampling; the redraw loop must give up after its cap and clamp to
     the bound nearer the mean instead of spinning (or recursing) forever. *)
  let prng = Prng.create 53 in
  for _ = 1 to 100 do
    let x =
      Distribution.truncated_normal prng ~mean:0.0 ~sigma:1.0 ~lo:10.0 ~hi:11.0
    in
    Alcotest.(check (float 1e-12)) "clamped to nearer bound" 10.0 x
  done;
  for _ = 1 to 100 do
    let x =
      Distribution.truncated_normal prng ~mean:0.0 ~sigma:1.0 ~lo:(-11.0)
        ~hi:(-10.0)
    in
    Alcotest.(check (float 1e-12)) "negative side clamps to hi" (-10.0) x
  done

let test_power_law_bounds_and_shape () =
  let prng = Prng.create 37 in
  let small = ref 0 and total = 10_000 in
  for _ = 1 to total do
    let x = Distribution.power_law_size prng ~x_min:100. ~x_max:10_000. in
    Alcotest.(check bool) "in bounds" true (x >= 100. && x <= 10_000.);
    if x < 200. then incr small
  done;
  (* For f ∝ x^-3 on [100, 10000], P(x < 200) = (100^-2 - 200^-2)/(100^-2 -
     10000^-2) ≈ 0.7501: small defects must dominate. *)
  check_floatish "P(x<2*x_min)" 0.02 0.7501
    (float_of_int !small /. float_of_int total)

let test_discrete_weights () =
  let prng = Prng.create 41 in
  let d = Distribution.discrete [ 1.0, `A; 3.0, `B ] in
  let hits_b = ref 0 in
  let n = 40_000 in
  for _ = 1 to n do
    match Distribution.draw prng d with `A -> () | `B -> incr hits_b
  done;
  check_floatish "weight ratio" 0.02 0.75 (float_of_int !hits_b /. float_of_int n)

let test_discrete_cases_normalized () =
  let d = Distribution.discrete [ 2.0, "x"; 6.0, "y" ] in
  match Distribution.cases d with
  | [ (px, "x"); (py, "y") ] ->
    check_float "P(x)" 0.25 px;
    check_float "P(y)" 0.75 py
  | _ -> Alcotest.fail "unexpected case list"

let test_discrete_drops_zero_weights () =
  let prng = Prng.create 43 in
  let d = Distribution.discrete [ 0.0, `Never; 1.0, `Always ] in
  for _ = 1 to 1000 do
    match Distribution.draw prng d with
    | `Always -> ()
    | `Never -> Alcotest.fail "zero-weight case drawn"
  done

let test_discrete_rejects_all_zero () =
  Alcotest.check_raises "no positive weights"
    (Invalid_argument "Distribution.discrete: no positive weights") (fun () ->
      ignore (Distribution.discrete [ 0.0, `A ]))

let test_shuffle_permutation () =
  let prng = Prng.create 47 in
  let arr = Array.init 100 Fun.id in
  Distribution.shuffle prng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 100 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.set_count uf);
  Alcotest.(check bool) "union merges" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Union_find.union uf 0 1);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "set count" 4 (Union_find.set_count uf)

let test_uf_transitivity () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "0~2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "3~4" true (Union_find.same uf 3 4);
  Alcotest.(check bool) "0!~3" false (Union_find.same uf 0 3)

let test_uf_groups () =
  let uf = Union_find.create 5 in
  ignore (Union_find.union uf 0 2);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check (list (list int)))
    "groups sorted" [ [ 0; 2 ]; [ 1; 3 ]; [ 4 ] ] (Union_find.groups uf)

let test_uf_empty () =
  let uf = Union_find.create 0 in
  Alcotest.(check int) "no sets" 0 (Union_find.set_count uf);
  Alcotest.(check (list (list int))) "no groups" [] (Union_find.groups uf)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t =
    Table.create ~columns:[ "name", Table.Left; "value", Table.Right ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains cell" true (contains_substring s "alpha");
  Alcotest.(check bool) "contains header" true (contains_substring s "name")

let test_table_alignment () =
  let t = Table.create ~columns:[ "h", Table.Right ] in
  Table.add_row t [ "x" ];
  Table.add_row t [ "long" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* Right-aligned short cell must be padded on the left. *)
  let has_padded = List.exists (fun line -> contains_substring line "|    x |") lines in
  Alcotest.(check bool) "right aligned" true has_padded

let test_table_cells () =
  Alcotest.(check string) "pct" "93.3%" (Table.cell_pct 93.3);
  Alcotest.(check string) "pct decimals" "93%" (Table.cell_pct ~decimals:0 93.3);
  Alcotest.(check string) "float" "1.50" (Table.cell_float ~decimals:2 1.5)

let test_table_csv_quoting () =
  let t =
    Table.create ~columns:[ "metric", Table.Left; "value, n", Table.Right ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b \"q\""; "2,5" ];
  Alcotest.(check string) "csv"
    "metric,\"value, n\"\nalpha,1\n\"b \"\"q\"\"\",\"2,5\""
    (Table.render_csv t)

let test_table_json_rows () =
  let t = Table.create ~columns:[ "a", Table.Left; "b", Table.Right ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "y" ] (* short row pads with an empty cell *);
  Alcotest.(check string) "json"
    "[{\"a\":\"x\",\"b\":\"1\"},{\"a\":\"y\",\"b\":\"\"}]"
    (Table.render_json t)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_print_parse_roundtrip () =
  let v =
    Json.Obj
      [
        "s", Json.String "a \"b\"\n\t";
        "i", Json.Int (-42);
        "f", Json.Float 0.1;
        "t", Json.Bool true;
        "n", Json.Null;
        "l", Json.List [ Json.Int 1; Json.Float 2.5; Json.Obj [] ];
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = v)
  | Error e -> Alcotest.fail e

let test_json_parse_basics () =
  Alcotest.(check bool) "ws + nesting" true
    (Json.of_string " { \"a\" : [ 1 , true , \"x\" ] } "
    = Ok (Json.Obj [ "a", Json.List [ Json.Int 1; Json.Bool true; Json.String "x" ] ]));
  Alcotest.(check bool) "unicode escape" true
    (Json.of_string "\"\\u0041\"" = Ok (Json.String "A"));
  Alcotest.(check bool) "float vs int" true
    (Json.of_string "[1, 1.5, 1e2]"
    = Ok (Json.List [ Json.Int 1; Json.Float 1.5; Json.Float 100.0 ]))

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (bad "1 x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "nope");
  Alcotest.(check bool) "unclosed object" true (bad "{\"a\":1")

(* Adversarial nesting must come back as [Error], not blow the OCaml
   stack: the parser refuses anything deeper than [Json.max_depth]. *)
let test_json_depth_limit () =
  let nested n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match Json.of_string (nested Json.max_depth) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("max_depth should still parse: " ^ e));
  (match Json.of_string (nested (Json.max_depth + 1)) with
  | Ok _ -> Alcotest.fail "too-deep array must be rejected"
  | Error e -> Alcotest.(check bool) "has a message" true (String.length e > 0));
  (* A 100k-deep bomb would overflow an unguarded recursive descent;
     here it is a cheap structured error. *)
  match Json.of_string (String.make 100_000 '{') with
  | Ok _ -> Alcotest.fail "object bomb must be rejected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_telemetry_null_is_free () =
  (* With the null sink every instrumentation call is a plain passthrough. *)
  Alcotest.(check bool) "disabled" false (Telemetry.enabled ());
  Telemetry.count "never";
  Telemetry.gauge "never" 1.0;
  Alcotest.(check int) "with_span is f()" 7
    (Telemetry.with_span "s" (fun () -> 7));
  Alcotest.(check bool) "no current span" true (Telemetry.current_span () = None)

let test_telemetry_in_memory_aggregates () =
  let memory = Telemetry.in_memory () in
  Telemetry.with_sink (Telemetry.memory_sink memory) (fun () ->
      Telemetry.with_span "outer" (fun () ->
          Telemetry.count "hits";
          Telemetry.count ~by:4 "hits";
          Telemetry.gauge "level" 2.0;
          Telemetry.gauge "level" 5.0;
          Telemetry.gauge "level" 3.0;
          Telemetry.with_span "inner" (fun () -> Telemetry.count "hits")));
  let m = Telemetry.metrics memory in
  Alcotest.(check bool) "counter summed" true
    (List.assoc_opt "hits" m.Telemetry.Metrics.counters = Some 6);
  Alcotest.(check bool) "gauge keeps max" true
    (List.assoc_opt "level" m.Telemetry.Metrics.gauges = Some 5.0)

let test_telemetry_span_nesting_and_error () =
  (* Collect raw events; check parent links and the error attribute. *)
  let events = ref [] in
  let sink =
    { Telemetry.emit = (fun e -> events := e :: !events); flush = ignore }
  in
  (try
     Telemetry.with_sink sink (fun () ->
         Telemetry.with_span "outer" (fun () ->
             Telemetry.with_span "inner" (fun () -> failwith "boom")))
   with Failure _ -> ());
  let events = List.rev !events in
  let span_parent name =
    List.find_map
      (function
        | Telemetry.Span_start { name = n; id; parent; _ } when n = name ->
          Some (id, parent)
        | _ -> None)
      events
  in
  let outer_id, outer_parent = Option.get (span_parent "outer") in
  let _, inner_parent = Option.get (span_parent "inner") in
  Alcotest.(check bool) "outer is a root" true (outer_parent = None);
  Alcotest.(check bool) "inner under outer" true (inner_parent = Some outer_id);
  let errored name =
    List.exists
      (function
        | Telemetry.Span_end { name = n; attrs; _ } when n = name ->
          List.mem ("error", Telemetry.Bool true) attrs
        | _ -> false)
      events
  in
  Alcotest.(check bool) "inner errored" true (errored "inner");
  Alcotest.(check bool) "outer errored" true (errored "outer");
  Alcotest.(check bool) "ambient restored" false (Telemetry.enabled ())

let test_telemetry_event_json_roundtrip () =
  let samples =
    [
      Telemetry.Span_start { id = 3; parent = None; name = "a"; wall = 1.5 };
      Telemetry.Span_start { id = 4; parent = Some 3; name = "b"; wall = 2.5 };
      Telemetry.Span_end
        {
          id = 4;
          parent = Some 3;
          name = "b";
          attrs =
            [
              "k", Telemetry.Int 1;
              "s", Telemetry.String "x";
              "f", Telemetry.Float 0.25;
              "b", Telemetry.Bool false;
            ];
          wall = 3.5;
          duration_ns = 123_456_789L;
        };
      Telemetry.Counter { name = "c"; delta = 7; span = Some 4 };
      Telemetry.Gauge { name = "g"; value = 2.0; span = None };
    ]
  in
  List.iter
    (fun event ->
      match Telemetry.event_of_json (Telemetry.event_to_json event) with
      | Ok decoded -> Alcotest.(check bool) "round-trips" true (decoded = event)
      | Error e -> Alcotest.fail e)
    samples

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"prng: int always in bounds"
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let prng = Prng.create seed in
        let v = Prng.int prng bound in
        v >= 0 && v < bound);
    Test.make ~name:"stats: mean within [min, max]"
      (list_of_size (Gen.int_range 1 50) (float_range (-1e6) 1e6))
      (fun xs ->
        let acc = Stats.accumulator () in
        List.iter (Stats.add acc) xs;
        let m = Stats.mean acc in
        m >= Stats.min_value acc -. 1e-6 && m <= Stats.max_value acc +. 1e-6);
    Test.make ~name:"stats: sigma window contains mean"
      (list_of_size (Gen.int_range 2 50) (float_range (-1e3) 1e3))
      (fun xs ->
        let acc = Stats.accumulator () in
        List.iter (Stats.add acc) xs;
        Stats.inside (Stats.sigma_window acc) (Stats.mean acc));
    Test.make ~name:"union_find: groups partition the universe"
      (pair (int_range 1 40) (small_list (pair (int_range 0 39) (int_range 0 39))))
      (fun (n, unions) ->
        let uf = Union_find.create n in
        List.iter (fun (i, j) -> if i < n && j < n then ignore (Union_find.union uf i j)) unions;
        let members = List.concat (Union_find.groups uf) in
        List.sort compare members = List.init n Fun.id);
    Test.make ~name:"union_find: set_count matches groups"
      (pair (int_range 1 40) (small_list (pair (int_range 0 39) (int_range 0 39))))
      (fun (n, unions) ->
        let uf = Union_find.create n in
        List.iter (fun (i, j) -> if i < n && j < n then ignore (Union_find.union uf i j)) unions;
        Union_find.set_count uf = List.length (Union_find.groups uf));
    Test.make ~name:"percentile is monotone in p"
      (pair (list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.))
         (pair (float_range 0. 100.) (float_range 0. 100.)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_empty () =
  Alcotest.(check (list int)) "empty in, empty out" []
    (Pool.parallel_map ~jobs:4 (fun x -> x + 1) [])

let test_pool_single () =
  Alcotest.(check (list int)) "single item" [ 43 ]
    (Pool.parallel_map ~jobs:4 (fun x -> x + 1) [ 42 ])

let test_pool_matches_list_map () =
  let xs = List.init 257 Fun.id in
  let f x = (x * x) + 7 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals List.map" jobs)
        (List.map f xs)
        (Pool.parallel_map ~jobs f xs))
    [ 1; 2; 4; 13 ]

let test_pool_mapi_order () =
  let xs = [ "a"; "b"; "c"; "d"; "e" ] in
  Alcotest.(check (list string)) "indices line up"
    [ "0a"; "1b"; "2c"; "3d"; "4e" ]
    (Pool.parallel_mapi ~jobs:3 (fun i s -> string_of_int i ^ s) xs)

let test_pool_exception_propagates () =
  Alcotest.check_raises "worker failure reaches the caller, wrapped"
    (Pool.Worker_failure (5, Failure "item 5"))
    (fun () ->
      ignore
        (Pool.parallel_map ~jobs:4
           (fun x -> if x = 5 then failwith "item 5" else x)
           (List.init 20 Fun.id)))

let test_pool_first_failure_wins () =
  (* Several items fail; the lowest index must be the one re-raised, for
     any job count — including the sequential paths (jobs=1, singleton). *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d reports lowest index" jobs)
        (Pool.Worker_failure (3, Failure "item 3"))
        (fun () ->
          ignore
            (Pool.parallel_map ~jobs
               (fun x ->
                 if x >= 3 then failwith (Printf.sprintf "item %d" x) else x)
               (List.init 16 Fun.id))))
    [ 1; 4 ]

let test_pool_singleton_failure_wrapped () =
  Alcotest.check_raises "singleton path wraps too"
    (Pool.Worker_failure (0, Failure "only item"))
    (fun () ->
      ignore
        (Pool.parallel_map ~jobs:4 (fun _ -> failwith "only item") [ () ]))

let test_pool_worker_failure_printer () =
  let s = Printexc.to_string (Pool.Worker_failure (7, Failure "boom")) in
  Alcotest.(check bool) "mentions the item index" true
    (contains_substring s "7");
  Alcotest.(check bool) "mentions the cause" true (contains_substring s "boom")

let test_pool_chunk_ranges () =
  Alcotest.(check (list (pair int int))) "exact split"
    [ 0, 4; 4, 4; 8, 4 ]
    (Pool.chunk_ranges ~n:12 ~chunk_size:4);
  Alcotest.(check (list (pair int int))) "ragged tail"
    [ 0, 5; 5, 5; 10, 2 ]
    (Pool.chunk_ranges ~n:12 ~chunk_size:5);
  Alcotest.(check (list (pair int int))) "empty" []
    (Pool.chunk_ranges ~n:0 ~chunk_size:8);
  Alcotest.check_raises "bad chunk size"
    (Invalid_argument "Pool.chunk_ranges: chunk_size must be positive")
    (fun () -> ignore (Pool.chunk_ranges ~n:3 ~chunk_size:0))

let test_pool_parallel_chunks_cover () =
  let ranges =
    Pool.parallel_chunks ~jobs:4 ~n:103 ~chunk_size:10
      (fun ~chunk ~offset ~length -> chunk, offset, length)
  in
  let total = List.fold_left (fun acc (_, _, len) -> acc + len) 0 ranges in
  Alcotest.(check int) "covers n" 103 total;
  List.iteri
    (fun i (chunk, offset, _) ->
      Alcotest.(check int) "chunk order" i chunk;
      Alcotest.(check int) "contiguous" (i * 10) offset)
    ranges

let test_pool_nested_stays_sequential () =
  (* A parallel_map inside a worker must not spawn further domains; it
     still has to produce correct, ordered results. *)
  let result =
    Pool.parallel_map ~jobs:4
      (fun x -> Pool.parallel_map ~jobs:4 (fun y -> x + y) [ 1; 2; 3 ])
      [ 10; 20 ]
  in
  Alcotest.(check (list (list int))) "nested result"
    [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ]
    result

let test_pool_set_jobs_floor () =
  let before = Pool.jobs () in
  Pool.set_jobs (-3);
  let clamped = Pool.jobs () in
  Pool.set_jobs before;
  Alcotest.(check int) "clamped to 1" 1 clamped

(* ------------------------------------------------------------------ *)
(* Resilience                                                          *)
(* ------------------------------------------------------------------ *)

exception Transient of int
exception Permanent

let retry_all = function
  | Transient _ -> Resilience.Retryable
  | _ -> Resilience.Fatal

let test_resilience_first_try () =
  match Resilience.run ~classify:retry_all ~attempts:3 (fun ~attempt -> attempt * 10) with
  | Resilience.Resolved { value; attempts } ->
    Alcotest.(check int) "attempt 0 value" 0 value;
    Alcotest.(check int) "one attempt" 1 attempts
  | Resilience.Exhausted _ -> Alcotest.fail "must resolve"

let test_resilience_retries_then_succeeds () =
  match
    Resilience.run ~classify:retry_all ~attempts:4 (fun ~attempt ->
        if attempt < 2 then raise (Transient attempt) else attempt)
  with
  | Resilience.Resolved { value; attempts } ->
    Alcotest.(check int) "value from attempt 2" 2 value;
    Alcotest.(check int) "three attempts" 3 attempts
  | Resilience.Exhausted _ -> Alcotest.fail "must resolve on the third try"

let test_resilience_exhausts () =
  match
    Resilience.run ~classify:retry_all ~attempts:3 (fun ~attempt ->
        (raise (Transient attempt) : unit))
  with
  | Resilience.Resolved _ -> Alcotest.fail "must exhaust"
  | Resilience.Exhausted { error; attempts } ->
    Alcotest.(check int) "all attempts spent" 3 attempts;
    Alcotest.(check bool) "last error kept" true (error = Transient 2)

let test_resilience_fatal_not_retried () =
  let calls = ref 0 in
  (match
     Resilience.run ~classify:retry_all ~attempts:5 (fun ~attempt:_ ->
         incr calls;
         (raise Permanent : unit))
   with
  | _ -> Alcotest.fail "fatal must re-raise"
  | exception Permanent -> ());
  Alcotest.(check int) "single call" 1 !calls

let test_resilience_step_clamps () =
  let schedule = [ 1; 10; 100 ] in
  Alcotest.(check int) "first" 1 (Resilience.step schedule 0);
  Alcotest.(check int) "second" 10 (Resilience.step schedule 1);
  Alcotest.(check int) "clamped to last" 100 (Resilience.step schedule 7)

let test_resilience_budget () =
  let b = Resilience.budget ~limit:2 in
  Resilience.spend b 1;
  Resilience.spend b 1;
  Alcotest.(check int) "failures recorded" 2 (Resilience.failures b);
  Alcotest.(check bool) "remaining" true (Resilience.remaining b = Some 0);
  (match Resilience.spend b 1 with
  | () -> Alcotest.fail "third failure must exhaust the budget"
  | exception Resilience.Budget_exhausted { failures; limit } ->
    Alcotest.(check int) "failures" 3 failures;
    Alcotest.(check int) "limit" 2 limit);
  let u = Resilience.unlimited () in
  Resilience.spend u 1_000_000;
  Alcotest.(check bool) "unlimited never raises" true
    (Resilience.remaining u = None)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let with_cache_dir f =
  let dir = Filename.temp_file "dotest_cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let payload = Json.Obj [ "answer", Json.Int 42 ]

let test_cache_store_find_roundtrip () =
  with_cache_dir @@ fun dir ->
  let c = Cache.create ~dir ~version:"v1" () in
  let key = Cache.fingerprint [ "some"; "inputs" ] in
  Alcotest.(check bool) "absent before store" true (Cache.find c ~key = None);
  Cache.store c ~key payload;
  Alcotest.(check bool) "memory hit" true (Cache.find c ~key = Some payload);
  (* A fresh handle on the same directory must hit from disk. *)
  let c2 = Cache.create ~dir ~version:"v1" () in
  Alcotest.(check bool) "disk hit" true (Cache.find c2 ~key = Some payload);
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "nothing stale" 0 s.Cache.stale

let test_cache_corrupt_entry_is_a_miss () =
  with_cache_dir @@ fun dir ->
  let c = Cache.create ~dir ~version:"v1" () in
  let key = Cache.fingerprint [ "corrupt" ] in
  Cache.store c ~key payload;
  (* Truncate the entry mid-file: a torn write from a crashed process. *)
  let path = Filename.concat dir (key ^ ".json") in
  let oc = open_out path in
  output_string oc "{\"schema\":\"dotest-ca";
  close_out oc;
  (* Fresh handle so the LRU cannot mask the damaged file. *)
  let c2 = Cache.create ~dir ~version:"v1" () in
  Alcotest.(check bool) "corrupt entry misses" true (Cache.find c2 ~key = None);
  let s = Cache.stats c2 in
  Alcotest.(check int) "counted stale" 1 s.Cache.stale;
  Alcotest.(check int) "also counted miss" 1 s.Cache.misses;
  (* And it can be overwritten and found again. *)
  Cache.store c2 ~key payload;
  Alcotest.(check bool) "recovers" true (Cache.find c2 ~key = Some payload)

let test_cache_version_mismatch_invalidates () =
  with_cache_dir @@ fun dir ->
  let c = Cache.create ~dir ~version:"v1" () in
  let key = Cache.fingerprint [ "versioned" ] in
  Cache.store c ~key payload;
  let c2 = Cache.create ~dir ~version:"v2" () in
  Alcotest.(check bool) "old version misses" true (Cache.find c2 ~key = None);
  Alcotest.(check int) "counted stale" 1 (Cache.stats c2).Cache.stale;
  (* The original handle still reads its own entry. *)
  let c3 = Cache.create ~dir ~version:"v1" () in
  Alcotest.(check bool) "same version still hits" true
    (Cache.find c3 ~key = Some payload)

let test_cache_lru_eviction_counted () =
  with_cache_dir @@ fun dir ->
  let c = Cache.create ~capacity:2 ~dir ~version:"v1" () in
  let key i = Cache.fingerprint [ "entry"; string_of_int i ] in
  List.iter (fun i -> Cache.store c ~key:(key i) payload) [ 1; 2; 3 ];
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions;
  (* Evicted from memory, not from disk: still findable. *)
  List.iter
    (fun i ->
      Alcotest.(check bool) "still stored" true
        (Cache.find c ~key:(key i) = Some payload))
    [ 1; 2; 3 ]

let test_cache_fingerprint_boundaries () =
  Alcotest.(check bool) "parts cannot alias" true
    (Cache.fingerprint [ "ab"; "c" ] <> Cache.fingerprint [ "a"; "bc" ]);
  Alcotest.(check bool) "order matters" true
    (Cache.fingerprint [ "a"; "b" ] <> Cache.fingerprint [ "b"; "a" ]);
  Alcotest.(check string) "deterministic"
    (Cache.fingerprint [ "a"; "b" ])
    (Cache.fingerprint [ "a"; "b" ]);
  String.iter
    (fun ch ->
      Alcotest.(check bool) "hex digest" true
        ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')))
    (Cache.fingerprint [ "x" ])

let test_cache_telemetry_counters () =
  with_cache_dir @@ fun dir ->
  let memory = Telemetry.in_memory () in
  Telemetry.with_sink (Telemetry.memory_sink memory) @@ fun () ->
  let c = Cache.create ~dir ~version:"v1" () in
  let key = Cache.fingerprint [ "telemetry" ] in
  ignore (Cache.find c ~key);
  Cache.store c ~key payload;
  ignore (Cache.find c ~key);
  let m = Telemetry.metrics memory in
  Alcotest.(check (option int)) "cache.misses counted" (Some 1)
    (List.assoc_opt "cache.misses" m.Telemetry.Metrics.counters);
  Alcotest.(check (option int)) "cache.hits counted" (Some 1)
    (List.assoc_opt "cache.hits" m.Telemetry.Metrics.counters)

let test_cache_write_failure_degrades () =
  with_cache_dir @@ fun dir ->
  let c = Cache.create ~dir ~version:"v1" () in
  (* Pull the directory out from under the handle: every later store
     fails to open its temp file. (A chmod-based read-only directory
     would not do — these tests may run as root, which bypasses
     permission bits.) *)
  Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
  Sys.rmdir dir;
  let key i = Cache.fingerprint [ "degraded"; string_of_int i ] in
  Cache.store c ~key:(key 1) payload;
  Cache.store c ~key:(key 2) payload;
  let s = Cache.stats c in
  Alcotest.(check int) "every failed write counted" 2 s.Cache.write_errors;
  (* Degraded, not broken: a fresh handle sees nothing on disk. *)
  Unix.mkdir dir 0o700;
  let c2 = Cache.create ~dir ~version:"v1" () in
  Alcotest.(check bool) "nothing persisted" true (Cache.find c2 ~key:(key 1) = None);
  Alcotest.(check int) "fresh handle clean" 0 (Cache.stats c2).Cache.write_errors

let test_cache_remove_retires_entry () =
  with_cache_dir @@ fun dir ->
  let c = Cache.create ~dir ~version:"v1" () in
  let key = Cache.fingerprint [ "to-remove" ] in
  Cache.store c ~key payload;
  Alcotest.(check bool) "stored" true (Cache.find c ~key = Some payload);
  Cache.remove c ~key;
  Alcotest.(check bool) "gone from memory and disk" true (Cache.find c ~key = None);
  (* Removing an absent entry is a no-op, not an error. *)
  Cache.remove c ~key

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let test_watchdog_iteration_cap () =
  Alcotest.(check bool) "unarmed outside" false (Watchdog.armed ());
  (* Unarmed ticks are free no-ops. *)
  Watchdog.tick ();
  Watchdog.with_limits
    (Watchdog.limits ~max_iterations:10 ())
    (fun () ->
      Alcotest.(check bool) "armed inside" true (Watchdog.armed ());
      for _ = 1 to 10 do
        Watchdog.tick ()
      done);
  (match
     Watchdog.with_limits
       (Watchdog.limits ~max_iterations:10 ())
       (fun () ->
         for _ = 1 to 11 do
           Watchdog.tick ()
         done)
   with
  | () -> Alcotest.fail "the 11th tick must expire"
  | exception Watchdog.Deadline_exceeded (Watchdog.Iterations { limit }) ->
    Alcotest.(check int) "configured limit carried" 10 limit
  | exception Watchdog.Deadline_exceeded _ -> Alcotest.fail "wrong expiry kind");
  Alcotest.(check bool) "disarmed after" false (Watchdog.armed ())

let test_watchdog_wall_checked_in_batches () =
  (* A zero wall budget expires at the first wall-clock read, which the
     amortization contract schedules for the 32nd tick — not the 1st. *)
  let ticked = ref 0 in
  match
    Watchdog.with_limits
      (Watchdog.limits ~wall_seconds:0.0 ())
      (fun () ->
        for _ = 1 to 100 do
          Watchdog.tick ();
          incr ticked
        done)
  with
  | () -> Alcotest.fail "zero wall budget must expire"
  | exception Watchdog.Deadline_exceeded (Watchdog.Wall_clock { limit }) ->
    Alcotest.(check (float 0.0)) "configured limit carried" 0.0 limit;
    Alcotest.(check int) "expired at the first batched check" 31 !ticked
  | exception Watchdog.Deadline_exceeded _ -> Alcotest.fail "wrong expiry kind"

let test_watchdog_tick_by () =
  match
    Watchdog.with_limits
      (Watchdog.limits ~max_iterations:10 ())
      (fun () -> Watchdog.tick ~by:11 ())
  with
  | () -> Alcotest.fail "bulk tick past the cap must expire"
  | exception Watchdog.Deadline_exceeded (Watchdog.Iterations { limit }) ->
    Alcotest.(check int) "limit" 10 limit
  | exception Watchdog.Deadline_exceeded _ -> Alcotest.fail "wrong expiry kind"

let test_watchdog_scale () =
  let l = Watchdog.limits ~wall_seconds:1.5 ~max_iterations:10 () in
  let s = Watchdog.scale l ~factor:4 in
  Alcotest.(check (option (float 1e-12))) "wall scaled" (Some 6.0)
    s.Watchdog.wall_seconds;
  Alcotest.(check (option int)) "iterations scaled" (Some 40)
    s.Watchdog.max_iterations;
  let clamped = Watchdog.scale l ~factor:0 in
  Alcotest.(check (option int)) "factor clamps to 1" (Some 10)
    clamped.Watchdog.max_iterations;
  let unlimited = Watchdog.scale Watchdog.no_limits ~factor:8 in
  Alcotest.(check bool) "no_limits stays unlimited" true
    (unlimited = Watchdog.no_limits)

let test_watchdog_nesting_restores () =
  Watchdog.with_limits
    (Watchdog.limits ~max_iterations:100 ())
    (fun () ->
      (* An inner deadline shadows the outer one; its expiry must leave
         the outer budget armed and untouched. *)
      (match
         Watchdog.with_limits
           (Watchdog.limits ~max_iterations:2 ())
           (fun () ->
             for _ = 1 to 3 do
               Watchdog.tick ()
             done)
       with
      | () -> Alcotest.fail "inner deadline must expire"
      | exception Watchdog.Deadline_exceeded (Watchdog.Iterations { limit }) ->
        Alcotest.(check int) "inner limit" 2 limit
      | exception Watchdog.Deadline_exceeded _ ->
        Alcotest.fail "wrong expiry kind");
      Alcotest.(check bool) "outer still armed" true (Watchdog.armed ());
      for _ = 1 to 50 do
        Watchdog.tick ()
      done);
  Alcotest.(check bool) "fully disarmed" false (Watchdog.armed ())

let test_watchdog_expiry_messages_deterministic () =
  (* These strings persist inside cached Unresolved payloads: they must
     be pure functions of the configured limit. *)
  Alcotest.(check string) "iterations"
    "deadline of 500 solver iterations exceeded"
    (Watchdog.expiry_message (Watchdog.Iterations { limit = 500 }));
  Alcotest.(check string) "wall" "wall-clock deadline of 2.5s exceeded"
    (Watchdog.expiry_message (Watchdog.Wall_clock { limit = 2.5 }))

let test_watchdog_shutdown_flag () =
  Fun.protect ~finally:Watchdog.reset_shutdown @@ fun () ->
  Watchdog.reset_shutdown ();
  Alcotest.(check bool) "clear initially" false (Watchdog.shutdown_requested ());
  Watchdog.check_shutdown ();
  Watchdog.request_shutdown ~reason:"first" ();
  Watchdog.request_shutdown ~reason:"second" ();
  Alcotest.(check (option string)) "first request wins" (Some "first")
    (Watchdog.shutdown_reason ());
  (match Watchdog.check_shutdown () with
  | () -> Alcotest.fail "must raise once requested"
  | exception Watchdog.Interrupted reason ->
    Alcotest.(check string) "reason carried" "first" reason);
  Watchdog.reset_shutdown ();
  Alcotest.(check bool) "reset clears" false (Watchdog.shutdown_requested ())

(* ------------------------------------------------------------------ *)
(* Pool cancellation                                                   *)
(* ------------------------------------------------------------------ *)

let test_pool_cancels_after_failure () =
  (* Prompt cancellation: after item 0 fails, dispatch stops — with
     thousands of items queued, most must never run. The propagated
     exception is still the lowest-indexed failure. *)
  let n = 5_000 in
  let processed = Atomic.make 0 in
  (match
     Pool.parallel_mapi ~jobs:4
       (fun i _ ->
         Atomic.incr processed;
         if i = 0 then begin
           Unix.sleepf 0.05;
           failwith "boom"
         end
         else Unix.sleepf 0.001)
       (List.init n Fun.id)
   with
  | _ -> Alcotest.fail "failure must propagate"
  | exception Pool.Worker_failure (0, Failure msg) ->
    Alcotest.(check string) "original exception carried" "boom" msg);
  Alcotest.(check bool) "dispatch stopped early" true
    (Atomic.get processed < n)

let test_pool_shutdown_interrupts_parallel () =
  Fun.protect ~finally:Watchdog.reset_shutdown @@ fun () ->
  Watchdog.reset_shutdown ();
  (match
     Pool.parallel_mapi ~jobs:2
       (fun i _ ->
         if i = 0 then Watchdog.request_shutdown ~reason:"test shutdown" ();
         i)
       (List.init 1_000 Fun.id)
   with
  | _ -> Alcotest.fail "shutdown must interrupt the map"
  | exception Watchdog.Interrupted reason ->
    Alcotest.(check string) "reason carried" "test shutdown" reason)

let test_pool_shutdown_interrupts_sequential () =
  Fun.protect ~finally:Watchdog.reset_shutdown @@ fun () ->
  Watchdog.reset_shutdown ();
  let ran = ref [] in
  (match
     Pool.parallel_mapi ~jobs:1
       (fun i _ ->
         ran := i :: !ran;
         if i = 1 then Watchdog.request_shutdown ~reason:"seq" ();
         i)
       [ 10; 11; 12; 13 ]
   with
  | _ -> Alcotest.fail "shutdown must interrupt the map"
  | exception Watchdog.Interrupted _ ->
    (* The item that requested shutdown still completed; the next one
       was never started. *)
    Alcotest.(check (list int)) "stopped before item 2" [ 1; 0 ] !ran)

let suites =
  [
    ( "util.pool",
      [
        Alcotest.test_case "empty input" `Quick test_pool_empty;
        Alcotest.test_case "single item" `Quick test_pool_single;
        Alcotest.test_case "matches List.map" `Quick test_pool_matches_list_map;
        Alcotest.test_case "mapi order" `Quick test_pool_mapi_order;
        Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
        Alcotest.test_case "first failure wins" `Quick test_pool_first_failure_wins;
        Alcotest.test_case "singleton failure wrapped" `Quick test_pool_singleton_failure_wrapped;
        Alcotest.test_case "failure printer" `Quick test_pool_worker_failure_printer;
        Alcotest.test_case "chunk ranges" `Quick test_pool_chunk_ranges;
        Alcotest.test_case "chunks cover" `Quick test_pool_parallel_chunks_cover;
        Alcotest.test_case "nested sequential" `Quick test_pool_nested_stays_sequential;
        Alcotest.test_case "set_jobs floor" `Quick test_pool_set_jobs_floor;
        Alcotest.test_case "cancels after failure" `Quick
          test_pool_cancels_after_failure;
        Alcotest.test_case "shutdown interrupts parallel" `Quick
          test_pool_shutdown_interrupts_parallel;
        Alcotest.test_case "shutdown interrupts sequential" `Quick
          test_pool_shutdown_interrupts_sequential;
      ] );
    ( "util.resilience",
      [
        Alcotest.test_case "first try" `Quick test_resilience_first_try;
        Alcotest.test_case "retries then succeeds" `Quick test_resilience_retries_then_succeeds;
        Alcotest.test_case "exhausts" `Quick test_resilience_exhausts;
        Alcotest.test_case "fatal not retried" `Quick test_resilience_fatal_not_retried;
        Alcotest.test_case "step clamps" `Quick test_resilience_step_clamps;
        Alcotest.test_case "budget" `Quick test_resilience_budget;
      ] );
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "copy independence" `Quick test_prng_copy_independent;
        Alcotest.test_case "split reproducible" `Quick test_prng_split_independent;
        Alcotest.test_case "int range" `Quick test_prng_int_range;
        Alcotest.test_case "int invalid bound" `Quick test_prng_int_invalid;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
        Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
        Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "known values" `Quick test_stats_known_values;
        Alcotest.test_case "empty mean raises" `Quick test_stats_empty_mean;
        Alcotest.test_case "singleton variance" `Quick test_stats_single_value_variance;
        Alcotest.test_case "sigma window" `Quick test_stats_sigma_window;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "helpers" `Quick test_stats_helpers;
      ] );
    ( "util.distribution",
      [
        Alcotest.test_case "normal moments" `Quick test_normal_moments;
        Alcotest.test_case "truncated normal bounds" `Quick test_truncated_normal_bounds;
        Alcotest.test_case "truncated normal unreachable window" `Quick test_truncated_normal_unreachable_window;
        Alcotest.test_case "power law shape" `Quick test_power_law_bounds_and_shape;
        Alcotest.test_case "discrete weights" `Quick test_discrete_weights;
        Alcotest.test_case "discrete cases normalized" `Quick test_discrete_cases_normalized;
        Alcotest.test_case "discrete drops zero weights" `Quick test_discrete_drops_zero_weights;
        Alcotest.test_case "discrete rejects all-zero" `Quick test_discrete_rejects_all_zero;
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      ] );
    ( "util.union_find",
      [
        Alcotest.test_case "basic" `Quick test_uf_basic;
        Alcotest.test_case "transitivity" `Quick test_uf_transitivity;
        Alcotest.test_case "groups" `Quick test_uf_groups;
        Alcotest.test_case "empty" `Quick test_uf_empty;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "alignment" `Quick test_table_alignment;
        Alcotest.test_case "cell formatting" `Quick test_table_cells;
        Alcotest.test_case "csv quoting" `Quick test_table_csv_quoting;
        Alcotest.test_case "json rows" `Quick test_table_json_rows;
      ] );
    ( "util.json",
      [
        Alcotest.test_case "print/parse round-trip" `Quick
          test_json_print_parse_roundtrip;
        Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "depth limit" `Quick test_json_depth_limit;
      ] );
    ( "util.cache",
      [
        Alcotest.test_case "store/find round-trip" `Quick
          test_cache_store_find_roundtrip;
        Alcotest.test_case "corrupt entry is a miss" `Quick
          test_cache_corrupt_entry_is_a_miss;
        Alcotest.test_case "version mismatch invalidates" `Quick
          test_cache_version_mismatch_invalidates;
        Alcotest.test_case "LRU eviction counted" `Quick
          test_cache_lru_eviction_counted;
        Alcotest.test_case "fingerprint boundaries" `Quick
          test_cache_fingerprint_boundaries;
        Alcotest.test_case "telemetry counters" `Quick
          test_cache_telemetry_counters;
        Alcotest.test_case "write failure degrades" `Quick
          test_cache_write_failure_degrades;
        Alcotest.test_case "remove retires entry" `Quick
          test_cache_remove_retires_entry;
      ] );
    ( "util.watchdog",
      [
        Alcotest.test_case "iteration cap" `Quick test_watchdog_iteration_cap;
        Alcotest.test_case "wall checked in batches" `Quick
          test_watchdog_wall_checked_in_batches;
        Alcotest.test_case "bulk tick" `Quick test_watchdog_tick_by;
        Alcotest.test_case "scale" `Quick test_watchdog_scale;
        Alcotest.test_case "nesting restores" `Quick
          test_watchdog_nesting_restores;
        Alcotest.test_case "expiry messages deterministic" `Quick
          test_watchdog_expiry_messages_deterministic;
        Alcotest.test_case "shutdown flag" `Quick test_watchdog_shutdown_flag;
      ] );
    ( "util.telemetry",
      [
        Alcotest.test_case "null sink is free" `Quick test_telemetry_null_is_free;
        Alcotest.test_case "in-memory aggregates" `Quick
          test_telemetry_in_memory_aggregates;
        Alcotest.test_case "span nesting and error" `Quick
          test_telemetry_span_nesting_and_error;
        Alcotest.test_case "event json round-trip" `Quick
          test_telemetry_event_json_roundtrip;
      ] );
    "util.properties", List.map QCheck_alcotest.to_alcotest qcheck_props;
  ]
