(* Tests for the dotest.fault library: taxonomy, collapsing, injection. *)

let mech = Process.Defect_stats.Extra_material Process.Layer.Metal1

let instance ?(severity = Fault.Types.Catastrophic) fault =
  { Fault.Types.fault; severity; mechanism = mech }

let bridge ?(r = 0.2) ?c a b =
  Fault.Types.Bridge
    { net_a = a; net_b = b; resistance = r; capacitance = c;
      origin = Fault.Types.Short }

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let test_canonical_key_symmetric () =
  Alcotest.(check string) "order-insensitive"
    (Fault.Types.canonical_key (bridge "a" "b"))
    (Fault.Types.canonical_key (bridge "b" "a"))

let test_canonical_key_distinguishes () =
  Alcotest.(check bool) "different nets differ" true
    (Fault.Types.canonical_key (bridge "a" "b")
    <> Fault.Types.canonical_key (bridge "a" "c"));
  Alcotest.(check bool) "resistance matters" true
    (Fault.Types.canonical_key (bridge ~r:0.2 "a" "b")
    <> Fault.Types.canonical_key (bridge ~r:500.0 "a" "b"))

let test_open_key_pin_order_insensitive () =
  let k1 =
    Fault.Types.canonical_key
      (Fault.Types.Node_split { net = "n"; far_pins = [ "M1", "d"; "M2", "g" ] })
  in
  let k2 =
    Fault.Types.canonical_key
      (Fault.Types.Node_split { net = "n"; far_pins = [ "M2", "g"; "M1", "d" ] })
  in
  Alcotest.(check string) "same class" k1 k2

let test_type_of_fault () =
  Alcotest.(check string) "bridge" "short"
    (Fault.Types.fault_type_name (Fault.Types.type_of_fault (bridge "a" "b")));
  Alcotest.(check string) "open" "open"
    (Fault.Types.fault_type_name
       (Fault.Types.type_of_fault
          (Fault.Types.Node_split { net = "n"; far_pins = [] })))

(* ------------------------------------------------------------------ *)
(* Collapse                                                            *)
(* ------------------------------------------------------------------ *)

let test_collapse_merges_equivalent () =
  let faults =
    [ instance (bridge "a" "b"); instance (bridge "b" "a"); instance (bridge "a" "c") ]
  in
  let classes = Fault.Collapse.collapse faults in
  Alcotest.(check int) "two classes" 2 (List.length classes);
  Alcotest.(check int) "total preserved" 3 (Fault.Collapse.total_count classes);
  match classes with
  | first :: _ -> Alcotest.(check int) "biggest first" 2 first.Fault.Collapse.count
  | [] -> Alcotest.fail "no classes"

let test_collapse_severity_separates () =
  let faults =
    [
      instance (bridge "a" "b");
      instance ~severity:Fault.Types.Non_catastrophic (bridge "a" "b");
    ]
  in
  Alcotest.(check int) "catastrophic and near-miss distinct" 2
    (List.length (Fault.Collapse.collapse faults))

let test_collapse_idempotent () =
  let faults = [ instance (bridge "a" "b"); instance (bridge "a" "b") ] in
  let classes = Fault.Collapse.collapse faults in
  let again =
    Fault.Collapse.collapse
      (List.concat_map
         (fun (c : Fault.Collapse.fault_class) ->
           List.init c.count (fun _ -> c.representative))
         classes)
  in
  Alcotest.(check int) "same classes" (List.length classes) (List.length again);
  Alcotest.(check int) "same total"
    (Fault.Collapse.total_count classes)
    (Fault.Collapse.total_count again)

let test_by_type_shares_sum_to_one () =
  let faults =
    [
      instance (bridge "a" "b");
      instance (bridge "a" "c");
      instance (Fault.Types.Node_split { net = "n"; far_pins = [ "M1", "d" ] });
    ]
  in
  let tab = Fault.Collapse.by_type (Fault.Collapse.collapse faults) in
  let fault_sum = List.fold_left (fun acc (_, fs, _) -> acc +. fs) 0. tab in
  let class_sum = List.fold_left (fun acc (_, _, cs) -> acc +. cs) 0. tab in
  Alcotest.(check (float 1e-9)) "fault shares" 1.0 fault_sum;
  Alcotest.(check (float 1e-9)) "class shares" 1.0 class_sum

let test_derive_non_catastrophic () =
  let tech = Process.Tech.cmos1um in
  let classes =
    Fault.Collapse.collapse
      [
        instance (bridge ~r:0.2 "a" "b");
        instance (bridge ~r:50.0 "a" "b");  (* poly short, same nets *)
        instance (Fault.Types.Node_split { net = "n"; far_pins = [ "M1", "d" ] });
      ]
  in
  let derived = Fault.Collapse.derive_non_catastrophic ~tech classes in
  (* Two catastrophic short classes collapse onto one 500-ohm near-miss;
     the open yields nothing. *)
  Alcotest.(check int) "one near-miss class" 1 (List.length derived);
  match derived with
  | [ c ] ->
    Alcotest.(check int) "magnitude preserved" 2 c.Fault.Collapse.count;
    (match c.representative.Fault.Types.fault with
    | Fault.Types.Bridge { resistance; capacitance; _ } ->
      Alcotest.(check (float 1e-9)) "500 ohm" 500.0 resistance;
      Alcotest.(check bool) "has 1 fF" true (capacitance = Some 1e-15)
    | _ -> Alcotest.fail "expected a bridge");
    Alcotest.(check bool) "non-catastrophic" true
      (c.representative.Fault.Types.severity = Fault.Types.Non_catastrophic)
  | _ -> Alcotest.fail "expected exactly one class"

(* ------------------------------------------------------------------ *)
(* Inject                                                              *)
(* ------------------------------------------------------------------ *)

let divider () =
  let nl = Circuit.Netlist.create () in
  let vin = Circuit.Netlist.node nl "in" in
  let mid = Circuit.Netlist.node nl "mid" in
  Circuit.Netlist.add_vsource nl ~name:"V1" ~pos:vin ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc 10.0);
  Circuit.Netlist.add_resistor nl ~name:"R1" vin mid 1_000.0;
  Circuit.Netlist.add_resistor nl ~name:"R2" mid Circuit.Netlist.ground 3_000.0;
  nl

let v_mid nl =
  let sol = Circuit.Engine.dc_operating_point nl in
  Circuit.Engine.voltage sol (Circuit.Netlist.node nl "mid")

let test_inject_bridge_changes_output () =
  let nl = divider () in
  let faulty = Fault.Inject.inject nl (bridge ~r:1.0 "mid" "0") in
  Alcotest.(check bool) "golden untouched" true
    (Float.abs (v_mid nl -. 7.5) < 1e-6);
  Alcotest.(check bool) "output pulled down" true (v_mid faulty < 0.1)

let test_inject_bridge_with_cap () =
  let nl = divider () in
  let faulty =
    Fault.Inject.inject nl (bridge ~r:500.0 ~c:1e-15 "mid" "0")
  in
  Alcotest.(check bool) "cap added" true
    (Circuit.Netlist.has_device faulty "FLT_Cbridge");
  Alcotest.(check bool) "near-miss sags output" true (v_mid faulty < 7.5)

let test_inject_open_floats_pins () =
  let nl = divider () in
  let faulty =
    Fault.Inject.inject nl
      (Fault.Types.Node_split { net = "mid"; far_pins = [ "R2", "+" ] })
  in
  (* R2 is cut away from mid: the divider becomes unloaded. *)
  Alcotest.(check (float 1e-3)) "unloaded divider" 10.0 (v_mid faulty)

let test_inject_open_ignores_foreign_pins () =
  let nl = divider () in
  let faulty =
    Fault.Inject.inject nl
      (Fault.Types.Node_split { net = "mid"; far_pins = [ "NOPE", "x" ] })
  in
  Alcotest.(check (float 1e-6)) "no effect" 7.5 (v_mid faulty)

let test_inject_unknown_net_rejected () =
  let nl = divider () in
  Alcotest.check_raises "unknown net"
    (Invalid_argument "Fault.Inject: unknown net \"ghost\"") (fun () ->
      ignore (Fault.Inject.inject nl (bridge "ghost" "mid")))

let mos_netlist () =
  let nl = Circuit.Netlist.create () in
  let vdd = Circuit.Netlist.node nl "vdd" in
  let out = Circuit.Netlist.node nl "out" in
  let vin = Circuit.Netlist.node nl "in" in
  Circuit.Netlist.add_vsource nl ~name:"VDD" ~pos:vdd ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc 5.0);
  Circuit.Netlist.add_vsource nl ~name:"VIN" ~pos:vin ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc 0.0);
  Circuit.Netlist.add_resistor nl ~name:"RL" vdd out 10_000.0;
  Circuit.Netlist.add_mosfet nl ~name:"M1" ~drain:out ~gate:vin
    ~source:Circuit.Netlist.ground ~bulk:Circuit.Netlist.ground
    {
      Circuit.Netlist.polarity = Circuit.Mos_model.Nmos;
      params = Circuit.Mos_model.default_nmos;
      w = 10e-6;
      l = 1e-6;
    };
  nl

let v_out nl =
  let sol = Circuit.Engine.dc_operating_point nl in
  Circuit.Engine.voltage sol (Circuit.Netlist.node nl "out")

let test_inject_device_short () =
  let nl = mos_netlist () in
  (* Gate low: output should be high; a D-S short pulls it down. *)
  Alcotest.(check bool) "fault-free high" true (v_out nl > 4.9);
  let faulty =
    Fault.Inject.inject nl
      (Fault.Types.Device_ds_short { device = "M1"; resistance = 100.0 })
  in
  Alcotest.(check bool) "shorted low" true (v_out faulty < 0.1)

let test_inject_gate_pinhole_sites () =
  let nl = mos_netlist () in
  let inject site =
    Fault.Inject.inject nl
      (Fault.Types.Gate_pinhole { device = "M1"; site; resistance = 2_000.0 })
  in
  (* A gate-drain leak pulls the gate up, turning the device on. *)
  Alcotest.(check bool) "to-drain turns on" true (v_out (inject Fault.Types.To_drain) < 4.0);
  (* To-channel splits into two 2R paths — both legs must exist. *)
  let chan = inject Fault.Types.To_channel in
  Alcotest.(check bool) "two channel legs" true
    (Circuit.Netlist.has_device chan "FLT_Rgox_s"
    && Circuit.Netlist.has_device chan "FLT_Rgox_d")

let test_inject_parasitic_mos () =
  let nl = mos_netlist () in
  let faulty =
    Fault.Inject.inject nl
      (Fault.Types.Parasitic_mos { gate_net = "vdd"; net_a = "out"; net_b = "0" })
  in
  (* A parasitic NMOS gated by vdd conducts: output sags. *)
  Alcotest.(check bool) "parasitic conducts" true (v_out faulty < 4.0)

let test_inject_junction_leak () =
  let nl = mos_netlist () in
  let faulty =
    Fault.Inject.inject nl
      (Fault.Types.Junction_leak { net = "out"; bulk_net = "0"; resistance = 2_000.0 })
  in
  Alcotest.(check bool) "leak pulls down" true (v_out faulty < 2.0)

(* ------------------------------------------------------------------ *)
(* Defect simulator                                                    *)
(* ------------------------------------------------------------------ *)

let synth_cell () =
  let nl = mos_netlist () in
  let cell = Layout.Synthesize.synthesize nl ~name:"defect_target" in
  nl, cell

let test_defect_run_deterministic () =
  let nl, cell = synth_cell () in
  let run seed =
    Defect.Simulate.run ~tech:Process.Tech.cmos1um
      ~stats:Process.Defect_stats.default ~cell ~netlist:nl
      (Util.Prng.create seed) ~n:5_000
  in
  let r1 = run 7 and r2 = run 7 in
  Alcotest.(check int) "same effective" r1.Defect.Simulate.effective
    r2.Defect.Simulate.effective;
  Alcotest.(check int) "same instances"
    (List.length r1.Defect.Simulate.instances)
    (List.length r2.Defect.Simulate.instances)

let test_defect_shorts_dominate () =
  let nl, cell = synth_cell () in
  let r =
    Defect.Simulate.run ~tech:Process.Tech.cmos1um
      ~stats:Process.Defect_stats.default ~cell ~netlist:nl
      (Util.Prng.create 11) ~n:50_000
  in
  let classes = Fault.Collapse.collapse r.Defect.Simulate.instances in
  match Fault.Collapse.by_type classes with
  | (ft, share, _) :: _ ->
    Alcotest.(check string) "shorts on top" "short" (Fault.Types.fault_type_name ft);
    Alcotest.(check bool) "dominant" true (share > 0.8)
  | [] -> Alcotest.fail "no faults"

let test_defect_faults_are_injectable () =
  (* Every fault the simulator produces must inject cleanly into the
     netlist it was derived from — the pipeline contract. *)
  let nl, cell = synth_cell () in
  let r =
    Defect.Simulate.run ~tech:Process.Tech.cmos1um
      ~stats:Process.Defect_stats.default ~cell ~netlist:nl
      (Util.Prng.create 13) ~n:20_000
  in
  List.iter
    (fun (i : Fault.Types.instance) -> ignore (Fault.Inject.inject_instance nl i))
    r.Defect.Simulate.instances;
  Alcotest.(check bool) "found some faults" true
    (List.length r.Defect.Simulate.instances > 0)

let test_defect_analyze_miss_is_benign () =
  let nl, cell = synth_cell () in
  let extraction = Layout.Extract.extract cell in
  (* A tiny defect in empty space produces nothing. *)
  let far_corner =
    Geometry.Circle.create ~cx:(-100_000) ~cy:(-100_000) ~radius:200.0
  in
  Alcotest.(check int) "benign" 0
    (List.length
       (Defect.Simulate.analyze ~tech:Process.Tech.cmos1um ~cell ~netlist:nl
          ~extraction (Process.Defect_stats.Extra_material Process.Layer.Metal1)
          far_corner))

let test_defect_directed_short () =
  (* Place an extra-metal defect squarely across two routing tracks and
     check it reports a short between their nets. *)
  let nl, cell = synth_cell () in
  let extraction = Layout.Extract.extract cell in
  (* Find segments of two vertically adjacent metal1 tracks near x = the
     first segment's centre. *)
  let segments =
    Array.to_list (Layout.Cell.shapes cell)
    |> List.filter_map (fun (s : Layout.Cell.shape) ->
           match s.owner with
           | Layout.Cell.Wire net
             when Process.Layer.equal s.layer Process.Layer.Metal1
                  && Geometry.Rect.width s.rect > 10_000 ->
             Some (s.rect, net)
           | _ -> None)
  in
  let tracks =
    segments
    |> List.filter (fun (r, _) -> fst (Geometry.Rect.center r) < 15_000)
    |> List.sort (fun (r1, _) (r2, _) ->
           compare (snd (Geometry.Rect.center r1)) (snd (Geometry.Rect.center r2)))
  in
  match tracks with
  | (r1, n1) :: (r2, n2) :: _ ->
    let cx = fst (Geometry.Rect.center r1) in
    let cy = (snd (Geometry.Rect.center r1) + snd (Geometry.Rect.center r2)) / 2 in
    let gap = Geometry.Rect.separation r1 r2 in
    let circle = Geometry.Circle.create ~cx ~cy ~radius:(gap +. 2_000.) in
    let faults =
      Defect.Simulate.analyze ~tech:Process.Tech.cmos1um ~cell ~netlist:nl
        ~extraction (Process.Defect_stats.Extra_material Process.Layer.Metal1)
        circle
    in
    let is_short (i : Fault.Types.instance) =
      match i.fault with
      | Fault.Types.Bridge { net_a; net_b; _ } ->
        (net_a = n1 && net_b = n2) || (net_a = n2 && net_b = n1)
      | Fault.Types.Bridge_cluster { nets; _ } ->
        List.mem n1 nets && List.mem n2 nets
      | _ -> false
    in
    Alcotest.(check bool) "reports the short" true (List.exists is_short faults)
  | _ -> Alcotest.fail "expected two tracks"

let test_defect_directed_open () =
  (* Sever the "out" track between its two pins (RL.- and M1.d): a
     missing-metal hole wider than the track must report an open that
     disconnects one of the pins. *)
  let nl, cell = synth_cell () in
  let extraction = Layout.Extract.extract cell in
  let shapes = Array.to_list (Layout.Cell.shapes cell) in
  (* Riser x positions of the "out" net (tall metal2 strips). *)
  let riser_xs =
    List.filter_map
      (fun (s : Layout.Cell.shape) ->
        match s.owner with
        | Layout.Cell.Wire "out"
          when Process.Layer.equal s.layer Process.Layer.Metal2 ->
          Some (fst (Geometry.Rect.center s.rect))
        | _ -> None)
      shapes
    |> List.sort compare
  in
  match riser_xs with
  | x1 :: rest when rest <> [] ->
    let x2 = List.nth rest (List.length rest - 1) in
    let cut_x = (x1 + x2) / 2 in
    (* The "out" track segment at that x. *)
    let segment =
      List.find_map
        (fun (s : Layout.Cell.shape) ->
          match s.owner with
          | Layout.Cell.Wire "out"
            when Process.Layer.equal s.layer Process.Layer.Metal1
                 && Geometry.Rect.width s.rect > Geometry.Rect.height s.rect
                 && Geometry.Rect.contains s.rect (cut_x, snd (Geometry.Rect.center s.rect)) ->
            Some s.rect
          | _ -> None)
        shapes
    in
    (match segment with
    | None -> Alcotest.fail "no out-track segment at the cut point"
    | Some rect ->
      let cy = snd (Geometry.Rect.center rect) in
      let radius = float_of_int (Geometry.Rect.height rect) +. 1_000. in
      let circle = Geometry.Circle.create ~cx:cut_x ~cy ~radius in
      let faults =
        Defect.Simulate.analyze ~tech:Process.Tech.cmos1um ~cell ~netlist:nl
          ~extraction
          (Process.Defect_stats.Missing_material Process.Layer.Metal1) circle
      in
      let is_open (i : Fault.Types.instance) =
        match i.fault with
        | Fault.Types.Node_split { net = "out"; far_pins } -> far_pins <> []
        | _ -> false
      in
      Alcotest.(check bool) "reports the open" true (List.exists is_open faults))
  | _ -> Alcotest.fail "expected two out risers"

(* ------------------------------------------------------------------ *)
(* Shared-nominal structural invariants                                *)
(* ------------------------------------------------------------------ *)

(* The scaled-3b analog core: 11 unknowns with every net (vrl, tap1..7,
   vrh) and device (RSEG0..7, MRD1..7) name known, so fault generators
   can aim at real structure. *)
let scaled_nominal () =
  Adc.Scaled.bench_netlist ~bits:3
    (Process.Variation.nominal Process.Tech.cmos1um)

let scaled_unknowns nl = Circuit.Netlist.node_count nl + 2

(* Numerical rank via Gaussian elimination with partial pivoting,
   pivot threshold relative to the largest entry. *)
let matrix_rank a =
  let n = Array.length a in
  let m = Array.map Array.copy a in
  let maxabs =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) acc row)
      0.0 m
  in
  if maxabs = 0.0 then 0
  else begin
    let tol = 1e-9 *. maxabs in
    let rank = ref 0 in
    for col = 0 to n - 1 do
      if !rank < n then begin
        let piv = ref !rank in
        for r = !rank + 1 to n - 1 do
          if Float.abs m.(r).(col) > Float.abs m.(!piv).(col) then piv := r
        done;
        if Float.abs m.(!piv).(col) > tol then begin
          let tmp = m.(!rank) in
          m.(!rank) <- m.(!piv);
          m.(!piv) <- tmp;
          for r = !rank + 1 to n - 1 do
            let f = m.(r).(col) /. m.(!rank).(col) in
            for c = col to n - 1 do
              m.(r).(c) <- m.(r).(c) -. (f *. m.(!rank).(c))
            done
          done;
          incr rank
        end
      end
    done;
    !rank
  end

(* Regression for the shared-nominal miss path: faults that are not a
   pure R/C addition (an open's node split, a parasitic transistor) must
   get a fresh factorization — counted as misses, never chained. *)
let test_shared_nominal_inexpressible_fresh () =
  let memory = Util.Telemetry.in_memory () in
  (* Counter deltas are buffered per domain and flushed when [with_sink]
     restores — snapshot the aggregate only after it returns. *)
  (Util.Telemetry.with_sink (Util.Telemetry.memory_sink memory) @@ fun () ->
   Circuit.Engine.with_solver Circuit.Engine.Auto @@ fun () ->
   let sn =
     Circuit.Engine.shared_nominal ~strip:Fault.Inject.is_fault_device ()
   in
   Circuit.Engine.with_shared_nominal sn @@ fun () ->
   let nominal = scaled_nominal () in
   let solve fault =
     ignore
       (Circuit.Engine.dc_operating_point (Fault.Inject.inject nominal fault))
   in
   solve (bridge ~r:500.0 "tap2" "tap5");
   solve
     (Fault.Types.Parasitic_mos
        { gate_net = "tap3"; net_a = "tap1"; net_b = "tap2" });
   solve (Fault.Types.Node_split { net = "tap2"; far_pins = [ "RSEG2", "+" ] }));
  let counters = (Util.Telemetry.metrics memory).Util.Telemetry.Metrics.counters in
  let counter name = Option.value ~default:0 (List.assoc_opt name counters) in
  Alcotest.(check int) "bridge seeds off the shared nominal" 1
    (counter "engine.shared_nominal_hits");
  Alcotest.(check int) "open and parasitic mos get fresh factorizations" 2
    (counter "engine.shared_nominal_misses");
  Alcotest.(check int) "no guard trips" 0
    (counter "engine.shared_nominal_fallbacks")

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  let net_gen = Gen.oneofl [ "a"; "b"; "c"; "d" ] in
  let arb_bridge =
    QCheck.make
      Gen.(
        let* na = net_gen in
        let* nb = net_gen in
        let* r = float_range 0.1 1000.0 in
        return (na, nb, r))
  in
  [
    Test.make ~name:"collapse: total count is preserved"
      (list_of_size (Gen.int_range 0 100) arb_bridge)
      (fun bridges ->
        let faults =
          List.filter_map
            (fun (a, b, r) -> if a = b then None else Some (instance (bridge ~r a b)))
            bridges
        in
        Fault.Collapse.total_count (Fault.Collapse.collapse faults)
        = List.length faults);
    Test.make ~name:"collapse: classes have distinct keys"
      (list_of_size (Gen.int_range 0 100) arb_bridge)
      (fun bridges ->
        let faults =
          List.filter_map
            (fun (a, b, r) -> if a = b then None else Some (instance (bridge ~r a b)))
            bridges
        in
        let classes = Fault.Collapse.collapse faults in
        let keys =
          List.map
            (fun (c : Fault.Collapse.fault_class) ->
              Fault.Types.canonical_key c.representative.Fault.Types.fault)
            classes
        in
        List.length keys = List.length (List.sort_uniq compare keys));
    (* The structural property the shared-nominal rank-1 chaining relies
       on: every stamp-expressible fault perturbs the DC MNA matrix by a
       matrix of rank at most 2 (one conductance stamp per added
       resistor; a channel pinhole or a 3-net cluster contributes two),
       at any identical linearization point. *)
    (let scaled_nets =
       [| "vrl"; "tap1"; "tap2"; "tap3"; "tap4"; "tap5"; "tap6"; "tap7"; "vrh" |]
     in
     let scaled_mos =
       [| "MRD1"; "MRD2"; "MRD3"; "MRD4"; "MRD5"; "MRD6"; "MRD7" |]
     in
     let arb_stamp_fault =
       QCheck.make ~print:Fault.Types.canonical_key
         Gen.(
           let nets = Array.length scaled_nets in
           let net = map (Array.get scaled_nets) (int_range 0 (nets - 1)) in
           let device = map (Array.get scaled_mos) (int_range 0 6) in
           let* r = float_range 10.0 100_000.0 in
           oneof
             [
               (let* i = int_range 0 (nets - 1) in
                let* k = int_range 1 (nets - 1) in
                let* c = oneofl [ None; Some 1e-15 ] in
                return
                  (Fault.Types.Bridge
                     { net_a = scaled_nets.(i);
                       net_b = scaled_nets.((i + k) mod nets);
                       resistance = r; capacitance = c;
                       origin = Fault.Types.Short }));
               (let* i = int_range 0 (nets - 3) in
                return
                  (Fault.Types.Bridge_cluster
                     { nets =
                         [ scaled_nets.(i); scaled_nets.(i + 1);
                           scaled_nets.(i + 2) ];
                       resistance = r; capacitance = None;
                       origin = Fault.Types.Extra_contact }));
               (let* d = device in
                let* site =
                  oneofl
                    Fault.Types.[ To_source; To_drain; To_channel ]
                in
                return
                  (Fault.Types.Gate_pinhole
                     { device = d; site; resistance = r }));
               (let* n = net in
                return
                  (Fault.Types.Junction_leak
                     { net = n; bulk_net = "0"; resistance = r }));
               (let* d = device in
                return (Fault.Types.Device_ds_short { device = d; resistance = r }));
             ])
     in
     Test.make ~count:200
       ~name:"inject: stamp-expressible faults perturb the jacobian by rank <= 2"
       arb_stamp_fault
       (fun fault ->
         assume (Fault.Inject.stamp_expressible fault);
         let nominal = scaled_nominal () in
         let faulty = Fault.Inject.inject nominal fault in
         let n = scaled_unknowns nominal in
         (* Same unknowns: a stamp-expressible fault adds no node or
            branch, so both jacobians are n x n and comparable. *)
         if scaled_unknowns faulty <> n then false
         else begin
           let x =
             Array.init n (fun i -> 0.25 +. (0.17 *. float_of_int (i mod 7)))
           in
           let jn = Circuit.Engine.dense_jacobian nominal ~x in
           let jf = Circuit.Engine.dense_jacobian faulty ~x in
           let d =
             Array.init n (fun i ->
                 Array.init n (fun k -> jf.(i).(k) -. jn.(i).(k)))
           in
           matrix_rank d <= 2
         end));
  ]

let suites =
  [
    ( "fault.types",
      [
        Alcotest.test_case "key symmetric" `Quick test_canonical_key_symmetric;
        Alcotest.test_case "key distinguishes" `Quick test_canonical_key_distinguishes;
        Alcotest.test_case "open key pin order" `Quick test_open_key_pin_order_insensitive;
        Alcotest.test_case "type of fault" `Quick test_type_of_fault;
      ] );
    ( "fault.collapse",
      [
        Alcotest.test_case "merges equivalent" `Quick test_collapse_merges_equivalent;
        Alcotest.test_case "severity separates" `Quick test_collapse_severity_separates;
        Alcotest.test_case "idempotent" `Quick test_collapse_idempotent;
        Alcotest.test_case "shares sum to 1" `Quick test_by_type_shares_sum_to_one;
        Alcotest.test_case "derive non-catastrophic" `Quick test_derive_non_catastrophic;
      ] );
    ( "fault.inject",
      [
        Alcotest.test_case "bridge" `Quick test_inject_bridge_changes_output;
        Alcotest.test_case "bridge with cap" `Quick test_inject_bridge_with_cap;
        Alcotest.test_case "open floats pins" `Quick test_inject_open_floats_pins;
        Alcotest.test_case "open ignores foreign pins" `Quick test_inject_open_ignores_foreign_pins;
        Alcotest.test_case "unknown net rejected" `Quick test_inject_unknown_net_rejected;
        Alcotest.test_case "device short" `Quick test_inject_device_short;
        Alcotest.test_case "gate pinhole sites" `Quick test_inject_gate_pinhole_sites;
        Alcotest.test_case "parasitic mos" `Quick test_inject_parasitic_mos;
        Alcotest.test_case "junction leak" `Quick test_inject_junction_leak;
      ] );
    ( "defect.simulate",
      [
        Alcotest.test_case "deterministic" `Quick test_defect_run_deterministic;
        Alcotest.test_case "shorts dominate" `Quick test_defect_shorts_dominate;
        Alcotest.test_case "faults injectable" `Quick test_defect_faults_are_injectable;
        Alcotest.test_case "miss is benign" `Quick test_defect_analyze_miss_is_benign;
        Alcotest.test_case "directed short" `Quick test_defect_directed_short;
        Alcotest.test_case "directed open" `Quick test_defect_directed_open;
      ] );
    ( "fault.shared_nominal",
      [
        Alcotest.test_case "inexpressible faults get fresh factors" `Quick
          test_shared_nominal_inexpressible_fresh;
      ] );
    "fault.properties", List.map QCheck_alcotest.to_alcotest qcheck_props;
  ]
