(* Tests for the dotest.testgen library: detection mapping, overlap,
   test time. *)

let mech = Process.Defect_stats.Extra_material Process.Layer.Metal1

let outcome ?(count = 1) voltage currents =
  {
    Macro.Evaluate.fault_class =
      {
        Fault.Collapse.representative =
          {
            Fault.Types.fault =
              Fault.Types.Bridge
                { net_a = "a"; net_b = "b"; resistance = 1.0;
                  capacitance = None; origin = Fault.Types.Short };
            severity = Fault.Types.Catastrophic;
            mechanism = mech;
          };
        count;
      };
    signature = { Macro.Signature.voltage; currents };
    status = Macro.Evaluate.Converged;
  }

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let test_detection_mapping () =
  let missing v =
    (Testgen.Detection.of_signature { Macro.Signature.voltage = v; currents = [] })
      .Testgen.Detection.missing_code
  in
  Alcotest.(check bool) "stuck" true (missing Macro.Signature.Output_stuck_at);
  Alcotest.(check bool) "offset" true (missing Macro.Signature.Offset_too_large);
  Alcotest.(check bool) "mixed" false (missing Macro.Signature.Mixed);
  Alcotest.(check bool) "clock" false (missing Macro.Signature.Clock_value);
  Alcotest.(check bool) "none" false (missing Macro.Signature.No_voltage_deviation)

let test_detection_currents () =
  let m =
    Testgen.Detection.of_signature
      {
        Macro.Signature.voltage = Macro.Signature.No_voltage_deviation;
        currents = [ Macro.Signature.IDDQ ];
      }
  in
  Alcotest.(check bool) "iddq set" true m.Testgen.Detection.iddq;
  Alcotest.(check bool) "not voltage" false (Testgen.Detection.voltage_detected m);
  Alcotest.(check bool) "current yes" true (Testgen.Detection.current_detected m);
  Alcotest.(check bool) "detected" true (Testgen.Detection.detected m)

let test_propagation_agrees_with_mapping () =
  (* The one-to-one mapping of §3.2, validated against the behavioural
     converter. A long ramp is used so the erratic comparator has enough
     samples per code. *)
  let prng = Util.Prng.create 31 in
  let check v expect =
    Alcotest.(check bool) (Macro.Signature.voltage_name v) expect
      (Testgen.Detection.propagate_voltage ~samples:8000 v prng)
  in
  check Macro.Signature.Output_stuck_at true;
  check Macro.Signature.Offset_too_large true;
  check Macro.Signature.Clock_value false;
  check Macro.Signature.No_voltage_deviation false

(* ------------------------------------------------------------------ *)
(* Overlap                                                             *)
(* ------------------------------------------------------------------ *)

let sample_outcomes =
  [
    outcome ~count:4 Macro.Signature.Output_stuck_at [ Macro.Signature.IVdd ];
    outcome ~count:3 Macro.Signature.Offset_too_large [];
    outcome ~count:2 Macro.Signature.No_voltage_deviation [ Macro.Signature.IDDQ ];
    outcome ~count:1 Macro.Signature.No_voltage_deviation [];
  ]

let test_partition_shares_sum () =
  let cells = Testgen.Overlap.partition sample_outcomes in
  let total =
    List.fold_left (fun acc (c : Testgen.Overlap.cell) -> acc +. c.share) 0.0 cells
  in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total

let test_venn_values () =
  let venn =
    Testgen.Overlap.venn_of_partition (Testgen.Overlap.partition sample_outcomes)
  in
  Alcotest.(check (float 1e-9)) "voltage only" 0.3 venn.Testgen.Overlap.voltage_only;
  Alcotest.(check (float 1e-9)) "both" 0.4 venn.Testgen.Overlap.both;
  Alcotest.(check (float 1e-9)) "current only" 0.2 venn.Testgen.Overlap.current_only;
  Alcotest.(check (float 1e-9)) "undetected" 0.1 venn.Testgen.Overlap.undetected;
  Alcotest.(check (float 1e-9)) "coverage" 0.9 (Testgen.Overlap.coverage venn)

let test_only_detected_by () =
  let cells = Testgen.Overlap.partition sample_outcomes in
  Alcotest.(check (float 1e-9)) "IDDQ only" 0.2
    (Testgen.Overlap.only_detected_by cells ~mechanism:"IDDQ");
  Alcotest.(check (float 1e-9)) "missing-code only" 0.3
    (Testgen.Overlap.only_detected_by cells ~mechanism:"missing-code");
  Alcotest.check_raises "unknown mechanism"
    (Invalid_argument "Overlap.only_detected_by: unknown mechanism") (fun () ->
      ignore (Testgen.Overlap.only_detected_by cells ~mechanism:"bogus"))

let test_mechanism_share () =
  let cells = Testgen.Overlap.partition sample_outcomes in
  let shares = Testgen.Overlap.mechanism_share cells in
  Alcotest.(check (float 1e-9)) "missing-code" 0.7 (List.assoc "missing-code" shares);
  Alcotest.(check (float 1e-9)) "IVdd" 0.4 (List.assoc "IVdd" shares);
  Alcotest.(check (float 1e-9)) "IDDQ" 0.2 (List.assoc "IDDQ" shares)

(* ------------------------------------------------------------------ *)
(* Test time                                                           *)
(* ------------------------------------------------------------------ *)

let test_time_budget () =
  Alcotest.(check (float 1e-12)) "ramp time"
    (1000.0 *. Adc.Params.period)
    (Testgen.Test_time.missing_code_time ~samples:1000);
  Alcotest.(check (float 1e-12)) "current time" 600e-6
    Testgen.Test_time.current_test_time;
  Alcotest.(check bool) "total around a millisecond" true
    (Testgen.Test_time.total > 1e-4 && Testgen.Test_time.total < 1e-2)


(* ------------------------------------------------------------------ *)
(* Quality                                                             *)
(* ------------------------------------------------------------------ *)

let test_quality_poisson () =
  Alcotest.(check (float 1e-9)) "zero defects" 1.0
    (Testgen.Quality.poisson_yield ~area_mm2:50.0 ~defects_per_cm2:0.0);
  Alcotest.(check (float 1e-6)) "one defect per die on average"
    (exp (-1.0))
    (Testgen.Quality.poisson_yield ~area_mm2:100.0 ~defects_per_cm2:1.0)

let test_quality_williams_brown () =
  (* Classic point: Y = 0.5, T = 0.9 -> DL = 1 - 0.5^0.1 = 6.7 %. *)
  Alcotest.(check (float 1e-4)) "known value" 0.0670
    (Testgen.Quality.defect_level ~yield:0.5 ~coverage:0.9);
  Alcotest.(check (float 1e-9)) "full coverage ships clean" 0.0
    (Testgen.Quality.defect_level ~yield:0.5 ~coverage:1.0);
  Alcotest.(check (float 1e-9)) "no test ships the fallout" 0.5
    (Testgen.Quality.defect_level ~yield:0.5 ~coverage:0.0)

let test_quality_required_coverage_roundtrip () =
  let yield_value = 0.7 in
  let coverage = Testgen.Quality.required_coverage ~yield:yield_value ~target_dpm:100.0 in
  Alcotest.(check bool) "high coverage needed" true (coverage > 0.99);
  Alcotest.(check (float 1.0)) "roundtrip" 100.0
    (Testgen.Quality.dpm ~yield:yield_value ~coverage)

let test_quality_dpm_improves_with_coverage () =
  let before = Testgen.Quality.dpm ~yield:0.8 ~coverage:0.933 in
  let after = Testgen.Quality.dpm ~yield:0.8 ~coverage:0.991 in
  Alcotest.(check bool) "DfT cuts escapes" true (after < before /. 5.0)

let quality_qcheck =
  QCheck.Test.make ~name:"quality: defect level decreases with coverage"
    QCheck.(pair (float_range 0.1 0.99) (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (yield_value, (c1, c2)) ->
      let lo = Float.min c1 c2 and hi = Float.max c1 c2 in
      Testgen.Quality.defect_level ~yield:yield_value ~coverage:hi
      <= Testgen.Quality.defect_level ~yield:yield_value ~coverage:lo +. 1e-12)

let suites =
  [
    ( "testgen.detection",
      [
        Alcotest.test_case "mapping" `Quick test_detection_mapping;
        Alcotest.test_case "currents" `Quick test_detection_currents;
        Alcotest.test_case "propagation agrees" `Quick test_propagation_agrees_with_mapping;
      ] );
    ( "testgen.overlap",
      [
        Alcotest.test_case "shares sum" `Quick test_partition_shares_sum;
        Alcotest.test_case "venn" `Quick test_venn_values;
        Alcotest.test_case "only detected by" `Quick test_only_detected_by;
        Alcotest.test_case "mechanism share" `Quick test_mechanism_share;
      ] );
    ( "testgen.test_time",
      [ Alcotest.test_case "budget" `Quick test_time_budget ] );
    ( "testgen.quality",
      [
        Alcotest.test_case "poisson yield" `Quick test_quality_poisson;
        Alcotest.test_case "williams-brown" `Quick test_quality_williams_brown;
        Alcotest.test_case "required coverage" `Quick test_quality_required_coverage_roundtrip;
        Alcotest.test_case "dft cuts escapes" `Quick test_quality_dpm_improves_with_coverage;
        QCheck_alcotest.to_alcotest quality_qcheck;
      ] );
  ]
