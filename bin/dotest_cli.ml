(* dotest — defect-oriented test methodology for mixed-signal circuits.

   Command-line front end over the dotest libraries: run the per-macro
   test path, the global coverage analysis, and the DfT comparison. *)

open Cmdliner

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let config_of ~defects ~dies ~sigma ~seed ~max_retries ~strict ~failure_budget
    ~inject_failures ~telemetry ~cache ?(deadline = None) ?(checkpoint = None)
    ?(sprinkle_chunk = Defect.Simulate.default_chunk_size) ~solver () =
  Core.Pipeline.Config.(
    default |> with_defects defects |> with_good_space_dies dies
    |> with_sigma sigma |> with_seed seed |> with_max_retries max_retries
    |> with_strict strict |> with_failure_budget failure_budget
    |> with_inject_failures inject_failures |> with_telemetry telemetry
    |> with_cache_handle cache |> with_deadline deadline
    |> with_checkpoint checkpoint |> with_sprinkle_chunk sprinkle_chunk
    |> with_solver solver)

let defaults = Core.Pipeline.Config.default

(* --- shared options ---------------------------------------------------- *)

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log pipeline progress.")

let jobs =
  Arg.(
    value
    & opt int (Util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "DOTEST_JOBS")
        ~doc:
          "Worker domains for the parallel pipeline stages (default: cores \
           minus one, at least 1). Results are identical for any value.")

let defects =
  Arg.(
    value
    & opt int defaults.Core.Pipeline.Config.defects
    & info [ "defects" ] ~docv:"N" ~doc:"Spot defects sprinkled per macro.")

let dies =
  Arg.(
    value
    & opt int defaults.Core.Pipeline.Config.good_space_dies
    & info [ "dies" ] ~docv:"N"
        ~doc:"Monte-Carlo dies compiled into the good-signature space.")

let sigma =
  Arg.(
    value
    & opt float defaults.Core.Pipeline.Config.sigma
    & info [ "sigma" ] ~docv:"K" ~doc:"Acceptance window width in sigma.")

let seed =
  Arg.(
    value
    & opt int defaults.Core.Pipeline.Config.seed
    & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic experiment seed.")

let dft =
  Arg.(
    value & flag
    & info [ "dft" ] ~doc:"Apply both DfT measures before the analysis.")

let sprinkle_chunk =
  Arg.(
    value
    & opt int Defect.Simulate.default_chunk_size
    & info [ "sprinkle-chunk" ] ~docv:"N"
        ~doc:
          "Defect draws per parallel sprinkling chunk. Each chunk owns a \
           split PRNG stream, so results are deterministic for any \
           $(b,--jobs) value at a fixed $(docv) — but a different $(docv) \
           assigns different streams and is a different (equally valid) \
           defect sample. The chunk size therefore participates in the \
           result-cache key.")

let solver_arg =
  let backends =
    List.map
      (fun s -> Circuit.Engine.solver_name s, s)
      Circuit.Engine.all_solvers
  in
  Arg.(
    value
    & opt (enum backends) Circuit.Engine.default_solver
    & info [ "solver" ] ~docv:"BACKEND"
        ~doc:
          "Linear-solver backend: $(b,auto) (default) reuses factorizations \
           across Newton iterations and fault classes with rank-1 updates \
           and picks a banded kernel when the circuit structure warrants \
           it; $(b,rank1) is the same without the banded kernel; \
           $(b,dense) is the historical re-factor-every-iteration \
           reference path for bisecting solver regressions. All backends \
           print identical tables.")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail fast on the first fault-class simulation that stays \
           unresolved after every retry, instead of containing it and \
           reporting bounds.")

let max_retries =
  Arg.(
    value
    & opt int defaults.Core.Pipeline.Config.max_retries
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Escalated re-attempts after a convergence failure before a \
           fault class is recorded as unresolved.")

let failure_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "failure-budget" ] ~docv:"N"
        ~doc:
          "Abort the run once more than $(docv) fault classes end \
           unresolved (default: unlimited).")

let inject_failures =
  Arg.(
    value
    & opt (some float) None
    & info [ "inject-failures" ] ~docv:"FRAC"
        ~doc:
          "Test hook: deterministically force this fraction of fault-class \
           simulations to fail convergence, exercising the containment and \
           retry paths.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.jsonl"
        ~doc:
          "Stream a telemetry trace to $(docv): one JSON object per line \
           (spans with parent nesting and monotonic durations, counter \
           deltas, gauges). Without this flag the null sink is installed \
           and instrumentation costs nothing.")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Aggregate telemetry counters in memory and print their totals \
           after the run. Totals are deterministic: byte-identical for any \
           $(b,--jobs) value.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR" ~env:(Cmd.Env.info "DOTEST_CACHE")
        ~doc:
          "Persist per-macro analysis results under $(docv) and reuse them \
           on later runs whose inputs are unchanged. A warm run prints the \
           same coverage tables, health counters and bounds byte-for-byte \
           as the cold run, for any $(b,--jobs) value.")

let no_cache =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ignore $(b,--cache) and $(b,DOTEST_CACHE); run uncached.")

let cache_handle ~cache_dir ~no_cache =
  if no_cache then None
  else
    Option.map
      (fun dir -> Util.Cache.create ~dir ~version:Core.Codec.version ())
      cache_dir

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for each fault-class simulation attempt; an \
           expired attempt is retried with escalated solver options and a \
           doubled budget, and recorded as unresolved if the ladder runs \
           out. Wall-clock deadlines are machine-dependent: use \
           $(b,--deadline-iterations) when byte-identical results matter.")

let deadline_iterations =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-iterations" ] ~docv:"N"
        ~doc:
          "Newton-iteration budget for each fault-class simulation attempt \
           (doubled per escalated retry). A pure function of the \
           computation, so results stay byte-identical for any $(b,--jobs) \
           value and across machines.")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Restore fault-class outcomes checkpointed by an earlier \
           interrupted run (requires $(b,--cache)) instead of re-simulating \
           them. A resumed run prints the same coverage tables, health \
           counters and bounds byte-for-byte as an uninterrupted one.")

let no_checkpoint =
  Arg.(
    value & flag
    & info [ "no-checkpoint" ]
        ~doc:
          "Disable incremental checkpointing of fault-class outcomes \
           (checkpointing is on by default whenever $(b,--cache) is set).")

let deadline_of ~deadline ~deadline_iterations =
  match deadline, deadline_iterations with
  | None, None -> None
  | wall_seconds, max_iterations ->
    Some { Util.Watchdog.wall_seconds; max_iterations }

(* Checkpointing rides the result cache, so it is on exactly when a cache
   is; --resume without one cannot restore anything and says so. *)
let checkpoint_of ~cache ~resume ~no_checkpoint =
  match cache with
  | None ->
    if resume then
      Format.eprintf
        "dotest: --resume requires --cache; running from scratch@.";
    None
  | Some _ when no_checkpoint -> None
  | Some _ -> Some (Core.Checkpoint.create ~resume ())

let format_arg =
  Arg.(
    value
    & opt (enum [ "text", `Text; "json", `Json; "csv", `Csv ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Report rendering: $(b,text) (aligned tables, default), \
              $(b,json) (array of row objects) or $(b,csv) (RFC 4180).")

let print_table ~format title table =
  Format.printf "@.== %s ==@.%s@." title (Core.Report.render ~format table)

(* Build the run's sink from --trace/--metrics; [f] gets the sink (to put
   in the config) and the in-memory aggregate to print afterwards. The
   trace channel is also closed via [at_exit] so a run that dies through
   [handle_failures]'s [exit 3] still flushes its buffered events. *)
let with_telemetry ~trace ~metrics f =
  let memory = if metrics then Some (Util.Telemetry.in_memory ()) else None in
  let channel = Option.map open_out trace in
  Option.iter (fun oc -> at_exit (fun () -> close_out_noerr oc)) channel;
  let sink =
    Util.Telemetry.multi
      ((match memory with
       | Some m -> [ Util.Telemetry.memory_sink m ]
       | None -> [])
      @
      match channel with
      | Some oc -> [ Util.Telemetry.jsonl oc ]
      | None -> [])
  in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out_noerr channel)
    (fun () -> f sink memory)

let print_cache_stats ~format cache =
  Option.iter
    (fun c ->
      print_table ~format "Result cache"
        (Core.Report.cache_stats (Util.Cache.stats c)))
    cache

let print_metrics ?elapsed ~format memory =
  Option.iter
    (fun m ->
      print_table ~format "Telemetry metrics"
        (Core.Report.metrics ?elapsed (Util.Telemetry.metrics m)))
    memory

(* Wall-clock duration of the analysis proper, for the derived "(wall)"
   throughput rows of the metrics table. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  result, Unix.gettimeofday () -. t0

(* Pool failures arrive wrapped (possibly twice: macro fan-out around the
   per-class fan-out); report the innermost cause, which carries the
   failing fault-class index. *)
let rec root_cause = function
  | Util.Pool.Worker_failure (_, e) -> root_cause e
  | e -> e

(* Exit 4 is the "interrupted, resumable" status: distinct from failure
   (3) so wrappers can tell "re-run with --resume" from "give up". *)
let interrupted reason =
  Format.eprintf
    "dotest: interrupted (%s); completed work is checkpointed — re-run with \
     --resume to continue@."
    reason;
  exit 4

let handle_failures f =
  try f () with
  | Util.Watchdog.Interrupted reason -> interrupted reason
  | ( Util.Pool.Worker_failure _ | Util.Resilience.Budget_exhausted _
    | Macro.Evaluate.Simulation_failed _ ) as e ->
    (match root_cause e with
    | Util.Watchdog.Interrupted reason -> interrupted reason
    | cause ->
      Format.eprintf "dotest: %s@." (Printexc.to_string cause);
      exit 3)

let print_health ~format analyses =
  let health = Core.Pipeline.run_health analyses in
  print_table ~format "Run health" (Core.Report.run_health health);
  if Logs.level () = Some Logs.Info then
    List.iter
      (fun (m : Core.Pipeline.macro_health) ->
        List.iter
          (fun (stage, seconds) ->
            Logs.info (fun f ->
                f "[%s] stage %-13s %.3f s" m.macro_name stage seconds))
          m.stage_seconds)
      health.per_macro

(* --- commands ----------------------------------------------------------- *)

(* Shared driver for the single-macro commands (comparator, scaled): run
   one macro through the pipeline and print the per-macro tables. *)
let run_single_macro ~verbose ~jobs ~defects ~dies ~sigma ~seed ~strict
    ~max_retries ~failure_budget ~inject_failures ~trace ~metrics ~cache_dir
    ~no_cache ~deadline ~deadline_iterations ~resume ~no_checkpoint
    ~sprinkle_chunk ~solver ~format macro =
  setup_logging verbose;
  Util.Pool.set_jobs jobs;
  Util.Watchdog.install_signal_handlers ();
  with_telemetry ~trace ~metrics @@ fun sink memory ->
  let cache = cache_handle ~cache_dir ~no_cache in
  let checkpoint = checkpoint_of ~cache ~resume ~no_checkpoint in
  let config =
    config_of ~defects ~dies ~sigma ~seed ~max_retries ~strict ~failure_budget
      ~inject_failures ~telemetry:sink ~cache
      ~deadline:(deadline_of ~deadline ~deadline_iterations)
      ~checkpoint ~sprinkle_chunk ~solver ()
  in
  let analysis, elapsed =
    timed (fun () ->
        handle_failures (fun () -> Core.Pipeline.analyze config macro))
  in
  print_table ~format "Table 1: catastrophic faults and fault classes"
    (Core.Report.table1 analysis);
  print_table ~format "Table 2: voltage fault signatures"
    (Core.Report.table2 analysis);
  print_table ~format "Table 3: current fault signatures"
    (Core.Report.table3 analysis);
  print_table ~format "Fig. 3: detectability of catastrophic faults"
    (Core.Report.figure3 analysis);
  print_health ~format [ analysis ];
  print_cache_stats ~format cache;
  print_table ~format "Run survival" (Core.Report.run_survival config);
  print_metrics ~elapsed ~format memory

let comparator_cmd =
  let run verbose jobs defects dies sigma seed dft strict max_retries
      failure_budget inject_failures trace metrics cache_dir no_cache deadline
      deadline_iterations resume no_checkpoint sprinkle_chunk solver format =
    let options =
      if dft then Adc.Comparator.dft_options else Adc.Comparator.default_options
    in
    run_single_macro ~verbose ~jobs ~defects ~dies ~sigma ~seed ~strict
      ~max_retries ~failure_budget ~inject_failures ~trace ~metrics ~cache_dir
      ~no_cache ~deadline ~deadline_iterations ~resume ~no_checkpoint
      ~sprinkle_chunk ~solver ~format
      (Adc.Comparator.macro options)
  in
  Cmd.v
    (Cmd.info "comparator"
       ~doc:"Run the defect-oriented test path for the comparator macro.")
    Term.(
      const run $ verbose $ jobs $ defects $ dies $ sigma $ seed $ dft $ strict
      $ max_retries $ failure_budget $ inject_failures $ trace $ metrics_flag
      $ cache_dir $ no_cache $ deadline_arg $ deadline_iterations $ resume
      $ no_checkpoint $ sprinkle_chunk $ solver_arg $ format_arg)

let scaled_cmd =
  let run verbose jobs bits defects dies sigma seed strict max_retries
      failure_budget inject_failures trace metrics cache_dir no_cache deadline
      deadline_iterations resume no_checkpoint sprinkle_chunk solver format =
    run_single_macro ~verbose ~jobs ~defects ~dies ~sigma ~seed ~strict
      ~max_retries ~failure_budget ~inject_failures ~trace ~metrics ~cache_dir
      ~no_cache ~deadline ~deadline_iterations ~resume ~no_checkpoint
      ~sprinkle_chunk ~solver ~format
      (Adc.Scaled.macro ~bits ())
  in
  let bits =
    Arg.(
      value & opt int 7
      & info [ "bits" ] ~docv:"B"
          ~doc:
            "Converter resolution: the analog core has $(b,2^B) ladder \
             segments, about $(b,2^B + 3) circuit unknowns (2..14). Sizes \
             past ~10 bits are where the dense reference backend's n³ \
             factorization cost separates from $(b,--solver auto).")
  in
  Cmd.v
    (Cmd.info "scaled"
       ~doc:
         "Run the defect-oriented test path for the generated scalable-N \
          flash-ADC analog core: a 2^bits reference ladder with one readout \
          transistor per tap. The workload for solver scaling studies — \
          same pipeline, same determinism contract, adjustable circuit \
          size.")
    Term.(
      const run $ verbose $ jobs $ bits $ defects $ dies $ sigma $ seed
      $ strict $ max_retries $ failure_budget $ inject_failures $ trace
      $ metrics_flag $ cache_dir $ no_cache $ deadline_arg
      $ deadline_iterations $ resume $ no_checkpoint $ sprinkle_chunk
      $ solver_arg $ format_arg)

let global_cmd =
  let run verbose jobs defects dies sigma seed dft strict max_retries
      failure_budget inject_failures trace metrics cache_dir no_cache deadline
      deadline_iterations resume no_checkpoint sprinkle_chunk solver format =
    setup_logging verbose;
    Util.Pool.set_jobs jobs;
    Util.Watchdog.install_signal_handlers ();
    with_telemetry ~trace ~metrics @@ fun sink memory ->
    let cache = cache_handle ~cache_dir ~no_cache in
    let checkpoint = checkpoint_of ~cache ~resume ~no_checkpoint in
    let config =
      config_of ~defects ~dies ~sigma ~seed ~max_retries ~strict
        ~failure_budget ~inject_failures ~telemetry:sink ~cache
        ~deadline:(deadline_of ~deadline ~deadline_iterations)
        ~checkpoint ~sprinkle_chunk ~solver ()
    in
    let measures = if dft then Dft.Measures.all_measures else [] in
    let macros = Dft.Measures.macro_set ~measures in
    let analyses, elapsed =
      timed (fun () ->
          handle_failures (fun () -> Core.Pipeline.analyze_all config macros))
    in
    let g = Core.Global.combine analyses in
    print_table ~format
      (if dft then "Fig. 5: global detectability after DfT"
       else "Fig. 4: global detectability")
      (Core.Report.figure4 g);
    print_table ~format "Per-macro current detectability"
      (Core.Report.macro_current g);
    print_table ~format "Summary" (Core.Report.summary g);
    print_health ~format analyses;
    print_table ~format "Coverage bounds" (Core.Report.coverage_bounds g);
    print_cache_stats ~format cache;
    print_table ~format "Run survival" (Core.Report.run_survival config);
    print_metrics ~elapsed ~format memory
  in
  Cmd.v
    (Cmd.info "global"
       ~doc:"Run all five macros and the global scaling step.")
    Term.(
      const run $ verbose $ jobs $ defects $ dies $ sigma $ seed $ dft $ strict
      $ max_retries $ failure_budget $ inject_failures $ trace $ metrics_flag
      $ cache_dir $ no_cache $ deadline_arg $ deadline_iterations $ resume
      $ no_checkpoint $ sprinkle_chunk $ solver_arg $ format_arg)

let dft_cmd =
  let run verbose jobs defects dies sigma seed trace metrics cache_dir no_cache
      solver format =
    setup_logging verbose;
    Util.Pool.set_jobs jobs;
    Util.Watchdog.install_signal_handlers ();
    with_telemetry ~trace ~metrics @@ fun sink memory ->
    let cache = cache_handle ~cache_dir ~no_cache in
    let config =
      config_of ~defects ~dies ~sigma ~seed
        ~max_retries:defaults.Core.Pipeline.Config.max_retries
        ~strict:false ~failure_budget:None ~inject_failures:None
        ~telemetry:sink ~cache
        ~checkpoint:(checkpoint_of ~cache ~resume:false ~no_checkpoint:false)
        ~solver ()
    in
    let original, improved =
      handle_failures (fun () -> Core.Global.compare_coverage ~config ())
    in
    print_table ~format "Fig. 4: before DfT" (Core.Report.figure4 original);
    print_table ~format "Fig. 5: after DfT" (Core.Report.figure4 improved);
    Format.printf "@.DfT measures applied:@.";
    List.iter
      (fun m -> Format.printf "  - %s@." (Dft.Measures.describe m))
      Dft.Measures.all_measures;
    Format.printf "@.General mixed-signal DfT guidelines:@.";
    List.iter (fun g -> Format.printf "  * %s@." g) Dft.Measures.guidelines;
    print_cache_stats ~format cache;
    print_metrics ~format memory
  in
  Cmd.v
    (Cmd.info "dft" ~doc:"Compare coverage before and after the DfT measures.")
    Term.(
      const run $ verbose $ jobs $ defects $ dies $ sigma $ seed $ trace
      $ metrics_flag $ cache_dir $ no_cache $ solver_arg $ format_arg)

(* --- the analysis service ----------------------------------------------- *)

let listen_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve on $(docv): $(b,unix:PATH) (or a bare socket path) for a \
           Unix-domain socket, $(b,HOST:PORT) for TCP. The protocol is \
           newline-delimited JSON, one request and one response per line \
           (see the dotest-api/1 schema).")

let connect_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:"Address of a running $(b,dotest serve) (same syntax as its \
              $(b,--listen)).")

let max_pending =
  Arg.(
    value & opt int 16
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Admission-control bound: distinct analyses queued or running at \
           once. Beyond it the service sheds load with an $(b,overloaded) \
           error carrying a retry_after hint. Requests identical to one \
           already in flight always attach to it (coalescing) and do not \
           count against the bound.")

let request_id =
  Arg.(
    value
    & opt (some string) None
    & info [ "id" ] ~docv:"ID"
        ~doc:"Correlation id echoed verbatim in the response.")

let address_of ~addr =
  match Core.Service.address_of_string addr with
  | Ok address -> address
  | Error msg ->
    Format.eprintf "dotest: %s@." msg;
    exit 2

let serve_cmd =
  let run verbose jobs listen max_pending failure_budget trace metrics
      cache_dir no_cache =
    setup_logging verbose;
    with_telemetry ~trace ~metrics @@ fun sink memory ->
    let address = address_of ~addr:listen in
    let cache = cache_handle ~cache_dir ~no_cache in
    let service =
      Core.Service.create ?cache ~jobs ~telemetry:sink ?failure_budget
        ~max_pending ()
    in
    (* First signal: drain — finish queued and running analyses, refuse
       new ones, exit 0. Second signal: escalate to the cooperative
       watchdog, which aborts in-flight pipeline work (checkpoints still
       flush on the way out). The handlers only record: they run at
       safepoints on whatever thread is executing, so taking the
       service mutex here could self-deadlock. [poll], called from the
       accept loop and throughout the drain, applies the state
       changes. *)
    let signal_count = Atomic.make 0 in
    let last_signal = Atomic.make Sys.sigterm in
    let graceful signal =
      Atomic.set last_signal signal;
      Atomic.incr signal_count
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
    Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
    let handled = ref 0 in
    let poll () =
      let n = Atomic.get signal_count in
      if n > !handled then begin
        handled := n;
        if n = 1 then Core.Service.initiate_shutdown service
        else
          Util.Watchdog.request_shutdown
            ~reason:
              (if Atomic.get last_signal = Sys.sigint then "second SIGINT"
               else "second SIGTERM")
            ()
      end
    in
    let on_ready bound =
      Format.eprintf "dotest: serving on %s@."
        (Core.Service.address_to_string bound)
    in
    (try Core.Service.serve ~on_ready ~poll service address with
    | Failure msg ->
      Format.eprintf "dotest: %s@." msg;
      exit 2
    | Unix.Unix_error (e, _, _) ->
      Format.eprintf "dotest: cannot serve on %s: %s@." listen
        (Unix.error_message e);
      exit 2);
    let s = Core.Service.stats service in
    Format.eprintf
      "dotest: drained; %d submitted, %d completed, %d failed, %d shed, %d \
       coalesced, cache %d/%d hits/misses@."
      s.Core.Service.submitted s.Core.Service.completed s.Core.Service.failed
      s.Core.Service.shed s.Core.Service.coalesced s.Core.Service.cache_hits
      s.Core.Service.cache_misses;
    print_cache_stats ~format:`Text cache;
    print_metrics ~format:`Text memory
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve analyses over a socket: a shared result cache, domain pool, \
          telemetry sink and failure budget behind the versioned \
          dotest-api/1 request API. Duplicate in-flight requests are \
          computed once; SIGTERM drains and exits 0.")
    Term.(
      const run $ verbose $ jobs $ listen_arg $ max_pending $ failure_budget
      $ trace $ metrics_flag $ cache_dir $ no_cache)

let request_cmd =
  let run connect target dft defects dies sigma seed max_retries strict
      inject_failures deadline deadline_iterations solver format id =
    let address = address_of ~addr:connect in
    let target =
      match Core.Request.target_of_name ~name:target ~dft with
      | Ok target -> target
      | Error msg ->
        Format.eprintf "dotest: %s@." msg;
        exit 2
    in
    let request =
      Core.Request.(
        default |> with_id id |> with_target target |> with_defects defects
        |> with_good_space_dies dies |> with_sigma sigma |> with_seed seed
        |> with_max_retries max_retries |> with_strict strict
        |> with_inject_failures inject_failures
        |> with_deadline (deadline_of ~deadline ~deadline_iterations)
        |> with_solver solver |> with_format format)
    in
    match Core.Service.call address request with
    | Ok reply ->
      List.iter
        (fun { Core.Request.title; body } ->
          Format.printf "@.== %s ==@.%s@." title body)
        reply.Core.Request.tables
    | Error e ->
      Format.eprintf "dotest: %s: %s%s@."
        (Core.Request.error_code_name e.Core.Request.code)
        e.Core.Request.message
        (match e.Core.Request.retry_after with
        | Some seconds -> Printf.sprintf " (retry after %g s)" seconds
        | None -> "");
      exit (match e.Core.Request.code with Core.Request.Shutting_down -> 4 | _ -> 3)
  in
  let target_pos =
    Arg.(
      required
      & pos 0 (some (enum [ "comparator", "comparator"; "global", "global" ])) None
      & info [] ~docv:"TARGET"
          ~doc:"What to analyse: $(b,comparator) or $(b,global).")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one analysis request to a running $(b,dotest serve) and print \
          the reply tables exactly as the equivalent local command would.")
    Term.(
      const run $ connect_arg $ target_pos $ dft $ defects $ dies $ sigma
      $ seed $ max_retries $ strict $ inject_failures $ deadline_arg
      $ deadline_iterations $ solver_arg $ format_arg $ request_id)

let ramp_cmd =
  let run samples =
    let prng = Util.Prng.create 7 in
    let report tag adc =
      let missing = Adc.Flash_adc.missing_codes adc prng ~samples in
      Format.printf "%-28s missing codes: %s@." tag
        (match missing with
        | [] -> "none"
        | codes -> String.concat ", " (List.map string_of_int codes))
    in
    report "fault-free" Adc.Flash_adc.ideal;
    report "comparator 100 stuck high"
      (Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
         Adc.Flash_adc.Stuck_high);
    report "comparator 100 offset 12mV"
      (Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
         (Adc.Flash_adc.Functional 0.012));
    report "comparator 100 erratic"
      (Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
         Adc.Flash_adc.Erratic);
    Format.printf "@.%a@." Testgen.Test_time.pp_budget ()
  in
  let samples =
    Arg.(
      value
      & opt int Testgen.Test_time.missing_code_samples
      & info [ "samples" ] ~docv:"N" ~doc:"Conversions in the ramp test.")
  in
  Cmd.v
    (Cmd.info "ramp"
       ~doc:"Demonstrate the missing-code test on the behavioural converter.")
    Term.(const run $ samples)

let () =
  let doc = "defect-oriented test methodology for complex mixed-signal circuits" in
  let info = Cmd.info "dotest" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            comparator_cmd;
            scaled_cmd;
            global_cmd;
            dft_cmd;
            serve_cmd;
            request_cmd;
            ramp_cmd;
          ]))
