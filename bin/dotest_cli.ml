(* dotest — defect-oriented test methodology for mixed-signal circuits.

   Command-line front end over the dotest libraries: run the per-macro
   test path, the global coverage analysis, and the DfT comparison. *)

open Cmdliner

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let config_of ~defects ~dies ~sigma ~seed ~max_retries ~strict ~failure_budget
    ~inject_failures =
  {
    Core.Pipeline.default_config with
    defects;
    good_space_dies = dies;
    sigma;
    seed;
    max_retries;
    strict;
    failure_budget;
    inject_failures;
  }

(* --- shared options ---------------------------------------------------- *)

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log pipeline progress.")

let jobs =
  Arg.(
    value
    & opt int (Util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "DOTEST_JOBS")
        ~doc:
          "Worker domains for the parallel pipeline stages (default: cores \
           minus one, at least 1). Results are identical for any value.")

let defects =
  Arg.(
    value
    & opt int Core.Pipeline.default_config.Core.Pipeline.defects
    & info [ "defects" ] ~docv:"N" ~doc:"Spot defects sprinkled per macro.")

let dies =
  Arg.(
    value
    & opt int Core.Pipeline.default_config.Core.Pipeline.good_space_dies
    & info [ "dies" ] ~docv:"N"
        ~doc:"Monte-Carlo dies compiled into the good-signature space.")

let sigma =
  Arg.(
    value
    & opt float Core.Pipeline.default_config.Core.Pipeline.sigma
    & info [ "sigma" ] ~docv:"K" ~doc:"Acceptance window width in sigma.")

let seed =
  Arg.(
    value
    & opt int Core.Pipeline.default_config.Core.Pipeline.seed
    & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic experiment seed.")

let dft =
  Arg.(
    value & flag
    & info [ "dft" ] ~doc:"Apply both DfT measures before the analysis.")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail fast on the first fault-class simulation that stays \
           unresolved after every retry, instead of containing it and \
           reporting bounds.")

let max_retries =
  Arg.(
    value
    & opt int Core.Pipeline.default_config.Core.Pipeline.max_retries
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Escalated re-attempts after a convergence failure before a \
           fault class is recorded as unresolved.")

let failure_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "failure-budget" ] ~docv:"N"
        ~doc:
          "Abort the run once more than $(docv) fault classes end \
           unresolved (default: unlimited).")

let inject_failures =
  Arg.(
    value
    & opt (some float) None
    & info [ "inject-failures" ] ~docv:"FRAC"
        ~doc:
          "Test hook: deterministically force this fraction of fault-class \
           simulations to fail convergence, exercising the containment and \
           retry paths.")

let print_table title table =
  Format.printf "@.== %s ==@.%s@." title (Util.Table.render table)

(* Pool failures arrive wrapped (possibly twice: macro fan-out around the
   per-class fan-out); report the innermost cause, which carries the
   failing fault-class index. *)
let rec root_cause = function
  | Util.Pool.Worker_failure (_, e) -> root_cause e
  | e -> e

let handle_failures f =
  try f ()
  with
  | ( Util.Pool.Worker_failure _ | Util.Resilience.Budget_exhausted _
    | Macro.Evaluate.Simulation_failed _ ) as e ->
    Format.eprintf "dotest: %s@." (Printexc.to_string (root_cause e));
    exit 3

let print_health analyses =
  let health = Core.Pipeline.run_health analyses in
  print_table "Run health" (Core.Report.run_health health);
  if Logs.level () = Some Logs.Info then
    List.iter
      (fun (m : Core.Pipeline.macro_health) ->
        List.iter
          (fun (stage, seconds) ->
            Logs.info (fun f ->
                f "[%s] stage %-13s %.3f s" m.macro_name stage seconds))
          m.stage_seconds)
      health.per_macro

(* --- commands ----------------------------------------------------------- *)

let comparator_cmd =
  let run verbose jobs defects dies sigma seed dft strict max_retries
      failure_budget inject_failures =
    setup_logging verbose;
    Util.Pool.set_jobs jobs;
    let config =
      config_of ~defects ~dies ~sigma ~seed ~max_retries ~strict
        ~failure_budget ~inject_failures
    in
    let options =
      if dft then Adc.Comparator.dft_options else Adc.Comparator.default_options
    in
    let analysis =
      handle_failures (fun () ->
          Core.Pipeline.analyze config (Adc.Comparator.macro options))
    in
    print_table "Table 1: catastrophic faults and fault classes"
      (Core.Report.table1 analysis);
    print_table "Table 2: voltage fault signatures" (Core.Report.table2 analysis);
    print_table "Table 3: current fault signatures" (Core.Report.table3 analysis);
    print_table "Fig. 3: detectability of catastrophic faults"
      (Core.Report.figure3 analysis);
    print_health [ analysis ]
  in
  Cmd.v
    (Cmd.info "comparator"
       ~doc:"Run the defect-oriented test path for the comparator macro.")
    Term.(
      const run $ verbose $ jobs $ defects $ dies $ sigma $ seed $ dft $ strict
      $ max_retries $ failure_budget $ inject_failures)

let global_cmd =
  let run verbose jobs defects dies sigma seed dft strict max_retries
      failure_budget inject_failures =
    setup_logging verbose;
    Util.Pool.set_jobs jobs;
    let config =
      config_of ~defects ~dies ~sigma ~seed ~max_retries ~strict
        ~failure_budget ~inject_failures
    in
    let measures = if dft then Dft.Measures.all_measures else [] in
    let macros = Dft.Measures.macro_set ~measures in
    let analyses =
      handle_failures (fun () -> Core.Pipeline.analyze_all config macros)
    in
    let g = Core.Global.combine analyses in
    print_table
      (if dft then "Fig. 5: global detectability after DfT"
       else "Fig. 4: global detectability")
      (Core.Report.figure4 g);
    print_table "Per-macro current detectability" (Core.Report.macro_current g);
    print_table "Summary" (Core.Report.summary g);
    print_health analyses;
    print_table "Coverage bounds" (Core.Report.coverage_bounds g)
  in
  Cmd.v
    (Cmd.info "global"
       ~doc:"Run all five macros and the global scaling step.")
    Term.(
      const run $ verbose $ jobs $ defects $ dies $ sigma $ seed $ dft $ strict
      $ max_retries $ failure_budget $ inject_failures)

let dft_cmd =
  let run verbose jobs defects dies sigma seed =
    setup_logging verbose;
    Util.Pool.set_jobs jobs;
    let config =
      config_of ~defects ~dies ~sigma ~seed
        ~max_retries:Core.Pipeline.default_config.Core.Pipeline.max_retries
        ~strict:false ~failure_budget:None ~inject_failures:None
    in
    let original, improved = Dft.Measures.compare_coverage ~config () in
    print_table "Fig. 4: before DfT" (Core.Report.figure4 original);
    print_table "Fig. 5: after DfT" (Core.Report.figure4 improved);
    Format.printf "@.DfT measures applied:@.";
    List.iter
      (fun m -> Format.printf "  - %s@." (Dft.Measures.describe m))
      Dft.Measures.all_measures;
    Format.printf "@.General mixed-signal DfT guidelines:@.";
    List.iter (fun g -> Format.printf "  * %s@." g) Dft.Measures.guidelines
  in
  Cmd.v
    (Cmd.info "dft" ~doc:"Compare coverage before and after the DfT measures.")
    Term.(const run $ verbose $ jobs $ defects $ dies $ sigma $ seed)

let ramp_cmd =
  let run samples =
    let prng = Util.Prng.create 7 in
    let report tag adc =
      let missing = Adc.Flash_adc.missing_codes adc prng ~samples in
      Format.printf "%-28s missing codes: %s@." tag
        (match missing with
        | [] -> "none"
        | codes -> String.concat ", " (List.map string_of_int codes))
    in
    report "fault-free" Adc.Flash_adc.ideal;
    report "comparator 100 stuck high"
      (Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
         Adc.Flash_adc.Stuck_high);
    report "comparator 100 offset 12mV"
      (Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
         (Adc.Flash_adc.Functional 0.012));
    report "comparator 100 erratic"
      (Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
         Adc.Flash_adc.Erratic);
    Format.printf "@.%a@." Testgen.Test_time.pp_budget ()
  in
  let samples =
    Arg.(
      value
      & opt int Testgen.Test_time.missing_code_samples
      & info [ "samples" ] ~docv:"N" ~doc:"Conversions in the ramp test.")
  in
  Cmd.v
    (Cmd.info "ramp"
       ~doc:"Demonstrate the missing-code test on the behavioural converter.")
    Term.(const run $ samples)

let () =
  let doc = "defect-oriented test methodology for complex mixed-signal circuits" in
  let info = Cmd.info "dotest" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ comparator_cmd; global_cmd; dft_cmd; ramp_cmd ]))
