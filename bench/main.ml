(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, prints paper-reported values next to measured ones,
   runs the ablation studies listed in DESIGN.md §6, and (with --timings)
   times the computational kernels with bechamel.

   Flags:
     --quick         smaller defect counts (fast smoke run)
     --timings       include bechamel micro-benchmarks + parallel scaling
     --no-ablations  skip the ablation sweeps
     --jobs N        worker domains (default: cores-1, min 1; DOTEST_JOBS)
     --json          emit per-stage timings of one macro pipeline as one
                     JSON object on stdout and exit (machine-readable
                     perf trajectory; nothing else is printed)
     --macro M       macro for --json: comparator (default) or scaled
     --bits N        size of the scaled macro: 2^N ladder taps (default 8)
     --scaling       emit the PR-10 scaling study as one JSON object:
                     per-N raw-solve table (dense vs rank1 vs auto vs
                     auto+shared) plus pipeline evaluate-stage A/Bs on
                     the n=37 comparator (quick) and the large-N scaled
                     ADC; nothing else is printed
     --serve-stress  stand up an in-process dotest service on a Unix
                     socket, hammer it with concurrent clients mixing
                     warm and cold request keys, and emit one JSON object
                     (schema dotest-bench/7) with latency percentiles,
                     cache hit rate and shed/coalesced counts
     --cache DIR     persist per-macro results under DIR; a warm --json
                     run reports cache "warm" with nonzero hits
     --deadline S    wall-clock budget per fault-class simulation attempt
     --deadline-iterations N
                     Newton-iteration budget per attempt (deterministic)
     --solver B      linear-solver backend: dense | rank1 | auto (default
                     auto); all backends produce identical tables          *)

let quick = Array.exists (( = ) "--quick") Sys.argv
let serve_stress = Array.exists (( = ) "--serve-stress") Sys.argv
let timings = Array.exists (( = ) "--timings") Sys.argv
let no_ablations = Array.exists (( = ) "--no-ablations") Sys.argv
let json_mode = Array.exists (( = ) "--json") Sys.argv
let scaling_mode = Array.exists (( = ) "--scaling") Sys.argv

let jobs =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then Util.Pool.default_jobs ()
    else if Sys.argv.(i) = "--jobs" then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n > 0 -> n
      | Some _ | None -> failwith "--jobs expects a positive integer"
    else scan (i + 1)
  in
  scan 1

let cache =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--cache" then
      Some (Util.Cache.create ~dir:Sys.argv.(i + 1) ~version:Core.Codec.version ())
    else scan (i + 1)
  in
  scan 1

let flag_value name parse =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then
      match parse Sys.argv.(i + 1) with
      | Some v -> Some v
      | None -> failwith (name ^ " expects a number")
    else scan (i + 1)
  in
  scan 1

let deadline =
  match
    ( flag_value "--deadline" float_of_string_opt,
      flag_value "--deadline-iterations" int_of_string_opt )
  with
  | None, None -> None
  | wall_seconds, max_iterations ->
    Some { Util.Watchdog.wall_seconds; max_iterations }

let solver =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then Circuit.Engine.default_solver
    else if Sys.argv.(i) = "--solver" then
      match Circuit.Engine.solver_of_string Sys.argv.(i + 1) with
      | Some s -> s
      | None -> failwith "--solver expects dense, rank1 or auto"
    else scan (i + 1)
  in
  scan 1

let bench_bits =
  match flag_value "--bits" int_of_string_opt with
  | Some b when b >= 2 && b <= 14 -> b
  | Some _ -> failwith "--bits expects an integer in 2..14"
  (* --scaling targets the regime where per-iteration factorization
     dominates per-class fixed costs; below ~1000 unknowns the dense
     backend hides behind warm-started two-iteration Newton runs. Full
     mode goes one size further out, where the n³ term is unambiguous. *)
  | None -> if scaling_mode then (if quick then 10 else 11) else 8

let bench_macro =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then `Comparator
    else if Sys.argv.(i) = "--macro" then
      match Sys.argv.(i + 1) with
      | "comparator" -> `Comparator
      | "scaled" -> `Scaled
      | _ -> failwith "--macro expects comparator or scaled"
    else scan (i + 1)
  in
  scan 1

let () = Util.Pool.set_jobs jobs

let config =
  (if quick then
     Core.Pipeline.Config.(
       default |> with_defects 5_000 |> with_good_space_dies 16)
   else Core.Pipeline.Config.default)
  |> Core.Pipeline.Config.with_cache_handle cache
  |> Core.Pipeline.Config.with_deadline deadline
  |> Core.Pipeline.Config.with_solver solver

let banner title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let note fmt = Format.printf fmt

let print_table t = Format.printf "%s@." (Util.Table.render t)

let seconds f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  result, Unix.gettimeofday () -. t0

(* ------------------------------------------------------------------ *)
(* T1-T3, F3: the comparator macro                                      *)
(* ------------------------------------------------------------------ *)

let comparator_experiments () =
  banner "Experiment T1/T2/T3/F3: comparator test path";
  (* Table 1 magnitudes: the paper first sprinkled 25 000 defects for the
     class list and later 10 000 000 for statistically significant
     magnitudes; we scale the same way (more spots, same classes). *)
  let t1_config =
    if quick then config
    else Core.Pipeline.Config.with_defects 200_000 config
  in
  let analysis, dt =
    seconds (fun () ->
        Core.Pipeline.analyze t1_config
          (Adc.Comparator.macro Adc.Comparator.default_options))
  in
  note "(%d defects sprinkled, %d effective, %.1f s)@."
    analysis.Core.Pipeline.sprinkled analysis.Core.Pipeline.effective dt;
  note
    "@.Table 1 — paper: shorts >95%% of faults; opens a tiny fault share but a visible class share@.";
  print_table (Core.Report.table1 analysis);
  note "@.Table 2 — paper: stuck-at dominates; clock-value grows for non-catastrophic@.";
  print_table (Core.Report.table2 analysis);
  note "@.Table 3 — paper: IDDQ detects 24.2%%/25.6%%; currents overlap@.";
  print_table (Core.Report.table3 analysis);
  note "@.Fig. 3 — paper: missing-code 66.2%%, 26.6%% current-only, 10.0%% IDDQ-only@.";
  print_table (Core.Report.figure3 analysis)

(* ------------------------------------------------------------------ *)
(* F4, F5, X1, X2: global and DfT                                       *)
(* ------------------------------------------------------------------ *)

let global_experiments () =
  banner "Experiment F4/F5/X1/X2: global coverage and DfT";
  let run macros =
    Core.Global.combine (Core.Pipeline.analyze_all config macros)
  in
  let original, dt_original =
    seconds (fun () -> run (Dft.Measures.original ()))
  in
  note "(original macro set analysed in %.1f s)@." dt_original;
  note "@.Fig. 4 — paper: coverage 93.3%% cat / 93.1%% non-cat; 32.5%% current-only@.";
  print_table (Core.Report.figure4 original);
  note "@.X1 per-macro current detectability — paper: clock generator 93.8%%, ladder 99.8%%@.";
  print_table (Core.Report.macro_current original);
  let improved, dt_improved =
    seconds (fun () -> run (Dft.Measures.improved ()))
  in
  note "@.(DfT macro set analysed in %.1f s)@." dt_improved;
  note "@.Fig. 5 — paper: coverage rises to 99.1%%; voltage-only shrinks to 5.8%%@.";
  print_table (Core.Report.figure4 improved);
  note "@.X2 headline scalars — paper: 10.0%%/11.0%% IDDQ-only; millisecond-scale test time@.";
  print_table (Core.Report.summary original);
  let cat = Core.Global.partition original Fault.Types.Catastrophic in
  let ncat = Core.Global.partition original Fault.Types.Non_catastrophic in
  note
    "IDDQ-only: catastrophic %.1f%%, non-catastrophic %.1f%% (paper: 10.0%%/11.0%%)@."
    (100. *. Testgen.Overlap.only_detected_by cat ~mechanism:"IDDQ")
    (100. *. Testgen.Overlap.only_detected_by ncat ~mechanism:"IDDQ")

(* ------------------------------------------------------------------ *)
(* X3: quality impact, X4: the amplifier baseline study                 *)
(* ------------------------------------------------------------------ *)

let quality_experiment () =
  banner "Experiment X3: outgoing quality (Williams-Brown)";
  note
    "The paper's motivation: escapes ship as field failures. Translating@.\
     the measured coverages into defect levels at an 80%% process yield:@.";
  let t =
    Util.Table.create
      ~columns:
        [
          "test strategy", Util.Table.Left;
          "coverage", Util.Table.Right;
          "defective parts per million", Util.Table.Right;
        ]
  in
  let row label coverage =
    Util.Table.add_row t
      [
        label;
        Util.Table.cell_pct (100. *. coverage);
        Printf.sprintf "%.0f" (Testgen.Quality.dpm ~yield:0.80 ~coverage);
      ]
  in
  row "no test" 0.0;
  row "simple tests (paper: 93.3%)" 0.933;
  row "simple tests + DfT (paper: 99.1%)" 0.991;
  print_table t;
  note "coverage needed for 100 DPM at this yield: %.2f%%@."
    (100. *. Testgen.Quality.required_coverage ~yield:0.80 ~target_dpm:100.0)

let amplifier_experiment () =
  banner "Experiment X4: the Class-AB amplifier baseline (paper ref. [6])";
  note
    "Sachdev's silicon experiment: most process defects in a Class AB@.\
     amplifier are detectable by simple DC, transient and AC measurements.@.";
  let amp_config =
    if quick then Core.Pipeline.Config.with_defects 5_000 config else config
  in
  let result, dt = seconds (fun () -> Amplifier.Study.run ~config:amp_config ()) in
  note "(%d classes analysed in %.1f s)@."
    (List.length result.Amplifier.Study.reports)
    dt;
  print_table (Amplifier.Study.report_table result)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §6)                                             *)
(* ------------------------------------------------------------------ *)

let ablation_sigma () =
  banner "Ablation A1: acceptance-window width (sigma)";
  note "Wider windows trade escapes for yield loss; the paper uses 3 sigma.@.";
  let t =
    Util.Table.create
      ~columns:
        [
          "sigma", Util.Table.Right;
          "comparator coverage (cat)", Util.Table.Right;
          "current-only share", Util.Table.Right;
        ]
  in
  let sweep sigma =
    let cfg = Core.Pipeline.Config.with_sigma sigma config in
    let a =
      Core.Pipeline.analyze cfg
        (Adc.Comparator.macro Adc.Comparator.default_options)
    in
    let venn =
      Testgen.Overlap.venn_of_partition
        (Testgen.Overlap.partition a.Core.Pipeline.outcomes_catastrophic)
    in
    Util.Table.add_row t
      [
        Printf.sprintf "%.0f" sigma;
        Util.Table.cell_pct (100. *. Testgen.Overlap.coverage venn);
        Util.Table.cell_pct (100. *. venn.Testgen.Overlap.current_only);
      ]
  in
  List.iter sweep [ 2.0; 3.0; 6.0 ];
  print_table t

let ablation_samples () =
  banner "Ablation A2: missing-code ramp length";
  note "Catching a 1.2 LSB offset and an erratic comparator vs sample count.@.";
  let t =
    Util.Table.create
      ~columns:
        [
          "samples", Util.Table.Right;
          "offset fault caught", Util.Table.Right;
          "erratic trips test", Util.Table.Right;
          "test time (us)", Util.Table.Right;
        ]
  in
  let prng = Util.Prng.create 11 in
  let sweep samples =
    let offset_adc =
      Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
        (Adc.Flash_adc.Functional (1.2 *. Adc.Params.lsb))
    in
    let erratic_adc =
      Adc.Flash_adc.with_comparator Adc.Flash_adc.ideal 100
        Adc.Flash_adc.Erratic
    in
    let caught = Adc.Flash_adc.missing_codes offset_adc prng ~samples <> [] in
    let erratic_trips =
      Adc.Flash_adc.missing_codes erratic_adc prng ~samples <> []
    in
    Util.Table.add_row t
      [
        string_of_int samples;
        (if caught then "yes" else "NO");
        (if erratic_trips then "yes" else "no");
        Printf.sprintf "%.0f"
          (Testgen.Test_time.missing_code_time ~samples *. 1e6);
      ]
  in
  List.iter sweep [ 256; 1000; 4096 ];
  print_table t

let ablation_near_miss () =
  banner "Ablation A3: non-catastrophic short model";
  note "The paper models near-miss shorts as 500 ohm || 1 fF.@.";
  let t =
    Util.Table.create
      ~columns:
        [
          "model", Util.Table.Left;
          "comparator coverage (non-cat)", Util.Table.Right;
        ]
  in
  let coverage_with ~resistance ~capacitance =
    let tech =
      {
        Process.Tech.cmos1um with
        Process.Tech.near_miss_resistance = resistance;
        near_miss_capacitance = capacitance;
      }
    in
    let cfg = Core.Pipeline.Config.with_tech tech config in
    let a =
      Core.Pipeline.analyze cfg
        (Adc.Comparator.macro Adc.Comparator.default_options)
    in
    let venn =
      Testgen.Overlap.venn_of_partition
        (Testgen.Overlap.partition a.Core.Pipeline.outcomes_non_catastrophic)
    in
    Testgen.Overlap.coverage venn
  in
  List.iter
    (fun (label, resistance, capacitance) ->
      Util.Table.add_row t
        [
          label;
          Util.Table.cell_pct (100. *. coverage_with ~resistance ~capacitance);
        ])
    [
      "500 ohm || 1 fF (paper)", 500.0, 1e-15;
      "500 ohm only", 500.0, 1e-30;
      "5 kohm || 1 fF", 5_000.0, 1e-15;
    ];
  print_table t

let ablation_defect_count () =
  banner "Ablation A4: defect-sample size";
  note "The paper re-sprinkled 25k -> 10M defects to stabilize magnitudes.@.";
  let t =
    Util.Table.create
      ~columns:
        [
          "defects", Util.Table.Right;
          "fault classes", Util.Table.Right;
          "short share", Util.Table.Right;
        ]
  in
  let macro = Adc.Comparator.macro Adc.Comparator.default_options in
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  let netlist =
    macro.Macro.Macro_cell.build
      (Process.Variation.nominal Process.Tech.cmos1um)
  in
  let sweep n =
    let r =
      Defect.Simulate.run ~tech:Process.Tech.cmos1um
        ~stats:Process.Defect_stats.default ~cell ~netlist
        (Util.Prng.create 3) ~n
    in
    let classes = Fault.Collapse.collapse r.Defect.Simulate.instances in
    let short_share =
      match
        List.find_opt
          (fun (ft, _, _) -> ft = Fault.Types.Short)
          (Fault.Collapse.by_type classes)
      with
      | Some (_, share, _) -> share
      | None -> 0.0
    in
    Util.Table.add_row t
      [
        string_of_int n;
        string_of_int (List.length classes);
        Util.Table.cell_pct (100. *. short_share);
      ]
  in
  List.iter sweep
    (if quick then [ 5_000; 25_000 ] else [ 25_000; 100_000; 400_000 ]);
  print_table t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel_timings () =
  banner "Kernel timings (bechamel)";
  let open Bechamel in
  let macro = Adc.Comparator.macro Adc.Comparator.default_options in
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  let netlist =
    macro.Macro.Macro_cell.build
      (Process.Variation.nominal Process.Tech.cmos1um)
  in
  let instances =
    (Defect.Simulate.run ~tech:Process.Tech.cmos1um
       ~stats:Process.Defect_stats.default ~cell ~netlist
       (Util.Prng.create 5) ~n:25_000)
      .Defect.Simulate.instances
  in
  let ladder_netlist =
    Adc.Ladder.bench_netlist (Process.Variation.nominal Process.Tech.cmos1um)
  in
  let tests =
    [
      ( "defect-sprinkle-25k (T1)",
        fun () ->
          ignore
            (Defect.Simulate.run ~tech:Process.Tech.cmos1um
               ~stats:Process.Defect_stats.default ~cell ~netlist
               (Util.Prng.create 5) ~n:25_000) );
      ( "fault-collapse (T1)",
        fun () -> ignore (Fault.Collapse.collapse instances) );
      ( "comparator-measure (T2/T3)",
        fun () -> ignore (macro.Macro.Macro_cell.measure netlist) );
      ( "ladder-dc-solve (X1)",
        fun () -> ignore (Circuit.Engine.dc_operating_point ladder_netlist) );
      ( "behavioural-ramp-1000 (F4)",
        fun () ->
          ignore
            (Adc.Flash_adc.missing_codes Adc.Flash_adc.ideal
               (Util.Prng.create 7) ~samples:1000) );
      ( "layout-extraction (T1)",
        fun () -> ignore (Layout.Extract.extract cell) );
    ]
  in
  let analyze =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  List.iter
    (fun (name, run) ->
      let test = Test.make ~name (Staged.stage run) in
      let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
      let results = Analyze.all analyze Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun _key result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Format.printf "  %-32s %12.1f us/run@." name (est /. 1e3)
          | Some _ | None -> Format.printf "  %-32s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Parallel scaling (--timings)                                         *)
(* ------------------------------------------------------------------ *)

(* One rendering of everything the coverage analysis produced — including
   the run-health counters, but NOT the stage wall-clock times; two runs
   are equivalent iff these strings are byte-identical. *)
let coverage_fingerprint (a : Core.Pipeline.macro_analysis) =
  String.concat "\n"
    [
      Util.Table.render (Core.Report.table1 a);
      Util.Table.render (Core.Report.table2 a);
      Util.Table.render (Core.Report.table3 a);
      Util.Table.render (Core.Report.figure3 a);
      Util.Table.render (Core.Report.run_health (Core.Pipeline.run_health [ a ]));
    ]

let parallel_scaling () =
  banner "Parallel scaling: comparator pipeline (jobs=1 vs --jobs)";
  let macro = Adc.Comparator.macro Adc.Comparator.default_options in
  ignore (Lazy.force macro.Macro.Macro_cell.cell);
  let timed j =
    Util.Pool.set_jobs j;
    seconds (fun () -> Core.Pipeline.analyze config macro)
  in
  let a1, t1 = timed 1 in
  let an, tn = timed jobs in
  Util.Pool.set_jobs jobs;
  note "jobs=1: %.2f s    jobs=%d: %.2f s    speedup: %.2fx@." t1 jobs tn
    (t1 /. tn);
  if coverage_fingerprint a1 = coverage_fingerprint an then
    note "coverage tables + health counters: byte-identical across job counts@."
  else begin
    note "coverage tables: MISMATCH between jobs=1 and jobs=%d@." jobs;
    exit 1
  end;
  (* Same invariance with the containment paths actually exercised: a
     degraded run (injected convergence failures) must produce identical
     health counters and coverage bounds for any job count. *)
  let degraded_config =
    Core.Pipeline.Config.(
      config |> with_defects 2_000
      |> with_inject_failures (Some 0.2)
      |> with_max_retries 2)
  in
  let degraded j =
    Util.Pool.set_jobs j;
    let a = Core.Pipeline.analyze degraded_config macro in
    let g = Core.Global.combine [ a ] in
    coverage_fingerprint a
    ^ "\n"
    ^ Util.Table.render (Core.Report.coverage_bounds g)
  in
  let d1 = degraded 1 in
  let dn = degraded jobs in
  Util.Pool.set_jobs jobs;
  if d1 = dn then
    note "degraded run (20%% injected failures): byte-identical across job counts@."
  else begin
    note "degraded run: MISMATCH between jobs=1 and jobs=%d@." jobs;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Machine-readable timings (--json)                                    *)
(* ------------------------------------------------------------------ *)

(* Per-stage wall-clock of the comparator pipeline as one JSON object on
   stdout: the perf trajectory future PRs compare against (BENCH_*.json).
   Schema 2 added the run-health counters of the resilience layer; schema 3
   embedded the aggregated telemetry metrics (counter totals are
   deterministic across job counts, so they diff cleanly between PRs)
   and moved emission to Util.Json; schema 4 added the result-cache counters
   ("cache": state cold|warm|off plus hits/misses/stale/evictions) and
   emitted metrics through Core.Codec, the library's single JSON surface;
   schema 4 added the result-cache counters and schema 5 the "survival"
   object (deadline budgets and the deadline-expiry counter); schema 6
   adds the "solver" object — the selected backend plus the engine's
   factorization-reuse counters (factorizations, rank1_solves,
   jacobian_bypass, rank1_fallbacks), pulled from the same deterministic
   counter totals as "metrics"; schema 8 adds macro selection (--macro
   comparator|scaled with "bits" for the generated ADC), the
   shared-nominal counters in "solver", and the "throughput" object
   (classes_per_s / solves_per_s are wall-clock-derived and vary run to
   run; newton_iterations_per_class is deterministic). *)
let bench_macro_cell () =
  match bench_macro with
  | `Comparator -> Adc.Comparator.macro Adc.Comparator.default_options
  | `Scaled -> Adc.Scaled.macro ~bits:bench_bits ()

let json_run () =
  let macro = bench_macro_cell () in
  ignore (Lazy.force macro.Macro.Macro_cell.cell);
  let memory = Util.Telemetry.in_memory () in
  let traced_config =
    Core.Pipeline.Config.with_telemetry (Util.Telemetry.memory_sink memory)
      config
  in
  let analysis, total_s =
    seconds (fun () -> Core.Pipeline.analyze traced_config macro)
  in
  let health = analysis.Core.Pipeline.health in
  let stage name =
    try List.assoc name health.Core.Pipeline.stage_seconds
    with Not_found -> 0.0
  in
  let coverage outcomes =
    Testgen.Overlap.coverage
      (Testgen.Overlap.venn_of_partition (Testgen.Overlap.partition outcomes))
  in
  let m = Util.Telemetry.metrics memory in
  let counter name =
    try List.assoc name m.Util.Telemetry.Metrics.counters with Not_found -> 0
  in
  let cache_json =
    match cache with
    | None -> Core.Codec.cache_stats_to_json ~state:`Off Util.Cache.no_stats
    | Some c ->
      let s = Util.Cache.stats c in
      Core.Codec.cache_stats_to_json
        ~state:(Core.Report.cache_state s :> [ `Cold | `Warm | `Off ])
        s
  in
  let evaluate_s = stage "evaluate-cat" +. stage "evaluate-ncat" in
  let classes = counter "classes_simulated" in
  let rate count elapsed =
    if elapsed > 0.0 then Util.Json.Float (float_of_int count /. elapsed)
    else Util.Json.Null
  in
  let json =
    Util.Json.Obj
      [
        "schema", Util.Json.String "dotest-bench/8";
        "macro", Util.Json.String macro.Macro.Macro_cell.name;
        ( "bits",
          match bench_macro with
          | `Comparator -> Util.Json.Null
          | `Scaled -> Util.Json.Int bench_bits );
        "mode", Util.Json.String (if quick then "quick" else "full");
        "jobs", Util.Json.Int jobs;
        "seed", Util.Json.Int config.Core.Pipeline.Config.seed;
        "defects", Util.Json.Int analysis.Core.Pipeline.sprinkled;
        "effective", Util.Json.Int analysis.Core.Pipeline.effective;
        ( "classes_catastrophic",
          Util.Json.Int (List.length analysis.Core.Pipeline.classes_catastrophic)
        );
        ( "classes_non_catastrophic",
          Util.Json.Int
            (List.length analysis.Core.Pipeline.classes_non_catastrophic) );
        ( "coverage_catastrophic",
          Util.Json.Float
            (coverage analysis.Core.Pipeline.outcomes_catastrophic) );
        ( "coverage_non_catastrophic",
          Util.Json.Float
            (coverage analysis.Core.Pipeline.outcomes_non_catastrophic) );
        ( "health",
          Util.Json.Obj
            [
              "classes", Util.Json.Int health.Core.Pipeline.classes;
              "retried", Util.Json.Int health.Core.Pipeline.retried;
              "degraded", Util.Json.Int health.Core.Pipeline.degraded;
              "unresolved", Util.Json.Int health.Core.Pipeline.unresolved;
            ] );
        ( "stages",
          Util.Json.Obj
            [
              "sprinkle_s", Util.Json.Float (stage "sprinkle");
              "collapse_s", Util.Json.Float (stage "collapse");
              "good_space_s", Util.Json.Float (stage "good-space");
              ( "evaluate_s",
                Util.Json.Float (stage "evaluate-cat" +. stage "evaluate-ncat")
              );
              "total_s", Util.Json.Float total_s;
            ] );
        "cache", cache_json;
        ( "solver",
          Util.Json.Obj
            [
              ( "backend",
                Util.Json.String (Circuit.Engine.solver_name solver) );
              "factorizations", Util.Json.Int (counter "engine.factorizations");
              "rank1_solves", Util.Json.Int (counter "engine.rank1_solves");
              "jacobian_bypass", Util.Json.Int (counter "engine.jacobian_bypass");
              "rank1_fallbacks", Util.Json.Int (counter "engine.rank1_fallbacks");
              ( "shared_nominal_hits",
                Util.Json.Int (counter "engine.shared_nominal_hits") );
              ( "shared_nominal_misses",
                Util.Json.Int (counter "engine.shared_nominal_misses") );
              ( "shared_nominal_fallbacks",
                Util.Json.Int (counter "engine.shared_nominal_fallbacks") );
            ] );
        ( "throughput",
          Util.Json.Obj
            [
              "classes_per_s", rate classes evaluate_s;
              "solves_per_s", rate (counter "engine.solves") evaluate_s;
              ( "newton_iterations_per_class",
                if classes = 0 then Util.Json.Null
                else
                  Util.Json.Float
                    (float_of_int (counter "newton_iterations")
                    /. float_of_int classes) );
            ] );
        ( "survival",
          Util.Json.Obj
            [
              ( "deadline_wall_s",
                match deadline with
                | Some { Util.Watchdog.wall_seconds = Some s; _ } ->
                  Util.Json.Float s
                | Some _ | None -> Util.Json.Null );
              ( "deadline_iterations",
                match deadline with
                | Some { Util.Watchdog.max_iterations = Some n; _ } ->
                  Util.Json.Int n
                | Some _ | None -> Util.Json.Null );
              ( "deadline_expired",
                Util.Json.Int (counter "watchdog.deadline_exceeded") );
            ] );
        "metrics", Core.Codec.metrics_to_json m;
      ]
  in
  print_endline (Util.Json.to_string json)

(* ------------------------------------------------------------------ *)
(* PR-10 scaling study (--scaling)                                      *)
(* ------------------------------------------------------------------ *)

(* Raw-solve sweep: for each size, solve a batch of near-miss-bridge
   variants of the generated ADC cold under every backend, then once
   more under auto with a shared-nominal context installed (one skeleton
   derivation amortized over the whole batch + warm starts). This is the
   per-class solve pattern of the evaluate stage, isolated from
   sprinkling and classification, so the dense-vs-banded-vs-shared
   crossover is directly visible per N. *)
let scaling_variants = 12

let scaling_netlists bits =
  let nominal =
    Adc.Scaled.bench_netlist ~bits
      (Process.Variation.nominal Process.Tech.cmos1um)
  in
  let t = Adc.Scaled.taps bits in
  let variants =
    List.init scaling_variants (fun k ->
        let i = 1 + (k * (t - 3) / scaling_variants) in
        let nl = Circuit.Netlist.copy nominal in
        Circuit.Netlist.add_resistor nl
          ~name:(Printf.sprintf "FLT_Rbridge%d" k)
          (Circuit.Netlist.node nl (Printf.sprintf "tap%d" i))
          (Circuit.Netlist.node nl (Printf.sprintf "tap%d" (i + 1)))
          500.0;
        nl)
  in
  nominal, variants

let timed_batch ?shared solver variants =
  let run () =
    Circuit.Engine.with_solver solver @@ fun () ->
    let solve_all () =
      List.fold_left
        (fun acc nl ->
          let _, diag = Circuit.Engine.dc_operating_point_diag nl in
          acc + diag.Circuit.Engine.iterations)
        0 variants
    in
    match shared with
    | None -> solve_all ()
    | Some sn -> Circuit.Engine.with_shared_nominal sn solve_all
  in
  let iterations, elapsed = seconds run in
  Util.Json.Obj
    [
      "s_per_solve",
      Util.Json.Float (elapsed /. float_of_int (List.length variants));
      "newton_iterations", Util.Json.Int iterations;
    ]

(* Dense refactors every Newton iteration: past this size one sweep row
   alone would take minutes, so dense is measured only up to here and
   reported null above it (noted in the row, not silently dropped). *)
let dense_max_n = 1200

let scaling_row bits =
  let nominal, variants = scaling_netlists bits in
  let n = Circuit.Netlist.node_count nominal + 2 in
  let sn = Circuit.Engine.shared_nominal ~strip:Fault.Inject.is_fault_device () in
  let dense =
    if n <= dense_max_n then timed_batch Circuit.Engine.Dense variants
    else Util.Json.Null
  in
  let rank1 = timed_batch Circuit.Engine.Rank1 variants in
  let auto = timed_batch Circuit.Engine.Auto variants in
  let auto_shared = timed_batch ~shared:sn Circuit.Engine.Auto variants in
  Format.eprintf "scaling: bits=%d n=%d done@." bits n;
  Util.Json.Obj
    [
      "bits", Util.Json.Int bits;
      "n_unknowns", Util.Json.Int n;
      "dense", dense;
      "dense_skipped", Util.Json.Bool (n > dense_max_n);
      "rank1", rank1;
      "auto", auto;
      "auto_shared", auto_shared;
    ]

(* One pipeline run (no cache) under [solver]; returns the evaluate-stage
   wall-clock plus the deterministic counters behind the throughput
   numbers. *)
let pipeline_measure config macro solver =
  let memory = Util.Telemetry.in_memory () in
  let cfg =
    Core.Pipeline.Config.(
      config |> with_solver solver |> with_cache_handle None
      |> with_telemetry (Util.Telemetry.memory_sink memory))
  in
  let analysis = Core.Pipeline.analyze cfg macro in
  let stage name =
    try List.assoc name analysis.Core.Pipeline.health.Core.Pipeline.stage_seconds
    with Not_found -> 0.0
  in
  let m = Util.Telemetry.metrics memory in
  let counter name =
    try List.assoc name m.Util.Telemetry.Metrics.counters with Not_found -> 0
  in
  let evaluate_s = stage "evaluate-cat" +. stage "evaluate-ncat" in
  ( evaluate_s,
    Util.Json.Obj
      [
        "evaluate_s", Util.Json.Float evaluate_s;
        "total_classes",
        Util.Json.Int analysis.Core.Pipeline.health.Core.Pipeline.classes;
        "solves", Util.Json.Int (counter "engine.solves");
        "newton_iterations", Util.Json.Int (counter "newton_iterations");
        ( "shared_nominal_hits",
          Util.Json.Int (counter "engine.shared_nominal_hits") );
      ] )

let pipeline_ab config macro =
  ignore (Lazy.force macro.Macro.Macro_cell.cell);
  let dense_s, dense = pipeline_measure config macro Circuit.Engine.Dense in
  let auto_s, auto = pipeline_measure config macro Circuit.Engine.Auto in
  Util.Json.Obj
    [
      "macro", Util.Json.String macro.Macro.Macro_cell.name;
      "defects", Util.Json.Int config.Core.Pipeline.Config.defects;
      "dense", dense;
      "auto", auto;
      ( "evaluate_speedup_auto_vs_dense",
        if auto_s > 0.0 then Util.Json.Float (dense_s /. auto_s)
        else Util.Json.Null );
    ]

let scaling_run () =
  let bits_list = if quick then [ 5; 7; 9 ] else [ 5; 7; 9; 10; 11 ] in
  let rows = List.map scaling_row bits_list in
  let comparator_config =
    Core.Pipeline.Config.(
      config |> with_defects 5_000 |> with_good_space_dies 16)
  in
  let comparator_ab =
    pipeline_ab comparator_config
      (Adc.Comparator.macro Adc.Comparator.default_options)
  in
  Format.eprintf "scaling: comparator A/B done@.";
  let scaled_config =
    Core.Pipeline.Config.(
      config |> with_defects 4_000 |> with_good_space_dies 8)
  in
  let scaled_ab =
    pipeline_ab scaled_config (Adc.Scaled.macro ~bits:bench_bits ())
  in
  Format.eprintf "scaling: scaled A/B done@.";
  let json =
    Util.Json.Obj
      [
        "schema", Util.Json.String "dotest-bench/8";
        "mode", Util.Json.String "scaling";
        "jobs", Util.Json.Int jobs;
        "quick", Util.Json.Bool quick;
        ( "raw_solves",
          Util.Json.Obj
            [
              "variants_per_row", Util.Json.Int scaling_variants;
              "rows", Util.Json.List rows;
            ] );
        ( "pipelines",
          Util.Json.Obj
            [
              "comparator_quick", comparator_ab;
              "scaled", scaled_ab;
            ] );
      ]
  in
  print_endline (Util.Json.to_string json)

(* ------------------------------------------------------------------ *)
(* Service stress (--serve-stress)                                      *)
(* ------------------------------------------------------------------ *)

(* Concurrency benchmark of the PR-9 analysis service: one serve loop on
   a Unix socket, [clients] threads each sending [per_client] requests
   over the versioned wire API. The key mix is deliberate: even slots
   repeat the warmup request (pure result-cache hits), odd slots share a
   per-slot cold seed across all clients (so concurrent duplicates
   coalesce onto one flight). Schema 7 = this run's latency percentiles
   plus the service's own counters. *)
let serve_stress_run () =
  let clients = 8 in
  let per_client = if quick then 2 else 4 in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dotest-serve-bench-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir tmp 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let cache =
    match cache with
    | Some c -> c
    | None ->
      Util.Cache.create
        ~dir:(Filename.concat tmp "cache")
        ~version:Core.Codec.version ()
  in
  let service = Core.Service.create ~cache ~jobs ~max_pending:64 () in
  let address = Core.Service.Unix_socket (Filename.concat tmp "bench.sock") in
  let ready = Mutex.create () and ready_cond = Condition.create () in
  let listening = ref false in
  let server =
    Thread.create
      (fun () ->
        Core.Service.serve
          ~on_ready:(fun _ ->
            Mutex.lock ready;
            listening := true;
            Condition.broadcast ready_cond;
            Mutex.unlock ready)
          service address)
      ()
  in
  Mutex.lock ready;
  while not !listening do
    Condition.wait ready_cond ready
  done;
  Mutex.unlock ready;
  let base =
    Core.Request.(
      default
      |> with_target (Global { dft = false })
      |> with_defects (if quick then 200 else 500)
      |> with_good_space_dies (if quick then 4 else 8))
  in
  let request_for ~client ~slot =
    let r =
      if slot mod 2 = 0 then base
      else Core.Request.with_seed (31 + slot) base
    in
    Core.Request.with_id
      (Some (Printf.sprintf "c%d-r%d" client slot))
      r
  in
  (* Warm the even-slot key so the stressed run sees real cross-request
     cache hits, not just a cold start. *)
  (match Core.Service.call address base with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "bench: warmup failed: %s\n%!" e.Core.Request.message;
    exit 1);
  let latencies = Array.make (clients * per_client) 0.0 in
  let ok = Atomic.make 0 and errors = Atomic.make 0 in
  let client_thread client =
    Thread.create
      (fun () ->
        for slot = 0 to per_client - 1 do
          let t0 = Unix.gettimeofday () in
          let response =
            Core.Service.call address (request_for ~client ~slot)
          in
          latencies.((client * per_client) + slot) <-
            Unix.gettimeofday () -. t0;
          match response with
          | Ok _ -> Atomic.incr ok
          | Error _ -> Atomic.incr errors
        done)
      ()
  in
  let threads = List.init clients client_thread in
  List.iter Thread.join threads;
  Core.Service.initiate_shutdown service;
  Thread.join server;
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let percentile p =
    sorted.(int_of_float (p *. float_of_int (Array.length sorted - 1)))
  in
  let s = Core.Service.stats service in
  let hit_rate =
    let total = s.Core.Service.cache_hits + s.Core.Service.cache_misses in
    if total = 0 then 0.0
    else float_of_int s.Core.Service.cache_hits /. float_of_int total
  in
  let json =
    Util.Json.Obj
      [
        "schema", Util.Json.String "dotest-bench/7";
        "mode", Util.Json.String (if quick then "quick" else "full");
        "jobs", Util.Json.Int jobs;
        "clients", Util.Json.Int clients;
        "requests_per_client", Util.Json.Int per_client;
        "requests", Util.Json.Int (clients * per_client);
        "ok", Util.Json.Int (Atomic.get ok);
        "errors", Util.Json.Int (Atomic.get errors);
        ( "latency",
          Util.Json.Obj
            [
              "p50_s", Util.Json.Float (percentile 0.50);
              "p99_s", Util.Json.Float (percentile 0.99);
              "max_s", Util.Json.Float sorted.(Array.length sorted - 1);
            ] );
        ( "service",
          Util.Json.Obj
            [
              "submitted", Util.Json.Int s.Core.Service.submitted;
              "completed", Util.Json.Int s.Core.Service.completed;
              "failed", Util.Json.Int s.Core.Service.failed;
              "shed", Util.Json.Int s.Core.Service.shed;
              "coalesced", Util.Json.Int s.Core.Service.coalesced;
              "cache_hits", Util.Json.Int s.Core.Service.cache_hits;
              "cache_misses", Util.Json.Int s.Core.Service.cache_misses;
              "cache_hit_rate", Util.Json.Float hit_rate;
            ] );
      ]
  in
  print_endline (Util.Json.to_string json)

(* ------------------------------------------------------------------ *)

let () =
  if serve_stress then serve_stress_run ()
  else if scaling_mode then scaling_run ()
  else if json_mode then json_run ()
  else begin
    Format.printf
      "dotest benchmark harness — reproduction of Kuijstermans, Thijssen & \
       Sachdev, DATE 1995%s (jobs=%d)@."
      (if quick then " (quick mode)" else "")
      jobs;
    comparator_experiments ();
    global_experiments ();
    quality_experiment ();
    amplifier_experiment ();
    if not no_ablations then begin
      ablation_sigma ();
      ablation_samples ();
      ablation_near_miss ();
      ablation_defect_count ()
    end;
    if timings then begin
      parallel_scaling ();
      bechamel_timings ()
    end;
    Format.printf "@.done.@."
  end
