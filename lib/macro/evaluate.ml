type outcome = {
  fault_class : Fault.Collapse.fault_class;
  signature : Signature.t;
  simulation_failed : bool;
}

let src = Logs.Src.create "dotest.macro" ~doc:"macro fault simulation"

module Log = (val Logs.src_log src : Logs.LOG)

let evaluate_class ~(macro : Macro_cell.t) ~nominal ~good ~golden fc =
  let faulty_netlist =
    Fault.Inject.inject_instance nominal fc.Fault.Collapse.representative
  in
  match macro.Macro_cell.measure faulty_netlist with
  | vector ->
    let voltage = macro.Macro_cell.classify_voltage ~golden ~faulty:vector in
    let currents = Good_space.deviating_currents good vector in
    { fault_class = fc; signature = { Signature.voltage; currents };
      simulation_failed = false }
  | exception Circuit.Engine.No_convergence what ->
    Log.debug (fun m ->
        m "fault %a: no convergence (%s) — gross defect"
          Fault.Types.pp_fault fc.representative.Fault.Types.fault what);
    {
      fault_class = fc;
      signature =
        { Signature.voltage = Signature.Output_stuck_at;
          currents = Signature.all_current };
      simulation_failed = true;
    }

let run ?jobs ~(macro : Macro_cell.t) ~good classes =
  (* The nominal netlist is built once and shared by every class: injection
     copies it before mutating, so parallel workers only ever read it. *)
  let nominal =
    macro.Macro_cell.build (Process.Variation.nominal Process.Tech.cmos1um)
  in
  let golden = macro.Macro_cell.measure nominal in
  Util.Pool.parallel_map ?jobs (evaluate_class ~macro ~nominal ~good ~golden)
    classes

let total_weight outcomes =
  float_of_int
    (max 1
       (List.fold_left
          (fun acc o -> acc + o.fault_class.Fault.Collapse.count)
          0 outcomes))

let voltage_table outcomes =
  let total = total_weight outcomes in
  List.map
    (fun v ->
      let weight =
        List.fold_left
          (fun acc o ->
            if o.signature.Signature.voltage = v then
              acc + o.fault_class.Fault.Collapse.count
            else acc)
          0 outcomes
      in
      v, float_of_int weight /. total)
    Signature.all_voltage

let current_table outcomes =
  let total = total_weight outcomes in
  let kind_share k =
    let weight =
      List.fold_left
        (fun acc o ->
          if List.mem k o.signature.Signature.currents then
            acc + o.fault_class.Fault.Collapse.count
          else acc)
        0 outcomes
    in
    k, float_of_int weight /. total
  in
  let none_weight =
    List.fold_left
      (fun acc o ->
        if o.signature.Signature.currents = [] then
          acc + o.fault_class.Fault.Collapse.count
        else acc)
      0 outcomes
  in
  ( List.map kind_share Signature.all_current,
    float_of_int none_weight /. total )
