type status =
  | Converged
  | Recovered of { attempts : int }
  | Unresolved of { attempts : int; error : string }

type outcome = {
  fault_class : Fault.Collapse.fault_class;
  signature : Signature.t;
  status : status;
}

let simulation_failed o =
  match o.status with Unresolved _ -> true | Converged | Recovered _ -> false

exception Simulation_failed of { index : int; attempts : int; error : string }

let () =
  Printexc.register_printer (function
    | Simulation_failed { index; attempts; error } ->
      Some
        (Printf.sprintf
           "Evaluate.Simulation_failed: fault class %d unresolved after %d \
            attempts (%s)"
           index attempts error)
    | _ -> None)

type injection = { seed : int; fraction : float }

(* The decision is a pure function of (seed, class index, attempt):
   identical for any job count or evaluation order. Half of the injected
   fraction fails persistently (every attempt, ending Unresolved), the
   other half only on the first attempt (recovering on retry), so both
   containment paths are exercised. *)
let injection_hits { seed; fraction } ~index ~attempt =
  let fraction = Float.max 0.0 (Float.min 1.0 fraction) in
  let prng = Util.Prng.create ((seed * 1_000_003) + index) in
  let u = Util.Prng.float prng 1.0 in
  if u < fraction /. 2.0 then true
  else if u < fraction then attempt = 0
  else false

let default_retries = 1

let src = Logs.Src.create "dotest.macro" ~doc:"macro fault simulation"

module Log = (val Logs.src_log src : Logs.LOG)

(* A simulation that fails even at the top of the escalation ladder is a
   gross defect; its optimistic reading — the one the seed pipeline used
   unconditionally — is "stuck with every current deviating", i.e.
   detected by everything. Global coverage reports bound the truth from
   both sides (see Core.Global.coverage_bounds). *)
let gross_signature =
  { Signature.voltage = Signature.Output_stuck_at;
    currents = Signature.all_current }

let evaluate_class ?(retries = default_retries) ?inject
    ?(deadline = Util.Watchdog.no_limits) ?(index = 0)
    ~(macro : Macro_cell.t) ~nominal ~good ~golden fc =
  let faulty_netlist =
    Fault.Inject.inject_instance nominal fc.Fault.Collapse.representative
  in
  (* A deadline expiry is a known, contained failure mode of a
     pathological class — exactly like a convergence failure, it walks the
     escalation ladder (with a doubled budget per retry, see below) and
     ends Unresolved if the ladder runs out. *)
  let classify = function
    | Circuit.Engine.No_convergence _ | Util.Watchdog.Deadline_exceeded _ ->
      Util.Resilience.Retryable
    | _ -> Util.Resilience.Fatal
  in
  let measure ~attempt =
    (match inject with
    | Some inj when injection_hits inj ~index ~attempt ->
      raise (Circuit.Engine.No_convergence "injected failure (test hook)")
    | Some _ | None -> ());
    (* Each escalated retry doubles the deadline along with loosening the
       options: a class whose first attempt expired gets both an easier
       problem and a larger budget, so the ladder can actually resolve
       it. The scaling is a pure function of the attempt number. *)
    Util.Watchdog.with_limits
      (Util.Watchdog.scale deadline ~factor:(1 lsl attempt))
    @@ fun () ->
    if attempt = 0 then macro.Macro_cell.measure faulty_netlist
    else
      (* Walk the documented escalation ladder: each retry loosens the
         solver options one more level. *)
      Circuit.Engine.with_options_override
        (Circuit.Engine.escalation Circuit.Engine.default_options
           ~level:attempt)
        (fun () -> macro.Macro_cell.measure faulty_netlist)
  in
  match
    Util.Resilience.run ~classify ~attempts:(1 + max 0 retries) measure
  with
  | Util.Resilience.Resolved { value = vector; attempts } ->
    let voltage = macro.Macro_cell.classify_voltage ~golden ~faulty:vector in
    let currents = Good_space.deviating_currents good vector in
    let status =
      if attempts = 1 then Converged
      else begin
        Log.debug (fun m ->
            m "fault %a: recovered on attempt %d (escalated options)"
              Fault.Types.pp_fault fc.representative.Fault.Types.fault attempts);
        Recovered { attempts }
      end
    in
    { fault_class = fc; signature = { Signature.voltage; currents }; status }
  | Util.Resilience.Exhausted { error; attempts } ->
    let what =
      match error with
      | Circuit.Engine.No_convergence what -> what
      | Util.Watchdog.Deadline_exceeded e -> Util.Watchdog.expiry_message e
      | e -> Printexc.to_string e
    in
    Log.debug (fun m ->
        m "fault %a: unresolved after %d attempts (%s)"
          Fault.Types.pp_fault fc.representative.Fault.Types.fault attempts
          what);
    {
      fault_class = fc;
      signature = gross_signature;
      status = Unresolved { attempts; error = what };
    }

let run ?jobs ?retries ?inject ?deadline ?resume ?on_outcome
    ?(strict = false) ?solver ~(macro : Macro_cell.t) ~good classes =
  (* Solver choice must survive the hop into pool worker domains:
     domain-local overrides installed by the caller do not propagate, so
     the effective solver is resolved here and re-installed explicitly
     inside every worker task. *)
  let solver =
    match solver with
    | Some s -> s
    | None -> Circuit.Engine.current_solver ()
  in
  (* The nominal netlist is built once and shared by every class: injection
     copies it before mutating, so parallel workers only ever read it. *)
  let nominal =
    macro.Macro_cell.build (Process.Variation.nominal Process.Tech.cmos1um)
  in
  let golden =
    Circuit.Engine.with_solver solver (fun () ->
        macro.Macro_cell.measure nominal)
  in
  (* Cross-class factorization sharing: the context taught to recognize
     injected devices is created once here; each worker domain derives
     (and caches) the actual nominal factorizations on first use — the
     derived state is domain-local because DLS does not propagate into
     pool workers. Installed per class, around the whole retry ladder, so
     escalated attempts seed against their own escalated options. *)
  let shared =
    Circuit.Engine.shared_nominal ~strip:Fault.Inject.is_fault_device ()
  in
  Util.Pool.parallel_mapi ?jobs
    (fun index fc ->
      Circuit.Engine.with_solver solver @@ fun () ->
      Circuit.Engine.with_shared_nominal shared @@ fun () ->
      Util.Telemetry.with_span
        ~attrs:
          [
            "class", Util.Telemetry.Int index;
            "weight", Util.Telemetry.Int fc.Fault.Collapse.count;
          ]
        "evaluate.class"
      @@ fun () ->
      (* A restored outcome is only trusted when it is provably for this
         class: the checkpointed fault class must equal the recomputed
         one (class derivation is deterministic, so a mismatch means the
         checkpoint belongs to different inputs — re-simulate). *)
      let restored =
        match resume with
        | None -> None
        | Some find ->
          (match find index with
          | Some (o : outcome) when o.fault_class = fc -> Some o
          | Some _ | None -> None)
      in
      let outcome =
        match restored with
        | Some o ->
          Util.Telemetry.count "classes_restored";
          Util.Telemetry.add_span_attrs
            [ "restored", Util.Telemetry.Bool true ];
          o
        | None ->
          let o =
            evaluate_class ?retries ?inject ?deadline ~index ~macro ~nominal
              ~good ~golden fc
          in
          Util.Telemetry.count "classes_simulated";
          Option.iter (fun record -> record index o) on_outcome;
          o
      in
      (* Resolution status and escalation depth are attached to the span,
         so a trace answers "which classes needed the ladder" directly. *)
      (let status, attempts =
         match outcome.status with
         | Converged -> "converged", 1
         | Recovered { attempts } -> "recovered", attempts
         | Unresolved { attempts; _ } -> "unresolved", attempts
       in
       let escalation = attempts - 1 in
       if escalation > 0 then begin
         Util.Telemetry.count ~by:escalation "retries";
         Util.Telemetry.gauge "escalation_level" (float_of_int escalation)
       end;
       (match outcome.status with
       | Converged -> ()
       | Recovered _ -> Util.Telemetry.count "classes_recovered"
       | Unresolved _ -> Util.Telemetry.count "classes_unresolved");
       Util.Telemetry.add_span_attrs
         [
           "status", Util.Telemetry.String status;
           "attempts", Util.Telemetry.Int attempts;
           "escalation", Util.Telemetry.Int escalation;
         ]);
      (match outcome.status with
      | Unresolved { attempts; error } when strict ->
        raise (Simulation_failed { index; attempts; error })
      | Unresolved _ | Converged | Recovered _ -> ());
      outcome)
    classes

let total_weight outcomes =
  float_of_int
    (max 1
       (List.fold_left
          (fun acc o -> acc + o.fault_class.Fault.Collapse.count)
          0 outcomes))

let voltage_table outcomes =
  let total = total_weight outcomes in
  List.map
    (fun v ->
      let weight =
        List.fold_left
          (fun acc o ->
            if o.signature.Signature.voltage = v then
              acc + o.fault_class.Fault.Collapse.count
            else acc)
          0 outcomes
      in
      v, float_of_int weight /. total)
    Signature.all_voltage

let current_table outcomes =
  let total = total_weight outcomes in
  let kind_share k =
    let weight =
      List.fold_left
        (fun acc o ->
          if List.mem k o.signature.Signature.currents then
            acc + o.fault_class.Fault.Collapse.count
          else acc)
        0 outcomes
    in
    k, float_of_int weight /. total
  in
  let none_weight =
    List.fold_left
      (fun acc o ->
        if o.signature.Signature.currents = [] then
          acc + o.fault_class.Fault.Collapse.count
        else acc)
      0 outcomes
  in
  ( List.map kind_share Signature.all_current,
    float_of_int none_weight /. total )
