type t = (string * Util.Stats.window) list

let compile ?(n = 48) ?(k = 3.0) ?(spread = Process.Variation.default_spread)
    ~tech (macro : Macro_cell.t) prng =
  let samples = Process.Variation.monte_carlo ~n spread tech prng in
  let vectors = List.map (fun s -> macro.Macro_cell.measure (macro.Macro_cell.build s)) samples in
  let names =
    List.concat_map (List.map fst) vectors |> List.sort_uniq compare
  in
  let window_of name =
    let acc = Util.Stats.accumulator () in
    List.iter
      (fun vector ->
        match List.assoc_opt name vector with
        | Some v -> Util.Stats.add acc v
        | None -> ())
      vectors;
    if Util.Stats.count acc = 0 then None
    else begin
      (* Guarantee a minimal absolute tolerance reflecting what a
         production tester resolves: supply and input currents are
         measured at the board level (~2 µA), the quiescent digital
         supply with a dedicated IDDQ monitor (~0.5 µA). This also keeps
         zero-variance measurements from rejecting numerical noise. *)
      let w = Util.Stats.sigma_window ~k acc in
      let floor_width =
        match Signature.current_kind_of_measurement name with
        | Some Signature.IVdd -> 2e-6
        | Some Signature.IDDQ -> 5e-7
        | Some Signature.Iinput -> 2e-6
        | None -> 1e-4  (* 0.1 mV voltmeter floor *)
      in
      Some (Util.Stats.widen w ~by:floor_width)
    end
  in
  List.filter_map (fun name -> Option.map (fun w -> name, w) (window_of name)) names

let window t name = List.assoc_opt name t

let deviating t vector =
  List.filter_map
    (fun (name, value) ->
      match List.assoc_opt name t with
      | Some w when not (Util.Stats.inside w value) -> Some name
      | Some _ | None -> None)
    vector

let deviating_currents t vector =
  let names = deviating t vector in
  let kinds = List.filter_map Signature.current_kind_of_measurement names in
  List.filter (fun k -> List.mem k kinds) Signature.all_current

let widen t ~name ~by =
  List.map
    (fun (n, w) -> if n = name then n, Util.Stats.widen w ~by else n, w)
    t

let measurements t = List.map fst t
let windows t = t
let of_windows ws = ws

let pp ppf t =
  List.iter
    (fun (name, w) ->
      Format.fprintf ppf "%-24s %a@." name Util.Stats.pp_window w)
    t
