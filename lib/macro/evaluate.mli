(** Fault simulation of a macro: from fault classes to fault signatures.

    Each fault class representative is injected into the macro's nominal
    netlist, the macro is re-measured, and the faulty vector is classified
    into the paper's voltage and current signature categories against the
    good-signature space. A fault that makes the simulation fail to
    converge even with every fallback is a gross defect: it is classified
    as stuck with all currents deviating. *)

type outcome = {
  fault_class : Fault.Collapse.fault_class;
  signature : Signature.t;
  simulation_failed : bool;
}

(** [evaluate_class ~macro ~nominal ~good ~golden fc] fault-simulates one
    class. [nominal] is the macro's fault-free netlist (built once by the
    caller; injection copies it, so it is never mutated) and [golden] is
    the nominal fault-free measurement vector (pass the same one to every
    call; it is the reference for voltage classification). *)
val evaluate_class :
  macro:Macro_cell.t ->
  nominal:Circuit.Netlist.t ->
  good:Good_space.t ->
  golden:Macro_cell.vector ->
  Fault.Collapse.fault_class ->
  outcome

(** [run ~macro ~good classes] evaluates every class, building the nominal
    netlist and measuring the golden vector once. Classes are simulated on
    a {!Util.Pool} of [?jobs] worker domains (defaulting to the pool's
    process-wide setting); outcomes keep the input order, so the result is
    identical for any job count. *)
val run :
  ?jobs:int ->
  macro:Macro_cell.t ->
  good:Good_space.t ->
  Fault.Collapse.fault_class list ->
  outcome list

(** [voltage_table outcomes] tabulates the share of faults (weighted by
    class magnitude) per voltage signature — one column of Table 2. *)
val voltage_table : outcome list -> (Signature.voltage * float) list

(** [current_table outcomes] — share of faults whose signature deviates in
    each current, plus the share with no current deviation (Table 3; the
    kind shares can sum to more than 1 because of overlap). *)
val current_table :
  outcome list -> (Signature.current_kind * float) list * float
