(** Fault simulation of a macro: from fault classes to fault signatures.

    Each fault class representative is injected into the macro's nominal
    netlist, the macro is re-measured, and the faulty vector is classified
    into the paper's voltage and current signature categories against the
    good-signature space.

    Injected defects routinely produce pathological circuits (floating
    nodes, near-shorts) where the Newton solver fails; every fault-class
    simulation is therefore contained. A {!Circuit.Engine.No_convergence}
    triggers deterministic retries that walk the engine's documented
    escalation ladder ({!Circuit.Engine.escalation}) via
    {!Circuit.Engine.with_options_override}; a class that still fails is
    recorded as {!Unresolved} — with the classified error and the attempts
    taken — instead of aborting the whole batch. Its signature keeps the
    seed pipeline's optimistic gross-defect reading (output stuck, all
    currents deviating); [Core.Global.coverage_bounds] also reports the
    pessimistic bound where unresolved classes count as undetected. *)

(** How the class's simulation concluded. *)
type status =
  | Converged  (** clean first-attempt convergence *)
  | Recovered of { attempts : int }
      (** converged only on an escalated retry — the signature was
          measured with loosened solver tolerances (degraded) *)
  | Unresolved of { attempts : int; error : string }
      (** every attempt failed; [error] is the classified final error *)

type outcome = {
  fault_class : Fault.Collapse.fault_class;
  signature : Signature.t;
  status : status;
}

(** [simulation_failed o] — [true] iff the class ended {!Unresolved}. *)
val simulation_failed : outcome -> bool

(** Raised (inside the worker; the pool wraps it in
    [Util.Pool.Worker_failure]) when [run ~strict:true] meets an
    unresolved class — restoring the seed's fail-fast behaviour, with the
    failing fault-class index attached. *)
exception Simulation_failed of { index : int; attempts : int; error : string }

(** Deterministic fault-injection harness for the pipeline itself (test
    hook, off by default): makes a configurable [fraction] of fault-class
    simulations raise [No_convergence]. The decision is a pure function of
    [(seed, class index, attempt)] seeded through {!Util.Prng}, so it is
    identical for any job count. Half of the injected fraction fails every
    attempt (ending {!Unresolved}); the other half fails only the first
    attempt (ending {!Recovered}). *)
type injection = { seed : int; fraction : float }

(** [evaluate_class ~macro ~nominal ~good ~golden fc] fault-simulates one
    class. [nominal] is the macro's fault-free netlist (built once by the
    caller; injection copies it, so it is never mutated) and [golden] is
    the nominal fault-free measurement vector (pass the same one to every
    call; it is the reference for voltage classification). [retries]
    bounds escalated re-attempts after a convergence failure (default 1);
    [index] is the class's position in its batch, used by the [inject]
    hook and for error attribution. Exceptions other than
    [No_convergence] are never retried or contained — programming errors
    still propagate. *)
val evaluate_class :
  ?retries:int ->
  ?inject:injection ->
  ?deadline:Util.Watchdog.limits ->
  ?index:int ->
  macro:Macro_cell.t ->
  nominal:Circuit.Netlist.t ->
  good:Good_space.t ->
  golden:Macro_cell.vector ->
  Fault.Collapse.fault_class ->
  outcome

(** [run ~macro ~good classes] evaluates every class, building the nominal
    netlist and measuring the golden vector once. Classes are simulated on
    a {!Util.Pool} of [?jobs] worker domains (defaulting to the pool's
    process-wide setting); outcomes keep the input order, so the result is
    identical for any job count. With [~strict:true], containment is off:
    the first (lowest-indexed) unresolved class raises
    {!Simulation_failed} wrapped in [Util.Pool.Worker_failure].

    [?deadline] bounds {e each attempt} of each class's simulation in
    solver iterations and/or wall-clock seconds (see
    {!Util.Watchdog.limits}); the budget doubles with every escalated
    retry ([scale ~factor:(2^attempt)]). An expiry is retried along the
    ladder like a convergence failure and, if the ladder runs out,
    recorded as {!Unresolved} with the (deterministic) expiry message.
    Iteration caps preserve the any-job-count byte-identity contract;
    wall-clock caps are machine-dependent and best-effort.

    [?solver] picks the {!Circuit.Engine.solver} backend for the golden
    measurement and every class simulation. It defaults to the solver in
    effect at the call ({!Circuit.Engine.current_solver}), and is
    re-installed inside each pool worker — domain-local [with_solver]
    scopes do not propagate into worker domains on their own.

    [?resume] and [?on_outcome] are the checkpoint hooks (see
    [Core.Checkpoint]): [resume index] may return a previously persisted
    outcome for the class at [index] — it is used {e only} if its fault
    class equals the recomputed one, so a checkpoint from different
    inputs can never corrupt a run — and [on_outcome index o] is called
    for every freshly simulated outcome (from worker domains; the
    callback must synchronize internally). Restored classes count on the
    [classes_restored] telemetry counter instead of
    [classes_simulated]. *)
val run :
  ?jobs:int ->
  ?retries:int ->
  ?inject:injection ->
  ?deadline:Util.Watchdog.limits ->
  ?resume:(int -> outcome option) ->
  ?on_outcome:(int -> outcome -> unit) ->
  ?strict:bool ->
  ?solver:Circuit.Engine.solver ->
  macro:Macro_cell.t ->
  good:Good_space.t ->
  Fault.Collapse.fault_class list ->
  outcome list

(** [voltage_table outcomes] tabulates the share of faults (weighted by
    class magnitude) per voltage signature — one column of Table 2. *)
val voltage_table : outcome list -> (Signature.voltage * float) list

(** [current_table outcomes] — share of faults whose signature deviates in
    each current, plus the share with no current deviation (Table 3; the
    kind shares can sum to more than 1 because of overlap). *)
val current_table :
  outcome list -> (Signature.current_kind * float) list * float
