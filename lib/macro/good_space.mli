(** The good-signature space: per-measurement acceptance windows.

    The output of a fault-free analog macro varies with process, supply
    and temperature, so "different from good" means "outside the compiled
    window" (paper §2). The space is compiled by Monte-Carlo: the macro is
    rebuilt and measured across sampled dies, and each named measurement
    gets a k·σ window (k = 3 by default, the paper's setting). *)

type t

(** [compile ?n ?k ?spread ~tech macro prng] measures [n] Monte-Carlo dies
    (default 48, nominal included) and windows every measurement at
    [k]·σ (default 3). Measurements missing from some vectors are
    windowed over the vectors that do carry them. *)
val compile :
  ?n:int ->
  ?k:float ->
  ?spread:Process.Variation.spread ->
  tech:Process.Tech.t ->
  Macro_cell.t ->
  Util.Prng.t ->
  t

(** [window t name] — the acceptance window, if the measurement exists. *)
val window : t -> string -> Util.Stats.window option

(** [deviating t vector] lists the measurement names falling outside their
    windows (measurements without a compiled window are ignored). *)
val deviating : t -> Macro_cell.vector -> string list

(** [deviating_currents t vector] maps the deviating measurements onto the
    observable current kinds, deduplicated in declaration order. *)
val deviating_currents : t -> Macro_cell.vector -> Signature.current_kind list

(** [widen t ~name ~by] loosens one window (used to model extra spread,
    e.g. the flipflop leakage before the DfT redesign). Unknown names are
    a no-op. *)
val widen : t -> name:string -> by:float -> t

val measurements : t -> string list

(** {1 Serialization view}

    The compiled space is just its acceptance windows, so it can be
    persisted and restored exactly — [Core.Codec] uses this pair to
    round-trip a space through the result cache. *)

(** [windows t] — every measurement with its window, in compile order. *)
val windows : t -> (string * Util.Stats.window) list

(** [of_windows ws] rebuilds a space from {!windows} output;
    [of_windows (windows t) = t]. *)
val of_windows : (string * Util.Stats.window) list -> t

val pp : Format.formatter -> t -> unit
