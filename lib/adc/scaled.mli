(** Scalable-N flash-ADC analog core (generated).

    A parameterized workload for solver scaling studies: a reference
    ladder of [2^bits] segments between the converter's reference rails,
    with one long-channel readout NMOS per interior tap whose gate is
    coupled to the neighbouring tap. Connectivity is chain-local, so the
    MNA matrix is banded under the natural ordering and the circuit
    grows to thousands of unknowns while staying well-conditioned — the
    regime where O(n³) dense factorization separates from the banded
    kernel and from cross-class shared-nominal seeding. The measure
    procedure is a single DC operating point (plus the rail currents),
    so per-fault-class cost is dominated by the solves the
    shared-nominal path accelerates.

    This is a benchmarking/scaling macro: it runs through the full
    pipeline (layout synthesis, defect sprinkling, fault classes,
    signatures) like any other macro, but it models the converter's
    analog core in the large, not a calibrated slice of the case-study
    chip. *)

(** [taps bits] = [2^bits] ladder segments. *)
val taps : int -> int

(** Bench netlist at a process point: the core plus the two reference
    rail sources [VRH]/[VRL]. Unknown count is [2^bits + 3]. *)
val bench_netlist : bits:int -> Process.Variation.sample -> Circuit.Netlist.t

(** The full macro bundle for {!Core.Pipeline}-style analysis.
    @raise Invalid_argument unless [2 <= bits <= 14]. *)
val macro : bits:int -> unit -> Macro.Macro_cell.t
