(* Scalable-N flash-ADC analog core: a reference ladder of 2^bits
   segments with one readout MOSFET per interior tap, gate-coupled to the
   neighbouring tap. The netlist grows as 2^bits unknowns while keeping
   chain-local connectivity (tridiagonal-plus-gm structure), so it is the
   workload where the banded kernel and the cross-class shared-nominal
   factorization separate from the dense reference — the n³ term the
   37-node comparator is too small to expose. The measure procedure is a
   single DC operating point, so per-class cost is dominated by exactly
   the solves the shared-nominal path accelerates. *)

let segment_resistance = 125.0

let taps bits = Params.levels_of_bits bits

let readout_spec (s : Process.Variation.sample) =
  let p = Circuit.Mos_model.default_nmos in
  {
    Circuit.Netlist.polarity = Circuit.Mos_model.Nmos;
    params =
      {
        p with
        Circuit.Mos_model.vth = p.Circuit.Mos_model.vth +. s.vth_n_shift;
        kp = p.Circuit.Mos_model.kp *. s.beta_factor;
      };
    w = 2e-6;
    (* Long-channel: each tap sinks at most ~20 uA, so the active region
       near the driven rails stays shallow and the interior self-limits
       into cutoff — a nontrivial nonlinear profile at every size. *)
    l = 20e-6;
  }

let tap_name ~bits i =
  if i <= 0 then "vrl" else if i >= taps bits then "vrh"
  else Printf.sprintf "tap%d" i

let add_macro_devices ~bits (s : Process.Variation.sample) nl =
  let t = taps bits in
  let n i = Circuit.Netlist.node nl (tap_name ~bits i) in
  let r = segment_resistance *. s.Process.Variation.resistance_factor in
  for i = 0 to t - 1 do
    Circuit.Netlist.add_resistor nl
      ~name:(Printf.sprintf "RSEG%d" i)
      (n i) (n (i + 1)) r
  done;
  let spec = readout_spec s in
  for i = 1 to t - 1 do
    Circuit.Netlist.add_mosfet nl
      ~name:(Printf.sprintf "MRD%d" i)
      ~drain:(n i)
      ~gate:(n (i + 1))
      ~source:Circuit.Netlist.ground ~bulk:Circuit.Netlist.ground spec
  done

let layout_netlist ~bits () =
  let nl = Circuit.Netlist.create () in
  add_macro_devices ~bits (Process.Variation.nominal Process.Tech.cmos1um) nl;
  nl

let bench_netlist ~bits (s : Process.Variation.sample) =
  let nl = Circuit.Netlist.create () in
  add_macro_devices ~bits s nl;
  let n name = Circuit.Netlist.node nl name in
  Circuit.Netlist.add_vsource nl ~name:"VRH" ~pos:(n "vrh")
    ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc Params.vref_high);
  Circuit.Netlist.add_vsource nl ~name:"VRL" ~pos:(n "vrl")
    ~neg:Circuit.Netlist.ground
    (Circuit.Waveform.dc Params.vref_low);
  nl

(* Eight probe taps, evenly spread over the interior; deduplicated so
   small sizes degrade gracefully. *)
let watched_taps bits =
  let t = taps bits in
  List.sort_uniq compare
    (List.filter_map
       (fun k ->
         let i = k * t / 8 in
         if i >= 1 && i <= t - 1 then Some i else None)
       [ 1; 2; 3; 4; 5; 6; 7 ])

let measure ~bits nl =
  let sol = Circuit.Engine.dc_operating_point nl in
  let v name = Circuit.Engine.voltage sol (Circuit.Netlist.node nl name) in
  List.map
    (fun i ->
      let name = tap_name ~bits i in
      "v:" ^ name, v name)
    (watched_taps bits)
  @ [
      "iin:vrh", Circuit.Engine.source_current sol "VRH";
      "iin:vrl", Circuit.Engine.source_current sol "VRL";
    ]

(* Same shape as the ladder slice's classifier, against a quantum floored
   at 2 mV: at high resolutions one electrical LSB drops below what any
   DC probe distinguishes from process spread. *)
let classify_voltage ~bits ~golden ~faulty =
  let quantum = Float.max (Params.lsb_of_bits bits) 0.002 in
  let worst =
    List.fold_left
      (fun acc (name, value) ->
        match Macro.Signature.current_kind_of_measurement name with
        | Some _ -> acc
        | None ->
          (match Macro.Macro_cell.get_opt golden name with
          | Some g -> Float.max acc (Float.abs (value -. g))
          | None -> acc))
      0.0 faulty
  in
  if worst > 10.0 *. quantum then Macro.Signature.Output_stuck_at
  else if worst > 0.5 *. quantum then Macro.Signature.Offset_too_large
  else Macro.Signature.No_voltage_deviation

let track_order bits =
  List.init (taps bits + 1) (fun i -> tap_name ~bits i)

let macro ~bits () =
  if bits < 2 || bits > 14 then invalid_arg "Adc.Scaled.macro: bits in 2..14";
  {
    Macro.Macro_cell.name = Printf.sprintf "scaled-%db" bits;
    build = bench_netlist ~bits;
    cell =
      lazy
        (Layout.Synthesize.synthesize
           ~options:
             {
               Layout.Synthesize.default_options with
               track_order = track_order bits;
             }
           (layout_netlist ~bits ())
           ~name:(Printf.sprintf "scaled%db" bits));
    measure = measure ~bits;
    classify_voltage = (fun ~golden ~faulty -> classify_voltage ~bits ~golden ~faulty);
    instances = 1;
  }
