let bits = 8
let levels_of_bits bits =
  if bits < 1 || bits > 16 then invalid_arg "Adc.Params.levels_of_bits";
  1 lsl bits

let levels = levels_of_bits bits
let vdd = 5.0
let vref_low = 1.0
let vref_high = 3.0

let lsb_of_bits bits =
  (vref_high -. vref_low) /. float_of_int (levels_of_bits bits)

let lsb = lsb_of_bits bits
let offset_limit = 0.008
let phase = 200e-9
let period = 3.0 *. phase
let sim_step = 2e-9
let bias_tail = 1.50
let bias_latch = 1.55
let bias_ff_leak = 0.90
let bias_output_impedance = 50_000.0
let mid_sample = period +. (0.5 *. phase)
let mid_amplify = period +. (1.5 *. phase)
let mid_latch = period +. (2.5 *. phase)
let decision_time = (2.0 *. period) -. (0.05 *. phase)
