(** Shared electrical parameters of the case-study 8-bit flash ADC. *)

(** Number of output bits of the case-study converter (256 comparators /
    reference levels). *)
val bits : int

(** [levels_of_bits b] = [2^b] — reference levels of a [b]-bit flash
    converter. The scalable-N generators ({!Scaled}) compose off this.
    @raise Invalid_argument outside [1..16]. *)
val levels_of_bits : int -> int

val levels : int

(** Analog supply, V. *)
val vdd : float

(** Bottom and top of the reference ladder, V. *)
val vref_low : float

val vref_high : float

(** [lsb_of_bits b] — one least-significant bit of a [b]-bit converter in
    volts: (vref_high - vref_low)/2^b. *)
val lsb_of_bits : int -> float

(** One least-significant bit in volts: (vref_high - vref_low)/levels. *)
val lsb : float

(** Offset limit of the voltage signature classification, V (the paper's
    8 mV — about one LSB of the 2 V input range). *)
val offset_limit : float

(** Clock-phase duration, s (full conversion = 3 phases). *)
val phase : float

(** Full conversion period, s. *)
val period : float

(** Transient time step used in macro fault simulation, s. *)
val sim_step : float

(** Nominal bias-line levels, V. [bias_tail] and [bias_latch] are the
    "marginally different" pair the DfT discussion targets. *)
val bias_tail : float

val bias_latch : float

(** Gate bias of the flipflop leak device: slightly above the NMOS
    threshold, so its current varies strongly with process. *)
val bias_ff_leak : float

(** Output impedance of the bias generator lines, Ω (the comparator test
    bench drives bias lines through this resistance — shorting two
    almost-equal bias lines therefore moves almost no current). *)
val bias_output_impedance : float

(** Times (s) at which the three clock phases are stably mid-way —
    taken in the {e second} conversion cycle, after the flipflop has
    resolved from its power-up state: sampling, amplification,
    latching. *)
val mid_sample : float

val mid_amplify : float

val mid_latch : float

(** Time at which the comparator/flipflop decision is read, s. *)
val decision_time : float
