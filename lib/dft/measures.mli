(** The Design-for-Testability measures of §3.4 and their evaluation.

    Analysis of the undetectable faults shows two dominant escape
    mechanisms, each with a design fix:

    - {b flipflop redesign}: the flipflop's leak device makes the
      sampling-phase analog supply current spread so widely that faults
      with moderate IVdd deviations hide inside the acceptance window;
      removing the leak tightens the window;
    - {b bias-line exchange}: the amplifier and latch bias lines carry
      signals only ~50 mV apart and run on adjacent routing tracks;
      shorts between them change almost nothing observable. Re-ordering
      the tracks separates them with strongly different signals, so the
      shorts that do occur are detectable.

    [measure_set] builds the macro list with a chosen subset of measures
    applied, which the core pipeline re-runs to produce Fig. 5 (see
    [Core.Global.compare_coverage] — this library sits {e below} core in
    the dependency order, so the comparison lives up there). *)

type measure =
  | Leak_free_flipflop
  | Bias_line_exchange

val all_measures : measure list

val describe : measure -> string

(** The five macros with the given measures applied. *)
val macro_set : measures:measure list -> Macro.Macro_cell.t list

(** [original ()] = [macro_set ~measures:[]];
    [improved ()] = all measures. *)
val original : unit -> Macro.Macro_cell.t list

val improved : unit -> Macro.Macro_cell.t list

(** The general mixed-signal DfT guidelines the paper derives (§4). *)
val guidelines : string list
