type measure = Leak_free_flipflop | Bias_line_exchange

let all_measures = [ Leak_free_flipflop; Bias_line_exchange ]

let describe = function
  | Leak_free_flipflop ->
    "redesign the comparator flipflop to eliminate its leakage current, so \
     the sampling-phase IVdd acceptance window no longer hides faults"
  | Bias_line_exchange ->
    "exchange bias routing tracks so the two almost-equal bias lines are \
     separated by strongly different signals"

let macro_set ~measures =
  let options =
    {
      Adc.Comparator.leaky_flipflop = not (List.mem Leak_free_flipflop measures);
      bias_adjacent = not (List.mem Bias_line_exchange measures);
    }
  in
  [
    Adc.Comparator.macro options;
    Adc.Ladder.macro ();
    Adc.Bias_gen.macro ();
    Adc.Clock_gen.macro ();
    Adc.Decoder.macro ();
  ]

let original () = macro_set ~measures:[]
let improved () = macro_set ~measures:all_measures

let guidelines =
  [
    "Many faults disturb the boundary between analog and digital, raising \
     the quiescent current of the digital part: design the analog/digital \
     interface so the fault-free quiescent current is negligibly small, \
     then test it (IDDQ).";
    "Faults between lines carrying almost identical signals are very hard \
     to detect: do not route such lines next to each other.";
    "Keep process-sensitive leakage out of supply-current signatures: a \
     current that spreads widely in the fault-free circuit masks every \
     fault hiding inside its acceptance window.";
  ]
