(** Fault injection: apply a circuit-level fault model to a netlist.

    Injection always works on a deep copy — the golden netlist is never
    mutated. Injected elements use a reserved ["FLT_"] name prefix so they
    can be recognized in debug dumps. *)

(** [inject netlist fault] returns a faulty copy of [netlist].

    - [Bridge]: a resistor (and optional parallel capacitor) between the
      two nets.
    - [Node_split]: a fresh node; the listed far pins are reconnected to
      it. Pins absent from the netlist are ignored (they may belong to
      test-bench elements not present in this view).
    - [Gate_pinhole]: a resistor from the device's gate to its source or
      drain; [To_channel] splits the leak into two 2R halves to source
      and drain.
    - [Junction_leak]: a resistor from the net to the bulk rail net.
    - [Device_ds_short]: a resistor across the device's drain and source.
    - [Parasitic_mos]: a minimum-size NMOS between the two nets, gated by
      the bridging poly's net.

    @raise Invalid_argument when a referenced net or device does not
    exist in the netlist (a pipeline bug, not a fault property). *)
val inject : Circuit.Netlist.t -> Types.fault -> Circuit.Netlist.t

(** [inject_instance netlist instance] injects [instance.fault]. *)
val inject_instance : Circuit.Netlist.t -> Types.instance -> Circuit.Netlist.t

(** [is_fault_device name] — whether a device name carries the reserved
    ["FLT_"] injection prefix. [Circuit.Engine]'s shared-nominal path
    uses this predicate (passed in by [Macro.Evaluate]) to strip injected
    stamps from a faulty netlist and recover its nominal skeleton. *)
val is_fault_device : string -> bool

(** [stamp_expressible fault] — whether injecting [fault] only *adds*
    two-terminal R/C elements between pre-existing nodes. Such a fault's
    compiled MNA matrix is the nominal matrix plus a rank-≤2 symmetric
    perturbation (each added conductance g contributes
    g·(e_a−e_b)(e_a−e_b)ᵀ), which is what lets the engine seed its first
    Newton solve from a shared nominal factorization via rank-1 updates.
    False exactly for [Node_split] (changes the incidence structure and
    the unknown count) and [Parasitic_mos] (adds a nonlinear device). *)
val stamp_expressible : Types.fault -> bool
