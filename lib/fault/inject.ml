let require_node netlist net =
  if net = "0" then Circuit.Netlist.ground
  else
    match Circuit.Netlist.find_node netlist net with
    | Some n -> n
    | None ->
      invalid_arg (Printf.sprintf "Fault.Inject: unknown net %S" net)

let pin_node_opt netlist device role =
  try Some (Circuit.Netlist.pin_node netlist { Circuit.Netlist.device; role })
  with Not_found -> None

let require_pin netlist device role =
  match pin_node_opt netlist device role with
  | Some n -> n
  | None ->
    invalid_arg (Printf.sprintf "Fault.Inject: unknown pin %s.%s" device role)

let minimum_parasitic_spec =
  {
    Circuit.Netlist.polarity = Circuit.Mos_model.Nmos;
    params = Circuit.Mos_model.default_nmos;
    w = 2e-6;
    l = 1e-6;
  }

let inject netlist fault =
  let nl = Circuit.Netlist.copy netlist in
  (match (fault : Types.fault) with
  | Types.Bridge { net_a; net_b; resistance; capacitance; origin = _ } ->
    let a = require_node nl net_a and b = require_node nl net_b in
    if not (Circuit.Netlist.node_equal a b) then begin
      Circuit.Netlist.add_resistor nl ~name:"FLT_Rbridge" a b resistance;
      match capacitance with
      | Some c -> Circuit.Netlist.add_capacitor nl ~name:"FLT_Cbridge" a b c
      | None -> ()
    end
  | Types.Bridge_cluster { nets; resistance; capacitance; origin = _ } ->
    let sorted = List.sort_uniq compare nets in
    let rec chain index = function
      | a :: (b :: _ as rest) ->
        let na = require_node nl a and nb = require_node nl b in
        if not (Circuit.Netlist.node_equal na nb) then begin
          Circuit.Netlist.add_resistor nl
            ~name:(Printf.sprintf "FLT_Rcluster%d" index)
            na nb resistance;
          match capacitance with
          | Some c ->
            Circuit.Netlist.add_capacitor nl
              ~name:(Printf.sprintf "FLT_Ccluster%d" index)
              na nb c
          | None -> ()
        end;
        chain (index + 1) rest
      | [ _ ] | [] -> ()
    in
    chain 0 sorted
  | Types.Node_split { net; far_pins } ->
    let _ = require_node nl net in
    let fresh = Circuit.Netlist.fresh_node nl ("FLT_open_" ^ net) in
    List.iter
      (fun (device, role) ->
        match pin_node_opt nl device role with
        | Some _ ->
          Circuit.Netlist.reconnect nl { Circuit.Netlist.device; role } fresh
        | None -> ())
      far_pins
  | Types.Gate_pinhole { device; site; resistance } ->
    let gate = require_pin nl device "g" in
    (match site with
    | Types.To_source ->
      Circuit.Netlist.add_resistor nl ~name:"FLT_Rgox" gate
        (require_pin nl device "s") resistance
    | Types.To_drain ->
      Circuit.Netlist.add_resistor nl ~name:"FLT_Rgox" gate
        (require_pin nl device "d") resistance
    | Types.To_channel ->
      (* The channel leak reaches both junctions: two 2R halves. *)
      Circuit.Netlist.add_resistor nl ~name:"FLT_Rgox_s" gate
        (require_pin nl device "s") (2. *. resistance);
      Circuit.Netlist.add_resistor nl ~name:"FLT_Rgox_d" gate
        (require_pin nl device "d") (2. *. resistance))
  | Types.Junction_leak { net; bulk_net; resistance } ->
    Circuit.Netlist.add_resistor nl ~name:"FLT_Rjcn" (require_node nl net)
      (require_node nl bulk_net) resistance
  | Types.Device_ds_short { device; resistance } ->
    Circuit.Netlist.add_resistor nl ~name:"FLT_Rds"
      (require_pin nl device "d") (require_pin nl device "s") resistance
  | Types.Parasitic_mos { gate_net; net_a; net_b } ->
    Circuit.Netlist.add_mosfet nl ~name:"FLT_Mnew"
      ~drain:(require_node nl net_a) ~gate:(require_node nl gate_net)
      ~source:(require_node nl net_b) ~bulk:Circuit.Netlist.ground
      minimum_parasitic_spec);
  nl

let inject_instance netlist (instance : Types.instance) =
  inject netlist instance.fault

let fault_prefix = "FLT_"

let is_fault_device name =
  String.length name >= String.length fault_prefix
  && String.sub name 0 (String.length fault_prefix) = fault_prefix

let stamp_expressible (fault : Types.fault) =
  match fault with
  | Types.Bridge _ | Types.Bridge_cluster _ | Types.Gate_pinhole _
  | Types.Junction_leak _ | Types.Device_ds_short _ ->
    true
  | Types.Node_split _ | Types.Parasitic_mos _ -> false
