(** The catastrophic spot-defect simulator (VLASIC-style).

    Defects are sprinkled on the layout Monte-Carlo fashion: a mechanism
    is drawn from the line statistics, a diameter from its 1/x³ size law,
    and a position uniformly over the cell. Each spot is then analyzed
    geometrically against the extracted layout:

    - extra conducting material bridging shapes of distinct nets → short
      (or a drain-source device short, or a parasitic gate over a channel);
    - missing material severing a wire → open, with the severed-off pins
      computed by re-extracting the damaged layout;
    - gate-oxide pinholes over a channel → gate leak whose site follows
      the spot position along the channel;
    - junction pinholes over source/drain diffusion → leak to the bulk;
    - thick-oxide pinholes and extra contacts where two conducting layers
      cross vertically → resistive bridges;
    - missing contacts → opens through the lost cut.

    Spots that disturb nothing are benign (most are — that is why millions
    must be sprinkled). *)

type result = {
  sprinkled : int;     (** number of spots thrown *)
  effective : int;     (** spots that produced at least one fault *)
  instances : Fault.Types.instance list;  (** catastrophic faults, one per
      circuit-level consequence of an effective spot *)
}

(** [analyze ~tech ~cell ~netlist ~extraction mechanism circle] classifies
    one spot. The [extraction] must be of the pristine [cell]. Returns the
    (possibly empty) list of catastrophic fault instances. *)
val analyze :
  tech:Process.Tech.t ->
  cell:Layout.Cell.t ->
  netlist:Circuit.Netlist.t ->
  extraction:Layout.Extract.t ->
  Process.Defect_stats.mechanism ->
  Geometry.Circle.t ->
  Fault.Types.instance list

(** Default draws per chunk ([1000]). *)
val default_chunk_size : int

(** [run ~tech ~stats ~cell ~netlist prng ~n] sprinkles [n] spots and
    collects the effective ones. The draws are partitioned into
    [?chunk_size]-draw chunks (default {!default_chunk_size}), each
    consuming its own [Util.Prng.split] stream, and the chunks run on a
    {!Util.Pool} of [?jobs] worker domains (defaulting to the pool's
    process-wide setting). Because the partition and the stream
    assignment depend only on [n] and [chunk_size] and the PRNG state —
    never on the job count — the result is bit-identical for any
    [?jobs]. Large-[n] runs on big layouts can raise [chunk_size] to
    amortize pool dispatch overhead; note the chunk size is part of the
    stream assignment, so a different value is a different (equally
    valid) defect sample.
    @raise Invalid_argument when [n] or [chunk_size] is not positive. *)
val run :
  ?jobs:int ->
  ?chunk_size:int ->
  tech:Process.Tech.t ->
  stats:Process.Defect_stats.t ->
  cell:Layout.Cell.t ->
  netlist:Circuit.Netlist.t ->
  Util.Prng.t ->
  n:int ->
  result
