type result = {
  sprinkled : int;
  effective : int;
  instances : Fault.Types.instance list;
}

let src = Logs.Src.create "dotest.defect" ~doc:"spot-defect simulator"

module Log = (val Logs.src_log src : Logs.LOG)

(* Shapes of the cell hit by the disc, as (shape, net option) pairs. *)
let hits ~cell ~extraction circle =
  let acc = ref [] in
  Geometry.Spatial_index.query_circle (Layout.Cell.index cell) circle
    (fun _ id ->
      let s = Layout.Cell.shape cell id in
      acc := (s, Layout.Extract.net_of_shape extraction id) :: !acc);
  !acc

let net_label extraction net = Layout.Extract.net_name extraction net

(* Distinct named nets among hits filtered by [keep]. *)
let named_nets ~extraction hits keep =
  List.filter_map
    (fun ((s : Layout.Cell.shape), net) ->
      match net with
      | Some g when keep s -> net_label extraction g
      | Some _ | None -> None)
    hits
  |> List.sort_uniq compare

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> x, y) rest @ pairs rest

(* --- extra material --------------------------------------------------- *)

let analyze_extra_material ~tech ~netlist ~extraction layer hits_all mechanism =
  let on_layer (s : Layout.Cell.shape) = Process.Layer.equal s.layer layer in
  let instance fault =
    { Fault.Types.fault; severity = Fault.Types.Catastrophic; mechanism }
  in
  (* Drain-source short: an active spot touching both junctions of one
     device. *)
  let ds_shorted_devices =
    if not (Process.Layer.equal layer Process.Layer.Active) then []
    else begin
      let touched = Hashtbl.create 4 in
      List.iter
        (fun ((s : Layout.Cell.shape), _) ->
          match s.owner with
          | Layout.Cell.Device_terminal { device; terminal = ("s" | "d") as t }
            when on_layer s ->
            let seen = try Hashtbl.find touched device with Not_found -> [] in
            if not (List.mem t seen) then Hashtbl.replace touched device (t :: seen)
          | Layout.Cell.Device_terminal _ | Layout.Cell.Wire _
          | Layout.Cell.Gate _ | Layout.Cell.Channel _ | Layout.Cell.Cut _ -> ())
        hits_all;
      Hashtbl.fold
        (fun device seen acc -> if List.length seen = 2 then device :: acc else acc)
        touched []
      |> List.sort compare
    end
  in
  match ds_shorted_devices with
  | _ :: _ ->
    List.map
      (fun device ->
        instance
          (Fault.Types.Device_ds_short
             { device; resistance = tech.Process.Tech.shorted_device_resistance }))
      ds_shorted_devices
  | [] ->
    let nets = named_nets ~extraction hits_all on_layer in
    (match nets with
    | [ net_a; net_b ] ->
      let resistance = tech.Process.Tech.short_resistance layer in
      [
        instance
          (Fault.Types.Bridge
             { net_a; net_b; resistance; capacitance = None;
               origin = Fault.Types.Short });
      ]
    | _ :: _ :: _ ->
      (* One spot merging three or more nets is a single compound fault:
         splitting it into independent pairs would let an undetectable
         pair hide the detectable whole. *)
      let resistance = tech.Process.Tech.short_resistance layer in
      [
        instance
          (Fault.Types.Bridge_cluster
             { nets; resistance; capacitance = None;
               origin = Fault.Types.Short });
      ]
    | nets_hit ->
      (* Parasitic device: an extra poly spot over a channel, reaching a
         poly net other than the device's own gate. *)
      if not (Process.Layer.equal layer Process.Layer.Poly) then []
      else begin
        let channels =
          List.filter_map
            (fun ((s : Layout.Cell.shape), _) ->
              match s.owner with
              | Layout.Cell.Channel { device } -> Some device
              | Layout.Cell.Device_terminal _ | Layout.Cell.Wire _
              | Layout.Cell.Gate _ | Layout.Cell.Cut _ -> None)
            hits_all
          |> List.sort_uniq compare
        in
        List.concat_map
          (fun device ->
            let own_gate_net =
              try
                Some
                  (Circuit.Netlist.node_name netlist
                     (Circuit.Netlist.pin_node netlist
                        { Circuit.Netlist.device; role = "g" }))
              with Not_found -> None
            in
            let foreign =
              List.filter (fun n -> Some n <> own_gate_net) nets_hit
            in
            match foreign with
            | gate_net :: _ ->
              (try
                 let net_of role =
                   Circuit.Netlist.node_name netlist
                     (Circuit.Netlist.pin_node netlist
                        { Circuit.Netlist.device; role })
                 in
                 [
                   instance
                     (Fault.Types.Parasitic_mos
                        { gate_net; net_a = net_of "d"; net_b = net_of "s" });
                 ]
               with Not_found -> [])
            | [] -> [])
          channels
      end)

(* --- missing material / missing contact ------------------------------- *)

(* Pins carried by a shape. *)
let pins_of_shape (s : Layout.Cell.shape) =
  match s.owner with
  | Layout.Cell.Device_terminal { device; terminal } -> [ device, terminal ]
  | Layout.Cell.Gate { device } -> [ device, "g" ]
  | Layout.Cell.Wire _ | Layout.Cell.Channel _ | Layout.Cell.Cut _ -> []

(* Classify the net splits caused by removing [removed] shape ids. *)
let open_faults ~cell ~extraction ~removed mechanism =
  let affected_nets =
    List.filter_map (Layout.Extract.net_of_shape extraction) removed
    |> List.sort_uniq compare
  in
  if affected_nets = [] then []
  else begin
    let damaged = Layout.Extract.extract_without cell ~removed in
    List.filter_map
      (fun net ->
        let name =
          match net_label extraction net with
          | Some n -> n
          | None -> "?"
        in
        let member_ids = Layout.Extract.shapes_of_net extraction net in
        (* Pins of the original net, keyed by the damaged-extraction group
           they now belong to; pins on removed shapes have no group. *)
        let pin_groups =
          List.concat_map
            (fun id ->
              let s = Layout.Cell.shape cell id in
              List.map
                (fun pin -> pin, Layout.Extract.net_of_shape damaged id)
                (pins_of_shape s))
            member_ids
        in
        if pin_groups = [] then None
        else begin
          (* The anchor group — the side that remains "the net" — is the
             damaged group holding the largest area of the net's labelled
             wiring (ports and external connections live on the routing
             tracks). All pins outside it are cut off. *)
          let area_by_group = Hashtbl.create 4 in
          List.iter
            (fun id ->
              let s = Layout.Cell.shape cell id in
              match s.owner, Layout.Extract.net_of_shape damaged id with
              | Layout.Cell.Wire label, Some g when label = name ->
                let prev = try Hashtbl.find area_by_group g with Not_found -> 0 in
                Hashtbl.replace area_by_group g (prev + Geometry.Rect.area s.rect)
              | ( ( Layout.Cell.Wire _ | Layout.Cell.Device_terminal _
                  | Layout.Cell.Gate _ | Layout.Cell.Channel _ | Layout.Cell.Cut _ ),
                  _ ) -> ())
            member_ids;
          let anchor =
            Hashtbl.fold
              (fun g area best ->
                match best with
                | Some (_, best_area) when best_area >= area -> best
                | Some _ | None -> Some (g, area))
              area_by_group None
            |> Option.map fst
          in
          let far_pins =
            List.filter_map
              (fun (pin, group) ->
                match group, anchor with
                | Some g, Some a when g = a -> None
                | (Some _ | None), _ -> Some pin)
              pin_groups
            |> List.sort_uniq compare
          in
          if far_pins = [] then None
          else
            Some
              {
                Fault.Types.fault = Fault.Types.Node_split { net = name; far_pins };
                severity = Fault.Types.Catastrophic;
                mechanism;
              }
        end)
      affected_nets
  end

let analyze_missing_material ~cell ~extraction layer hits_all circle mechanism =
  let severed =
    List.filter_map
      (fun ((s : Layout.Cell.shape), _) ->
        if not (Process.Layer.equal s.layer layer) then None
        else begin
          (* The hole must span the wire's narrow dimension to sever it. *)
          let axis =
            if Geometry.Rect.width s.rect <= Geometry.Rect.height s.rect then `X
            else `Y
          in
          if Geometry.Circle.covers_rect_span circle s.rect ~axis then Some s.id
          else None
        end)
      hits_all
  in
  if severed = [] then [] else open_faults ~cell ~extraction ~removed:severed mechanism

let analyze_missing_contact ~cell ~extraction hits_all circle mechanism =
  let killed =
    List.filter_map
      (fun ((s : Layout.Cell.shape), _) ->
        match s.owner with
        | Layout.Cell.Cut _
          when Geometry.Circle.covers_rect_span circle s.rect ~axis:`X
               || Geometry.Circle.covers_rect_span circle s.rect ~axis:`Y ->
          Some s.id
        | Layout.Cell.Cut _ | Layout.Cell.Wire _ | Layout.Cell.Device_terminal _
        | Layout.Cell.Gate _ | Layout.Cell.Channel _ -> None)
      hits_all
  in
  if killed = [] then [] else open_faults ~cell ~extraction ~removed:killed mechanism

(* --- pinholes ---------------------------------------------------------- *)

let analyze_gate_oxide ~tech hits_all circle mechanism =
  List.filter_map
    (fun ((s : Layout.Cell.shape), _) ->
      match s.owner with
      | Layout.Cell.Channel { device }
        when Process.Layer.equal s.layer Process.Layer.Active ->
        (* The leak lands where the spot sits along the channel: source
           third, drain third, or the middle. *)
        let x0 = (Geometry.Rect.center s.rect |> fst) in
        let w = Geometry.Rect.width s.rect in
        let dx = circle.Geometry.Circle.cx - x0 in
        let site =
          if dx * 3 < -w / 2 then Fault.Types.To_source
          else if dx * 3 > w / 2 then Fault.Types.To_drain
          else Fault.Types.To_channel
        in
        Some
          {
            Fault.Types.fault =
              Fault.Types.Gate_pinhole
                { device; site;
                  resistance = tech.Process.Tech.gate_oxide_pinhole_resistance };
            severity = Fault.Types.Catastrophic;
            mechanism;
          }
      | Layout.Cell.Channel _ | Layout.Cell.Wire _ | Layout.Cell.Device_terminal _
      | Layout.Cell.Gate _ | Layout.Cell.Cut _ -> None)
    hits_all

let analyze_junction ~tech ~netlist ~extraction hits_all mechanism =
  List.filter_map
    (fun ((s : Layout.Cell.shape), net) ->
      match s.owner, net with
      | Layout.Cell.Device_terminal { device; terminal = "s" | "d" }, Some g
        when Process.Layer.equal s.layer Process.Layer.Active ->
        (match net_label extraction g with
        | None -> None
        | Some name ->
          let bulk_net =
            try
              Circuit.Netlist.node_name netlist
                (Circuit.Netlist.pin_node netlist
                   { Circuit.Netlist.device; role = "b" })
            with Not_found -> "0"
          in
          if bulk_net = name then None
          else
            Some
              {
                Fault.Types.fault =
                  Fault.Types.Junction_leak
                    { net = name; bulk_net;
                      resistance = tech.Process.Tech.junction_pinhole_resistance };
                severity = Fault.Types.Catastrophic;
                mechanism;
              })
      | ( ( Layout.Cell.Device_terminal _ | Layout.Cell.Wire _ | Layout.Cell.Gate _
          | Layout.Cell.Channel _ | Layout.Cell.Cut _ ),
          _ ) -> None)
    hits_all
  |> List.sort_uniq compare

(* Vertical bridges: two conducting shapes of distinct nets on different
   layers, both under the spot, that geometrically overlap each other. *)
let vertical_bridges ~extraction hits_all ~adjacent_only =
  let conducting =
    List.filter_map
      (fun ((s : Layout.Cell.shape), net) ->
        match net with
        | Some g when Process.Layer.is_conducting s.layer ->
          (match net_label extraction g with
          | Some name -> Some (s, name)
          | None -> None)
        | Some _ | None -> None)
      hits_all
  in
  let layer_rank = function
    | Process.Layer.Active -> 0
    | Process.Layer.Poly -> 0  (* same level: poly and active both sit under metal1 *)
    | Process.Layer.Metal1 -> 1
    | Process.Layer.Metal2 -> 2
    | Process.Layer.Nwell | Process.Layer.Contact | Process.Layer.Via -> -1
  in
  pairs conducting
  |> List.filter_map (fun ((sa, na), (sb, nb)) ->
         if na = nb then None
         else begin
           let ra = layer_rank sa.Layout.Cell.layer
           and rb = layer_rank sb.Layout.Cell.layer in
           let adjacent = abs (ra - rb) = 1 in
           let crosses =
             Geometry.Rect.overlaps sa.Layout.Cell.rect sb.Layout.Cell.rect
           in
           if ra <> rb && crosses && ((not adjacent_only) || adjacent) then
             Some (na, nb)
           else None
         end)
  |> List.sort_uniq compare

let analyze_thick_oxide ~tech ~extraction hits_all mechanism =
  vertical_bridges ~extraction hits_all ~adjacent_only:false
  |> List.map (fun (net_a, net_b) ->
         {
           Fault.Types.fault =
             Fault.Types.Bridge
               { net_a; net_b;
                 resistance = tech.Process.Tech.thick_oxide_pinhole_resistance;
                 capacitance = None;
                 origin = Fault.Types.Thick_oxide_pinhole };
           severity = Fault.Types.Catastrophic;
           mechanism;
         })

let analyze_extra_contact ~tech ~extraction hits_all mechanism =
  vertical_bridges ~extraction hits_all ~adjacent_only:true
  |> List.map (fun (net_a, net_b) ->
         {
           Fault.Types.fault =
             Fault.Types.Bridge
               { net_a; net_b;
                 resistance = tech.Process.Tech.extra_contact_resistance;
                 capacitance = None;
                 origin = Fault.Types.Extra_contact };
           severity = Fault.Types.Catastrophic;
           mechanism;
         })

(* --- entry points ------------------------------------------------------ *)

let analyze ~tech ~cell ~netlist ~extraction mechanism circle =
  let hits_all = hits ~cell ~extraction circle in
  if hits_all = [] then []
  else
    match (mechanism : Process.Defect_stats.mechanism) with
    | Process.Defect_stats.Extra_material layer ->
      analyze_extra_material ~tech ~netlist ~extraction layer hits_all mechanism
    | Process.Defect_stats.Missing_material layer ->
      analyze_missing_material ~cell ~extraction layer hits_all circle mechanism
    | Process.Defect_stats.Gate_oxide_pinhole ->
      analyze_gate_oxide ~tech hits_all circle mechanism
    | Process.Defect_stats.Junction_pinhole ->
      analyze_junction ~tech ~netlist ~extraction hits_all mechanism
    | Process.Defect_stats.Thick_oxide_pinhole ->
      analyze_thick_oxide ~tech ~extraction hits_all mechanism
    | Process.Defect_stats.Extra_contact ->
      analyze_extra_contact ~tech ~extraction hits_all mechanism
    | Process.Defect_stats.Missing_contact ->
      analyze_missing_contact ~cell ~extraction hits_all circle mechanism

(* Draws are partitioned into fixed-size chunks; the partition depends only
   on [n] and the chunk size, never on the job count. Each chunk consumes
   its own split PRNG stream and chunk results are merged in chunk order,
   so the output is bit-identical whether the chunks run on one domain or
   eight. The chunk size itself is part of the stream assignment: changing
   it re-partitions the draws over split streams and yields a different
   (equally valid) defect sample. *)
let default_chunk_size = 1_000

let run ?jobs ?(chunk_size = default_chunk_size) ~tech ~stats ~cell ~netlist
    prng ~n =
  if n <= 0 then invalid_arg "Defect.Simulate.run: n must be positive";
  if chunk_size <= 0 then
    invalid_arg "Defect.Simulate.run: chunk_size must be positive";
  let extraction = Layout.Extract.extract cell in
  let bounds = Layout.Cell.bounds cell in
  let margin = 4_000 in
  let field = Geometry.Rect.inflate bounds margin in
  let x0 = fst (Geometry.Rect.center field) - (Geometry.Rect.width field / 2) in
  let y0 = snd (Geometry.Rect.center field) - (Geometry.Rect.height field / 2) in
  (* Split streams are drawn sequentially from the caller's generator, one
     per chunk, before any worker starts. *)
  let streams =
    Util.Pool.chunk_ranges ~n ~chunk_size
    |> List.map (fun (_, length) -> Util.Prng.split prng, length)
  in
  let sprinkle_chunk (rng, length) =
    let effective = ref 0 in
    let instances = ref [] in
    for _ = 1 to length do
      let mechanism = Process.Defect_stats.sample_mechanism stats rng in
      let diameter = Process.Defect_stats.sample_size stats rng mechanism in
      let cx = x0 + Util.Prng.int rng (Geometry.Rect.width field) in
      let cy = y0 + Util.Prng.int rng (Geometry.Rect.height field) in
      let circle = Geometry.Circle.create ~cx ~cy ~radius:(diameter /. 2.) in
      match analyze ~tech ~cell ~netlist ~extraction mechanism circle with
      | [] -> ()
      | faults ->
        incr effective;
        instances := List.rev_append faults !instances
    done;
    !effective, List.rev !instances
  in
  let per_chunk =
    Util.Pool.parallel_mapi ?jobs
      (fun chunk stream ->
        Util.Telemetry.with_span
          ~attrs:
            [
              "chunk", Util.Telemetry.Int chunk;
              "draws", Util.Telemetry.Int (snd stream);
            ]
          "sprinkle.chunk"
        @@ fun () ->
        let (effective, instances) as result = sprinkle_chunk stream in
        Util.Telemetry.count ~by:(snd stream) "samples_drawn";
        Util.Telemetry.count ~by:effective "defects_effective";
        Util.Telemetry.count ~by:(List.length instances) "fault_instances";
        Util.Telemetry.add_span_attrs
          [ "effective", Util.Telemetry.Int effective ];
        result)
      streams
  in
  let effective = List.fold_left (fun acc (e, _) -> acc + e) 0 per_chunk in
  let instances = List.concat_map snd per_chunk in
  Log.info (fun m ->
      m "sprinkled %d defects on %s: %d effective" n (Layout.Cell.name cell)
        effective);
  { sprinkled = n; effective; instances }
