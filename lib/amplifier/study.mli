(** The amplifier defect study: which simple test family catches what.

    Reproduces the structure of the paper's reference experiment (its
    ref. [6]): sprinkle defects on the amplifier, collapse, fault-simulate
    every class, and tabulate detection per measurement family — DC,
    transient, AC and current — plus the combined coverage and the
    escapes. A fault is detected by a family when at least one of that
    family's measurements leaves its good-space window. *)

type fault_report = {
  fault_class : Fault.Collapse.fault_class;
  families : Class_ab.family list;  (** families that detect it *)
}

type result = {
  analysis : Core.Pipeline.macro_analysis;
  reports : fault_report list;  (** catastrophic classes, pipeline order *)
}

(** [run ?config ()] — the full study (defaults to
    {!Core.Pipeline.Config.default}). *)
val run : ?config:Core.Pipeline.Config.t -> unit -> result

(** Magnitude-weighted share of faults each family detects. *)
val family_coverage : result -> (Class_ab.family * float) list

(** Share caught by at least one family. *)
val coverage : result -> float

(** Share caught by exactly one family (and which). *)
val exclusive_coverage : result -> (Class_ab.family * float) list

(** Render the study as a table: per-family, exclusive, combined. *)
val report_table : result -> Util.Table.t
