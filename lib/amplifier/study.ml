type fault_report = {
  fault_class : Fault.Collapse.fault_class;
  families : Class_ab.family list;
}

type result = {
  analysis : Core.Pipeline.macro_analysis;
  reports : fault_report list;
}

let families_of_deviations names =
  List.filter_map Class_ab.family_of_measurement names
  |> List.sort_uniq compare
  |> fun found -> List.filter (fun f -> List.mem f found) Class_ab.all_families

let run ?(config = Core.Pipeline.Config.default) () =
  let macro = Class_ab.macro () in
  let analysis = Core.Pipeline.analyze config macro in
  let nominal =
    macro.Macro.Macro_cell.build
      (Process.Variation.nominal config.Core.Pipeline.Config.tech)
  in
  let report fc =
    let faulty =
      Fault.Inject.inject_instance nominal fc.Fault.Collapse.representative
    in
    let families =
      match macro.Macro.Macro_cell.measure faulty with
      | vector ->
        families_of_deviations
          (Macro.Good_space.deviating analysis.Core.Pipeline.good vector)
      | exception Circuit.Engine.No_convergence _ ->
        (* Gross defect: every family sees it. *)
        Class_ab.all_families
    in
    { fault_class = fc; families }
  in
  { analysis; reports = List.map report analysis.classes_catastrophic }

let total_weight reports =
  float_of_int
    (max 1
       (List.fold_left
          (fun acc r -> acc + r.fault_class.Fault.Collapse.count)
          0 reports))

let share_where result pred =
  let weight =
    List.fold_left
      (fun acc r ->
        if pred r then acc + r.fault_class.Fault.Collapse.count else acc)
      0 result.reports
  in
  float_of_int weight /. total_weight result.reports

let family_coverage result =
  List.map
    (fun family ->
      family, share_where result (fun r -> List.mem family r.families))
    Class_ab.all_families

let coverage result = share_where result (fun r -> r.families <> [])

let exclusive_coverage result =
  List.map
    (fun family ->
      family, share_where result (fun r -> r.families = [ family ]))
    Class_ab.all_families

let report_table result =
  let t =
    Util.Table.create
      ~columns:
        [
          "test family", Util.Table.Left;
          "detects", Util.Table.Right;
          "only this family", Util.Table.Right;
        ]
  in
  List.iter2
    (fun (family, total) (_, exclusive) ->
      Util.Table.add_row t
        [
          Class_ab.family_name family;
          Util.Table.cell_pct (100. *. total);
          Util.Table.cell_pct (100. *. exclusive);
        ])
    (family_coverage result)
    (exclusive_coverage result);
  Util.Table.add_separator t;
  Util.Table.add_row t
    [ "combined"; Util.Table.cell_pct (100. *. coverage result); "" ];
  Util.Table.add_row t
    [
      "escapes";
      Util.Table.cell_pct (100. *. (1.0 -. coverage result));
      "";
    ];
  t
