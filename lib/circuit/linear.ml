exception Singular

let matrix n = Array.make_matrix n n 0.0

(* --- LU kernels -------------------------------------------------------- *)

(* Relative singularity test. A pivot is only "zero" relative to the
   magnitude of the matrix it came from: MNA systems legitimately mix
   fA-capacitor stamps with mho-scale short conductances, and an absolute
   threshold (the historical 1e-300) spuriously rejects well-conditioned
   but badly-scaled systems. 1e-30 is far below any double-precision
   rank-revealing bound (eps ~ 2e-16), so only genuinely rank-deficient
   eliminations trip it; gmin-conditioned systems with condition numbers
   around 1e12-1e16 still pass. *)
let relative_pivot_floor = 1e-30

let matrix_scale a =
  let n = Array.length a in
  let scale = ref 0.0 in
  for i = 0 to n - 1 do
    let row = a.(i) in
    for j = 0 to n - 1 do
      let m = Float.abs (Array.unsafe_get row j) in
      if m > !scale then scale := m
    done
  done;
  !scale

(* Dense LU with partial pivoting, in place: on return [a] holds the
   multipliers below the diagonal and U on and above it, and [piv.(k)] is
   the row swapped into position k at step k. The arithmetic (operation
   order included) is exactly the historical fused eliminate-and-solve
   loop with the right-hand-side work split out, so [solve] results are
   bit-identical to the pre-factorization implementation. *)
let factor_in_place a piv =
  let n = Array.length a in
  let threshold = relative_pivot_floor *. matrix_scale a in
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    let pivot_mag = ref (Float.abs a.(k).(k)) in
    for i = k + 1 to n - 1 do
      let mag = Float.abs a.(i).(k) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    (* [not (> threshold)] also rejects NaN pivots. *)
    if not (!pivot_mag > threshold) then raise Singular;
    piv.(k) <- !pivot_row;
    if !pivot_row <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!pivot_row);
      a.(!pivot_row) <- tmp
    end;
    let row_k = a.(k) in
    let akk = row_k.(k) in
    for i = k + 1 to n - 1 do
      let row_i = a.(i) in
      let factor = Array.unsafe_get row_i k /. akk in
      Array.unsafe_set row_i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          Array.unsafe_set row_i j
            (Array.unsafe_get row_i j -. (factor *. Array.unsafe_get row_k j))
        done
    done
  done

(* Substitution against factors produced by [factor_in_place]. Pivot
   swaps exchanged full rows (stored multipliers included), so all swaps
   are applied to [b] first and the forward pass then runs over clean
   triangular factors — for each element this subtracts the same
   multiplier·value products in the same column order as the historical
   fused eliminate-and-solve loop, so results are bit-identical to it. *)
let substitute_in_place a piv b =
  let n = Array.length b in
  for k = 0 to n - 1 do
    if piv.(k) <> k then begin
      let t = b.(k) in
      b.(k) <- b.(piv.(k));
      b.(piv.(k)) <- t
    end
  done;
  for k = 0 to n - 1 do
    let bk = Array.unsafe_get b k in
    for i = k + 1 to n - 1 do
      let l = Array.unsafe_get (Array.unsafe_get a i) k in
      if l <> 0. then
        Array.unsafe_set b i (Array.unsafe_get b i -. (l *. bk))
    done
  done;
  for i = n - 1 downto 0 do
    let row = a.(i) in
    let sum = ref (Array.unsafe_get b i) in
    for j = i + 1 to n - 1 do
      sum := !sum -. (Array.unsafe_get row j *. Array.unsafe_get b j)
    done;
    Array.unsafe_set b i (!sum /. Array.unsafe_get row i)
  done

let solve a b =
  let n = Array.length b in
  if Array.length a <> n || (n > 0 && Array.length a.(0) <> n) then
    invalid_arg "Linear.solve: shape mismatch";
  let piv = Array.make n 0 in
  factor_in_place a piv;
  substitute_in_place a piv b;
  b

(* --- banded kernels ---------------------------------------------------- *)

(* The banded variants store the matrix densely but bound every loop by
   the band: partial pivoting within the lower band widens the effective
   upper bandwidth to at most bl + bu (the standard growth bound), which
   callers pass as [bu_eff]. Unlike the dense kernel, pivot swaps
   exchange only the *active* columns [k .. k+bu_eff]: swapping full rows
   would drag already-stored multipliers of earlier columns below the
   lower band where band-limited substitution never visits them. Each
   multiplier column thus stays attached to its elimination step, and
   substitution replays the swaps in step order (the LAPACK dgbtrf/dgbtrs
   scheme). *)
let band_limits a =
  let n = Array.length a in
  let bl = ref 0 and bu = ref 0 in
  for i = 0 to n - 1 do
    let row = a.(i) in
    for j = 0 to n - 1 do
      if row.(j) <> 0.0 then
        if i > j then bl := max !bl (i - j) else bu := max !bu (j - i)
    done
  done;
  !bl, !bu

let factor_banded_in_place a piv ~bl ~bu_eff =
  let n = Array.length a in
  let threshold = relative_pivot_floor *. matrix_scale a in
  for k = 0 to n - 1 do
    let ihi = min (n - 1) (k + bl) in
    let pivot_row = ref k in
    let pivot_mag = ref (Float.abs a.(k).(k)) in
    for i = k + 1 to ihi do
      let mag = Float.abs a.(i).(k) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if not (!pivot_mag > threshold) then raise Singular;
    piv.(k) <- !pivot_row;
    let jhi = min (n - 1) (k + bu_eff) in
    if !pivot_row <> k then begin
      let rk = a.(k) and rp = a.(!pivot_row) in
      for j = k to jhi do
        let t = rk.(j) in
        rk.(j) <- rp.(j);
        rp.(j) <- t
      done
    end;
    let row_k = a.(k) in
    let akk = row_k.(k) in
    for i = k + 1 to ihi do
      let row_i = a.(i) in
      let factor = Array.unsafe_get row_i k /. akk in
      Array.unsafe_set row_i k factor;
      if factor <> 0. then
        for j = k + 1 to jhi do
          Array.unsafe_set row_i j
            (Array.unsafe_get row_i j -. (factor *. Array.unsafe_get row_k j))
        done
    done
  done

let substitute_banded_in_place a piv ~bl ~bu_eff b =
  let n = Array.length b in
  for k = 0 to n - 1 do
    if piv.(k) <> k then begin
      let t = b.(k) in
      b.(k) <- b.(piv.(k));
      b.(piv.(k)) <- t
    end;
    let ihi = min (n - 1) (k + bl) in
    let bk = Array.unsafe_get b k in
    for i = k + 1 to ihi do
      let l = Array.unsafe_get (Array.unsafe_get a i) k in
      if l <> 0. then
        Array.unsafe_set b i (Array.unsafe_get b i -. (l *. bk))
    done
  done;
  for i = n - 1 downto 0 do
    let row = a.(i) in
    let sum = ref (Array.unsafe_get b i) in
    let jhi = min (n - 1) (i + bu_eff) in
    for j = i + 1 to jhi do
      sum := !sum -. (Array.unsafe_get row j *. Array.unsafe_get b j)
    done;
    Array.unsafe_set b i (!sum /. Array.unsafe_get row i)
  done

(* --- reverse Cuthill-McKee --------------------------------------------- *)

let rcm ~n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a <> b && a >= 0 && a < n && b >= 0 && b < n then begin
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b)
      end)
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  let degree i = List.length adj.(i) in
  (* Neighbours are visited lowest-degree first; ties break on the index,
     so the ordering is a pure function of the graph. *)
  let by_degree =
    Array.map
      (fun l -> List.sort (fun a b -> compare (degree a, a) (degree b, b)) l)
      adj
  in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let filled = ref 0 in
  let queue = Queue.create () in
  let push v =
    if not visited.(v) then begin
      visited.(v) <- true;
      Queue.add v queue
    end
  in
  let rec component () =
    (* Start each component from its minimum-degree vertex. *)
    let start = ref (-1) in
    for i = n - 1 downto 0 do
      if not visited.(i) && (!start < 0 || (degree i, i) <= (degree !start, !start))
      then start := i
    done;
    if !start >= 0 then begin
      push !start;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order.(!filled) <- v;
        incr filled;
        List.iter push by_degree.(v)
      done;
      component ()
    end
  in
  component ();
  (* Reverse the Cuthill-McKee order: position i holds the original index
     placed there. *)
  Array.init n (fun i -> order.(n - 1 - i))

let bandwidth_under ~perm edges =
  let n = Array.length perm in
  let inv = Array.make n 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  List.fold_left
    (fun acc (a, b) ->
      if a >= 0 && a < n && b >= 0 && b < n then
        max acc (abs (inv.(a) - inv.(b)))
      else acc)
    0 edges

(* --- persistent factorizations ----------------------------------------- *)

module Factor = struct
  type base =
    | Dense_lu of { lu : float array array; piv : int array }
    | Band_lu of {
        lu : float array array;
        piv : int array;
        perm : int array;
        bl : int;
        bu_eff : int;
      }

  (* One Sherman-Morrison term: solving through the update costs a dot
     product and an axpy on top of the base substitution. [w] is the
     base (plus earlier updates) solve of c*u; [denom] = 1 + v.w. *)
  type update = { w : float array; v : float array; denom : float }

  type t = { n : int; base : base; ups : update list }

  let size t = t.n
  let updates t = List.length t.ups
  let is_banded t = match t.base with Band_lu _ -> true | Dense_lu _ -> false

  let factor ?permute a =
    let n = Array.length a in
    if n > 0 && Array.length a.(0) <> n then
      invalid_arg "Linear.Factor.factor: square matrix expected";
    match permute with
    | None ->
      let lu = Array.map Array.copy a in
      let piv = Array.make n 0 in
      factor_in_place lu piv;
      { n; base = Dense_lu { lu; piv }; ups = [] }
    | Some perm ->
      if Array.length perm <> n then
        invalid_arg "Linear.Factor.factor: permutation size mismatch";
      let lu = Array.init n (fun i -> Array.init n (fun j -> a.(perm.(i)).(perm.(j)))) in
      let bl, bu = band_limits lu in
      let bu_eff = min (max 0 (n - 1)) (bl + bu) in
      let piv = Array.make n 0 in
      factor_banded_in_place lu piv ~bl ~bu_eff;
      { n; base = Band_lu { lu; piv; perm; bl; bu_eff }; ups = [] }

  let base_solve t b =
    match t.base with
    | Dense_lu { lu; piv } ->
      let y = Array.copy b in
      substitute_in_place lu piv y;
      y
    | Band_lu { lu; piv; perm; bl; bu_eff } ->
      let y = Array.init t.n (fun i -> b.(perm.(i))) in
      substitute_banded_in_place lu piv ~bl ~bu_eff y;
      let x = Array.make t.n 0.0 in
      for i = 0 to t.n - 1 do
        x.(perm.(i)) <- y.(i)
      done;
      x

  let dot u v =
    let s = ref 0.0 in
    let n = min (Array.length u) (Array.length v) in
    for i = 0 to n - 1 do
      s := !s +. (Array.unsafe_get u i *. Array.unsafe_get v i)
    done;
    !s

  let solve_factored t b =
    if Array.length b <> t.n then
      invalid_arg "Linear.Factor.solve_factored: shape mismatch";
    let y = base_solve t b in
    List.iter
      (fun { w; v; denom } ->
        let s = dot v y /. denom in
        if s <> 0.0 then
          for i = 0 to t.n - 1 do
            Array.unsafe_set y i
              (Array.unsafe_get y i -. (s *. Array.unsafe_get w i))
          done)
      t.ups;
    y

  (* Sherman-Morrison denominators near zero mean the update drives the
     matrix toward singularity; the guard is relative to the magnitude of
     the correction term so it is a pure function of the numbers. *)
  let denominator_guard = 1e-8

  let rank1_update t ~c ~u ~v =
    if Array.length u <> t.n || Array.length v <> t.n then
      invalid_arg "Linear.Factor.rank1_update: shape mismatch";
    if c = 0.0 then Some t
    else begin
      let cu = Array.map (fun x -> c *. x) u in
      let w = solve_factored t cu in
      let s = dot v w in
      let denom = 1.0 +. s in
      if (not (Float.is_finite denom))
         || Float.abs denom <= denominator_guard *. (1.0 +. Float.abs s)
      then None
      else Some { t with ups = t.ups @ [ { w; v = Array.copy v; denom } ] }
    end
end

let residual a x b =
  let n = Array.length b in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      sum := !sum +. (a.(i).(j) *. x.(j))
    done;
    worst := Float.max !worst (Float.abs (!sum -. b.(i)))
  done;
  !worst
