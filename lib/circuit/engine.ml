exception No_convergence of string

type options = {
  gmin : float;
  abstol : float;
  vntol : float;
  reltol : float;
  max_iterations : int;
  max_step_voltage : float;
}

let default_options =
  {
    gmin = 1e-12;
    abstol = 1e-10;
    vntol = 1e-6;
    reltol = 1e-4;
    max_iterations = 150;
    max_step_voltage = 0.5;
  }

(* --- escalation ladder ------------------------------------------------ *)

let escalation_levels = 3

let escalation base ~level =
  let level = max 0 (min level escalation_levels) in
  if level = 0 then base
  else
    let pow10 n = 10.0 ** float_of_int n in
    {
      base with
      reltol = base.reltol *. pow10 level;
      gmin = (if level >= 2 then base.gmin *. pow10 (2 * (level - 1)) else base.gmin);
      vntol = (if level >= 3 then base.vntol *. 10.0 else base.vntol);
      abstol = (if level >= 3 then base.abstol *. 10.0 else base.abstol);
      max_iterations = base.max_iterations * (1 lsl level);
    }

(* --- scoped options override ------------------------------------------ *)

(* Macro measurement procedures call the analyses without an explicit
   ~options argument; the retry layer escalates them from the outside by
   installing an override for the dynamic extent of one attempt. The key
   is domain-local, so concurrent pool workers cannot see each other's
   escalation state. *)
let options_override : options option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let resolve_options = function
  | Some options -> options
  | None ->
    (match Domain.DLS.get options_override with
    | Some options -> options
    | None -> default_options)

let with_options_override options f =
  let saved = Domain.DLS.get options_override in
  Domain.DLS.set options_override (Some options);
  Fun.protect ~finally:(fun () -> Domain.DLS.set options_override saved) f

(* --- solver selection -------------------------------------------------- *)

type solver = Dense | Rank1 | Auto

let solver_name = function
  | Dense -> "dense"
  | Rank1 -> "rank1"
  | Auto -> "auto"

let solver_of_string = function
  | "dense" -> Some Dense
  | "rank1" -> Some Rank1
  | "auto" -> Some Auto
  | _ -> None

let all_solvers = [ Dense; Rank1; Auto ]
let default_solver = Auto

(* A separate key from [options_override]: the retry layer re-installs
   option overrides on every escalation attempt and must not clobber the
   run's solver choice while doing so. *)
let solver_override : solver option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_solver () =
  match Domain.DLS.get solver_override with
  | Some s -> s
  | None -> default_solver

let with_solver solver f =
  let saved = Domain.DLS.get solver_override in
  Domain.DLS.set solver_override (Some solver);
  Fun.protect ~finally:(fun () -> Domain.DLS.set solver_override saved) f

(* --- convergence diagnostics ------------------------------------------ *)

type fallback = Plain_newton | Gmin_stepping | Source_stepping

let fallback_name = function
  | Plain_newton -> "plain Newton"
  | Gmin_stepping -> "gmin stepping"
  | Source_stepping -> "source stepping"

let fallback_rank = function
  | Plain_newton -> 0
  | Gmin_stepping -> 1
  | Source_stepping -> 2

type diagnostics = { iterations : int; fallback : fallback }

let no_diagnostics = { iterations = 0; fallback = Plain_newton }

let merge_diagnostics a b =
  {
    iterations = a.iterations + b.iterations;
    fallback = (if fallback_rank a.fallback >= fallback_rank b.fallback then a.fallback else b.fallback);
  }

(* --- compiled netlist ------------------------------------------------ *)

type cdevice =
  | CResistor of int * int * float
  | CCapacitor of int * int * float
  | CVsource of { pos : int; neg : int; wave : Waveform.t; branch : int }
  | CIsource of { pos : int; neg : int; wave : Waveform.t }
  | CMosfet of {
      d : int;
      g : int;
      s : int;
      spec : Netlist.mosfet_spec;
    }

type compiled = {
  n_nodes : int;           (* non-ground nodes: indices 1..n_nodes *)
  n_unknowns : int;        (* nodes + vsource branches *)
  cdevices : cdevice list;
  branch_of_source : (string, int) Hashtbl.t;
}

let compile netlist =
  let n_nodes = Netlist.node_count netlist in
  let branch_of_source = Hashtbl.create 8 in
  let next_branch = ref n_nodes in
  let compile_device (dv : Netlist.device_view) =
    let pin role = Netlist.index_of_node (List.assoc role dv.pin_nodes) in
    match dv.kind with
    | Netlist.Resistor r -> CResistor (pin "+", pin "-", r)
    | Netlist.Capacitor c -> CCapacitor (pin "+", pin "-", c)
    | Netlist.Vsource wave ->
      let branch = !next_branch in
      incr next_branch;
      Hashtbl.replace branch_of_source dv.dev_name branch;
      CVsource { pos = pin "+"; neg = pin "-"; wave; branch }
    | Netlist.Isource wave -> CIsource { pos = pin "+"; neg = pin "-"; wave }
    | Netlist.Mosfet spec -> CMosfet { d = pin "d"; g = pin "g"; s = pin "s"; spec }
  in
  let cdevices = List.map compile_device (Netlist.devices netlist) in
  { n_nodes; n_unknowns = !next_branch; cdevices; branch_of_source }

(* --- solutions -------------------------------------------------------- *)

type solution = {
  sol_time : float;
  x : float array;  (* node voltages then branch currents *)
  branches : (string, int) Hashtbl.t;
}

let time sol = sol.sol_time

let voltage sol node =
  if Netlist.node_equal node Netlist.ground then 0.0
  else sol.x.(Netlist.index_of_node node - 1)

let source_current sol name =
  let branch = Hashtbl.find sol.branches name in
  (* The MNA branch unknown flows from + through the source to -; the
     current delivered into the circuit from the + terminal is its
     negation. *)
  -.sol.x.(branch)

(* --- stamping --------------------------------------------------------- *)

(* Row/column index of a node in the matrix; ground contributes nothing. *)
let idx node = node - 1

let stamp_conductance a g n1 n2 =
  if n1 <> 0 then a.(idx n1).(idx n1) <- a.(idx n1).(idx n1) +. g;
  if n2 <> 0 then a.(idx n2).(idx n2) <- a.(idx n2).(idx n2) +. g;
  if n1 <> 0 && n2 <> 0 then begin
    a.(idx n1).(idx n2) <- a.(idx n1).(idx n2) -. g;
    a.(idx n2).(idx n1) <- a.(idx n2).(idx n1) -. g
  end

let stamp_current rhs value ~into ~out_of =
  if into <> 0 then rhs.(idx into) <- rhs.(idx into) +. value;
  if out_of <> 0 then rhs.(idx out_of) <- rhs.(idx out_of) -. value

(* voltage at a node from the current guess *)
let v_of x node = if node = 0 then 0.0 else x.(idx node)

type stamp_mode =
  | Dc_mode
  | Transient_mode of { h : float; x_prev : float array }

(* Build A·x_new = rhs linearized around guess [x]. [alpha] scales the
   independent sources (source stepping). *)
let build ~options ~mode ~alpha ~t compiled x a rhs =
  let n = compiled.n_unknowns in
  for i = 0 to n - 1 do
    rhs.(i) <- 0.0;
    let row = a.(i) in
    Array.fill row 0 n 0.0
  done;
  (* gmin shunts keep floating nodes (opens) solvable. *)
  for node = 1 to compiled.n_nodes do
    a.(idx node).(idx node) <- a.(idx node).(idx node) +. options.gmin
  done;
  let stamp_device = function
    | CResistor (n1, n2, r) -> stamp_conductance a (1.0 /. r) n1 n2
    | CCapacitor (n1, n2, c) ->
      (match mode with
      | Dc_mode -> () (* open in DC *)
      | Transient_mode { h; x_prev } ->
        (* Backward-Euler companion: geq in parallel with a current source
           reproducing the charge history. *)
        let geq = c /. h in
        stamp_conductance a geq n1 n2;
        let v_prev = v_of x_prev n1 -. v_of x_prev n2 in
        stamp_current rhs (geq *. v_prev) ~into:n1 ~out_of:n2)
    | CVsource { pos; neg; wave; branch } ->
      let value = alpha *. Waveform.value wave t in
      if pos <> 0 then begin
        a.(idx pos).(branch) <- a.(idx pos).(branch) +. 1.0;
        a.(branch).(idx pos) <- a.(branch).(idx pos) +. 1.0
      end;
      if neg <> 0 then begin
        a.(idx neg).(branch) <- a.(idx neg).(branch) -. 1.0;
        a.(branch).(idx neg) <- a.(branch).(idx neg) -. 1.0
      end;
      rhs.(branch) <- value
    | CIsource { pos; neg; wave } ->
      let value = alpha *. Waveform.value wave t in
      stamp_current rhs value ~into:pos ~out_of:neg
    | CMosfet { d; g; s; spec } ->
      let vgs = v_of x g -. v_of x s in
      let vds = v_of x d -. v_of x s in
      let op =
        Mos_model.evaluate ~polarity:spec.polarity ~params:spec.params
          ~w:spec.w ~l:spec.l ~vgs ~vds
      in
      (* Linearize: id ≈ gm·vgs + gds·vds + ieq. *)
      let ieq = op.id -. (op.gm *. vgs) -. (op.gds *. vds) in
      let add r c v = if r <> 0 && c <> 0 then a.(idx r).(idx c) <- a.(idx r).(idx c) +. v in
      add d d op.gds;
      add d g op.gm;
      add d s (-.(op.gm +. op.gds));
      add s d (-.op.gds);
      add s g (-.op.gm);
      add s s (op.gm +. op.gds);
      stamp_current rhs ieq ~into:s ~out_of:d
  in
  List.iter stamp_device compiled.cdevices

(* --- factorization reuse (rank1/auto backends) ------------------------- *)

(* The fast backends keep one mutable solver state per analysis and reuse
   the LU factorization across Newton iterations, transient steps, and
   stepping-fallback stages. Only MOSFET stamps can change the matrix
   between solves at a fixed (gmin, h) — sources and capacitor history
   touch the right-hand side alone — so the state tracks each MOSFET's
   (gm, gds) as baked into the current factorization and classifies every
   iteration by how far the freshly evaluated linearization has moved:

   - nothing moved beyond tolerance: reuse the factorization as-is
     (Jacobian bypass; the chord iteration converges to the same
     nonlinear solution because ieq is built against the *baked* gm/gds,
     see [build_rhs_reuse]);
   - a few devices moved: fold each stamp delta in as two Sherman-
     Morrison rank-1 updates, dgds·(e_d−e_s)(e_d−e_s)ᵀ +
     dgm·(e_d−e_s)(e_g−e_s)ᵀ — an exact decomposition of the stamp;
   - many devices moved, the update chain grew too long, or an update
     denominator tripped the singularity guard: re-factor from scratch.

   Every decision is a pure function of device values, never of timing,
   so runs are deterministic at any job count. *)

type rmos = { md : int; mg : int; ms : int; mspec : Netlist.mosfet_spec }

type rstate = {
  rn : int;
  rcompiled : compiled;
  rpermute : int array option;
  rmos : rmos array;
  rconst : float array array;  (* linear-device part of A at (gmin, h) *)
  mutable rconst_gmin : float;
  mutable rconst_h : float;    (* 0.0 in DC *)
  mutable rconst_ok : bool;
  rfull : float array array;   (* scratch for re-factorization *)
  mutable rfactor : Linear.Factor.t option;
  rref_gm : float array;       (* per-MOSFET values baked into rfactor *)
  rref_gds : float array;
  rcur_id : float array;       (* per-MOSFET values at the current guess *)
  rcur_gm : float array;
  rcur_gds : float array;
  rrhs : float array;
  (* Compiled stamp plan: the per-iteration work — MOSFET model
     evaluation and right-hand-side assembly — compiled once into flat
     arrays so the Newton loop is tight passes over unboxed floats
     instead of a [cdevice] list traversal with per-device dispatch and
     allocation. Node entries are 1-based (0 = ground), matching [idx]. *)
  pm_d : int array;            (* per-MOSFET drain/gate/source nodes *)
  pm_g : int array;
  pm_s : int array;
  pm_sign : float array;       (* +1.0 NMOS, -1.0 PMOS *)
  pm_vth : float array;
  pm_beta : float array;       (* kp·w/l, packed at compile time *)
  pm_lambda : float array;
  pm_vgs : float array;        (* scratch: bias at the current guess *)
  pm_vds : float array;
  pv_branch : int array;       (* vsource branch rows *)
  pv_wave : Waveform.t array;
  pi_pos : int array;          (* isource terminals *)
  pi_neg : int array;
  pi_wave : Waveform.t array;
  pc_n1 : int array;           (* capacitor terminals and values *)
  pc_n2 : int array;
  pc_c : float array;
}

type backend = Dense_backend | Reuse_backend of rstate

(* Off-diagonal structure of the MNA matrix, as graph edges over the
   unknowns (0-based); feeds the RCM ordering. *)
let adjacency compiled =
  let edge acc a b = if a <> 0 && b <> 0 && a <> b then (idx a, idx b) :: acc else acc in
  List.fold_left
    (fun acc -> function
      | CResistor (n1, n2, _) | CCapacitor (n1, n2, _) -> edge acc n1 n2
      | CVsource { pos; neg; branch; _ } ->
        let acc = if pos <> 0 then (idx pos, branch) :: acc else acc in
        if neg <> 0 then (idx neg, branch) :: acc else acc
      | CIsource _ -> acc
      | CMosfet { d; g; s; _ } -> edge (edge (edge acc d s) d g) s g)
    [] compiled.cdevices

(* The banded kernel wins once the permuted half-bandwidth is well under
   the matrix size (elimination cost ~ n·b² vs n³/3); tiny systems are
   not worth the permutation bookkeeping. Chosen per-compile, from
   structure only. *)
let auto_permutation compiled =
  let n = compiled.n_unknowns in
  if n < 16 then None
  else begin
    let edges = adjacency compiled in
    let perm = Linear.rcm ~n edges in
    let bw = Linear.bandwidth_under ~perm edges in
    if 4 * (bw + 1) <= n then Some perm else None
  end

let make_rstate ?permute compiled =
  let n = compiled.n_unknowns in
  let rmos =
    List.filter_map
      (function
        | CMosfet { d; g; s; spec } -> Some { md = d; mg = g; ms = s; mspec = spec }
        | _ -> None)
      compiled.cdevices
    |> Array.of_list
  in
  let nm = Array.length rmos in
  (* Pack the stamp plan. Within each device class the packing preserves
     netlist order, so the plan is a pure function of the compiled
     netlist and every backend decision stays deterministic. *)
  let vsources =
    List.filter_map
      (function CVsource { branch; wave; _ } -> Some (branch, wave) | _ -> None)
      compiled.cdevices
  in
  let isources =
    List.filter_map
      (function CIsource { pos; neg; wave } -> Some (pos, neg, wave) | _ -> None)
      compiled.cdevices
  in
  let caps =
    List.filter_map
      (function CCapacitor (n1, n2, c) -> Some (n1, n2, c) | _ -> None)
      compiled.cdevices
  in
  {
    rn = n;
    rcompiled = compiled;
    rpermute = permute;
    rmos;
    rconst = Linear.matrix n;
    rconst_gmin = Float.nan;
    rconst_h = Float.nan;
    rconst_ok = false;
    rfull = Linear.matrix n;
    rfactor = None;
    rref_gm = Array.make nm 0.0;
    rref_gds = Array.make nm 0.0;
    rcur_id = Array.make nm 0.0;
    rcur_gm = Array.make nm 0.0;
    rcur_gds = Array.make nm 0.0;
    rrhs = Array.make n 0.0;
    pm_d = Array.map (fun m -> m.md) rmos;
    pm_g = Array.map (fun m -> m.mg) rmos;
    pm_s = Array.map (fun m -> m.ms) rmos;
    pm_sign =
      Array.map
        (fun m ->
          match m.mspec.Netlist.polarity with
          | Mos_model.Nmos -> 1.0
          | Mos_model.Pmos -> -1.0)
        rmos;
    pm_vth = Array.map (fun m -> m.mspec.Netlist.params.Mos_model.vth) rmos;
    pm_beta =
      Array.map
        (fun m ->
          m.mspec.Netlist.params.Mos_model.kp *. m.mspec.Netlist.w
          /. m.mspec.Netlist.l)
        rmos;
    pm_lambda =
      Array.map (fun m -> m.mspec.Netlist.params.Mos_model.lambda) rmos;
    pm_vgs = Array.make nm 0.0;
    pm_vds = Array.make nm 0.0;
    pv_branch = Array.of_list (List.map (fun (b, _) -> b) vsources);
    pv_wave = Array.of_list (List.map snd vsources);
    pi_pos = Array.of_list (List.map (fun (p, _, _) -> p) isources);
    pi_neg = Array.of_list (List.map (fun (_, n2, _) -> n2) isources);
    pi_wave = Array.of_list (List.map (fun (_, _, w) -> w) isources);
    pc_n1 = Array.of_list (List.map (fun (n1, _, _) -> n1) caps);
    pc_n2 = Array.of_list (List.map (fun (_, n2, _) -> n2) caps);
    pc_c = Array.of_list (List.map (fun (_, _, c) -> c) caps);
  }

let make_backend compiled =
  match current_solver () with
  | Dense -> Dense_backend
  | Rank1 -> Reuse_backend (make_rstate compiled)
  | Auto -> Reuse_backend (make_rstate ?permute:(auto_permutation compiled) compiled)

let rebuild_const state ~gmin ~h =
  let a = state.rconst in
  let n = state.rn in
  for i = 0 to n - 1 do
    Array.fill a.(i) 0 n 0.0
  done;
  for node = 1 to state.rcompiled.n_nodes do
    a.(idx node).(idx node) <- a.(idx node).(idx node) +. gmin
  done;
  List.iter
    (function
      | CResistor (n1, n2, r) -> stamp_conductance a (1.0 /. r) n1 n2
      | CCapacitor (n1, n2, c) -> if h > 0.0 then stamp_conductance a (c /. h) n1 n2
      | CVsource { pos; neg; branch; _ } ->
        if pos <> 0 then begin
          a.(idx pos).(branch) <- a.(idx pos).(branch) +. 1.0;
          a.(branch).(idx pos) <- a.(branch).(idx pos) +. 1.0
        end;
        if neg <> 0 then begin
          a.(idx neg).(branch) <- a.(idx neg).(branch) -. 1.0;
          a.(branch).(idx neg) <- a.(branch).(idx neg) -. 1.0
        end
      | CIsource _ -> ()
      | CMosfet _ -> ())
    state.rcompiled.cdevices;
  state.rconst_gmin <- gmin;
  state.rconst_h <- h;
  state.rconst_ok <- true;
  state.rfactor <- None

(* Batched model evaluation through the stamp plan: one pass fills the
   bias scratch, one [Mos_model.evaluate_packed] call produces all
   linearizations. Bit-identical to per-device [Mos_model.evaluate]
   (see that function's contract), with no per-iteration allocation. *)
let eval_mosfets state x =
  let nm = Array.length state.rmos in
  let pm_d = state.pm_d and pm_g = state.pm_g and pm_s = state.pm_s in
  let vgs = state.pm_vgs and vds = state.pm_vds in
  for k = 0 to nm - 1 do
    let d = Array.unsafe_get pm_d k in
    let g = Array.unsafe_get pm_g k in
    let s = Array.unsafe_get pm_s k in
    let vs = if s = 0 then 0.0 else Array.unsafe_get x (s - 1) in
    let vg = if g = 0 then 0.0 else Array.unsafe_get x (g - 1) in
    let vd = if d = 0 then 0.0 else Array.unsafe_get x (d - 1) in
    Array.unsafe_set vgs k (vg -. vs);
    Array.unsafe_set vds k (vd -. vs)
  done;
  Mos_model.evaluate_packed ~n:nm ~sign:state.pm_sign ~vth:state.pm_vth
    ~beta:state.pm_beta ~lambda:state.pm_lambda ~vgs ~vds ~id:state.rcur_id
    ~gm:state.rcur_gm ~gds:state.rcur_gds

let refactor state =
  let n = state.rn in
  let a = state.rfull in
  for i = 0 to n - 1 do
    Array.blit state.rconst.(i) 0 a.(i) 0 n
  done;
  Array.iteri
    (fun k m ->
      let gm = state.rcur_gm.(k) and gds = state.rcur_gds.(k) in
      let add r c v =
        if r <> 0 && c <> 0 then a.(idx r).(idx c) <- a.(idx r).(idx c) +. v
      in
      add m.md m.md gds;
      add m.md m.mg gm;
      add m.md m.ms (-.(gm +. gds));
      add m.ms m.md (-.gds);
      add m.ms m.mg (-.gm);
      add m.ms m.ms (gm +. gds))
    state.rmos;
  match Linear.Factor.factor ?permute:state.rpermute a with
  | exception Linear.Singular ->
    state.rfactor <- None;
    false
  | f ->
    state.rfactor <- Some f;
    Array.blit state.rcur_gm 0 state.rref_gm 0 (Array.length state.rref_gm);
    Array.blit state.rcur_gds 0 state.rref_gds 0 (Array.length state.rref_gds);
    Util.Telemetry.count "engine.factorizations";
    true

(* A device's linearization has "moved" when gm or gds differs from the
   value baked into the factorization by more than a relative tolerance.
   The tolerance trades factorization reuse against chord-iteration
   convergence rate (contraction ~ the staleness fraction); it does not
   affect the converged solution (see the consistency argument at
   [build_rhs_reuse]), so it can be far looser than the Newton reltol.
   10% keeps quiescent stretches of a transient on the bypass path while
   the input ramp drifts the pair's gm by well under a percent per step;
   converged KCL error stays at the Newton tolerance regardless. *)
let reuse_reltol = 0.1
let reuse_abstol = 1e-12

(* Sherman–Morrison is only cheaper than re-factoring when very few
   devices moved: each moved MOSFET costs one update (its delta is rank
   one, see [apply_mos_updates]) — a full chain solve for its [w] — and
   every stacked update taxes all later solves. Past a couple of devices
   (a clock edge moves the whole macro), re-factoring wins outright. *)
let max_moved = 2
let max_chain = 6

let moved state k =
  let tol cur ref_ =
    reuse_abstol +. (reuse_reltol *. Float.max (Float.abs cur) (Float.abs ref_))
  in
  Float.abs (state.rcur_gm.(k) -. state.rref_gm.(k))
  > tol state.rcur_gm.(k) state.rref_gm.(k)
  || Float.abs (state.rcur_gds.(k) -. state.rref_gds.(k))
     > tol state.rcur_gds.(k) state.rref_gds.(k)

let inc_vector n a b =
  let u = Array.make n 0.0 in
  if a <> 0 then u.(idx a) <- u.(idx a) +. 1.0;
  if b <> 0 then u.(idx b) <- u.(idx b) -. 1.0;
  u

(* A MOSFET's linearization delta is rank one: both the gds and gm stamp
   blocks share the left factor (e_d − e_s), so
     ΔA = dgds·uds·udsᵀ + dgm·uds·ugsᵀ = uds · (dgds·uds + dgm·ugs)ᵀ
   and one Sherman–Morrison update absorbs the whole device. *)
let apply_mos_updates state f changed =
  let n = state.rn in
  let rec go f = function
    | [] -> Some f
    | k :: rest ->
      let m = state.rmos.(k) in
      let dgds = state.rcur_gds.(k) -. state.rref_gds.(k) in
      let dgm = state.rcur_gm.(k) -. state.rref_gm.(k) in
      let uds = inc_vector n m.md m.ms in
      let v = Array.make n 0.0 in
      let addv node c = if node <> 0 then v.(idx node) <- v.(idx node) +. c in
      addv m.md dgds;
      addv m.ms (-.(dgds +. dgm));
      addv m.mg dgm;
      (match Linear.Factor.rank1_update f ~c:1.0 ~u:uds ~v with
      | None -> None
      | Some f -> go f rest)
  in
  go f changed

let ensure_factor state =
  match state.rfactor with
  | None -> refactor state
  | Some f ->
    let changed = ref [] in
    let n_changed = ref 0 in
    for k = Array.length state.rmos - 1 downto 0 do
      if moved state k then begin
        changed := k :: !changed;
        incr n_changed
      end
    done;
    if !n_changed = 0 then begin
      Util.Telemetry.count "engine.jacobian_bypass";
      true
    end
    else if
      !n_changed > max_moved
      || !n_changed + Linear.Factor.updates f > max_chain
    then refactor state
    else begin
      match apply_mos_updates state f !changed with
      | Some f' ->
        state.rfactor <- Some f';
        List.iter
          (fun k ->
            state.rref_gm.(k) <- state.rcur_gm.(k);
            state.rref_gds.(k) <- state.rcur_gds.(k))
          !changed;
        Util.Telemetry.count "engine.rank1_solves";
        true
      | None ->
        Util.Telemetry.count "engine.rank1_fallbacks";
        refactor state
    end

(* The right-hand side under a possibly stale factorization. Each MOSFET
   ieq is built against the gm/gds *baked into the factorization* (rref),
   not the fresh linearization: at a fixed point x of the resulting chord
   iteration the rref terms cancel between the matrix stamps and ieq,
   leaving exactly KCL with the exact device current id(x) — the same
   nonlinear solution full Newton converges to, independent of how stale
   the factorization is. *)
let build_rhs_reuse state ~mode ~alpha ~t x =
  ignore x;
  let rhs = state.rrhs in
  Array.fill rhs 0 state.rn 0.0;
  (* The plan groups stamps by device class (each class in netlist
     order); accumulation into a shared node may therefore round
     differently from the dense path's interleaved order, in the same
     ulp-level sense in which the chord iteration already differs — the
     converged solution is unchanged and classified tables stay
     byte-identical across backends (enforced by CI's dense-vs-auto
     diff). *)
  (match mode with
  | Dc_mode -> ()
  | Transient_mode { h; x_prev } ->
    let nc = Array.length state.pc_c in
    for k = 0 to nc - 1 do
      let n1 = Array.unsafe_get state.pc_n1 k in
      let n2 = Array.unsafe_get state.pc_n2 k in
      let geq = Array.unsafe_get state.pc_c k /. h in
      let v1 = if n1 = 0 then 0.0 else Array.unsafe_get x_prev (n1 - 1) in
      let v2 = if n2 = 0 then 0.0 else Array.unsafe_get x_prev (n2 - 1) in
      let i = geq *. (v1 -. v2) in
      if n1 <> 0 then
        Array.unsafe_set rhs (n1 - 1) (Array.unsafe_get rhs (n1 - 1) +. i);
      if n2 <> 0 then
        Array.unsafe_set rhs (n2 - 1) (Array.unsafe_get rhs (n2 - 1) -. i)
    done);
  let nv = Array.length state.pv_branch in
  for k = 0 to nv - 1 do
    Array.unsafe_set rhs
      (Array.unsafe_get state.pv_branch k)
      (alpha *. Waveform.value (Array.unsafe_get state.pv_wave k) t)
  done;
  let ni = Array.length state.pi_pos in
  for k = 0 to ni - 1 do
    let pos = Array.unsafe_get state.pi_pos k in
    let neg = Array.unsafe_get state.pi_neg k in
    let i = alpha *. Waveform.value (Array.unsafe_get state.pi_wave k) t in
    if pos <> 0 then
      Array.unsafe_set rhs (pos - 1) (Array.unsafe_get rhs (pos - 1) +. i);
    if neg <> 0 then
      Array.unsafe_set rhs (neg - 1) (Array.unsafe_get rhs (neg - 1) -. i)
  done;
  (* MOSFET ieq against the gm/gds baked into the factorization; the bias
     scratch still holds this guess's vgs/vds from [eval_mosfets]. *)
  let nm = Array.length state.rmos in
  for k = 0 to nm - 1 do
    let d = Array.unsafe_get state.pm_d k in
    let s = Array.unsafe_get state.pm_s k in
    let ieq =
      Array.unsafe_get state.rcur_id k
      -. (Array.unsafe_get state.rref_gm k *. Array.unsafe_get state.pm_vgs k)
      -. (Array.unsafe_get state.rref_gds k *. Array.unsafe_get state.pm_vds k)
    in
    if s <> 0 then
      Array.unsafe_set rhs (s - 1) (Array.unsafe_get rhs (s - 1) +. ieq);
    if d <> 0 then
      Array.unsafe_set rhs (d - 1) (Array.unsafe_get rhs (d - 1) -. ieq)
  done

(* --- Newton-Raphson --------------------------------------------------- *)

let newton_dense ~options ~mode ~alpha ~t compiled x0 =
  let n = compiled.n_unknowns in
  let x = Array.copy x0 in
  let a = Linear.matrix n in
  let rhs = Array.make n 0.0 in
  let rec iterate remaining =
    if remaining = 0 then None
    else begin
      (* Deadline metering on the hot path: one domain-local read when no
         watchdog is armed. Expiry raises out of every fallback
         (gmin/source stepping included) — a deadline is a budget for the
         whole solve, not for one Newton attempt. *)
      Util.Watchdog.tick ();
      build ~options ~mode ~alpha ~t compiled x a rhs;
      match Linear.solve a rhs with
      | exception Linear.Singular -> None
      | x_new -> begin
        (* Damp voltage updates; branch currents move freely. *)
        let converged = ref true in
        for i = 0 to n - 1 do
          let target = x_new.(i) in
          let delta = target -. x.(i) in
          let is_voltage = i < compiled.n_nodes in
          let applied =
            if is_voltage && Float.abs delta > options.max_step_voltage then begin
              converged := false;
              x.(i) +. (if delta > 0. then options.max_step_voltage else -.options.max_step_voltage)
            end
            else target
          in
          let tol =
            if is_voltage then options.vntol +. (options.reltol *. Float.abs applied)
            else options.abstol +. (options.reltol *. Float.abs applied)
          in
          if Float.abs (applied -. x.(i)) > tol then converged := false;
          x.(i) <- applied
        done;
        if !converged then Some (x, options.max_iterations - remaining + 1)
        else iterate (remaining - 1)
      end
    end
  in
  iterate options.max_iterations


(* Newton against the persistent-factorization state: identical damping
   and convergence tests to [newton_dense], but the linear solve goes
   through [ensure_factor] (bypass / rank-1 chain / re-factor). *)
let newton_reuse ~state ~options ~mode ~alpha ~t compiled x0 =
  let n = compiled.n_unknowns in
  let x = Array.copy x0 in
  let h = match mode with Dc_mode -> 0.0 | Transient_mode { h; _ } -> h in
  if
    not
      (state.rconst_ok
      && state.rconst_gmin = options.gmin
      && state.rconst_h = h)
  then rebuild_const state ~gmin:options.gmin ~h;
  let rec iterate remaining =
    if remaining = 0 then None
    else begin
      Util.Watchdog.tick ();
      eval_mosfets state x;
      if not (ensure_factor state) then None
      else begin
        build_rhs_reuse state ~mode ~alpha ~t x;
        let x_new =
          match state.rfactor with
          | Some f -> Linear.Factor.solve_factored f state.rrhs
          | None -> assert false
        in
        let converged = ref true in
        for i = 0 to n - 1 do
          let target = x_new.(i) in
          let delta = target -. x.(i) in
          let is_voltage = i < compiled.n_nodes in
          let applied =
            if is_voltage && Float.abs delta > options.max_step_voltage then begin
              converged := false;
              x.(i)
              +. (if delta > 0. then options.max_step_voltage
                  else -.options.max_step_voltage)
            end
            else target
          in
          let tol =
            if is_voltage then options.vntol +. (options.reltol *. Float.abs applied)
            else options.abstol +. (options.reltol *. Float.abs applied)
          in
          if Float.abs (applied -. x.(i)) > tol then converged := false;
          x.(i) <- applied
        done;
        if !converged then Some (x, options.max_iterations - remaining + 1)
        else iterate (remaining - 1)
      end
    end
  in
  iterate options.max_iterations

let newton ~backend ~options ~mode ~alpha ~t compiled x0 =
  match backend with
  | Dense_backend -> newton_dense ~options ~mode ~alpha ~t compiled x0
  | Reuse_backend state -> newton_reuse ~state ~options ~mode ~alpha ~t compiled x0

(* Solve one point, recording how many Newton iterations were spent and
   which convergence aid finally succeeded. *)
let solve_point_diag ~backend ~options ~mode ~t compiled x0 ~what =
  let spent = ref 0 in
  let try_newton ~options ~alpha x =
    match newton ~backend ~options ~mode ~alpha ~t compiled x with
    | Some (x', used) ->
      spent := !spent + used;
      Some x'
    | None ->
      spent := !spent + options.max_iterations;
      None
  in
  (* Iteration counters are buffered per domain by Telemetry; their totals
     are scheduling-independent because every solve counts the same spend
     regardless of which worker ran it. *)
  let finish x fallback =
    Util.Telemetry.count "engine.solves";
    Util.Telemetry.count ~by:!spent "newton_iterations";
    (match fallback with
    | Plain_newton -> ()
    | Gmin_stepping -> Util.Telemetry.count "engine.fallback_gmin"
    | Source_stepping -> Util.Telemetry.count "engine.fallback_source");
    x, { iterations = !spent; fallback }
  in
  match try_newton ~options ~alpha:1.0 x0 with
  | Some x -> finish x Plain_newton
  | None ->
    (* gmin stepping: solve heavily shunted, then relax toward gmin. *)
    let rec gmin_steps x = function
      | [] -> Some x
      | g :: rest ->
        (match try_newton ~options:{ options with gmin = g } ~alpha:1.0 x with
        | Some x' -> gmin_steps x' rest
        | None -> None)
    in
    let schedule = [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10; options.gmin ] in
    (match gmin_steps x0 schedule with
    | Some x -> finish x Gmin_stepping
    | None ->
      (* Source stepping: ramp all sources from 10 % to 100 %. *)
      let rec source_steps x = function
        | [] -> Some x
        | alpha :: rest ->
          (match try_newton ~options ~alpha x with
          | Some x' -> source_steps x' rest
          | None -> None)
      in
      let alphas = [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ] in
      (match source_steps (Array.make compiled.n_unknowns 0.0) alphas with
      | Some x -> finish x Source_stepping
      | None ->
        Util.Telemetry.count "engine.solves";
        Util.Telemetry.count ~by:!spent "newton_iterations";
        Util.Telemetry.count "engine.no_convergence";
        raise (No_convergence what)))

let solve_point ~backend ~options ~mode ~t compiled x0 ~what =
  fst (solve_point_diag ~backend ~options ~mode ~t compiled x0 ~what)

(* --- cross-class shared nominal factorization --------------------------- *)

(* Most injected defects only *add* two-terminal R/C stamps between
   pre-existing nodes (bridges, pinholes, junction leaks, DS shorts and
   their derived near-misses): the faulty MNA matrix is the nominal
   matrix plus a rank-≤2 symmetric perturbation, and the faulty circuit's
   operating point is usually a small excursion from the nominal one.
   [Macro.Evaluate] installs a [shared_nominal] context around each fault
   class; the analyses then seed their first DC solve by

   - stripping the injected stamps (recognized by the context's [strip]
     predicate) from the faulty netlist to recover its nominal skeleton,
   - deriving — once per worker domain, cached by (skeleton fingerprint,
     options) — the skeleton's DC operating point and the exact LU
     factorization of its Jacobian at that point,
   - chaining the injected conductance stamps onto that factorization as
     Sherman–Morrison rank-1 updates (g·(e_a−e_b)(e_a−e_b)ᵀ each), and
   - warm-starting Newton from the nominal operating point.

   Soundness: the seeded factorization equals the faulty linear part plus
   MOSFET stamps at the recorded reference linearization exactly, so the
   chord-iteration argument at [build_rhs_reuse] applies unchanged — the
   converged solution is the faulty circuit's own, independent of the
   seed. A cache hit and a fresh derivation produce the same entry (the
   derivation is a pure function of skeleton and options), so results are
   byte-identical at any [--jobs]; the derivation itself runs
   [Util.Telemetry.silenced] (its occurrence count is per-worker, not
   per-input) and [Util.Watchdog.unmetered] (its cost must not charge
   whichever class happens to run first on the worker).

   Fallbacks are counted and harmless: a defect that is not a pure R/C
   addition ([Node_split] changes the incidence structure,
   [Parasitic_mos] adds a nonlinear device), a skeleton whose nominal
   solve fails, or an update denominator tripping the singularity guard
   all land on the ordinary fresh-factor path. *)

type shared_nominal = { sn_id : int; sn_strip : string -> bool }

let sn_next_id = Atomic.make 0

let shared_nominal ~strip () =
  { sn_id = Atomic.fetch_and_add sn_next_id 1; sn_strip = strip }

let sn_override : shared_nominal option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_shared_nominal sn f =
  let saved = Domain.DLS.get sn_override in
  Domain.DLS.set sn_override (Some sn);
  Fun.protect ~finally:(fun () -> Domain.DLS.set sn_override saved) f

type sn_entry = {
  e_n : int;                    (* unknowns of the skeleton *)
  e_nmos : int;
  e_x : float array;            (* converged nominal operating point *)
  e_factor : Linear.Factor.t;   (* exact Jacobian factorization at e_x *)
  e_ref_gm : float array;       (* linearizations baked into e_factor *)
  e_ref_gds : float array;
}

(* Per-domain derived-entry cache. Entries are immutable and the factor
   type is persistent, so chaining fault stamps onto a cached factor
   never mutates it. [None] caches a failed derivation (skeleton did not
   converge) so it is not retried for every class. *)
let sn_cache : (int * (string, sn_entry option) Hashtbl.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let sn_cache_for sn =
  match Domain.DLS.get sn_cache with
  | Some (id, tbl) when id = sn.sn_id -> tbl
  | Some _ | None ->
    let tbl = Hashtbl.create 8 in
    Domain.DLS.set sn_cache (Some (sn.sn_id, tbl));
    tbl

(* Bound the per-worker cache: a measure procedure with an unbounded
   family of source mutations must not pin one factorization per value.
   Reset is deterministic per worker and never affects results — only
   how often the derivation re-runs. *)
let sn_cache_limit = 32

let fingerprint_wave b w =
  match Waveform.view w with
  | Waveform.View_dc v -> Buffer.add_string b (Printf.sprintf "D%h" v)
  | Waveform.View_pwl pts ->
    Buffer.add_char b 'W';
    List.iter
      (fun (t, v) -> Buffer.add_string b (Printf.sprintf "%h:%h;" t v))
      pts
  | Waveform.View_pulse { v0; v1; delay; rise; fall; width; period } ->
    Buffer.add_string b
      (Printf.sprintf "P%h,%h,%h,%h,%h,%h,%h" v0 v1 delay rise fall width
         period)

(* Value-level fingerprint of a netlist: device names, kinds, parameters
   and pin indices. Used only as a cache key for derived nominal entries
   — a collision could at worst seed with a different skeleton's
   factorization, which still converges to the correct solution (the
   seed is a preconditioner, see the soundness note above). *)
let fingerprint_netlist netlist =
  let b = Buffer.create 512 in
  List.iter
    (fun (dv : Netlist.device_view) ->
      Buffer.add_string b dv.dev_name;
      Buffer.add_char b '=';
      (match dv.kind with
      | Netlist.Resistor r -> Buffer.add_string b (Printf.sprintf "R%h" r)
      | Netlist.Capacitor c -> Buffer.add_string b (Printf.sprintf "C%h" c)
      | Netlist.Vsource w ->
        Buffer.add_char b 'V';
        fingerprint_wave b w
      | Netlist.Isource w ->
        Buffer.add_char b 'I';
        fingerprint_wave b w
      | Netlist.Mosfet spec ->
        Buffer.add_string b
          (Printf.sprintf "M%c%h,%h,%h,%h,%h"
             (match spec.Netlist.polarity with
             | Mos_model.Nmos -> 'n'
             | Mos_model.Pmos -> 'p')
             spec.Netlist.params.Mos_model.vth
             spec.Netlist.params.Mos_model.kp
             spec.Netlist.params.Mos_model.lambda spec.Netlist.w
             spec.Netlist.l));
      List.iter
        (fun (role, node) ->
          Buffer.add_string b
            (Printf.sprintf "@%s:%d" role (Netlist.index_of_node node)))
        dv.pin_nodes;
      Buffer.add_char b '|')
    (Netlist.devices netlist);
  Buffer.contents b

let fingerprint_options (o : options) =
  Printf.sprintf "%h/%h/%h/%h/%d/%h" o.gmin o.abstol o.vntol o.reltol
    o.max_iterations o.max_step_voltage

(* Derive the skeleton's entry: solve its DC operating point, then
   factor the Jacobian exactly at the converged point under the target
   (gmin, h=0). Quiet and unmetered — see the section comment. *)
let sn_derive ~options stripped =
  Util.Telemetry.silenced @@ fun () ->
  Util.Watchdog.unmetered @@ fun () ->
  let compiled = compile stripped in
  let state = make_rstate ?permute:(auto_permutation compiled) compiled in
  let backend = Reuse_backend state in
  match
    solve_point ~backend ~options ~mode:Dc_mode ~t:0.0 compiled
      (Array.make compiled.n_unknowns 0.0)
      ~what:"shared nominal derivation"
  with
  | exception No_convergence _ -> None
  | exception Linear.Singular -> None
  | x ->
    if
      not
        (state.rconst_ok
        && state.rconst_gmin = options.gmin
        && state.rconst_h = 0.0)
    then rebuild_const state ~gmin:options.gmin ~h:0.0;
    eval_mosfets state x;
    if refactor state then
      Some
        {
          e_n = compiled.n_unknowns;
          e_nmos = Array.length state.rmos;
          e_x = x;
          e_factor = (match state.rfactor with Some f -> f | None -> assert false);
          e_ref_gm = Array.copy state.rref_gm;
          e_ref_gds = Array.copy state.rref_gds;
        }
    else None

let sn_entry sn ~options ~stamps netlist =
  let stripped = Netlist.copy netlist in
  List.iter
    (fun (dv : Netlist.device_view) -> Netlist.remove_device stripped dv.dev_name)
    stamps;
  let key = fingerprint_netlist stripped ^ "#" ^ fingerprint_options options in
  let cache = sn_cache_for sn in
  match Hashtbl.find_opt cache key with
  | Some entry -> entry
  | None ->
    if Hashtbl.length cache >= sn_cache_limit then Hashtbl.reset cache;
    let entry = sn_derive ~options stripped in
    Hashtbl.add cache key entry;
    entry

(* Attempt to seed the analysis's first DC solve from the shared nominal
   context. The warm start is part of the *analysis semantics*: every
   backend — dense included — starts Newton from the same derived
   nominal operating point (the derivation is solver-independent, so the
   vector is bitwise identical across backends and the cross-backend
   table-identity contract is preserved; a reuse-only warm start would
   let the seeded path resolve classes the dense reference cannot, and
   the tables would diverge). Factor seeding on top of that is a
   reuse-backend acceleration only. Every decision here is a pure
   function of (netlist, options), so hit/miss/fallback counters are
   deterministic per fault class. *)
let try_shared_seed ~netlist ~options compiled backend =
  match Domain.DLS.get sn_override with
  | None -> None
  | Some sn ->
    let stamps =
      List.filter
        (fun (dv : Netlist.device_view) -> sn.sn_strip dv.dev_name)
        (Netlist.devices netlist)
    in
    let expressible =
      stamps <> []
      && List.for_all
           (fun (dv : Netlist.device_view) ->
             match dv.kind with
             | Netlist.Resistor _ | Netlist.Capacitor _ -> true
             | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ ->
               false)
           stamps
    in
    if not expressible then begin
      Util.Telemetry.count "engine.shared_nominal_misses";
      None
    end
    else begin
      match sn_entry sn ~options ~stamps netlist with
      | None ->
        Util.Telemetry.count "engine.shared_nominal_misses";
        None
      | Some entry
        when entry.e_n <> compiled.n_unknowns
             || entry.e_nmos
                <> List.fold_left
                     (fun acc d ->
                       match d with CMosfet _ -> acc + 1 | _ -> acc)
                     0 compiled.cdevices ->
        (* Same strip predicate but a different structure: stale or
           colliding context entry. The check is against the compiled
           netlist (not backend state) so every backend makes the
           identical cold-start decision. *)
        Util.Telemetry.count "engine.shared_nominal_misses";
        None
      | Some entry ->
        let warm () =
          Util.Telemetry.count "engine.shared_nominal_hits";
          Some (Array.copy entry.e_x)
        in
        (match backend with
        | Dense_backend -> warm ()
        | Reuse_backend state ->
          let conductance (dv : Netlist.device_view) =
            match dv.kind with
            | Netlist.Resistor r -> 1.0 /. r
            | Netlist.Capacitor _ -> 0.0 (* open in DC *)
            | Netlist.Vsource _ | Netlist.Isource _ | Netlist.Mosfet _ -> 0.0
          in
          let pin (dv : Netlist.device_view) role =
            Netlist.index_of_node (List.assoc role dv.pin_nodes)
          in
          let rec chain f = function
            | [] -> Some f
            | dv :: rest ->
              let g = conductance dv in
              if g = 0.0 then chain f rest
              else begin
                let u = inc_vector state.rn (pin dv "+") (pin dv "-") in
                match Linear.Factor.rank1_update f ~c:g ~u ~v:u with
                | None -> None
                | Some f -> chain f rest
              end
          in
          (match chain entry.e_factor stamps with
          | None ->
            (* The stamp chain tripped the singularity guard: keep the
               warm start (it is backend-independent), drop only the
               factor seed — the first iteration re-factors fresh. *)
            Util.Telemetry.count "engine.shared_nominal_fallbacks";
            warm ()
          | Some f ->
            rebuild_const state ~gmin:options.gmin ~h:0.0;
            state.rfactor <- Some f;
            Array.blit entry.e_ref_gm 0 state.rref_gm 0 entry.e_nmos;
            Array.blit entry.e_ref_gds 0 state.rref_gds 0 entry.e_nmos;
            warm ()))
    end

(* --- public analyses --------------------------------------------------- *)

let make_solution compiled ~t x =
  { sol_time = t; x; branches = compiled.branch_of_source }

let dc_operating_point_diag ?options netlist =
  let options = resolve_options options in
  let compiled = compile netlist in
  let backend = make_backend compiled in
  let x0 =
    match try_shared_seed ~netlist ~options compiled backend with
    | Some warm -> warm
    | None -> Array.make compiled.n_unknowns 0.0
  in
  let x, diag =
    solve_point_diag ~backend ~options ~mode:Dc_mode ~t:0.0 compiled x0
      ~what:"dc operating point"
  in
  make_solution compiled ~t:0.0 x, diag

let dc_operating_point ?options netlist =
  fst (dc_operating_point_diag ?options netlist)

(* Diagnostic: the dense DC MNA matrix linearized at [x]. Exposed so
   tests can check structural invariants (e.g. that a stamp-expressible
   fault perturbs the nominal matrix by rank ≤ 2); not a hot path. *)
let dense_jacobian ?options netlist ~x =
  let options = resolve_options options in
  let compiled = compile netlist in
  let n = compiled.n_unknowns in
  if Array.length x <> n then
    invalid_arg "Engine.dense_jacobian: x has the wrong length";
  let a = Linear.matrix n in
  let rhs = Array.make n 0.0 in
  build ~options ~mode:Dc_mode ~alpha:1.0 ~t:0.0 compiled x a rhs;
  a

let transient_diag ?options netlist ~stop ~step =
  if step <= 0. || stop < step then invalid_arg "Engine.transient: bad time grid";
  let options = resolve_options options in
  let compiled = compile netlist in
  (* One backend for the whole transient: the factorization built at the
     first step is reused (or cheaply updated) across every subsequent
     step and sub-step — the dominant win on long ramps where the circuit
     sits quiescent between clock edges. *)
  let backend = make_backend compiled in
  let diag = ref no_diagnostics in
  let solve ~mode ~t x ~what =
    let x', d = solve_point_diag ~backend ~options ~mode ~t compiled x ~what in
    diag := merge_diagnostics !diag d;
    x'
  in
  let x0 =
    match try_shared_seed ~netlist ~options compiled backend with
    | Some warm -> warm
    | None -> Array.make compiled.n_unknowns 0.0
  in
  let x_dc = solve ~mode:Dc_mode ~t:0.0 x0 ~what:"transient initial point" in
  let n_steps = int_of_float (Float.round (stop /. step)) in
  (* A failed Newton solve at a full step (sharp clock edge, regenerative
     transition) is retried over recursively halved sub-steps; only when
     seven levels of halving still fail is the analysis abandoned. *)
  let rec integrate x_prev ~t_prev ~h ~depth =
    let t = t_prev +. h in
    let mode = Transient_mode { h; x_prev } in
    match
      solve ~mode ~t x_prev ~what:(Printf.sprintf "transient step at t=%.3e" t)
    with
    | x -> x
    | exception No_convergence _ when depth > 0 ->
      let half = h /. 2.0 in
      let x_mid = integrate x_prev ~t_prev ~h:half ~depth:(depth - 1) in
      integrate x_mid ~t_prev:(t_prev +. half) ~h:half ~depth:(depth - 1)
  in
  let rec advance i x_prev acc =
    if i > n_steps then List.rev acc
    else begin
      let t_prev = float_of_int (i - 1) *. step in
      let x = integrate x_prev ~t_prev ~h:step ~depth:7 in
      let t = float_of_int i *. step in
      advance (i + 1) x (make_solution compiled ~t x :: acc)
    end
  in
  advance 1 x_dc [ make_solution compiled ~t:0.0 x_dc ], !diag

let transient ?options netlist ~stop ~step =
  fst (transient_diag ?options netlist ~stop ~step)

let dc_sweep ?options netlist ~source ~values =
  let options = resolve_options options in
  let netlist = Netlist.copy netlist in
  if not (Netlist.has_device netlist source) then
    invalid_arg (Printf.sprintf "Engine.dc_sweep: no source %S" source);
  (* Re-point the named source at each sweep value by rebuilding it. *)
  let view =
    match
      List.find_opt
        (fun dv -> dv.Netlist.dev_name = source)
        (Netlist.devices netlist)
    with
    | Some v -> v
    | None -> assert false
  in
  let pos = List.assoc "+" view.Netlist.pin_nodes in
  let neg = List.assoc "-" view.Netlist.pin_nodes in
  (match view.Netlist.kind with
  | Netlist.Vsource _ -> ()
  | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Isource _
  | Netlist.Mosfet _ ->
    invalid_arg "Engine.dc_sweep: named device is not a voltage source");
  let solve_at value seed =
    Netlist.remove_device netlist source;
    Netlist.add_vsource netlist ~name:source ~pos ~neg (Waveform.dc value);
    let compiled = compile netlist in
    let backend = make_backend compiled in
    let x =
      solve_point ~backend ~options ~mode:Dc_mode ~t:0.0 compiled seed
        ~what:(Printf.sprintf "dc sweep %s=%g" source value)
    in
    make_solution compiled ~t:0.0 x, x
  in
  let compiled0 = compile netlist in
  let rec sweep values seed acc =
    match values with
    | [] -> List.rev acc
    | v :: rest ->
      let sol, x = solve_at v seed in
      sweep rest x (sol :: acc)
  in
  sweep values (Array.make compiled0.n_unknowns 0.0) []

(* --- AC small-signal analysis ------------------------------------------ *)

type ac_solution = {
  ac_freq : float;
  ac_x : Complex.t array;
  ac_n_nodes : int;
}

let ac_frequency sol = sol.ac_freq

let ac_voltage sol node =
  if Netlist.node_equal node Netlist.ground then Complex.zero
  else sol.ac_x.(Netlist.index_of_node node - 1)

let ac_magnitude_db sol node =
  20.0 *. log10 (Float.max 1e-300 (Complex.norm (ac_voltage sol node)))

let ac_phase_deg sol node = Complex.arg (ac_voltage sol node) *. 180.0 /. Float.pi

let decades ~lo ~hi ~per_decade =
  if lo <= 0. || hi <= lo || per_decade < 1 then
    invalid_arg "Engine.decades: bad grid";
  let rec build acc exponent =
    let f = 10.0 ** exponent in
    if f > hi *. 1.0000001 then List.rev acc
    else build (f :: acc) (exponent +. (1.0 /. float_of_int per_decade))
  in
  build [] (log10 lo)

let ac_sweep ?options netlist ~source ~frequencies =
  let options = resolve_options options in
  List.iter
    (fun f ->
      if f <= 0. then invalid_arg "Engine.ac_sweep: frequencies must be positive")
    frequencies;
  let compiled = compile netlist in
  if not (Hashtbl.mem compiled.branch_of_source source) then
    invalid_arg
      (Printf.sprintf "Engine.ac_sweep: %S is not a voltage source" source);
  (* Operating point for the linearization. *)
  let x0 = Array.make compiled.n_unknowns 0.0 in
  let backend = make_backend compiled in
  let op =
    solve_point ~backend ~options ~mode:Dc_mode ~t:0.0 compiled x0
      ~what:"ac operating point"
  in
  let n = compiled.n_unknowns in
  let re v = { Complex.re = v; im = 0.0 } in
  let stamp_y a y n1 n2 =
    if n1 <> 0 then a.(idx n1).(idx n1) <- Complex.add a.(idx n1).(idx n1) y;
    if n2 <> 0 then a.(idx n2).(idx n2) <- Complex.add a.(idx n2).(idx n2) y;
    if n1 <> 0 && n2 <> 0 then begin
      a.(idx n1).(idx n2) <- Complex.sub a.(idx n1).(idx n2) y;
      a.(idx n2).(idx n1) <- Complex.sub a.(idx n2).(idx n1) y
    end
  in
  let solve_at freq =
    let a = Linear_complex.matrix n in
    let rhs = Array.make n Complex.zero in
    for node = 1 to compiled.n_nodes do
      a.(idx node).(idx node) <-
        Complex.add a.(idx node).(idx node) (re options.gmin)
    done;
    let omega = 2.0 *. Float.pi *. freq in
    let stamp_device = function
      | CResistor (n1, n2, r) -> stamp_y a (re (1.0 /. r)) n1 n2
      | CCapacitor (n1, n2, c) ->
        stamp_y a { Complex.re = 0.0; im = omega *. c } n1 n2
      | CVsource { pos; neg; wave = _; branch } ->
        if pos <> 0 then begin
          a.(idx pos).(branch) <- Complex.add a.(idx pos).(branch) Complex.one;
          a.(branch).(idx pos) <- Complex.add a.(branch).(idx pos) Complex.one
        end;
        if neg <> 0 then begin
          a.(idx neg).(branch) <-
            Complex.sub a.(idx neg).(branch) Complex.one;
          a.(branch).(idx neg) <- Complex.sub a.(branch).(idx neg) Complex.one
        end;
        rhs.(branch) <-
          (if branch = Hashtbl.find compiled.branch_of_source source then
             Complex.one
           else Complex.zero)
      | CIsource _ -> () (* AC-quiet *)
      | CMosfet { d; g; s; spec } ->
        let vgs = v_of op g -. v_of op s in
        let vds = v_of op d -. v_of op s in
        let small =
          Mos_model.evaluate ~polarity:spec.polarity ~params:spec.params
            ~w:spec.w ~l:spec.l ~vgs ~vds
        in
        let add r c v =
          if r <> 0 && c <> 0 then a.(idx r).(idx c) <- Complex.add a.(idx r).(idx c) (re v)
        in
        add d d small.gds;
        add d g small.gm;
        add d s (-.(small.gm +. small.gds));
        add s d (-.small.gds);
        add s g (-.small.gm);
        add s s (small.gm +. small.gds)
    in
    List.iter stamp_device compiled.cdevices;
    let x = Linear_complex.solve a rhs in
    freq, { ac_freq = freq; ac_x = x; ac_n_nodes = compiled.n_nodes }
  in
  List.map solve_at frequencies
