(** Level-1 (Shichman–Hodges) MOSFET model.

    Sufficient for the qualitative fault signatures the methodology
    classifies (stuck-at, offset, current deviation): square-law drain
    current with channel-length modulation, symmetric in drain/source.
    Parameters are per-polarity; variation (Vth shift, β factor) is
    applied when a netlist is instantiated. *)

type polarity = Nmos | Pmos

type params = {
  vth : float;      (** threshold voltage, V (positive for both polarities) *)
  kp : float;       (** process transconductance µCox, A/V² *)
  lambda : float;   (** channel-length modulation, 1/V *)
}

(** Default 1 µm process devices: NMOS Vth 0.8 V, KP 90 µA/V²;
    PMOS Vth 0.9 V, KP 30 µA/V²; λ = 0.03 V⁻¹. *)
val default_nmos : params

val default_pmos : params

(** Linearized operating point of a device for MNA stamping. All values
    use drain-to-source conventions of the *reported* terminal order (the
    model handles internal drain/source swap for negative Vds). *)
type operating_point = {
  id : float;   (** drain current, A, positive into the drain for NMOS *)
  gm : float;   (** ∂Id/∂Vgs *)
  gds : float;  (** ∂Id/∂Vds *)
}

(** [evaluate ~polarity ~params ~w ~l ~vgs ~vds] computes the DC current
    and small-signal derivatives. [w]/[l] in metres. For PMOS, pass the
    actual (negative-leaning) [vgs]/[vds]; the model mirrors internally
    and returns [id] with the convention that a conducting PMOS has
    negative drain current. *)
val evaluate :
  polarity:polarity -> params:params -> w:float -> l:float ->
  vgs:float -> vds:float -> operating_point

(** [evaluate_packed ~n ~sign ~vth ~beta ~lambda ~vgs ~vds ~id ~gm ~gds]
    evaluates devices [0 .. n-1] from packed parameter arrays in one
    allocation-free loop, writing results into [id]/[gm]/[gds]. This is
    the kernel behind the engine's compiled stamp plans: parameters are
    packed once at netlist-compile time, then every Newton iteration is a
    single tight pass.

    Packing convention: [sign] is [+1.0] for NMOS and [-1.0] for PMOS;
    [beta] is the precomputed [kp *. w /. l] (same expression, so the
    float is identical); [vth]/[lambda] come straight from {!params}.
    [vgs]/[vds] use the same reported-terminal convention as {!evaluate}.

    Results are bit-identical to calling {!evaluate} per device — the
    mirror and drain/source swap are exact IEEE-754 sign transfers — so
    the dense reference backend and the plan-based backends print
    byte-identical tables. All arrays must have length at least [n]. *)
val evaluate_packed :
  n:int ->
  sign:float array -> vth:float array -> beta:float array ->
  lambda:float array ->
  vgs:float array -> vds:float array ->
  id:float array -> gm:float array -> gds:float array -> unit

(** Region report for tests and debugging. *)
type region = Cutoff | Triode | Saturation

val region :
  polarity:polarity -> params:params -> vgs:float -> vds:float -> region
