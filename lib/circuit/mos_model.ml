type polarity = Nmos | Pmos

type params = { vth : float; kp : float; lambda : float }

let default_nmos = { vth = 0.80; kp = 90e-6; lambda = 0.03 }
let default_pmos = { vth = 0.90; kp = 30e-6; lambda = 0.03 }

type operating_point = { id : float; gm : float; gds : float }

(* Square-law NMOS with vds >= 0 assumed. *)
let nmos_forward params ~w ~l ~vgs ~vds =
  let beta = params.kp *. w /. l in
  let vgst = vgs -. params.vth in
  if vgst <= 0. then { id = 0.; gm = 0.; gds = 0. }
  else if vds < vgst then begin
    (* Triode. *)
    let clm = 1. +. (params.lambda *. vds) in
    let core = (vgst *. vds) -. (0.5 *. vds *. vds) in
    {
      id = beta *. core *. clm;
      gm = beta *. vds *. clm;
      gds = beta *. (((vgst -. vds) *. clm) +. (params.lambda *. core));
    }
  end
  else begin
    (* Saturation. *)
    let clm = 1. +. (params.lambda *. vds) in
    let core = 0.5 *. vgst *. vgst in
    {
      id = beta *. core *. clm;
      gm = beta *. vgst *. clm;
      gds = beta *. params.lambda *. core;
    }
  end

(* Handle drain/source symmetry: for vds < 0 the physical source and drain
   exchange roles. The returned derivatives are with respect to the
   original vgs/vds, obtained by the chain rule on
   Id(vgs, vds) = -Id'(vgs - vds, -vds). *)
let nmos_symmetric params ~w ~l ~vgs ~vds =
  if vds >= 0. then nmos_forward params ~w ~l ~vgs ~vds
  else begin
    let swapped = nmos_forward params ~w ~l ~vgs:(vgs -. vds) ~vds:(-.vds) in
    {
      id = -.swapped.id;
      gm = -.swapped.gm;
      gds = swapped.gm +. swapped.gds;
    }
  end

(* PMOS mirrors NMOS: Id_p(vgs, vds) = -Id_n(-vgs, -vds); both derivative
   signs cancel, so gm and gds carry over unchanged. *)
let evaluate ~polarity ~params ~w ~l ~vgs ~vds =
  match polarity with
  | Nmos -> nmos_symmetric params ~w ~l ~vgs ~vds
  | Pmos ->
    let mirrored = nmos_symmetric params ~w ~l ~vgs:(-.vgs) ~vds:(-.vds) in
    { id = -.mirrored.id; gm = mirrored.gm; gds = mirrored.gds }

(* Batched evaluation over packed parameter arrays: the same arithmetic
   as [evaluate], inlined into one loop with per-branch array writes so a
   Newton iteration over hundreds of devices performs no allocation. The
   mirror (s = -1 for PMOS) and the drain/source swap reproduce the
   scalar path's operations exactly — multiplication by ±1.0 is an exact
   IEEE-754 sign transfer — so results are bit-identical to [evaluate];
   [test_circuit] locks that equivalence down. *)
let evaluate_packed ~n ~sign ~vth ~beta ~lambda ~vgs ~vds ~id ~gm ~gds =
  for k = 0 to n - 1 do
    let s = Array.unsafe_get sign k in
    let vth_k = Array.unsafe_get vth k in
    let beta_k = Array.unsafe_get beta k in
    let lambda_k = Array.unsafe_get lambda k in
    let vgs0 = s *. Array.unsafe_get vgs k in
    let vds0 = s *. Array.unsafe_get vds k in
    let swap = vds0 < 0. in
    let vgs1 = if swap then vgs0 -. vds0 else vgs0 in
    let vds1 = if swap then -.vds0 else vds0 in
    let vgst = vgs1 -. vth_k in
    if vgst <= 0. then
      if swap then begin
        Array.unsafe_set id k (s *. (-0.));
        Array.unsafe_set gm k (-0.);
        Array.unsafe_set gds k 0.
      end
      else begin
        Array.unsafe_set id k (s *. 0.);
        Array.unsafe_set gm k 0.;
        Array.unsafe_set gds k 0.
      end
    else begin
      let clm = 1. +. (lambda_k *. vds1) in
      if vds1 < vgst then begin
        (* Triode. *)
        let core = (vgst *. vds1) -. (0.5 *. vds1 *. vds1) in
        let fid = beta_k *. core *. clm in
        let fgm = beta_k *. vds1 *. clm in
        let fgds = beta_k *. (((vgst -. vds1) *. clm) +. (lambda_k *. core)) in
        if swap then begin
          Array.unsafe_set id k (s *. -.fid);
          Array.unsafe_set gm k (-.fgm);
          Array.unsafe_set gds k (fgm +. fgds)
        end
        else begin
          Array.unsafe_set id k (s *. fid);
          Array.unsafe_set gm k fgm;
          Array.unsafe_set gds k fgds
        end
      end
      else begin
        (* Saturation. *)
        let core = 0.5 *. vgst *. vgst in
        let fid = beta_k *. core *. clm in
        let fgm = beta_k *. vgst *. clm in
        let fgds = beta_k *. lambda_k *. core in
        if swap then begin
          Array.unsafe_set id k (s *. -.fid);
          Array.unsafe_set gm k (-.fgm);
          Array.unsafe_set gds k (fgm +. fgds)
        end
        else begin
          Array.unsafe_set id k (s *. fid);
          Array.unsafe_set gm k fgm;
          Array.unsafe_set gds k fgds
        end
      end
    end
  done

type region = Cutoff | Triode | Saturation

let region ~polarity ~params ~vgs ~vds =
  let vgs, vds =
    match polarity with Nmos -> vgs, vds | Pmos -> -.vgs, -.vds
  in
  let vgs, vds = if vds >= 0. then vgs, vds else vgs -. vds, -.vds in
  let vgst = vgs -. params.vth in
  if vgst <= 0. then Cutoff else if vds < vgst then Triode else Saturation
