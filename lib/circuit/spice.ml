(* SPICE netlist subset: tokenizing line-based parser and a printer.

   The parser is two-pass: .MODEL cards are collected first so MOSFET
   lines can reference models defined later in the file, as SPICE
   allows. *)

let engineering_value text =
  (* 10k, 2.5MEG, 100n, 1e-12, 4.7 … *)
  let lower = String.lowercase_ascii (String.trim text) in
  let split_suffix () =
    let is_unit_char c = (c >= 'a' && c <= 'z') || c = '%' in
    let n = String.length lower in
    let rec boundary i =
      if i > 0 && is_unit_char lower.[i - 1] then boundary (i - 1) else i
    in
    let b = boundary n in
    String.sub lower 0 b, String.sub lower b (n - b)
  in
  let digits, suffix = split_suffix () in
  let multiplier =
    match suffix with
    | "" -> Some 1.0
    | "f" -> Some 1e-15
    | "p" -> Some 1e-12
    | "n" -> Some 1e-9
    | "u" -> Some 1e-6
    | "m" -> Some 1e-3
    | "k" -> Some 1e3
    | "meg" -> Some 1e6
    | "g" -> Some 1e9
    | _ -> None
  in
  match multiplier, float_of_string_opt digits with
  | Some m, Some v -> Some (v *. m)
  | (None | Some _), _ -> None

type model = { polarity : Mos_model.polarity; params : Mos_model.params }

let error ~line fmt =
  Format.kasprintf (fun message -> Error (Printf.sprintf "line %d: %s" line message)) fmt

(* Split a card into tokens; parentheses and '=' become separators kept
   out of the tokens, commas are whitespace. *)
let tokenize card =
  let buffer = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buffer > 0 then begin
      tokens := Buffer.contents buffer :: !tokens;
      Buffer.clear buffer
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' | '(' | ')' -> flush ()
      | '=' ->
        flush ();
        tokens := "=" :: !tokens
      | c -> Buffer.add_char buffer c)
    card;
  flush ();
  List.rev !tokens

(* key=value pairs from a token stream like ["w"; "="; "10u"]. *)
let rec key_values ~line = function
  | [] -> Ok []
  | key :: "=" :: value :: rest ->
    (match key_values ~line rest with
    | Ok pairs -> Ok ((String.lowercase_ascii key, value) :: pairs)
    | Error e -> Error e)
  | token :: _ -> error ~line "expected key=value, got %S" token

let parse_models lines =
  List.fold_left
    (fun acc (line_number, card) ->
      match acc with
      | Error _ -> acc
      | Ok models ->
        (match tokenize card with
        | dot :: name :: kind :: params
          when String.lowercase_ascii dot = ".model" ->
          let polarity =
            match String.lowercase_ascii kind with
            | "nmos" -> Some Mos_model.Nmos
            | "pmos" -> Some Mos_model.Pmos
            | _ -> None
          in
          (match polarity with
          | None -> error ~line:line_number "unknown model kind %S" kind
          | Some polarity ->
            (match key_values ~line:line_number params with
            | Error e -> Error e
            | Ok pairs ->
              let value key fallback =
                match List.assoc_opt key pairs with
                | None -> Ok fallback
                | Some text ->
                  (match engineering_value text with
                  | Some v -> Ok v
                  | None ->
                    error ~line:line_number "bad value %S for %s" text key)
              in
              let defaults =
                match polarity with
                | Mos_model.Nmos -> Mos_model.default_nmos
                | Mos_model.Pmos -> Mos_model.default_pmos
              in
              (match
                 ( value "vto" defaults.Mos_model.vth,
                   value "kp" defaults.Mos_model.kp,
                   value "lambda" defaults.Mos_model.lambda )
               with
              | Ok vth, Ok kp, Ok lambda ->
                let key = String.lowercase_ascii name in
                if List.mem_assoc key models then
                  error ~line:line_number "duplicate model %S" name
                else
                  Ok
                    ((key, { polarity; params = { Mos_model.vth; kp; lambda } })
                    :: models)
              | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)))
        | _ -> acc))
    (Ok []) lines

let parse_string text =
  let raw_lines = String.split_on_char '\n' text in
  let cards =
    List.mapi (fun i l -> i + 1, String.trim l) raw_lines
    |> List.filter (fun (_, l) ->
           l <> "" && l.[0] <> '*'
           && String.lowercase_ascii l <> ".end")
  in
  let model_cards, device_cards =
    List.partition
      (fun (_, l) ->
        String.length l >= 6 && String.lowercase_ascii (String.sub l 0 6) = ".model")
      cards
  in
  match parse_models model_cards with
  | Error e -> Error e
  | Ok models ->
    let nl = Netlist.create () in
    let node name = if name = "0" then Netlist.ground else Netlist.node nl name in
    let parse_value ~line text =
      match engineering_value text with
      | Some v -> Ok v
      | None -> error ~line "bad value %S" text
    in
    let parse_waveform ~line = function
      | [] -> Ok (Waveform.dc 0.0)
      | [ v ] -> Result.map Waveform.dc (parse_value ~line v)
      | keyword :: rest ->
        (match String.lowercase_ascii keyword, rest with
        | "dc", [ v ] -> Result.map Waveform.dc (parse_value ~line v)
        | "pwl", points ->
          let rec pairs = function
            | [] -> Ok []
            | t :: v :: rest ->
              (match parse_value ~line t, parse_value ~line v, pairs rest with
              | Ok t, Ok v, Ok more -> Ok ((t, v) :: more)
              | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
            | [ _ ] -> error ~line "PWL needs time/value pairs"
          in
          (match pairs points with
          | Ok pts ->
            (try Ok (Waveform.pwl pts)
             with Invalid_argument m -> error ~line "%s" m)
          | Error e -> Error e)
        | "pulse", [ v0; v1; delay; rise; fall; width; period ] ->
          let all =
            List.map (parse_value ~line) [ v0; v1; delay; rise; fall; width; period ]
          in
          (match
             List.fold_right
               (fun v acc ->
                 match v, acc with
                 | Ok v, Ok vs -> Ok (v :: vs)
                 | Error e, _ | _, Error e -> Error e)
               all (Ok [])
           with
          | Ok [ v0; v1; delay; rise; fall; width; period ] ->
            (try Ok (Waveform.pulse ~v0 ~v1 ~delay ~rise ~fall ~width ~period)
             with Invalid_argument m -> error ~line "%s" m)
          | Ok _ -> error ~line "PULSE needs 7 parameters"
          | Error e -> Error e)
        | _, _ -> error ~line "unsupported source specification %S" keyword)
    in
    let parse_card acc (line, card) =
      match acc with
      | Error _ -> acc
      | Ok () ->
        let tokens = tokenize card in
        (match tokens with
        | [] -> Ok ()
        | name :: _ when Netlist.has_device nl name ->
          error ~line "duplicate device %S" name
        | name :: rest ->
          let add_two_terminal build =
            match rest with
            | n1 :: n2 :: value ->
              (match build n1 n2 value with
              | Ok () -> Ok ()
              | Error e -> Error e)
            | _ -> error ~line "%s needs two nodes and a value" name
          in
          (match Char.lowercase_ascii name.[0] with
          | 'r' ->
            add_two_terminal (fun n1 n2 -> function
              | [ v ] ->
                Result.map
                  (fun r ->
                    Netlist.add_resistor nl ~name (node n1) (node n2) r)
                  (parse_value ~line v)
              | _ -> error ~line "resistor needs one value")
          | 'c' ->
            add_two_terminal (fun n1 n2 -> function
              | [ v ] ->
                Result.map
                  (fun c ->
                    Netlist.add_capacitor nl ~name (node n1) (node n2) c)
                  (parse_value ~line v)
              | _ -> error ~line "capacitor needs one value")
          | 'v' ->
            add_two_terminal (fun n1 n2 spec ->
                Result.map
                  (fun wave ->
                    Netlist.add_vsource nl ~name ~pos:(node n1) ~neg:(node n2)
                      wave)
                  (parse_waveform ~line spec))
          | 'i' ->
            add_two_terminal (fun n1 n2 spec ->
                Result.map
                  (fun wave ->
                    Netlist.add_isource nl ~name ~pos:(node n1) ~neg:(node n2)
                      wave)
                  (parse_waveform ~line spec))
          | 'm' ->
            (match rest with
            | d :: g :: s :: b :: model_name :: params ->
              (match
                 List.assoc_opt (String.lowercase_ascii model_name) models
               with
              | None -> error ~line "unknown model %S" model_name
              | Some model ->
                (match key_values ~line params with
                | Error e -> Error e
                | Ok pairs ->
                  let dim key =
                    match List.assoc_opt key pairs with
                    | None -> error ~line "MOSFET needs %s=" (String.uppercase_ascii key)
                    | Some text ->
                      (match engineering_value text with
                      | Some v -> Ok v
                      | None -> error ~line "bad value %S for %s" text key)
                  in
                  (match dim "w", dim "l" with
                  | Ok w, Ok l ->
                    Ok
                      (Netlist.add_mosfet nl ~name ~drain:(node d)
                         ~gate:(node g) ~source:(node s) ~bulk:(node b)
                         {
                           Netlist.polarity = model.polarity;
                           params = model.params;
                           w;
                           l;
                         })
                  | Error e, _ | _, Error e -> Error e)))
            | _ -> error ~line "MOSFET needs d g s b model W= L=")
          | _ -> error ~line "unsupported card %S" name))
    in
    (match List.fold_left parse_card (Ok ()) device_cards with
    | Ok () -> Ok nl
    | Error e -> Error e)

(* Every internal error is "line N: …"; the public entry point prefixes
   the source name so a message from a multi-file flow says which netlist
   it came from ("ladder.cir: line 12: …"). *)
let parse ?(source = "<string>") text =
  Result.map_error
    (fun e -> Printf.sprintf "%s: %s" source e)
    (parse_string text)

(* --- printer ------------------------------------------------------------ *)

let float_repr v = Printf.sprintf "%.12g" v

let waveform_repr wave =
  match Waveform.view wave with
  | Waveform.View_dc v -> Printf.sprintf "DC %s" (float_repr v)
  | Waveform.View_pwl points ->
    Printf.sprintf "PWL(%s)"
      (String.concat " "
         (List.map
            (fun (t, v) -> Printf.sprintf "%s %s" (float_repr t) (float_repr v))
            points))
  | Waveform.View_pulse { v0; v1; delay; rise; fall; width; period } ->
    Printf.sprintf "PULSE(%s %s %s %s %s %s %s)" (float_repr v0)
      (float_repr v1) (float_repr delay) (float_repr rise) (float_repr fall)
      (float_repr width) (float_repr period)

let to_string netlist =
  let buffer = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "* netlist exported by dotest";
  (* Collect distinct MOS models and name them. *)
  let models = ref [] in
  let model_name (spec : Netlist.mosfet_spec) =
    let key = spec.polarity, spec.params in
    match List.assoc_opt key !models with
    | Some name -> name
    | None ->
      let name =
        Printf.sprintf "%s%d"
          (match spec.polarity with Mos_model.Nmos -> "NM" | Mos_model.Pmos -> "PM")
          (List.length !models)
      in
      models := (key, name) :: !models;
      name
  in
  let node_repr n = Netlist.node_name netlist n in
  let device (dv : Netlist.device_view) =
    let pin role = node_repr (List.assoc role dv.pin_nodes) in
    match dv.kind with
    | Netlist.Resistor r ->
      line "%s %s %s %s" dv.dev_name (pin "+") (pin "-") (float_repr r)
    | Netlist.Capacitor c ->
      line "%s %s %s %s" dv.dev_name (pin "+") (pin "-") (float_repr c)
    | Netlist.Vsource wave ->
      line "%s %s %s %s" dv.dev_name (pin "+") (pin "-") (waveform_repr wave)
    | Netlist.Isource wave ->
      line "%s %s %s %s" dv.dev_name (pin "+") (pin "-") (waveform_repr wave)
    | Netlist.Mosfet spec ->
      line "%s %s %s %s %s %s W=%s L=%s" dv.dev_name (pin "d") (pin "g")
        (pin "s") (pin "b") (model_name spec) (float_repr spec.w)
        (float_repr spec.l)
  in
  List.iter device (Netlist.devices netlist);
  List.iter
    (fun ((polarity, (params : Mos_model.params)), name) ->
      line ".MODEL %s %s (VTO=%s KP=%s LAMBDA=%s)" name
        (match polarity with Mos_model.Nmos -> "NMOS" | Mos_model.Pmos -> "PMOS")
        (float_repr params.Mos_model.vth)
        (float_repr params.Mos_model.kp)
        (float_repr params.Mos_model.lambda))
    (List.rev !models);
  line ".END";
  Buffer.contents buffer

let roundtrip netlist = parse (to_string netlist)
