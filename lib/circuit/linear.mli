(** Linear algebra for MNA systems, organized around factorizations.

    Circuits in this library are macro cells of a few dozen nodes, so the
    kernels are dense LU with partial pivoting (optionally band-limited
    under an RCM permutation). The primary surface is {!Factor}: factor a
    matrix once, then reuse the factorization across many right-hand
    sides and cheap Sherman–Morrison rank-1 corrections. The in-place
    [solve] remains as a thin wrapper over the same kernels.

    Singularity is judged relative to the matrix's largest entry (a pivot
    below [1e-30 · max|a_ij|] raises {!Singular}), so badly-scaled but
    well-conditioned systems — fA capacitor stamps next to mho-scale
    short conductances — no longer trip the historical absolute
    [1e-300] threshold. *)

exception Singular

(** Persistent LU factorizations with Sherman–Morrison update chains. *)
module Factor : sig
  (** A factorization of some n×n matrix [A], immutable once built.
      Internally: LU factors + pivot permutation (dense, or band-limited
      under a symmetric row/column permutation) plus a list of rank-1
      corrections applied on top. *)
  type t

  (** [factor ?permute a] factors a copy of [a]; [a] is left untouched.

      With [~permute:p] (a symmetric ordering such as one from {!rcm}),
      the matrix is permuted to [a.(p.(i)).(p.(j))], its bandwidth is
      measured, and a band-limited LU is used — same pivoting rule, loops
      bounded by the band (partial pivoting widens the upper band to at
      most [bl + bu]). Solutions come back in the original ordering.

      @raise Singular when pivoting finds no usable pivot.
      @raise Invalid_argument on shape or permutation-size mismatch. *)
  val factor : ?permute:int array -> float array array -> t

  (** [solve_factored t b] solves [A·x = b] through the stored
      factorization and update chain, returning a fresh array; [b] is
      left untouched.
      @raise Invalid_argument on shape mismatch. *)
  val solve_factored : t -> float array -> float array

  (** [rank1_update t ~c ~u ~v] is a factorization of [A + c·u·vᵀ]
      obtained by the Sherman–Morrison identity — two O(n²) solves, no
      re-factorization. Returns [None] when the update denominator
      [1 + c·vᵀA⁻¹u] is too close to zero (the updated matrix is near
      singular), in which case the caller must re-factor from scratch.
      The guard is a pure function of the numbers, never of timing.
      @raise Invalid_argument on shape mismatch. *)
  val rank1_update : t -> c:float -> u:float array -> v:float array -> t option

  (** Number of rank-1 corrections stacked on the base factorization.
      Each correction adds one dot product + axpy per solve, so callers
      should re-factor once this grows past a handful. *)
  val updates : t -> int

  (** Dimension of the factored matrix. *)
  val size : t -> int

  (** Whether the base factorization uses the band-limited kernel. *)
  val is_banded : t -> bool
end

(** [rcm ~n edges] is a reverse Cuthill–McKee ordering of the undirected
    graph on vertices [0..n-1] with the given edges (self-loops and
    out-of-range endpoints ignored). The result [p] maps new position to
    original index and is deterministic: neighbours are visited in
    (degree, index) order and each component starts from its
    minimum-degree vertex. *)
val rcm : n:int -> (int * int) list -> int array

(** [bandwidth_under ~perm edges] is the half-bandwidth of the adjacency
    graph after applying the symmetric ordering [perm] — the selection
    heuristic for choosing the banded kernel. *)
val bandwidth_under : perm:int array -> (int * int) list -> int

(** [solve a b] solves [a · x = b], overwriting both [a] (with its LU
    factors) and [b] (with the solution), and returns [b].
    @raise Singular when pivoting finds no usable pivot.
    @raise Invalid_argument on shape mismatch. *)
val solve : float array array -> float array -> float array

(** [matrix n] is a fresh n×n zero matrix. *)
val matrix : int -> float array array

(** [residual a x b] is the max-norm of [a·x - b]; for tests. *)
val residual : float array array -> float array -> float array -> float
