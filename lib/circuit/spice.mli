(** SPICE-format netlist reader and writer.

    Supports the subset this library's devices span, enough to exchange
    macros with standard circuit tools:

    {v
    * comment
    Rname n1 n2 value
    Cname n1 n2 value
    Vname n+ n- DC value
    Vname n+ n- PWL(t1 v1 t2 v2 ...)
    Vname n+ n- PULSE(v0 v1 delay rise fall width period)
    Iname n+ n- DC value
    Mname d g s b model W=value L=value
    .MODEL name NMOS|PMOS (VTO=value KP=value LAMBDA=value)
    .END
    v}

    Device names keep their leading type letter ("R1", "MTAIL", …).
    Values accept the usual engineering suffixes
    (f p n u m k meg g, case-insensitive). Node ["0"] is ground.
    Parsing is case-insensitive for keywords and suffixes but preserves
    node and device-name case. *)

(** [parse ?source text] builds a netlist.
    Returns [Error message] on malformed input, unknown model references,
    or duplicate definitions; the message carries [source] (a file name,
    default ["<string>"]) and the offending line number, e.g.
    ["ladder.cir: line 12: duplicate device \"R1\""]. *)
val parse : ?source:string -> string -> (Netlist.t, string) result

(** [to_string netlist] renders a netlist that [parse] accepts;
    [parse (to_string nl)] is electrically equivalent to [nl] (same
    devices, nodes, values, source waveforms and MOS models). *)
val to_string : Netlist.t -> string

(** [roundtrip netlist] = [parse (to_string netlist)], for tests. *)
val roundtrip : Netlist.t -> (Netlist.t, string) result
