(** The analog simulation engine: DC operating point and transient.

    Modified nodal analysis with dense LU; nonlinear devices are solved by
    damped Newton–Raphson with a gmin shunt on every node, gmin stepping
    and source stepping as fallbacks — the standard SPICE convergence
    aids, which matter here because injected faults routinely produce
    floating nodes (opens) and near-shorts.

    Every Newton iteration spends one tick of the ambient
    {!Util.Watchdog} budget, so a caller that arms a deadline with
    [Util.Watchdog.with_limits] around an analysis bounds it in solver
    iterations and/or wall-clock time; expiry raises
    [Util.Watchdog.Deadline_exceeded] out of the analysis (through the
    convergence fallbacks and transient sub-stepping — the budget covers
    the whole analysis, not one Newton attempt). With no deadline armed
    the metering is a single domain-local read per iteration. *)

exception No_convergence of string

type options = {
  gmin : float;        (** shunt conductance from every node to ground *)
  abstol : float;      (** branch-current convergence floor, A *)
  vntol : float;       (** node-voltage convergence floor, V *)
  reltol : float;      (** relative convergence criterion *)
  max_iterations : int;
  max_step_voltage : float;  (** Newton damping: max |ΔV| per iteration *)
}

val default_options : options

(** {1 Escalation ladder}

    When a simulation fails to converge even through the gmin/source
    stepping aids, the resilience layer retries it with progressively
    looser options. The ladder is documented and deterministic; level 0
    is the base options and each higher level loosens further:

    - level 1: [reltol] ×10, [max_iterations] ×2
    - level 2: [reltol] ×100, [gmin] ×100, [max_iterations] ×4
    - level 3: [reltol] ×1000, [gmin] ×10⁴, [vntol] ×10, [abstol] ×10,
      [max_iterations] ×8

    Results obtained at an escalated level are degraded (looser
    tolerances); callers should record that they retried. *)

(** Highest meaningful escalation level (levels above clamp to it). *)
val escalation_levels : int

(** [escalation base ~level] is the ladder rung [level] applied to
    [base]; [level <= 0] returns [base] unchanged. *)
val escalation : options -> level:int -> options

(** [with_options_override options f] makes every analysis call inside
    [f] that does not pass an explicit [?options] use [options] instead
    of {!default_options}. The override is scoped to the current domain
    and dynamic extent of [f] (it nests and is exception-safe), so the
    retry layer can escalate a macro's measurement procedure without
    threading options through it. *)
val with_options_override : options -> (unit -> 'a) -> 'a

(** {1 Solver selection}

    Every analysis allocates one solver backend per compiled netlist and
    keeps it for the analysis's whole lifetime (all Newton iterations,
    transient steps and stepping-fallback stages):

    - [Dense] is the historical reference path: rebuild and LU-factor the
      full MNA matrix on every Newton iteration. Bit-identical to the
      pre-factorization engine; the baseline for bisecting regressions.
    - [Rank1] keeps the factorization and re-uses it while no MOSFET
      linearization has moved beyond a tight tolerance (Jacobian bypass),
      folds small changes in as Sherman–Morrison rank-1 updates, and
      re-factors only when many devices move at once or an update's
      denominator guard trips.
    - [Auto] (the default) is [Rank1] plus a per-compile structural
      choice of LU kernel: if an RCM ordering of the node adjacency graph
      yields a half-bandwidth well under the matrix size, the band-limited
      kernel is used instead of the dense one.

    All reuse/fallback decisions are pure functions of device values —
    never of timing — so results are deterministic at any job count,
    warm or cold. Telemetry: [engine.factorizations], [engine.rank1_solves],
    [engine.jacobian_bypass], [engine.rank1_fallbacks]. *)

type solver = Dense | Rank1 | Auto

val default_solver : solver
(** [Auto]. *)

val solver_name : solver -> string
val solver_of_string : string -> solver option

val all_solvers : solver list
(** In CLI-enumeration order: dense, rank1, auto. *)

(** [with_solver s f] makes every analysis started inside [f] use solver
    backend [s]. Scoped to the current domain and the dynamic extent of
    [f] (nests, exception-safe), on a separate key from
    {!with_options_override} so retry escalation cannot clobber it. Note
    domain-local state does not propagate into pool workers — parallel
    drivers must re-install the override inside each worker task. *)
val with_solver : solver -> (unit -> 'a) -> 'a

val current_solver : unit -> solver
(** The solver in effect: innermost {!with_solver}, else {!default_solver}. *)

(** {1 Cross-class shared nominal factorization}

    Most injected defects only {e add} two-terminal R/C stamps between
    pre-existing nodes, so the faulty MNA matrix is the nominal matrix
    plus a rank-≤2 symmetric perturbation and the faulty operating point
    is usually a small excursion from the nominal one. When a
    [shared_nominal] context is installed, {!dc_operating_point} and
    {!transient} seed their first DC solve by stripping the injected
    stamps (per the context's [strip] predicate) to recover the nominal
    skeleton and deriving that skeleton's operating point and exact
    Jacobian factorization — once per worker domain, cached by
    (skeleton, options).

    The warm start is part of the analysis semantics: {e every} backend,
    dense included, starts Newton from the derived nominal operating
    point (the derivation is solver-independent, so the vector is
    bitwise identical across backends — a reuse-only warm start would
    let the seeded path resolve marginal classes the dense reference
    cannot, and the cross-backend table-identity contract would break).
    On top of that, reuse backends ([Rank1]/[Auto]) also chain the
    injected conductances onto the cached factorization as rank-1
    updates, so their first solve skips the fresh factor entirely.

    The seed is only ever a preconditioner: the chord iteration converges
    to the faulty circuit's own solution regardless, and every
    seed/fallback decision is a pure function of (netlist, options), so
    the determinism contract is unchanged. Faults that are not pure R/C
    additions (node splits, parasitic devices) and skeletons whose
    nominal solve fails fall back to the ordinary cold-start path on all
    backends alike; an update-guard trip drops only the factor seed and
    keeps the warm start.

    Telemetry: [engine.shared_nominal_hits] (first solve warm-started),
    [engine.shared_nominal_misses] (context installed but the defect was
    not stamp-expressible, or no usable skeleton entry),
    [engine.shared_nominal_fallbacks] (stamp chaining tripped the
    singularity guard; counted alongside the hit). All three are
    per-class deterministic; the per-worker derivation itself is
    telemetry-silenced and watchdog-unmetered so counter totals and
    iteration-budget outcomes stay byte-identical at any [--jobs]. *)

type shared_nominal

(** [shared_nominal ~strip ()] — a context whose [strip] predicate
    recognizes injected-device names (e.g. [Fault.Inject.is_fault_device]).
    Create once per run; the derived-factorization cache is per worker
    domain and keyed to the context identity. *)
val shared_nominal : strip:(string -> bool) -> unit -> shared_nominal

(** [with_shared_nominal sn f] installs the context for the dynamic
    extent of [f] on the calling domain (nests, exception-safe). As with
    {!with_solver}, domain-local state does not propagate into pool
    workers — install inside each worker task. *)
val with_shared_nominal : shared_nominal -> (unit -> 'a) -> 'a

(** {1 Convergence diagnostics} *)

(** Which convergence aid produced the solution. *)
type fallback =
  | Plain_newton      (** converged without any aid *)
  | Gmin_stepping     (** needed the gmin relaxation schedule *)
  | Source_stepping   (** needed the source ramp (last resort) *)

val fallback_name : fallback -> string

type diagnostics = {
  iterations : int;
      (** Newton iterations spent, summed over every solved point
          (failed attempts count their full iteration budget) *)
  fallback : fallback;
      (** the most escalated aid that was needed at any point *)
}

(** One solved time point. *)
type solution

val time : solution -> float

(** [voltage sol node] — node voltage in V. *)
val voltage : solution -> Netlist.node -> float

(** [source_current sol name] is the current a voltage source delivers
    from its positive terminal into the circuit (positive when the
    circuit draws from the source). @raise Not_found for unknown names. *)
val source_current : solution -> string -> float

(** [dc_operating_point ?options netlist] solves the bias point with
    sources at their [t = 0] values and capacitors open.
    @raise No_convergence when all fallbacks fail. *)
val dc_operating_point : ?options:options -> Netlist.t -> solution

(** Like {!dc_operating_point}, also reporting how hard the solve was. *)
val dc_operating_point_diag :
  ?options:options -> Netlist.t -> solution * diagnostics

(** [dense_jacobian ?options netlist ~x] — the dense DC MNA matrix
    linearized at guess [x] (length = unknowns: node voltages then
    branch currents). A diagnostic for tests of structural invariants
    (e.g. the rank-≤2 fault-perturbation property the shared-nominal
    path relies on); not a hot path.
    @raise Invalid_argument when [x] has the wrong length. *)
val dense_jacobian :
  ?options:options -> Netlist.t -> x:float array -> float array array

(** [transient ?options netlist ~stop ~step] integrates from 0 to [stop]
    with fixed step [step] (backward Euler), returning the DC point at
    [t = 0] followed by every accepted step in time order. *)
val transient :
  ?options:options -> Netlist.t -> stop:float -> step:float -> solution list

(** Like {!transient}, also reporting aggregate diagnostics over every
    solved point (including halved sub-steps). *)
val transient_diag :
  ?options:options ->
  Netlist.t -> stop:float -> step:float -> solution list * diagnostics

(** [dc_sweep ?options netlist ~source ~values] re-solves the operating
    point for each value of the named voltage source (in order), seeding
    each solve with the previous solution. *)
val dc_sweep :
  ?options:options ->
  Netlist.t -> source:string -> values:float list -> solution list

(** {1 AC small-signal analysis}

    The circuit is linearized at its DC operating point (MOSFETs become
    gm/gds conductances, capacitors jωC admittances) and the complex MNA
    system is solved per frequency with unit AC excitation on one named
    voltage source. This is the third leg of the paper's simple test
    repertoire (DC, transient and AC measurements). *)

type ac_solution

val ac_frequency : ac_solution -> float

(** Complex node voltage (phasor) for 1 V AC at the excitation source. *)
val ac_voltage : ac_solution -> Netlist.node -> Complex.t

(** Gain magnitude in dB relative to the 1 V excitation. *)
val ac_magnitude_db : ac_solution -> Netlist.node -> float

(** Phase in degrees, in (-180, 180]. *)
val ac_phase_deg : ac_solution -> Netlist.node -> float

(** [ac_sweep ?options netlist ~source ~frequencies] — [source] must name
    a voltage source; it is excited with 1 V AC while every other source
    is AC-quiet. Frequencies in Hz, each must be positive.
    @raise Invalid_argument on an unknown or non-voltage source. *)
val ac_sweep :
  ?options:options ->
  Netlist.t ->
  source:string ->
  frequencies:float list ->
  (float * ac_solution) list

(** [decades ~lo ~hi ~per_decade] — logarithmically spaced frequency grid
    from [lo] to [hi] inclusive. *)
val decades : lo:float -> hi:float -> per_decade:int -> float list
