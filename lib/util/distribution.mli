(** Random-variate samplers for the Monte-Carlo subsystems.

    Defect sizes follow the classic spot-defect size distribution — density
    ∝ 1/x³ above the resolution limit — while process parameters follow
    truncated Gaussians. Discrete distributions drive the choice of defect
    mechanism per sprinkled spot. *)

(** [normal prng ~mean ~sigma] draws a Gaussian variate (Box–Muller). *)
val normal : Prng.t -> mean:float -> sigma:float -> float

(** [truncated_normal prng ~mean ~sigma ~lo ~hi] redraws until the variate
    lands in [\[lo, hi\]]; used for physical parameters that cannot go
    negative. Redraws are capped at 1000: a window many σ away from the
    mean (where the acceptance probability is essentially zero) cannot
    hang a Monte-Carlo die — after the cap the result is the mean clamped
    into [\[lo, hi\]], i.e. the bound nearer the mean.
    @raise Invalid_argument if [lo >= hi]. *)
val truncated_normal :
  Prng.t -> mean:float -> sigma:float -> lo:float -> hi:float -> float

(** [power_law_size prng ~x_min ~x_max] samples a defect diameter from the
    1/x³ spot-defect size density restricted to [\[x_min, x_max\]], by
    inversion of the CDF. Both bounds must be positive with
    [x_min < x_max]. *)
val power_law_size : Prng.t -> x_min:float -> x_max:float -> float

(** Weighted discrete distribution over the cases of ['a]. *)
type 'a discrete

(** [discrete cases] builds a sampler from [(weight, value)] pairs;
    weights must be non-negative and sum to a positive value. *)
val discrete : (float * 'a) list -> 'a discrete

(** [draw prng d] samples one value according to the weights. *)
val draw : Prng.t -> 'a discrete -> 'a

(** [cases d] returns the normalized [(probability, value)] pairs. *)
val cases : 'a discrete -> (float * 'a) list

(** [shuffle prng arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : Prng.t -> 'a array -> unit
