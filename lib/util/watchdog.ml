(* Run supervision: per-simulation deadlines and cooperative shutdown. *)

(* --- deadlines --------------------------------------------------------- *)

type limits = { wall_seconds : float option; max_iterations : int option }

let no_limits = { wall_seconds = None; max_iterations = None }

let limits ?wall_seconds ?max_iterations () = { wall_seconds; max_iterations }

let scale { wall_seconds; max_iterations } ~factor =
  let factor = max 1 factor in
  {
    wall_seconds = Option.map (fun s -> s *. float_of_int factor) wall_seconds;
    max_iterations = Option.map (fun n -> n * factor) max_iterations;
  }

type expiry =
  | Wall_clock of { limit : float }
  | Iterations of { limit : int }

(* The rendered message is folded into [Macro.Evaluate.Unresolved] error
   strings, which end up in cached payloads — it must therefore be a pure
   function of the configured limit, never of measured time. *)
let expiry_message = function
  | Wall_clock { limit } ->
    Printf.sprintf "wall-clock deadline of %gs exceeded" limit
  | Iterations { limit } ->
    Printf.sprintf "deadline of %d solver iterations exceeded" limit

exception Deadline_exceeded of expiry

let () =
  Printexc.register_printer (function
    | Deadline_exceeded e ->
      Some (Printf.sprintf "Watchdog.Deadline_exceeded: %s" (expiry_message e))
    | _ -> None)

(* Wall-clock reads cost a syscall-ish amount; amortize them over a batch
   of ticks so the armed hot path stays an integer compare. *)
let wall_check_interval = 32

let now_seconds () =
  Int64.to_float (Monotonic_clock.now ()) *. 1e-9

type armed = {
  armed_limits : limits;
  started : float;
  mutable ticks : int;
  mutable next_wall_check : int;
}

let state : armed option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let expire e =
  Telemetry.count "watchdog.deadline_exceeded";
  raise (Deadline_exceeded e)

let tick ?(by = 1) () =
  match Domain.DLS.get state with
  | None -> ()
  | Some t ->
    t.ticks <- t.ticks + by;
    (match t.armed_limits.max_iterations with
    | Some cap when t.ticks > cap -> expire (Iterations { limit = cap })
    | Some _ | None -> ());
    (match t.armed_limits.wall_seconds with
    | Some limit when t.ticks >= t.next_wall_check ->
      t.next_wall_check <- t.ticks + wall_check_interval;
      if now_seconds () -. t.started > limit then
        expire (Wall_clock { limit })
    | Some _ | None -> ())

let with_limits limits f =
  if limits.wall_seconds = None && limits.max_iterations = None then f ()
  else begin
    let saved = Domain.DLS.get state in
    Domain.DLS.set state
      (Some
         {
           armed_limits = limits;
           started = now_seconds ();
           ticks = 0;
           next_wall_check = wall_check_interval;
         });
    Fun.protect ~finally:(fun () -> Domain.DLS.set state saved) f
  end

let armed () = Domain.DLS.get state <> None

let unmetered f =
  match Domain.DLS.get state with
  | None -> f ()
  | Some _ as saved ->
    Domain.DLS.set state None;
    Fun.protect ~finally:(fun () -> Domain.DLS.set state saved) f

(* --- cooperative shutdown ---------------------------------------------- *)

exception Interrupted of string

let () =
  Printexc.register_printer (function
    | Interrupted reason ->
      Some (Printf.sprintf "Watchdog.Interrupted: run interrupted (%s)" reason)
    | _ -> None)

(* One process-wide flag: signal handlers set it, pool workers poll it.
   [None] means "keep running". *)
let shutdown : string option Atomic.t = Atomic.make None

let request_shutdown ?(reason = "shutdown requested") () =
  ignore (Atomic.compare_and_set shutdown None (Some reason))

let shutdown_requested () = Atomic.get shutdown <> None

let shutdown_reason () = Atomic.get shutdown

let reset_shutdown () = Atomic.set shutdown None

let check_shutdown () =
  match Atomic.get shutdown with
  | None -> ()
  | Some reason -> raise (Interrupted reason)

let signal_name s =
  if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigterm then "SIGTERM"
  else Printf.sprintf "signal %d" s

let install_signal_handlers () =
  let handle s =
    if shutdown_requested () then
      (* A second signal means "stop now": at_exit still runs, so trace
         channels flush, but no further work is drained. *)
      Stdlib.exit 130
    else request_shutdown ~reason:(signal_name s) ()
  in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle handle))
    [ Sys.sigint; Sys.sigterm ]
