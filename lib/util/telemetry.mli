(** Observability substrate: hierarchical spans, counters, gauges and
    pluggable event sinks.

    The pipeline is a long multi-stage funnel (sprinkle → collapse →
    good-space → fault simulation → detection) fanned out over worker
    domains; this module answers "where did the run spend its time, how
    many Newton iterations did each stage burn, which fault classes were
    escalated" without printf debugging.

    {2 Model}

    - {e Spans} are timed regions with parent nesting. Each span carries
      the wall-clock time at entry and a monotonic-clock duration, plus
      free-form attributes that may be added while the span is open (e.g.
      a fault class's resolution status, known only at the end). The
      current span is tracked per domain with [Domain.DLS], so spans
      opened inside {!Pool} workers nest correctly — the pool seeds each
      worker with the span that was open at the fan-out point.
    - {e Counters} are named monotonically increasing integers
      ([newton_iterations], [retries], [samples_drawn], …). Increments are
      buffered in a per-domain table (no locks on the hot path) and
      flushed to the sink when a span ends or a worker exits. Because
      totals are sums of integer deltas, the aggregate is identical for
      any job count or scheduling — the determinism contract of the whole
      pipeline extends to its metrics.
    - {e Gauges} are named floats aggregated as a high-water mark (the
      maximum over all reports), which is likewise order-independent.

    {2 Sinks}

    Events flow to one ambient {!sink}: {!null} (the default — every
    instrumentation call is a cheap early return), {!in_memory}
    (aggregated counters/gauges, queried with {!metrics}), or {!jsonl}
    (one event per line, streamed to a channel). {!multi} fans one event
    stream out to several sinks, so [--trace] and [--metrics] compose.

    Durations and wall-clock values are, by nature, not deterministic and
    must be excluded from any byte-identity comparison; counter totals
    and gauge high-water marks must not be. *)

(** Attribute values carried by spans and rendered into traces. *)
type value = Int of int | Float of float | Bool of bool | String of string

type attrs = (string * value) list

(** The event stream a sink consumes. Times: [wall] is
    [Unix.gettimeofday]; durations are monotonic-clock nanoseconds.
    Span ids are unique within a process run; [parent] links a span to
    the span that was open (on the same or the spawning domain) when it
    started. Counter deltas carry the innermost span that was open when
    the per-domain buffer was flushed, if any. *)
type event =
  | Span_start of {
      id : int;
      parent : int option;
      name : string;
      wall : float;
    }
  | Span_end of {
      id : int;
      parent : int option;
      name : string;
      attrs : attrs;
      wall : float;
      duration_ns : int64;
    }
  | Counter of { name : string; delta : int; span : int option }
  | Gauge of { name : string; value : float; span : int option }

(** A sink consumes events (possibly from several domains concurrently —
    implementations synchronize internally) and can be flushed. *)
type sink = { emit : event -> unit; flush : unit -> unit }

(** The zero-cost default: no events are constructed, no clock is read. *)
val null : sink

(** [is_null sink] — physical test for the {!null} sink. *)
val is_null : sink -> bool

(** [multi sinks] forwards every event to each sink in order. [multi []]
    is {!null}. *)
val multi : sink list -> sink

(** {1 In-memory aggregation} *)

(** A deterministic snapshot of the aggregated metrics: counter totals
    and gauge high-water marks, both sorted by name. *)
module Metrics : sig
  type t = { counters : (string * int) list; gauges : (string * float) list }

  val empty : t
end

(** Handle on an in-memory aggregate (one mutex-protected table; counter
    deltas arrive pre-aggregated per domain, so contention is low). *)
type memory

val in_memory : unit -> memory
val memory_sink : memory -> sink

(** [metrics memory] snapshots the aggregate. Call it after the traced
    computation has completed (and its spans closed, which flushes the
    per-domain buffers). *)
val metrics : memory -> Metrics.t

(** {1 JSONL streaming} *)

(** [jsonl oc] writes one JSON object per event as a line on [oc]
    (writes are mutex-serialized; [flush] flushes [oc] but does not
    close it). Use {!event_of_json} to read a trace back. *)
val jsonl : out_channel -> sink

val event_to_json : event -> Json.t

(** [event_of_json v] inverts {!event_to_json};
    [event_of_json (event_to_json e) = Ok e]. *)
val event_of_json : Json.t -> (event, string) result

(** {1 Ambient sink} *)

(** [set_sink sink] installs the process-wide sink ({!null} initially). *)
val set_sink : sink -> unit

val sink : unit -> sink

(** [enabled ()] — [false] iff the ambient sink is {!null}. Hot paths may
    use it to skip attribute construction entirely. *)
val enabled : unit -> bool

(** [with_sink sink f] installs [sink] for the duration of [f], then
    restores the previous sink and flushes the per-domain counter buffer
    of the calling domain. Not reentrant from worker domains; install
    from the orchestrating domain only. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** {1 Instrumentation} *)

(** [with_span ?attrs name f] runs [f] inside a span. With the {!null}
    sink this is exactly [f ()]. The span's end event carries [attrs]
    plus anything added by {!add_span_attrs}; ending a span flushes the
    calling domain's counter buffer. Exceptions propagate (the span still
    ends, attributed with ["error" = true]). *)
val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a

(** [add_span_attrs attrs] appends attributes to the innermost open span
    of the calling domain (no-op without one, or when disabled). *)
val add_span_attrs : attrs -> unit

(** [count ?by name] adds [by] (default 1) to counter [name] in the
    calling domain's buffer. *)
val count : ?by:int -> string -> unit

(** [gauge name v] reports [v]; in-memory aggregation keeps the maximum. *)
val gauge : string -> float -> unit

(** [silenced f] runs [f] with {!count} and {!gauge} muted on the calling
    domain (spans still open and close). For work whose occurrence count
    depends on scheduling rather than on the inputs — e.g. the per-worker
    shared-nominal derivations in [Circuit.Engine] — so that counter
    totals remain byte-identical for any [--jobs] value. *)
val silenced : (unit -> 'a) -> 'a

(** {1 Worker-domain plumbing (used by {!Pool})} *)

(** [current_span ()] — the innermost open span of the calling domain. *)
val current_span : unit -> int option

(** [in_span parent f] runs [f] with its span stack seeded to [parent]
    (so spans opened by [f] nest under the fan-out point), then flushes
    the domain's counter buffer and restores the previous stack. *)
val in_span : int option -> (unit -> 'a) -> 'a

(** [flush_local ()] flushes the calling domain's buffered counter deltas
    to the sink. Spans and {!in_span} do this automatically; call it only
    after counting outside any span. *)
val flush_local : unit -> unit
