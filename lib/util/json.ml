type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printer ----------------------------------------------------------- *)

let escape_to buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\b' -> Buffer.add_string buffer "\\b"
      | '\012' -> Buffer.add_string buffer "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

(* Shortest decimal representation that parses back to the same double:
   keeps traces readable (0.1, not 0.1000000000000000055…) without losing
   a bit. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e16 then Printf.sprintf "%.1f" v
  else
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v

let rec emit buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float v ->
    if Float.is_finite v then Buffer.add_string buffer (float_repr v)
    else Buffer.add_string buffer "null"
  | String s -> escape_to buffer s
  | List items ->
    Buffer.add_char buffer '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buffer ',';
        emit buffer item)
      items;
    Buffer.add_char buffer ']'
  | Obj fields ->
    Buffer.add_char buffer '{';
    List.iteri
      (fun i (key, item) ->
        if i > 0 then Buffer.add_char buffer ',';
        escape_to buffer key;
        Buffer.add_char buffer ':';
        emit buffer item)
      fields;
    Buffer.add_char buffer '}'

let to_string v =
  let buffer = Buffer.create 256 in
  emit buffer v;
  Buffer.contents buffer

(* --- parser ------------------------------------------------------------ *)

exception Parse_error of string

(* The parser recurses once per nesting level, so adversarial input like
   ten million '['s would otherwise turn into a stack overflow — which is
   an unrecoverable crash, not an [Error]. Wire input (the serve daemon)
   feeds untrusted bytes straight into this parser; 512 levels is far
   beyond anything the library emits while keeping the recursion depth
   trivially safe. *)
let max_depth = 512

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "offset %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected %C, got %C" c d
    | None -> fail "expected %C, got end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match text.[!pos] with
             | '"' -> Buffer.add_char buffer '"'
             | '\\' -> Buffer.add_char buffer '\\'
             | '/' -> Buffer.add_char buffer '/'
             | 'n' -> Buffer.add_char buffer '\n'
             | 'r' -> Buffer.add_char buffer '\r'
             | 't' -> Buffer.add_char buffer '\t'
             | 'b' -> Buffer.add_char buffer '\b'
             | 'f' -> Buffer.add_char buffer '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub text (!pos + 1) 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape %S" hex
               in
               (* Encode the code point as UTF-8 (surrogates are kept as
                  replacement chars; the printer never emits them). *)
               if code < 0x80 then Buffer.add_char buffer (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buffer
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
               end;
               pos := !pos + 4
             | c -> fail "bad escape \\%C" c);
          advance ();
          loop ()
        | c ->
          Buffer.add_char buffer c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
    in
    if is_float then
      match float_of_string_opt s with
      | Some v -> Float v
      | None -> fail "bad number %S" s
    else
      match int_of_string_opt s with
      | Some v -> Int v
      | None -> (
        match float_of_string_opt s with
        | Some v -> Float v
        | None -> fail "bad number %S" s)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting deeper than %d levels" max_depth;
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float v -> Some v | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
