(** Persistent content-addressed result cache.

    The pipeline's per-macro analyses are pure functions of the
    configuration, so repeated and partially-changed runs can skip
    already-simulated work entirely. This module is the storage layer:
    a directory of JSON entries — one file per key, written atomically —
    fronted by a small in-memory LRU so a key is deserialized from disk
    at most once per process.

    {2 Content addressing}

    Keys are hex digests produced by {!fingerprint} from every input the
    cached value depends on. The cache never compares payloads: equal key
    ⇒ equal value is the {e caller's} contract, which is why callers must
    fold a version stamp into the fingerprint and bump it whenever the
    semantics behind a payload change.

    {2 Envelope}

    Every entry is stored inside a versioned envelope
    [{schema; version; key; payload}]. On read, an entry whose schema
    stamp or version differs — or that does not parse at all (truncated
    write, foreign file) — is counted as {e stale} and reported as a
    miss, never misread: a stale format can only cost a re-simulation.

    {2 Concurrency and atomicity}

    Entries are written to a temporary file in the cache directory and
    atomically renamed into place, so readers (including concurrent
    processes sharing the directory) observe either the old entry, the
    new one, or none — never a torn write. The in-memory layer is
    mutex-protected and safe to use from {!Pool} worker domains.

    {2 Telemetry}

    Every lookup and eviction increments the [cache.hits] /
    [cache.misses] / [cache.stale] / [cache.evictions] counters through
    {!Telemetry}, and the same four counters are kept per handle for
    callers that run without a telemetry sink (see {!stats}). *)

type t

(** Counter snapshot of one handle. [hits] counts memory and disk hits
    alike; [stale] entries (bad schema, bad version, corrupt file) are
    {e also} counted under [misses] — a stale entry behaves exactly like
    an absent one. [write_errors] counts stores that could not be
    persisted (full disk, read-only directory): each is contained —
    warned about once per handle on stderr, counted on the
    [cache.write_errors] telemetry counter — and the cache degrades to
    one that never hits instead of failing the run. *)
type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  write_errors : int;
}

val no_stats : stats

(** [create ~dir ~version ()] opens (creating it, including parents, if
    needed) a cache directory. [version] is the caller's semantic version
    stamp, checked against each entry's envelope. [capacity] bounds the
    in-memory LRU entry count (default 128; the directory itself is
    unbounded). @raise Sys_error when [dir] exists but is not a
    directory or cannot be created. *)
val create : ?capacity:int -> dir:string -> version:string -> unit -> t

val dir : t -> string

(** [fingerprint parts] — stable hex digest of the (order-sensitive)
    input list. Parts are length-prefixed before digesting, so component
    boundaries cannot alias (["ab"; "c"] ≠ ["a"; "bc"]). *)
val fingerprint : string list -> string

(** [find t ~key] — the stored payload, consulting the LRU first and the
    directory second. [None] counts as a miss (and additionally as stale
    when a file was present but unusable). *)
val find : t -> key:string -> Json.t option

(** [store t ~key payload] writes the enveloped payload atomically and
    promotes it into the LRU. I/O errors are contained as degraded-mode
    writes (see {!stats}): never raised mid-run. *)
val store : t -> key:string -> Json.t -> unit

(** [remove t ~key] deletes the entry from the LRU and the directory
    (missing entries and I/O errors are ignored). Used to retire
    checkpoint partials once the full entry is published. *)
val remove : t -> key:string -> unit

(** [stats t] — the handle's counters so far. *)
val stats : t -> stats
