type align = Left | Right

type row = Cells of string list | Separator

type t = { columns : (string * align) list; mutable rows : row list }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows
let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let headers = List.map fst t.columns in
  let aligns = List.map snd t.columns in
  let ncols = List.length headers in
  let rows = List.rev t.rows in
  let cell_rows =
    List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let widths =
    List.mapi
      (fun i title ->
        List.fold_left
          (fun acc cells ->
            match List.nth_opt cells i with
            | Some c -> max acc (String.length c)
            | None -> acc)
          (String.length title) cell_rows)
      headers
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let render_cells cells =
    let padded =
      List.mapi
        (fun i w ->
          let cell = Option.value ~default:"" (List.nth_opt cells i) in
          let align = List.nth aligns i in
          " " ^ pad align w cell ^ " ")
        widths
    in
    (* Guard against rows wider than the header: surplus cells would be
       silently dropped otherwise. *)
    assert (List.length cells <= ncols);
    "|" ^ String.concat "|" padded ^ "|"
  in
  let body =
    List.map (function Cells c -> render_cells c | Separator -> rule) rows
  in
  String.concat "\n" ((rule :: render_cells headers :: rule :: body) @ [ rule ])

let pp ppf t = Format.pp_print_string ppf (render t)

let columns t = List.map fst t.columns

let row_cells t =
  List.filter_map
    (function Cells c -> Some c | Separator -> None)
    (List.rev t.rows)

(* RFC 4180: quote a field iff it contains a comma, quote or newline;
   quotes are doubled. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv t =
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line (columns t) :: List.map line (row_cells t))

(* One object per row, keyed by column title; cells stay strings — the
   table layer formats, it does not retain the underlying numbers. *)
let to_json t =
  let headers = columns t in
  Json.List
    (List.map
       (fun cells ->
         Json.Obj
           (List.mapi
              (fun i title ->
                ( title,
                  Json.String (Option.value ~default:"" (List.nth_opt cells i))
                ))
              headers))
       (row_cells t))

let render_json t = Json.to_string (to_json t)

let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v
let cell_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals v
