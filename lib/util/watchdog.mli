(** Run supervision: per-simulation deadlines and cooperative shutdown.

    Long defect-oriented campaigns die in two ways the retry ladder alone
    cannot contain: a pathological fault class drags one Newton loop on
    for minutes, or the scheduler delivers SIGTERM and everything since
    the last completed macro is lost. This module supplies the two
    mechanisms the pipeline layers on top of {!Resilience}:

    - {e Deadlines}: a budget of solver iterations and/or wall-clock
      seconds armed for the dynamic extent of one simulation attempt
      ({!with_limits}) and metered by the solver's hot loop ({!tick}).
      Expiry raises {!Deadline_exceeded}, which [Macro.Evaluate]
      classifies as retryable — the attempt re-runs with escalated
      options and a scaled budget, and a class that exhausts its ladder
      is recorded as unresolved, exactly like a convergence failure.
      An iteration cap is a pure function of the computation, so runs
      that use only [max_iterations] keep the byte-identity determinism
      contract; a wall-clock cap is inherently machine-dependent and is
      documented as best-effort.
    - {e Cooperative shutdown}: one process-wide flag set by signal
      handlers (or {!request_shutdown}) and polled by {!Pool} between
      work items. In-flight items drain; no new work is dispatched; the
      pool raises {!Interrupted} so callers can flush checkpoints and
      exit with a distinct, resumable status.

    Both mechanisms cost nothing when unused: {!tick} with no armed
    deadline is one domain-local read, and the shutdown flag is a single
    atomic. *)

(** {1 Deadlines} *)

(** A simulation budget. [None] in a field means that dimension is
    unlimited. *)
type limits = { wall_seconds : float option; max_iterations : int option }

(** Both dimensions unlimited; {!with_limits} with this value is [f ()]. *)
val no_limits : limits

val limits : ?wall_seconds:float -> ?max_iterations:int -> unit -> limits

(** [scale l ~factor] multiplies both budgets by [factor] (clamped to at
    least 1) — used to grant escalated retries a larger budget, so the
    ladder has a real chance of resolving a class whose first attempt
    expired. *)
val scale : limits -> factor:int -> limits

(** Why a deadline expired. Carries the configured limit only — the
    rendered {!expiry_message} is folded into persisted outcome payloads
    and must not embed measured values. *)
type expiry =
  | Wall_clock of { limit : float }
  | Iterations of { limit : int }

val expiry_message : expiry -> string

exception Deadline_exceeded of expiry

(** [with_limits l f] arms [l] for the dynamic extent of [f] on the
    calling domain (an inner [with_limits] shadows an outer one), with a
    fresh iteration counter and wall-clock start. With {!no_limits} this
    is exactly [f ()]. *)
val with_limits : limits -> (unit -> 'a) -> 'a

(** [tick ~by ()] spends [by] (default 1) iterations of the armed budget;
    a no-op when no deadline is armed. The wall clock is read only every
    32 ticks, so the armed cost is an integer compare.
    @raise Deadline_exceeded on expiry (also counted on the
    [watchdog.deadline_exceeded] telemetry counter). *)
val tick : ?by:int -> unit -> unit

(** [armed ()] — whether the calling domain currently has a deadline. *)
val armed : unit -> bool

(** [unmetered f] runs [f] with the calling domain's armed deadline
    masked: {!tick}s inside [f] spend nothing and cannot expire. For
    amortized per-worker work (e.g. deriving the shared nominal
    factorization) that would otherwise charge its cost to whichever
    fault class happened to run first on the worker — under an
    iteration budget that would make outcomes depend on scheduling and
    break the byte-identity contract. The wall clock keeps running:
    elapsed time inside [f] still counts against a wall-clock budget
    once restored (wall deadlines are best-effort by design). *)
val unmetered : (unit -> 'a) -> 'a

(** {1 Cooperative shutdown} *)

(** Raised by {!check_shutdown} (and by {!Pool} combinators) once
    shutdown has been requested; the payload is the request reason
    (e.g. ["SIGTERM"]). *)
exception Interrupted of string

(** [request_shutdown ~reason ()] sets the process-wide shutdown flag.
    The first request wins; later ones are ignored. Safe to call from a
    signal handler or any domain. *)
val request_shutdown : ?reason:string -> unit -> unit

val shutdown_requested : unit -> bool
val shutdown_reason : unit -> string option

(** Clear the flag — test harnesses only; a real run exits instead. *)
val reset_shutdown : unit -> unit

(** @raise Interrupted iff shutdown has been requested. *)
val check_shutdown : unit -> unit

(** Route SIGINT and SIGTERM to {!request_shutdown}. A second signal
    exits immediately with status 130 (after [at_exit] hooks, so trace
    channels still flush). Call once from the CLI front end. *)
val install_signal_handlers : unit -> unit
