(** Deterministic multicore execution pool.

    A thin, dependency-free layer over OCaml 5 [Domain] used by the
    embarrassingly parallel pipeline stages (defect sprinkling, fault-class
    simulation, per-macro analysis). The contract is strict determinism:
    every combinator returns results in input order, so a computation whose
    per-item work is pure produces bit-identical output for any job count —
    [jobs = 1] and [jobs = 8] must never be distinguishable from the result.

    The worker count is a process-wide knob resolved in this order:
    an explicit [?jobs] argument, then {!set_jobs}, then the [DOTEST_JOBS]
    environment variable, then [Domain.recommended_domain_count () - 1]
    (at least 1). With an effective job count of 1, or on lists of fewer
    than two elements, everything runs sequentially on the calling domain —
    no domain is ever spawned.

    Nested calls never oversubscribe: a [parallel_map] issued from inside a
    pool worker degrades to a sequential map, so parallelising an outer
    stage (e.g. per-macro analysis) automatically serialises the stages
    nested beneath it.

    {2 Cancellation}

    Every combinator stops dispatching promptly in two situations, on the
    sequential and parallel paths alike:

    - {e Failure}: once any item raises, no further items are dispatched;
      items already in flight drain. Because items are dispatched in index
      order, every index below the first recorded failure still runs, so
      the exception that propagates is the lowest-indexed failing item's —
      identical for any job count (see {!Worker_failure}).
    - {e Shutdown}: once {!Watchdog.request_shutdown} has been called
      (e.g. from a SIGTERM handler), no further items are dispatched,
      in-flight items drain, and the combinator raises
      {!Watchdog.Interrupted} — unless every item had already completed,
      in which case the full result is returned normally. *)

(** [Worker_failure (index, e)] wraps the exception [e] raised while
    processing the item at [index] of the input list, so a failure in a
    batch of thousands of items is attributable. Every combinator below
    raises failures in this form, on the sequential paths too — error
    behaviour is identical for any job count. A registered
    [Printexc] printer renders it as ["Pool.Worker_failure: item N
    raised …"]. *)
exception Worker_failure of int * exn

(** [default_jobs ()] is the job count used when {!set_jobs} has not been
    called: [DOTEST_JOBS] if set to a positive integer, otherwise
    [max 1 (Domain.recommended_domain_count () - 1)]. *)
val default_jobs : unit -> int

(** [set_jobs n] fixes the process-wide job count to [max 1 n].
    Call it once from the CLI / bench front end after parsing [--jobs]. *)
val set_jobs : int -> unit

(** [jobs ()] is the job count currently in effect. *)
val jobs : unit -> int

(** [parallel_map ?jobs f xs] is [List.map f xs], computed by up to [jobs]
    domains. Results keep input order. If any application raises, dispatch
    stops, items already in flight run to completion, and the exception of
    the lowest-indexed failing item is re-raised (with its backtrace) on
    the calling domain as [Worker_failure (index, e)] — which exception
    propagates is therefore deterministic.
    @raise Watchdog.Interrupted when a shutdown request stopped the map
    before every item had run. *)
val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_mapi ?jobs f xs] is [List.mapi f xs] with the same contract
    as {!parallel_map}. *)
val parallel_mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** [chunk_ranges ~n ~chunk_size] partitions [0 .. n-1] into contiguous
    [(offset, length)] ranges of [chunk_size] items (the last may be
    shorter). The partition depends only on [n] and [chunk_size] — never on
    the job count — so per-chunk work (e.g. one PRNG split per chunk) is
    stable across machines. [n = 0] gives the empty list.
    @raise Invalid_argument if [n < 0] or [chunk_size <= 0]. *)
val chunk_ranges : n:int -> chunk_size:int -> (int * int) list

(** [parallel_chunks ?jobs ~n ~chunk_size f] applies
    [f ~chunk ~offset ~length] to every range of
    [chunk_ranges ~n ~chunk_size] ([chunk] is the 0-based range index) and
    returns the results in chunk order, computed like {!parallel_map}. *)
val parallel_chunks :
  ?jobs:int ->
  n:int ->
  chunk_size:int ->
  (chunk:int -> offset:int -> length:int -> 'a) ->
  'a list
