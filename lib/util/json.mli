(** Minimal JSON tree, printer and parser.

    The observability layer streams JSONL traces and the bench harness
    emits machine-readable results; both need strict, dependency-free
    JSON. The subset is complete for round-tripping what this library
    writes: objects keep their field order, integers print without a
    decimal point, and floats are printed with the shortest
    representation that parses back to the identical double. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] renders [v] on one line (no trailing newline). Strings
    are escaped per RFC 8259; non-finite floats render as [null]. *)
val to_string : t -> string

(** [of_string text] parses one JSON value (surrounding whitespace is
    allowed; trailing non-whitespace is an error). Numbers without
    [.], [e] or [E] become [Int]; everything else becomes [Float].

    Total on adversarial input: any byte sequence yields [Ok] or
    [Error], never an exception. In particular, trailing garbage after
    the top-level value is an error, and nesting deeper than
    {!max_depth} levels is an error rather than a parser stack
    overflow — the serve daemon feeds untrusted wire bytes here. *)
val of_string : string -> (t, string) result

(** Maximum container-nesting depth {!of_string} accepts (512). Far
    beyond anything this library emits; input deeper than this decodes
    to [Error]. *)
val max_depth : int

(** [member key v] — the field [key] of object [v], if present. *)
val member : string -> t -> t option

(** Coercions; [None] when the value has a different shape. [to_float]
    accepts [Int] too. *)

val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
