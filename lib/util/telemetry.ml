type value = Int of int | Float of float | Bool of bool | String of string

type attrs = (string * value) list

type event =
  | Span_start of {
      id : int;
      parent : int option;
      name : string;
      wall : float;
    }
  | Span_end of {
      id : int;
      parent : int option;
      name : string;
      attrs : attrs;
      wall : float;
      duration_ns : int64;
    }
  | Counter of { name : string; delta : int; span : int option }
  | Gauge of { name : string; value : float; span : int option }

type sink = { emit : event -> unit; flush : unit -> unit }

let null = { emit = ignore; flush = ignore }

let is_null sink = sink == null

let multi = function
  | [] -> null
  | [ sink ] -> sink
  | sinks ->
    {
      emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
      flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
    }

(* --- ambient sink ------------------------------------------------------ *)

let ambient = Atomic.make null

let set_sink sink = Atomic.set ambient sink
let sink () = Atomic.get ambient
let enabled () = not (is_null (Atomic.get ambient))

(* --- per-domain state -------------------------------------------------- *)

(* Innermost-first stack of open spans. The attrs ref collects attributes
   added while the span is open; it is only meaningful on the domain that
   opened the span (a worker seeded with a parent id gets a throwaway
   ref). *)
let span_stack : (int * attrs ref) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

(* Counter deltas buffered per domain: the hot paths (Newton iterations,
   PRNG draws) increment a plain hashtable without any synchronization;
   the buffer is flushed to the sink at span boundaries. *)
let counter_table : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let current_span () =
  match Domain.DLS.get span_stack with (id, _) :: _ -> Some id | [] -> None

(* Emit the buffered deltas (sorted by name, so one flush is a stable
   block in a trace) attributed to [span], then reset the buffer. *)
let flush_buffer ~span =
  let s = Atomic.get ambient in
  if not (is_null s) then begin
    let table = Domain.DLS.get counter_table in
    if Hashtbl.length table > 0 then begin
      let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
      Hashtbl.reset table;
      List.iter
        (fun (name, delta) -> s.emit (Counter { name; delta; span }))
        (List.sort compare entries)
    end
  end

let flush_local () = flush_buffer ~span:(current_span ())

(* --- instrumentation --------------------------------------------------- *)

let next_span_id = Atomic.make 1

let with_span ?(attrs = []) name f =
  let s = Atomic.get ambient in
  if is_null s then f ()
  else begin
    let parent = current_span () in
    (* Counts buffered so far belong to the enclosing region, not to the
       span that is about to open. *)
    flush_buffer ~span:parent;
    let id = Atomic.fetch_and_add next_span_id 1 in
    s.emit (Span_start { id; parent; name; wall = Unix.gettimeofday () });
    let span_attrs = ref attrs in
    Domain.DLS.set span_stack ((id, span_attrs) :: Domain.DLS.get span_stack);
    let t0 = Monotonic_clock.now () in
    let finish ~error =
      let duration_ns = Int64.sub (Monotonic_clock.now ()) t0 in
      flush_buffer ~span:(Some id);
      (match Domain.DLS.get span_stack with
      | (top, _) :: rest when top = id -> Domain.DLS.set span_stack rest
      | _ -> () (* unbalanced nesting: leave the stack alone *));
      let attrs =
        if error then !span_attrs @ [ "error", Bool true ] else !span_attrs
      in
      s.emit
        (Span_end
           { id; parent; name; attrs; wall = Unix.gettimeofday (); duration_ns })
    in
    match f () with
    | v ->
      finish ~error:false;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ~error:true;
      Printexc.raise_with_backtrace e bt
  end

let add_span_attrs attrs =
  if enabled () then
    match Domain.DLS.get span_stack with
    | (_, span_attrs) :: _ -> span_attrs := !span_attrs @ attrs
    | [] -> ()

(* Per-domain mute flag: counters and gauges recorded inside a
   [silenced] extent are dropped. Work whose *occurrence count* depends
   on scheduling (e.g. the per-worker shared-nominal derivations in
   [Circuit.Engine]) runs under it so counter totals stay byte-identical
   for any [--jobs] value. *)
let muted : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let silenced f =
  let saved = Domain.DLS.get muted in
  Domain.DLS.set muted true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set muted saved) f

let count ?(by = 1) name =
  if enabled () && not (Domain.DLS.get muted) then begin
    let table = Domain.DLS.get counter_table in
    match Hashtbl.find_opt table name with
    | Some current -> Hashtbl.replace table name (current + by)
    | None -> Hashtbl.add table name by
  end

let gauge name value =
  if not (Domain.DLS.get muted) then begin
    let s = Atomic.get ambient in
    if not (is_null s) then
      s.emit (Gauge { name; value; span = current_span () })
  end

let in_span parent f =
  if not (enabled ()) then f ()
  else begin
    let saved = Domain.DLS.get span_stack in
    Domain.DLS.set span_stack
      (match parent with Some id -> [ id, ref [] ] | None -> []);
    Fun.protect
      ~finally:(fun () ->
        flush_buffer ~span:parent;
        Domain.DLS.set span_stack saved)
      f
  end

let with_sink sink f =
  let saved = Atomic.get ambient in
  Atomic.set ambient sink;
  Fun.protect
    ~finally:(fun () ->
      flush_buffer ~span:(current_span ());
      sink.flush ();
      Atomic.set ambient saved)
    f

(* --- in-memory sink ---------------------------------------------------- *)

module Metrics = struct
  type t = { counters : (string * int) list; gauges : (string * float) list }

  let empty = { counters = []; gauges = [] }
end

type memory = {
  mutex : Mutex.t;
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
}

let in_memory () =
  { mutex = Mutex.create (); counters = Hashtbl.create 32; gauges = Hashtbl.create 8 }

let memory_sink memory =
  {
    emit =
      (function
      | Counter { name; delta; _ } ->
        Mutex.protect memory.mutex (fun () ->
            match Hashtbl.find_opt memory.counters name with
            | Some total -> Hashtbl.replace memory.counters name (total + delta)
            | None -> Hashtbl.add memory.counters name delta)
      | Gauge { name; value; _ } ->
        (* High-water mark: max is commutative, so the aggregate is
           independent of worker scheduling. *)
        Mutex.protect memory.mutex (fun () ->
            match Hashtbl.find_opt memory.gauges name with
            | Some current when current >= value -> ()
            | Some _ | None -> Hashtbl.replace memory.gauges name value)
      | Span_start _ | Span_end _ -> ());
    flush = ignore;
  }

let metrics memory =
  Mutex.protect memory.mutex (fun () ->
      let sorted fold table =
        List.sort compare (fold (fun k v acc -> (k, v) :: acc) table [])
      in
      {
        Metrics.counters = sorted Hashtbl.fold memory.counters;
        gauges = sorted Hashtbl.fold memory.gauges;
      })

(* --- JSONL sink -------------------------------------------------------- *)

let json_of_value = function
  | Int i -> Json.Int i
  | Float v -> Json.Float v
  | Bool b -> Json.Bool b
  | String s -> Json.String s

let value_of_json = function
  | Json.Int i -> Ok (Int i)
  | Json.Float v -> Ok (Float v)
  | Json.Bool b -> Ok (Bool b)
  | Json.String s -> Ok (String s)
  | Json.Null | Json.List _ | Json.Obj _ -> Error "bad attribute value"

let json_of_opt = function Some id -> Json.Int id | None -> Json.Null

let event_to_json = function
  | Span_start { id; parent; name; wall } ->
    Json.Obj
      [
        "type", Json.String "span_start";
        "id", Json.Int id;
        "parent", json_of_opt parent;
        "name", Json.String name;
        "wall", Json.Float wall;
      ]
  | Span_end { id; parent; name; attrs; wall; duration_ns } ->
    Json.Obj
      [
        "type", Json.String "span_end";
        "id", Json.Int id;
        "parent", json_of_opt parent;
        "name", Json.String name;
        "wall", Json.Float wall;
        "duration_ns", Json.Int (Int64.to_int duration_ns);
        ( "attrs",
          Json.Obj (List.map (fun (k, v) -> k, json_of_value v) attrs) );
      ]
  | Counter { name; delta; span } ->
    Json.Obj
      [
        "type", Json.String "counter";
        "name", Json.String name;
        "delta", Json.Int delta;
        "span", json_of_opt span;
      ]
  | Gauge { name; value; span } ->
    Json.Obj
      [
        "type", Json.String "gauge";
        "name", Json.String name;
        "value", Json.Float value;
        "span", json_of_opt span;
      ]

let event_of_json v =
  let ( let* ) r f = Result.bind r f in
  let field name coerce =
    match Option.bind (Json.member name v) coerce with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing or bad field %S" name)
  in
  let opt_id name =
    match Json.member name v with
    | Some Json.Null | None -> Ok None
    | Some (Json.Int id) -> Ok (Some id)
    | Some _ -> Error (Printf.sprintf "bad field %S" name)
  in
  let* kind = field "type" Json.to_str in
  match kind with
  | "span_start" ->
    let* id = field "id" Json.to_int in
    let* parent = opt_id "parent" in
    let* name = field "name" Json.to_str in
    let* wall = field "wall" Json.to_float in
    Ok (Span_start { id; parent; name; wall })
  | "span_end" ->
    let* id = field "id" Json.to_int in
    let* parent = opt_id "parent" in
    let* name = field "name" Json.to_str in
    let* wall = field "wall" Json.to_float in
    let* duration = field "duration_ns" Json.to_int in
    let* attr_fields = field "attrs" Json.to_obj in
    let* attrs =
      List.fold_right
        (fun (k, v) acc ->
          let* acc = acc in
          let* v = value_of_json v in
          Ok ((k, v) :: acc))
        attr_fields (Ok [])
    in
    Ok
      (Span_end
         { id; parent; name; attrs; wall; duration_ns = Int64.of_int duration })
  | "counter" ->
    let* name = field "name" Json.to_str in
    let* delta = field "delta" Json.to_int in
    let* span = opt_id "span" in
    Ok (Counter { name; delta; span })
  | "gauge" ->
    let* name = field "name" Json.to_str in
    let* value = field "value" Json.to_float in
    let* span = opt_id "span" in
    Ok (Gauge { name; value; span })
  | other -> Error (Printf.sprintf "unknown event type %S" other)

let jsonl oc =
  let mutex = Mutex.create () in
  {
    emit =
      (fun event ->
        let line = Json.to_string (event_to_json event) in
        Mutex.protect mutex (fun () ->
            output_string oc line;
            output_char oc '\n'));
    flush = (fun () -> Mutex.protect mutex (fun () -> flush oc));
  }
