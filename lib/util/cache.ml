let schema = "dotest-cache/1"

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  write_errors : int;
}

let no_stats =
  { hits = 0; misses = 0; stale = 0; evictions = 0; write_errors = 0 }

(* The LRU keeps decoded payloads keyed by content address; [tick] is a
   logical clock giving every touch a recency stamp. Guarded by one
   mutex — lookups are rare (once per macro per run) so contention is
   irrelevant, and the handle must be safe from pool worker domains. *)
type entry = { payload : Json.t; mutable last_used : int }

type t = {
  cache_dir : string;
  version : string;
  capacity : int;
  lock : Mutex.t;
  lru : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
  mutable write_errors : int;
  mutable warned_write : bool;
}

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then begin
    if path <> "" && Sys.file_exists path && not (Sys.is_directory path) then
      raise (Sys_error (path ^ ": not a directory"))
  end
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(capacity = 128) ~dir ~version () =
  mkdir_p dir;
  {
    cache_dir = dir;
    version;
    capacity = max 1 capacity;
    lock = Mutex.create ();
    lru = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    stale = 0;
    evictions = 0;
    write_errors = 0;
    warned_write = false;
  }

let dir t = t.cache_dir

let fingerprint parts =
  (* Length-prefix every part so component boundaries cannot alias. *)
  let buf = Buffer.create 256 in
  List.iter
    (fun part ->
      Buffer.add_string buf (string_of_int (String.length part));
      Buffer.add_char buf ':';
      Buffer.add_string buf part)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_path t key = Filename.concat t.cache_dir (key ^ ".json")

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Callers may hold no counter-buffering span, so flush eagerly: cache
   traffic is far too cold for the buffering to matter. *)
let count t name =
  Telemetry.count ("cache." ^ name);
  Telemetry.flush_local ();
  match name with
  | "hits" -> t.hits <- t.hits + 1
  | "misses" -> t.misses <- t.misses + 1
  | "stale" -> t.stale <- t.stale + 1
  | "evictions" -> t.evictions <- t.evictions + 1
  | "write_errors" -> t.write_errors <- t.write_errors + 1
  | _ -> ()

(* Degraded mode: a cache that cannot be written (full disk, read-only
   directory, revoked permissions) must behave exactly like a cache that
   never hits — counted, warned about once, and otherwise silent. *)
let write_failed t ~what =
  count t "write_errors";
  if not t.warned_write then begin
    t.warned_write <- true;
    Printf.eprintf
      "dotest: cache write failed under %s (%s); continuing without \
       persistence\n\
       %!"
      t.cache_dir what
  end

let touch t key entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick;
  ignore key

(* Must be called with the lock held. *)
let insert t key payload =
  match Hashtbl.find_opt t.lru key with
  | Some entry -> touch t key entry
  | None ->
    if Hashtbl.length t.lru >= t.capacity then begin
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (_, best) when best.last_used <= e.last_used -> acc
            | _ -> Some (k, e))
          t.lru None
      in
      match victim with
      | Some (k, _) ->
        Hashtbl.remove t.lru k;
        count t "evictions"
      | None -> ()
    end;
    t.tick <- t.tick + 1;
    Hashtbl.add t.lru key { payload; last_used = t.tick }

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | contents -> Some contents
        | exception (End_of_file | Sys_error _) -> None)

(* Unwrap the envelope; any shape mismatch means a stale/corrupt entry. *)
let payload_of_entry t ~key contents =
  match Json.of_string contents with
  | Error _ -> None
  | Ok json ->
    let field name = Option.bind (Json.member name json) Json.to_str in
    if
      field "schema" = Some schema
      && field "version" = Some t.version
      && field "key" = Some key
    then Json.member "payload" json
    else None

let find t ~key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.lru key with
  | Some entry ->
    touch t key entry;
    count t "hits";
    Some entry.payload
  | None ->
    let path = entry_path t key in
    (match read_file path with
    | None ->
      count t "misses";
      None
    | Some contents ->
      (match payload_of_entry t ~key contents with
      | Some payload ->
        insert t key payload;
        count t "hits";
        Some payload
      | None ->
        count t "stale";
        count t "misses";
        None))

let store t ~key payload =
  let envelope =
    Json.Obj
      [
        "schema", Json.String schema;
        "version", Json.String t.version;
        "key", Json.String key;
        "payload", payload;
      ]
  in
  locked t @@ fun () ->
  insert t key payload;
  (* Atomic publication: write a sibling temp file, then rename. A failed
     write degrades to a cache that never hits — it must not fail the
     run. *)
  let tmp =
    Filename.concat t.cache_dir
      (Printf.sprintf ".tmp.%s.%d" key (Unix.getpid ()))
  in
  match open_out_bin tmp with
  | exception Sys_error what -> write_failed t ~what
  | oc ->
    let written =
      match
        output_string oc (Json.to_string envelope);
        output_char oc '\n';
        (* close_out surfaces the buffered-write errors that
           close_out_noerr would swallow — ENOSPC typically shows up
           here, not at output time. *)
        close_out oc
      with
      | () -> true
      | exception Sys_error what ->
        close_out_noerr oc;
        write_failed t ~what;
        false
    in
    if written then (
      try Sys.rename tmp (entry_path t key)
      with Sys_error what ->
        write_failed t ~what;
        (try Sys.remove tmp with Sys_error _ -> ()))
    else try Sys.remove tmp with Sys_error _ -> ()

let remove t ~key =
  locked t @@ fun () ->
  Hashtbl.remove t.lru key;
  try Sys.remove (entry_path t key) with Sys_error _ -> ()

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    stale = t.stale;
    evictions = t.evictions;
    write_errors = t.write_errors;
  }
