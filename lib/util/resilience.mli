(** Generic fault-tolerance combinators for the simulation pipeline.

    Injected defects routinely produce pathological circuits (floating
    nodes, near-shorts) that are exactly the cases where Newton solvers
    fail; industrial defect-oriented flows treat such non-converging
    corner simulations as first-class data rather than crashes. This
    module provides the two mechanical pieces of that policy:

    - {!run}, an exception-classifying retry combinator. The caller
      supplies a deterministic escalation schedule implicitly: the work
      function receives the 0-based attempt number and is expected to
      derive its (progressively looser) solver settings from it, so a
      retry sequence is a pure function of the attempt count — never of
      wall-clock time or scheduling.
    - {!budget}, a per-run failure budget. Containment must not silently
      turn a completely broken run into an "everything unresolved"
      report; once more failures have been recorded than the budget
      allows, {!spend} raises {!Budget_exhausted}.

    Nothing here is specific to circuit simulation; the classifier
    decides which exceptions are worth retrying. *)

(** How an exception raised by one attempt should be treated. *)
type classification =
  | Retryable  (** a known failure mode; escalate and try again *)
  | Fatal      (** a programming error; re-raise immediately *)

(** The result of running a retried computation to completion. *)
type 'a outcome =
  | Resolved of { value : 'a; attempts : int }
      (** succeeded on attempt [attempts] (1 = first try, no retry). *)
  | Exhausted of { error : exn; attempts : int }
      (** every one of the [attempts] attempts raised a [Retryable]
          exception; [error] is the last one. *)

(** [run ~classify ~attempts f] calls [f ~attempt] with [attempt] going
    0, 1, 2, … until it returns a value, raises a [Fatal] exception (which
    propagates unchanged, with its backtrace), or [attempts] attempts have
    been used up. [attempts] must be at least 1.
    @raise Invalid_argument if [attempts < 1]. *)
val run :
  classify:(exn -> classification) ->
  attempts:int ->
  (attempt:int -> 'a) ->
  'a outcome

(** [step schedule attempt] is element [attempt] of [schedule], clamped
    to the last element — the standard way to map an unbounded attempt
    counter onto a finite ladder of escalated settings.
    @raise Invalid_argument on an empty schedule. *)
val step : 'a list -> int -> 'a

(** {1 Failure budget} *)

exception Budget_exhausted of { failures : int; limit : int }

(** A mutable failure counter with an optional hard limit. Not
    thread-safe: record failures from one domain only — in the pipeline
    that means after a parallel stage has merged its (deterministically
    ordered) results, which also keeps the point of exhaustion
    independent of the job count. *)
type budget

(** [budget ~limit] allows at most [limit] failures ([limit < 0] is
    treated as 0). *)
val budget : limit:int -> budget

(** A budget that never exhausts. *)
val unlimited : unit -> budget

(** Failures recorded so far. *)
val failures : budget -> int

(** [spend b n] records [n] more failures.
    @raise Budget_exhausted when the total exceeds the limit. *)
val spend : budget -> int -> unit

(** [remaining b] is [Some (limit - failures)] (never negative), or
    [None] for an unlimited budget. *)
val remaining : budget -> int option
