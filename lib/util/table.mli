(** Plain-text table rendering for experiment reports.

    The benchmark harness prints each reproduced paper table/figure as an
    aligned ASCII table; this module centralizes the layout logic. *)

type align = Left | Right

(** A table: a header row plus data rows. Rows shorter than the header are
    padded with empty cells. *)
type t

(** [create ~columns] starts a table; each column is [(title, alignment)]. *)
val create : columns:(string * align) list -> t

(** [add_row t cells] appends a data row. *)
val add_row : t -> string list -> unit

(** [add_separator t] appends a horizontal rule between data rows. *)
val add_separator : t -> unit

(** [render t] lays the table out with box-drawing rules. *)
val render : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Structured access and alternative renderings}

    These views drive the [--format {text,json,csv}] front end: every
    report is a {!t}, so one renderer per format covers them all. *)

(** [columns t] — the column titles, in order. *)
val columns : t -> string list

(** [row_cells t] — the data rows in insertion order, separators
    dropped. *)
val row_cells : t -> string list list

(** [render_csv t] — RFC-4180 CSV: a header line then one line per data
    row; fields containing commas, quotes or newlines are quoted. *)
val render_csv : t -> string

(** [to_json t] — an array of objects, one per data row, keyed by column
    title. Cells remain strings: the table layer formats values, it does
    not retain the numbers behind them. *)
val to_json : t -> Json.t

(** [render_json t] = [Json.to_string (to_json t)]. *)
val render_json : t -> string

(** [cell_float ?decimals v] formats a float cell ([decimals] defaults
    to 1). *)
val cell_float : ?decimals:int -> float -> string

(** [cell_pct ?decimals v] formats [v] (already in percent) with a [%]
    suffix. *)
val cell_pct : ?decimals:int -> float -> string
