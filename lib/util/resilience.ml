type classification = Retryable | Fatal

type 'a outcome =
  | Resolved of { value : 'a; attempts : int }
  | Exhausted of { error : exn; attempts : int }

let run ~classify ~attempts f =
  if attempts < 1 then invalid_arg "Resilience.run: attempts must be >= 1";
  let rec attempt_at n =
    (* n is 0-based; n + 1 attempts have run once this one finishes. *)
    match f ~attempt:n with
    | value -> Resolved { value; attempts = n + 1 }
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (match classify e with
      | Fatal -> Printexc.raise_with_backtrace e bt
      | Retryable ->
        if n + 1 >= attempts then Exhausted { error = e; attempts = n + 1 }
        else attempt_at (n + 1))
  in
  attempt_at 0

let step schedule attempt =
  match schedule with
  | [] -> invalid_arg "Resilience.step: empty schedule"
  | _ ->
    let last = List.length schedule - 1 in
    List.nth schedule (max 0 (min attempt last))

exception Budget_exhausted of { failures : int; limit : int }

let () =
  Printexc.register_printer (function
    | Budget_exhausted { failures; limit } ->
      Some
        (Printf.sprintf
           "Resilience.Budget_exhausted: %d failures exceed the per-run \
            budget of %d"
           failures limit)
    | _ -> None)

type budget = { limit : int option; mutable recorded : int }

let budget ~limit = { limit = Some (max 0 limit); recorded = 0 }
let unlimited () = { limit = None; recorded = 0 }
let failures b = b.recorded

let spend b n =
  b.recorded <- b.recorded + max 0 n;
  match b.limit with
  | Some limit when b.recorded > limit ->
    raise (Budget_exhausted { failures = b.recorded; limit })
  | Some _ | None -> ()

let remaining b =
  match b.limit with
  | None -> None
  | Some limit -> Some (max 0 (limit - b.recorded))
