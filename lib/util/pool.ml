exception Worker_failure of int * exn

let () =
  Printexc.register_printer (function
    | Worker_failure (index, e) ->
      Some
        (Printf.sprintf "Pool.Worker_failure: item %d raised %s" index
           (Printexc.to_string e))
    | _ -> None)

let default_jobs () =
  match Sys.getenv_opt "DOTEST_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* 0 means "unset": fall back to [default_jobs] so the environment knob
   keeps working until the front end parses --jobs. *)
let configured = Atomic.make 0

let set_jobs n = Atomic.set configured (max 1 n)

let jobs () =
  match Atomic.get configured with 0 -> default_jobs () | n -> n

(* Workers flag their domain so nested combinators degrade to sequential
   maps instead of spawning domains under domains. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let effective_jobs requested =
  if Domain.DLS.get inside_worker then 1
  else max 1 (match requested with Some n -> n | None -> jobs ())

(* Attribute a worker failure to its item: batch callers (thousands of
   fault classes) need to know which item blew up. *)
let apply_wrapped f i x =
  match f i x with
  | v -> v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Printexc.raise_with_backtrace (Worker_failure (i, e)) bt

(* Sequential execution with the same cancellation contract as the
   parallel path: a shutdown request stops the map before the next item
   (in-flight work, by construction, has already finished). *)
let sequential_mapi f xs =
  List.mapi
    (fun i x ->
      Watchdog.check_shutdown ();
      apply_wrapped f i x)
    xs

let parallel_mapi ?jobs:requested f xs =
  (* Pool bookkeeping counters are recorded on every execution path —
     sequential, degraded and parallel — so their totals are a function of
     the call structure only, never of the job count. *)
  (match xs with
  | [] -> ()
  | _ ->
    Telemetry.count "pool.maps";
    Telemetry.count ~by:(List.length xs) "pool.items");
  match xs with
  | [] -> []
  | [ x ] -> [ apply_wrapped f 0 x ]
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let workers = min (effective_jobs requested) n in
    if workers <= 1 then sequential_mapi f xs
    else begin
      let results = Array.make n None in
      let failures = Array.make n None in
      let next = Atomic.make 0 in
      (* Prompt cancellation: once any worker records a failure (or a
         shutdown is requested), no new items are dispatched — workers
         finish their in-flight item and stop. The exception that finally
         propagates is still deterministic: items are dispatched in index
         order, so when item [f] is the first to record a failure every
         index below [f] has already been dispatched and will drain —
         including the lowest-indexed failing item, which is the one
         re-raised below. *)
      let cancelled = Atomic.make false in
      Telemetry.with_span
        ~attrs:[ "items", Telemetry.Int n; "workers", Telemetry.Int workers ]
        "pool.map"
      @@ fun () ->
      (* Spans opened inside spawned workers nest under this map span;
         span durations give per-worker busy time, the map-span duration
         minus a worker's busy time is its queue/idle share. *)
      let map_span = Telemetry.current_span () in
      let worker_loop () =
        let processed = ref 0 in
        let rec loop () =
          if not (Atomic.get cancelled || Watchdog.shutdown_requested ())
          then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match f i items.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                failures.(i) <- Some (e, Printexc.get_raw_backtrace ());
                Atomic.set cancelled true);
              incr processed;
              loop ()
            end
          end
        in
        loop ();
        Telemetry.add_span_attrs [ "items", Telemetry.Int !processed ]
      in
      let worker ~index () =
        Domain.DLS.set inside_worker true;
        Telemetry.with_span
          ~attrs:[ "worker", Telemetry.Int index ]
          "pool.worker" worker_loop
      in
      let spawned =
        Array.init (workers - 1) (fun i ->
            Domain.spawn (fun () ->
                Telemetry.in_span map_span (worker ~index:(i + 1))))
      in
      (* The calling domain works too; restore its flag afterwards so later
         top-level calls still parallelise. *)
      let was_inside = Domain.DLS.get inside_worker in
      Fun.protect
        ~finally:(fun () ->
          Domain.DLS.set inside_worker was_inside;
          Array.iter Domain.join spawned)
        (worker ~index:0);
      Array.iteri
        (fun i -> function
          | Some (e, bt) ->
            Printexc.raise_with_backtrace (Worker_failure (i, e)) bt
          | None -> ())
        failures;
      (* No failure was recorded; holes can only come from a shutdown
         request that stopped dispatch before every index ran. *)
      Array.to_list
        (Array.map
           (function
             | Some v -> v
             | None ->
               Watchdog.check_shutdown ();
               assert false (* every index ran, raised, or was cancelled *))
           results)
    end

let parallel_map ?jobs f xs = parallel_mapi ?jobs (fun _ x -> f x) xs

let chunk_ranges ~n ~chunk_size =
  if n < 0 then invalid_arg "Pool.chunk_ranges: n must be non-negative";
  if chunk_size <= 0 then
    invalid_arg "Pool.chunk_ranges: chunk_size must be positive";
  let rec build offset acc =
    if offset >= n then List.rev acc
    else
      let length = min chunk_size (n - offset) in
      build (offset + length) ((offset, length) :: acc)
  in
  build 0 []

let parallel_chunks ?jobs ~n ~chunk_size f =
  chunk_ranges ~n ~chunk_size
  |> parallel_mapi ?jobs (fun chunk (offset, length) -> f ~chunk ~offset ~length)
