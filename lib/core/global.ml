type t = {
  weighted : (Pipeline.macro_analysis * float) list;  (* normalized weights *)
}

let combine analyses =
  if analyses = [] then invalid_arg "Global.combine: no analyses";
  let raw =
    List.map
      (fun (a : Pipeline.macro_analysis) ->
        a, Macro.Macro_cell.area_weight a.macro)
      analyses
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 raw in
  { weighted = List.map (fun (a, w) -> a, w /. total) raw }

let analyses t = List.map fst t.weighted

let weight t name =
  match
    List.find_opt
      (fun ((a : Pipeline.macro_analysis), _) ->
        a.macro.Macro.Macro_cell.name = name)
      t.weighted
  with
  | Some (_, w) -> w
  | None -> invalid_arg (Printf.sprintf "Global.weight: unknown macro %S" name)

(* Merge the per-macro partitions, each rescaled by its area weight. A
   macro with no simulated faults contributes nothing. [remap] lets the
   bounds computation reinterpret unresolved outcomes before
   partitioning. *)
let partition_with remap t severity =
  let table = Hashtbl.create 16 in
  List.iter
    (fun ((a : Pipeline.macro_analysis), w) ->
      let cells =
        Testgen.Overlap.partition (List.map remap (Pipeline.outcomes a severity))
      in
      List.iter
        (fun (c : Testgen.Overlap.cell) ->
          let existing =
            try Hashtbl.find table c.combination with Not_found -> 0.0
          in
          Hashtbl.replace table c.combination (existing +. (w *. c.share)))
        cells)
    t.weighted;
  (* Renormalize: macros whose fault list is empty dropped their weight. *)
  let covered =
    Hashtbl.fold (fun _ share acc -> acc +. share) table 0.0
  in
  let scale = if covered > 0. then 1.0 /. covered else 1.0 in
  Hashtbl.fold
    (fun combination share acc ->
      { Testgen.Overlap.combination; share = share *. scale } :: acc)
    table []
  |> List.sort (fun (a : Testgen.Overlap.cell) b -> compare b.share a.share)

let partition t severity = partition_with Fun.id t severity

let venn t severity = Testgen.Overlap.venn_of_partition (partition t severity)

let coverage t severity = Testgen.Overlap.coverage (venn t severity)

(* An unresolved class carries the optimistic gross-defect signature
   (detected by everything); the pessimistic bound instead treats it as
   undetected by anything, i.e. remaps its signature to fault-free. The
   truth lies between the two. *)
let pessimistic_remap (o : Macro.Evaluate.outcome) =
  if Macro.Evaluate.simulation_failed o then
    { o with Macro.Evaluate.signature = Macro.Signature.fault_free }
  else o

let coverage_bounds t severity =
  let pessimistic =
    Testgen.Overlap.coverage
      (Testgen.Overlap.venn_of_partition
         (partition_with pessimistic_remap t severity))
  in
  let optimistic = coverage t severity in
  Float.min pessimistic optimistic, Float.max pessimistic optimistic

let current_detectability t =
  List.map
    (fun ((a : Pipeline.macro_analysis), _) ->
      let cells =
        Testgen.Overlap.partition a.Pipeline.outcomes_catastrophic
      in
      let share =
        List.fold_left
          (fun acc (c : Testgen.Overlap.cell) ->
            if Testgen.Detection.current_detected c.combination then
              acc +. c.share
            else acc)
          0.0 cells
      in
      a.macro.Macro.Macro_cell.name, share)
    t.weighted

let compare_coverage ?(config = Pipeline.Config.default) () =
  let run macros = combine (Pipeline.analyze_all config macros) in
  run (Dft.Measures.original ()), run (Dft.Measures.improved ())
