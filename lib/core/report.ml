let pct = Util.Table.cell_pct

let table1 (a : Pipeline.macro_analysis) =
  let t =
    Util.Table.create
      ~columns:
        [
          "fault type", Util.Table.Left;
          "% faults", Util.Table.Right;
          "% fault classes", Util.Table.Right;
        ]
  in
  List.iter
    (fun (ft, fault_share, class_share) ->
      Util.Table.add_row t
        [
          Fault.Types.fault_type_name ft;
          pct (100. *. fault_share);
          pct (100. *. class_share);
        ])
    (Fault.Collapse.by_type a.Pipeline.classes_catastrophic);
  Util.Table.add_separator t;
  Util.Table.add_row t
    [
      "total";
      Printf.sprintf "%d faults"
        (Fault.Collapse.total_count a.Pipeline.classes_catastrophic);
      Printf.sprintf "%d classes"
        (List.length a.Pipeline.classes_catastrophic);
    ];
  t

let table2 (a : Pipeline.macro_analysis) =
  let t =
    Util.Table.create
      ~columns:
        [
          "fault signature", Util.Table.Left;
          "% cat. faults", Util.Table.Right;
          "% non-cat. faults", Util.Table.Right;
        ]
  in
  let cat = Macro.Evaluate.voltage_table a.Pipeline.outcomes_catastrophic in
  let ncat = Macro.Evaluate.voltage_table a.Pipeline.outcomes_non_catastrophic in
  List.iter
    (fun v ->
      let share table = try List.assoc v table with Not_found -> 0.0 in
      Util.Table.add_row t
        [
          Macro.Signature.voltage_name v;
          pct (100. *. share cat);
          pct (100. *. share ncat);
        ])
    Macro.Signature.all_voltage;
  t

let table3 (a : Pipeline.macro_analysis) =
  let t =
    Util.Table.create
      ~columns:
        [
          "fault signature", Util.Table.Left;
          "% cat. faults", Util.Table.Right;
          "% non-cat. faults", Util.Table.Right;
        ]
  in
  let cat, cat_none =
    Macro.Evaluate.current_table a.Pipeline.outcomes_catastrophic
  in
  let ncat, ncat_none =
    Macro.Evaluate.current_table a.Pipeline.outcomes_non_catastrophic
  in
  List.iter
    (fun kind ->
      let share table = try List.assoc kind table with Not_found -> 0.0 in
      Util.Table.add_row t
        [
          Macro.Signature.current_name kind;
          pct (100. *. share cat);
          pct (100. *. share ncat);
        ])
    Macro.Signature.all_current;
  Util.Table.add_row t
    [ "No deviations"; pct (100. *. cat_none); pct (100. *. ncat_none) ];
  t

let figure3 (a : Pipeline.macro_analysis) =
  let t =
    Util.Table.create
      ~columns:
        [ "detected by", Util.Table.Left; "% of faults", Util.Table.Right ]
  in
  let cells = Testgen.Overlap.partition a.Pipeline.outcomes_catastrophic in
  List.iter
    (fun (c : Testgen.Overlap.cell) ->
      Util.Table.add_row t
        [
          Format.asprintf "%a" Testgen.Detection.pp c.combination;
          pct (100. *. c.share);
        ])
    cells;
  Util.Table.add_separator t;
  List.iter
    (fun (name, share) ->
      Util.Table.add_row t
        [ name ^ " (total)"; pct (100. *. share) ])
    (Testgen.Overlap.mechanism_share cells);
  t

let venn_rows t label (venn : Testgen.Overlap.venn) =
  Util.Table.add_row t
    [
      label;
      pct (100. *. venn.voltage_only);
      pct (100. *. venn.both);
      pct (100. *. venn.current_only);
      pct (100. *. venn.undetected);
      pct (100. *. Testgen.Overlap.coverage venn);
    ]

let figure4 (g : Global.t) =
  let t =
    Util.Table.create
      ~columns:
        [
          "fault set", Util.Table.Left;
          "voltage only", Util.Table.Right;
          "both", Util.Table.Right;
          "current only", Util.Table.Right;
          "undetected", Util.Table.Right;
          "coverage", Util.Table.Right;
        ]
  in
  venn_rows t "catastrophic" (Global.venn g Fault.Types.Catastrophic);
  venn_rows t "non-catastrophic" (Global.venn g Fault.Types.Non_catastrophic);
  t

let macro_current (g : Global.t) =
  let t =
    Util.Table.create
      ~columns:
        [
          "macro", Util.Table.Left;
          "area weight", Util.Table.Right;
          "current detectable", Util.Table.Right;
        ]
  in
  List.iter
    (fun (name, share) ->
      Util.Table.add_row t
        [
          name;
          pct (100. *. Global.weight g name);
          pct (100. *. share);
        ])
    (Global.current_detectability g);
  t

let run_health (h : Pipeline.run_health) =
  let t =
    Util.Table.create
      ~columns:
        [
          "macro", Util.Table.Left;
          "classes", Util.Table.Right;
          "retried", Util.Table.Right;
          "degraded", Util.Table.Right;
          "unresolved", Util.Table.Right;
        ]
  in
  let row name classes retried degraded unresolved =
    Util.Table.add_row t
      [
        name;
        string_of_int classes;
        string_of_int retried;
        string_of_int degraded;
        string_of_int unresolved;
      ]
  in
  List.iter
    (fun (m : Pipeline.macro_health) ->
      row m.macro_name m.classes m.retried m.degraded m.unresolved)
    h.Pipeline.per_macro;
  Util.Table.add_separator t;
  row "total" h.Pipeline.total_classes h.Pipeline.total_retried
    h.Pipeline.total_degraded h.Pipeline.total_unresolved;
  t

let coverage_bounds (g : Global.t) =
  let t =
    Util.Table.create
      ~columns:
        [
          "fault set", Util.Table.Left;
          "pessimistic", Util.Table.Right;
          "coverage", Util.Table.Right;
          "optimistic", Util.Table.Right;
        ]
  in
  let row label severity =
    let pess, opt = Global.coverage_bounds g severity in
    Util.Table.add_row t
      [
        label;
        pct (100. *. pess);
        pct (100. *. Global.coverage g severity);
        pct (100. *. opt);
      ]
  in
  row "catastrophic" Fault.Types.Catastrophic;
  row "non-catastrophic" Fault.Types.Non_catastrophic;
  t

let summary (g : Global.t) =
  let t =
    Util.Table.create
      ~columns:[ "metric", Util.Table.Left; "value", Util.Table.Right ]
  in
  let cat = Global.partition g Fault.Types.Catastrophic in
  Util.Table.add_row t
    [
      "coverage (catastrophic)";
      pct (100. *. Global.coverage g Fault.Types.Catastrophic);
    ];
  Util.Table.add_row t
    [
      "coverage (non-catastrophic)";
      pct (100. *. Global.coverage g Fault.Types.Non_catastrophic);
    ];
  Util.Table.add_row t
    [
      "IDDQ-only share";
      pct (100. *. Testgen.Overlap.only_detected_by cat ~mechanism:"IDDQ");
    ];
  Util.Table.add_row t
    [
      "current-only share";
      pct
        (100.
        *. (Global.venn g Fault.Types.Catastrophic).Testgen.Overlap.current_only);
    ];
  Util.Table.add_row t
    [
      "simple-test time";
      Printf.sprintf "%.0f us" (Testgen.Test_time.total *. 1e6);
    ];
  t

let metrics ?elapsed (m : Util.Telemetry.Metrics.t) =
  let t =
    Util.Table.create
      ~columns:[ "counter", Util.Table.Left; "total", Util.Table.Right ]
  in
  List.iter
    (fun (name, total) -> Util.Table.add_row t [ name; string_of_int total ])
    m.Util.Telemetry.Metrics.counters;
  (* Derived throughput: the iteration ratio is a pure function of the
     counters (deterministic, like them); the per-second rates divide by
     caller-supplied wall-clock time and are marked as such — they vary
     run to run and are excluded from byte-identity comparisons. *)
  let counter name = List.assoc_opt name m.Util.Telemetry.Metrics.counters in
  let classes = Option.value ~default:0 (counter "classes_simulated") in
  let derived =
    (if classes > 0 then
       match counter "newton_iterations" with
       | Some iters ->
         [
           ( "newton_iterations_per_class",
             Util.Table.cell_float ~decimals:1
               (float_of_int iters /. float_of_int classes) );
         ]
       | None -> []
     else [])
    @
    match elapsed with
    | Some seconds when seconds > 0.0 ->
      List.filter_map
        (fun (label, name) ->
          match counter name with
          | Some total when total > 0 ->
            Some
              ( label ^ " (wall)",
                Util.Table.cell_float ~decimals:1
                  (float_of_int total /. seconds) )
          | Some _ | None -> None)
        [ "classes_per_s", "classes_simulated"; "solves_per_s", "engine.solves" ]
    | Some _ | None -> []
  in
  (match derived with
  | [] -> ()
  | rows ->
    Util.Table.add_separator t;
    List.iter (fun (name, value) -> Util.Table.add_row t [ name; value ]) rows);
  (match m.Util.Telemetry.Metrics.gauges with
  | [] -> ()
  | gauges ->
    Util.Table.add_separator t;
    List.iter
      (fun (name, value) ->
        Util.Table.add_row t
          [ name ^ " (max)"; Util.Table.cell_float ~decimals:1 value ])
      gauges);
  t

let cache_state (s : Util.Cache.stats) =
  if s.Util.Cache.hits > 0 then `Warm else `Cold

let cache_stats (s : Util.Cache.stats) =
  let t =
    Util.Table.create
      ~columns:[ "cache", Util.Table.Left; "count", Util.Table.Right ]
  in
  Util.Table.add_row t
    [
      "state";
      (match cache_state s with `Warm -> "warm" | `Cold -> "cold");
    ];
  List.iter
    (fun (name, count) -> Util.Table.add_row t [ name; string_of_int count ])
    [
      "hits", s.Util.Cache.hits;
      "misses", s.Util.Cache.misses;
      "stale", s.Util.Cache.stale;
      "evictions", s.Util.Cache.evictions;
      "write errors", s.Util.Cache.write_errors;
    ];
  t

let run_survival (config : Pipeline.Config.t) =
  let t =
    Util.Table.create
      ~columns:[ "survival", Util.Table.Left; "value", Util.Table.Right ]
  in
  let wall, iterations =
    match config.Pipeline.Config.deadline with
    | None -> "off", "off"
    | Some l ->
      ( (match l.Util.Watchdog.wall_seconds with
        | None -> "off"
        | Some s -> Printf.sprintf "%g s" s),
        (match l.Util.Watchdog.max_iterations with
        | None -> "off"
        | Some n -> Printf.sprintf "%d iterations" n) )
  in
  Util.Table.add_row t [ "deadline (wall-clock)"; wall ];
  Util.Table.add_row t [ "deadline (newton)"; iterations ];
  (match config.Pipeline.Config.checkpoint with
  | None -> Util.Table.add_row t [ "checkpointing"; "off" ]
  | Some registry ->
    let s = Checkpoint.stats registry in
    Util.Table.add_row t
      [
        "checkpointing";
        (if Checkpoint.resume_enabled registry then "on (resume)" else "on");
      ];
    Util.Table.add_row t
      [ "classes restored"; string_of_int s.Checkpoint.restored ];
    Util.Table.add_row t
      [ "classes checkpointed"; string_of_int s.Checkpoint.recorded ];
    Util.Table.add_row t
      [ "checkpoint flushes"; string_of_int s.Checkpoint.flushes ]);
  t

(* The [`Json] schema is owned by {!Codec}: every JSON emitter of the
   library goes through that one surface. *)
let render ~format table =
  match format with
  | `Text -> Util.Table.render table
  | `Json -> Util.Json.to_string (Codec.table_to_json table)
  | `Csv -> Util.Table.render_csv table
