(** Renderers for the paper's tables and figures.

    Every artefact of the evaluation section has a renderer producing the
    same rows/series the paper reports, as aligned plain text. The
    benchmark harness prints these next to the paper's numbers. *)

(** Table 1: catastrophic faults and fault classes per fault type. *)
val table1 : Pipeline.macro_analysis -> Util.Table.t

(** Table 2: voltage fault signatures (catastrophic and non-catastrophic
    columns). *)
val table2 : Pipeline.macro_analysis -> Util.Table.t

(** Table 3: current fault signatures. *)
val table3 : Pipeline.macro_analysis -> Util.Table.t

(** Fig. 3: detectability overlap of catastrophic faults of one macro —
    one row per mechanism combination with its share. *)
val figure3 : Pipeline.macro_analysis -> Util.Table.t

(** Fig. 4 (or 5, on a DfT-measure run): global detectability Venn for
    both severities. *)
val figure4 : Global.t -> Util.Table.t

(** §3.3 per-macro current detectability. *)
val macro_current : Global.t -> Util.Table.t

(** Headline summary: coverages, only-IDDQ share, test time. *)
val summary : Global.t -> Util.Table.t

(** Run health: per-macro containment counters plus a totals row. Stage
    timings are deliberately excluded, so the rendered table is
    byte-identical across job counts. *)
val run_health : Pipeline.run_health -> Util.Table.t

(** Pessimistic / as-reported / optimistic coverage per severity (see
    {!Global.coverage_bounds}). On a clean run all three columns agree. *)
val coverage_bounds : Global.t -> Util.Table.t

(** Aggregated telemetry: one row per counter total, then derived
    throughput, then the gauge high-water marks. Counter totals — and the
    [newton_iterations_per_class] ratio derived purely from them — are
    deterministic across job counts. With [?elapsed] (an analysis
    wall-clock duration in seconds) the table additionally reports
    [classes_per_s]/[solves_per_s] rates; those rows are explicitly
    marked "(wall)" because they vary run to run and are excluded from
    any byte-identity contract. *)
val metrics : ?elapsed:float -> Util.Telemetry.Metrics.t -> Util.Table.t

(** [cache_state stats] — [`Warm] when at least one lookup hit. *)
val cache_state : Util.Cache.stats -> [ `Cold | `Warm ]

(** Result-cache counters of one run: state (cold/warm), hits, misses,
    stale entries, LRU evictions and contained write errors. Unlike the
    coverage artefacts this table is {e not} part of the warm-vs-cold
    byte-identity contract — its whole point is to differ between those
    runs. *)
val cache_stats : Util.Cache.stats -> Util.Table.t

(** Run-survival settings and counters: the configured deadlines, the
    checkpointing mode, and (when checkpointing is on) how many classes
    were restored versus freshly checkpointed. Like {!cache_stats}, this
    table deliberately differs between a resumed run and a clean one —
    it is excluded from byte-identity comparisons. *)
val run_survival : Pipeline.Config.t -> Util.Table.t

(** [render ~format table] is the single rendering entry point behind the
    CLI's [--format {text,json,csv}]: every report artefact above is a
    {!Util.Table.t}, so one call covers coverage, bounds, run-health and
    metrics alike. [`Text] is {!Util.Table.render}, [`Json] an array of
    row objects keyed by column title (the schema is {!Codec.table_to_json},
    the library's single serialization surface), [`Csv] RFC-4180. *)
val render : format:[ `Text | `Json | `Csv ] -> Util.Table.t -> string
