module Config = struct
  type t = {
    tech : Process.Tech.t;
    stats : Process.Defect_stats.t;
    defects : int;
    good_space_dies : int;
    sigma : float;
    seed : int;
    max_retries : int;
    strict : bool;
    failure_budget : int option;
    inject_failures : float option;
    telemetry : Util.Telemetry.sink;
    cache : Util.Cache.t option;
    deadline : Util.Watchdog.limits option;
    checkpoint : Checkpoint.t option;
    solver : Circuit.Engine.solver;
    sprinkle_chunk : int;
  }

  let default =
    {
      tech = Process.Tech.cmos1um;
      stats = Process.Defect_stats.default;
      defects = 25_000;
      good_space_dies = 48;
      sigma = 3.0;
      seed = 1995;
      max_retries = 1;
      strict = false;
      failure_budget = None;
      inject_failures = None;
      telemetry = Util.Telemetry.null;
      cache = None;
      deadline = None;
      checkpoint = None;
      solver = Circuit.Engine.default_solver;
      sprinkle_chunk = Defect.Simulate.default_chunk_size;
    }

  let with_tech tech config = { config with tech }
  let with_stats stats config = { config with stats }
  let with_defects defects config = { config with defects }
  let with_good_space_dies good_space_dies config = { config with good_space_dies }
  let with_sigma sigma config = { config with sigma }
  let with_seed seed config = { config with seed }
  let with_max_retries max_retries config = { config with max_retries }
  let with_strict strict config = { config with strict }
  let with_failure_budget failure_budget config = { config with failure_budget }
  let with_inject_failures inject_failures config =
    { config with inject_failures }
  let with_telemetry telemetry config = { config with telemetry }

  let with_cache dir config =
    {
      config with
      cache =
        Option.map
          (fun dir -> Util.Cache.create ~dir ~version:Codec.version ())
          dir;
    }

  let with_cache_handle cache config = { config with cache }
  let with_deadline deadline config = { config with deadline }
  let with_checkpoint checkpoint config = { config with checkpoint }
  let with_solver solver config = { config with solver }
  let with_sprinkle_chunk sprinkle_chunk config = { config with sprinkle_chunk }
end

open Config

type macro_health = {
  macro_name : string;
  classes : int;
  retried : int;
  degraded : int;
  unresolved : int;
  stage_seconds : (string * float) list;
}

type run_health = {
  per_macro : macro_health list;
  total_classes : int;
  total_retried : int;
  total_degraded : int;
  total_unresolved : int;
}

type macro_analysis = {
  macro : Macro.Macro_cell.t;
  sprinkled : int;
  effective : int;
  good : Macro.Good_space.t;
  classes_catastrophic : Fault.Collapse.fault_class list;
  classes_non_catastrophic : Fault.Collapse.fault_class list;
  outcomes_catastrophic : Macro.Evaluate.outcome list;
  outcomes_non_catastrophic : Macro.Evaluate.outcome list;
  health : macro_health;
}

let src = Logs.Src.create "dotest.core" ~doc:"methodology pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* Health counters are derived from the merged, input-ordered outcome
   lists, never from worker-local state — that is what makes them
   byte-identical across job counts (stage wall-clock, by nature, is
   not). *)
let count_outcomes outcomes (retried, degraded, unresolved) =
  List.fold_left
    (fun (r, d, u) (o : Macro.Evaluate.outcome) ->
      match o.Macro.Evaluate.status with
      | Macro.Evaluate.Converged -> r, d, u
      | Macro.Evaluate.Recovered _ -> r + 1, d + 1, u
      | Macro.Evaluate.Unresolved { attempts; _ } ->
        (if attempts > 1 then r + 1 else r), d, u + 1)
    (retried, degraded, unresolved)
    outcomes

let health_of ~macro_name ~outcomes ~stage_seconds =
  let retried, degraded, unresolved =
    List.fold_left (fun acc o -> count_outcomes o acc) (0, 0, 0) outcomes
  in
  {
    macro_name;
    classes = List.fold_left (fun acc o -> acc + List.length o) 0 outcomes;
    retried;
    degraded;
    unresolved;
    stage_seconds;
  }

let run_health analyses =
  let per_macro = List.map (fun a -> a.health) analyses in
  let sum f = List.fold_left (fun acc h -> acc + f h) 0 per_macro in
  {
    per_macro;
    total_classes = sum (fun h -> h.classes);
    total_retried = sum (fun h -> h.retried);
    total_degraded = sum (fun h -> h.degraded);
    total_unresolved = sum (fun h -> h.unresolved);
  }

let check_budget config ~unresolved =
  match config.failure_budget with
  | Some limit when unresolved > limit ->
    raise (Util.Resilience.Budget_exhausted { failures = unresolved; limit })
  | Some _ | None -> ()

let injection_of config =
  Option.map
    (fun fraction -> { Macro.Evaluate.seed = config.seed; fraction })
    config.inject_failures

(* Install the config's sink only at the outermost pipeline entry: when
   [analyze] runs inside a pool worker of [analyze_all], the ambient sink
   is already this very sink and must not be re-installed (with_sink is
   not reentrant from worker domains). *)
let install_sink config f =
  let sink = config.telemetry in
  if Util.Telemetry.is_null sink || Util.Telemetry.sink () == sink then f ()
  else Util.Telemetry.with_sink sink f

(* Content address of one macro's analysis: everything the result is a
   function of. The macro's measure/classify closures are the one input a
   fingerprint cannot observe; changing their semantics requires bumping
   [Codec.version] (which both keys and envelope-stamps every entry). *)
let cache_key config (macro : Macro.Macro_cell.t) ~nominal_netlist ~cell =
  Util.Cache.fingerprint
    [
      "codec=" ^ Codec.version;
      "macro=" ^ macro.Macro.Macro_cell.name;
      "netlist=" ^ Codec.netlist_fingerprint nominal_netlist;
      "cell=" ^ Codec.cell_fingerprint cell;
      "tech=" ^ Codec.tech_fingerprint config.tech;
      "stats=" ^ Codec.stats_fingerprint config.stats;
      Printf.sprintf "defects=%d" config.defects;
      (* The chunk size re-partitions draws over split PRNG streams, so
         it selects a different (equally valid) defect sample. *)
      Printf.sprintf "sprinkle_chunk=%d" config.sprinkle_chunk;
      Printf.sprintf "good_space_dies=%d" config.good_space_dies;
      Printf.sprintf "sigma=%h" config.sigma;
      Printf.sprintf "seed=%d" config.seed;
      Printf.sprintf "max_retries=%d" config.max_retries;
      Printf.sprintf "strict=%b" config.strict;
      (* All solver backends are required to produce identical tables;
         the choice is still part of the content address so a backend
         regression can never poison a warm cache and a bisection against
         [dense] always re-simulates. *)
      "solver=" ^ Circuit.Engine.solver_name config.solver;
      (match config.inject_failures with
      | None -> "inject=none"
      | Some fraction -> Printf.sprintf "inject=%h" fraction);
      (* A deadline changes which classes end unresolved, so it is part
         of the content address. (Wall-clock caps are machine-dependent
         on top of that — see the .mli caveat.) *)
      (match config.deadline with
      | None -> "deadline=none"
      | Some l ->
        Printf.sprintf "deadline=wall:%s,iters:%s"
          (match l.Util.Watchdog.wall_seconds with
          | None -> "none"
          | Some s -> Printf.sprintf "%h" s)
          (match l.Util.Watchdog.max_iterations with
          | None -> "none"
          | Some n -> string_of_int n));
    ]

let cached_analysis config (macro : Macro.Macro_cell.t) ~key =
  match config.cache with
  | None -> None
  | Some cache ->
    Option.bind (Util.Cache.find cache ~key) @@ fun payload ->
    (match Codec.analysis_of_json payload with
    | Ok (a : Codec.analysis) ->
      let health =
        health_of ~macro_name:macro.Macro.Macro_cell.name
          ~outcomes:[ a.outcomes_catastrophic; a.outcomes_non_catastrophic ]
          ~stage_seconds:[]
      in
      Some
        {
          macro;
          sprinkled = a.Codec.sprinkled;
          effective = a.Codec.effective;
          good = a.Codec.good;
          classes_catastrophic = a.Codec.classes_catastrophic;
          classes_non_catastrophic = a.Codec.classes_non_catastrophic;
          outcomes_catastrophic = a.Codec.outcomes_catastrophic;
          outcomes_non_catastrophic = a.Codec.outcomes_non_catastrophic;
          health;
        }
    | Error e ->
      (* The version stamp should make this unreachable; treat it as a
         miss all the same — a cache must never fail a run. *)
      Log.warn (fun m ->
          m "[%s] undecodable cache entry (%s): re-simulating"
            macro.Macro.Macro_cell.name e);
      None)

let store_analysis config analysis ~key =
  Option.iter
    (fun cache ->
      Util.Cache.store cache ~key
        (Codec.analysis_to_json
           {
             Codec.sprinkled = analysis.sprinkled;
             effective = analysis.effective;
             good = analysis.good;
             classes_catastrophic = analysis.classes_catastrophic;
             classes_non_catastrophic = analysis.classes_non_catastrophic;
             outcomes_catastrophic = analysis.outcomes_catastrophic;
             outcomes_non_catastrophic = analysis.outcomes_non_catastrophic;
           }))
    config.cache

let analyze config (macro : Macro.Macro_cell.t) =
  install_sink config @@ fun () ->
  Util.Telemetry.with_span
    ~attrs:[ "macro", Util.Telemetry.String macro.Macro.Macro_cell.name ]
    "pipeline.macro"
  @@ fun () ->
  let stage_seconds = ref [] in
  let timed stage f =
    Util.Telemetry.with_span
      ~attrs:[ "stage", Util.Telemetry.String stage ]
      "pipeline.stage"
    @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let result = f () in
    stage_seconds := (stage, Unix.gettimeofday () -. t0) :: !stage_seconds;
    result
  in
  let prng = Util.Prng.create config.seed in
  let defect_prng = Util.Prng.split prng in
  let good_prng = Util.Prng.split prng in
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  let nominal_netlist =
    macro.Macro.Macro_cell.build (Process.Variation.nominal config.tech)
  in
  (* Fingerprinting is cheap next to simulation, but not free: skip it
     entirely when no cache is configured. *)
  let key =
    match config.cache with
    | None -> None
    | Some _ -> Some (cache_key config macro ~nominal_netlist ~cell)
  in
  let finish ~from_cache analysis =
    (if analysis.health.unresolved > 0 then
       Log.info (fun m ->
           m "[%s] degraded run: %d retried, %d recovered, %d unresolved"
             macro.Macro.Macro_cell.name analysis.health.retried
             analysis.health.degraded analysis.health.unresolved));
    check_budget config ~unresolved:analysis.health.unresolved;
    Util.Telemetry.count "macros_analyzed";
    Util.Telemetry.add_span_attrs
      [
        "classes", Util.Telemetry.Int analysis.health.classes;
        "unresolved", Util.Telemetry.Int analysis.health.unresolved;
        "cache", Util.Telemetry.String (if from_cache then "hit" else "miss");
      ];
    analysis
  in
  match
    Option.bind key (fun key -> cached_analysis config macro ~key)
  with
  | Some analysis ->
    Log.info (fun m ->
        m "[%s] cache hit: skipping simulation" macro.Macro.Macro_cell.name);
    finish ~from_cache:true analysis
  | None ->
  Log.info (fun m -> m "[%s] sprinkling %d defects" macro.Macro.Macro_cell.name config.defects);
  let defect_result =
    timed "sprinkle" (fun () ->
        Defect.Simulate.run ~chunk_size:config.sprinkle_chunk ~tech:config.tech
          ~stats:config.stats ~cell ~netlist:nominal_netlist defect_prng
          ~n:config.defects)
  in
  let classes_catastrophic, classes_non_catastrophic =
    timed "collapse" (fun () ->
        let cat =
          Fault.Collapse.collapse defect_result.Defect.Simulate.instances
        in
        cat, Fault.Collapse.derive_non_catastrophic ~tech:config.tech cat)
  in
  Log.info (fun m ->
      m "[%s] %d effective defects, %d + %d fault classes"
        macro.Macro.Macro_cell.name defect_result.Defect.Simulate.effective
        (List.length classes_catastrophic)
        (List.length classes_non_catastrophic));
  let good =
    timed "good-space" (fun () ->
        Circuit.Engine.with_solver config.solver (fun () ->
            Macro.Good_space.compile ~n:config.good_space_dies ~k:config.sigma
              ~tech:config.tech macro good_prng))
  in
  let inject = injection_of config in
  (* Checkpointing stores partials through the result cache, so it is
     inert without one (the CLI warns; a library caller reads the
     survival stats). *)
  let ckpt =
    match config.checkpoint, config.cache, key with
    | Some registry, Some cache, Some key ->
      Some (registry, Checkpoint.handle registry ~cache ~key)
    | _ -> None
  in
  let evaluate ~section classes =
    let resume =
      match ckpt with
      | Some (registry, h) when Checkpoint.resume_enabled registry ->
        Some (fun index -> Checkpoint.restore h ~section ~index)
      | Some _ | None -> None
    in
    let on_outcome =
      Option.map
        (fun (_, h) index o -> Checkpoint.record h ~section ~index o)
        ckpt
    in
    Macro.Evaluate.run ~retries:config.max_retries ?inject
      ?deadline:config.deadline ?resume ?on_outcome ~strict:config.strict
      ~solver:config.solver ~macro ~good classes
  in
  (* The flush finalizer is what makes an interrupt lose at most the
     in-flight classes: the pool drains them, the exception unwinds
     through here, and everything recorded so far hits disk. *)
  let outcomes_catastrophic, outcomes_non_catastrophic =
    (match ckpt with
    | None -> fun f -> f ()
    | Some (_, h) -> fun f -> Fun.protect ~finally:(fun () -> Checkpoint.flush h) f)
    @@ fun () ->
    let cat =
      timed "evaluate-cat" (fun () -> evaluate ~section:"cat" classes_catastrophic)
    in
    let ncat =
      timed "evaluate-ncat" (fun () ->
          evaluate ~section:"ncat" classes_non_catastrophic)
    in
    cat, ncat
  in
  let health =
    health_of ~macro_name:macro.Macro.Macro_cell.name
      ~outcomes:[ outcomes_catastrophic; outcomes_non_catastrophic ]
      ~stage_seconds:(List.rev !stage_seconds)
  in
  let analysis =
    {
      macro;
      sprinkled = defect_result.Defect.Simulate.sprinkled;
      effective = defect_result.Defect.Simulate.effective;
      good;
      classes_catastrophic;
      classes_non_catastrophic;
      outcomes_catastrophic;
      outcomes_non_catastrophic;
      health;
    }
  in
  Option.iter (fun key -> store_analysis config analysis ~key) key;
  (* The full analysis entry supersedes the partial; retire it. *)
  Option.iter (fun (_, h) -> Checkpoint.finish h) ckpt;
  finish ~from_cache:false analysis

let analyze_all config macros =
  install_sink config @@ fun () ->
  Util.Telemetry.with_span
    ~attrs:[ "macros", Util.Telemetry.Int (List.length macros) ]
    "pipeline.run"
  @@ fun () ->
  (* Force every layout before the fan-out: lazies must not be forced
     concurrently, and the same macro value may appear more than once. *)
  List.iter
    (fun (m : Macro.Macro_cell.t) -> ignore (Lazy.force m.Macro.Macro_cell.cell))
    macros;
  (* The per-macro stages degrade to sequential inside pool workers, so
     this spawns at most [Util.Pool.jobs ()] domains in total. *)
  let analyses = Util.Pool.parallel_map (analyze config) macros in
  (* The per-run failure budget spans all macros; the check runs on the
     merged results so it is independent of the job count. *)
  check_budget config
    ~unresolved:
      (List.fold_left (fun acc a -> acc + a.health.unresolved) 0 analyses);
  analyses

let outcomes analysis = function
  | Fault.Types.Catastrophic -> analysis.outcomes_catastrophic
  | Fault.Types.Non_catastrophic -> analysis.outcomes_non_catastrophic

let fault_count analysis severity =
  List.fold_left
    (fun acc (o : Macro.Evaluate.outcome) ->
      acc + o.fault_class.Fault.Collapse.count)
    0
    (outcomes analysis severity)
