type config = {
  tech : Process.Tech.t;
  stats : Process.Defect_stats.t;
  defects : int;
  good_space_dies : int;
  sigma : float;
  seed : int;
}

let default_config =
  {
    tech = Process.Tech.cmos1um;
    stats = Process.Defect_stats.default;
    defects = 25_000;
    good_space_dies = 48;
    sigma = 3.0;
    seed = 1995;
  }

type macro_analysis = {
  macro : Macro.Macro_cell.t;
  sprinkled : int;
  effective : int;
  good : Macro.Good_space.t;
  classes_catastrophic : Fault.Collapse.fault_class list;
  classes_non_catastrophic : Fault.Collapse.fault_class list;
  outcomes_catastrophic : Macro.Evaluate.outcome list;
  outcomes_non_catastrophic : Macro.Evaluate.outcome list;
}

let src = Logs.Src.create "dotest.core" ~doc:"methodology pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

let analyze config (macro : Macro.Macro_cell.t) =
  let prng = Util.Prng.create config.seed in
  let defect_prng = Util.Prng.split prng in
  let good_prng = Util.Prng.split prng in
  let cell = Lazy.force macro.Macro.Macro_cell.cell in
  let nominal_netlist =
    macro.Macro.Macro_cell.build (Process.Variation.nominal config.tech)
  in
  Log.info (fun m -> m "[%s] sprinkling %d defects" macro.Macro.Macro_cell.name config.defects);
  let defect_result =
    Defect.Simulate.run ~tech:config.tech ~stats:config.stats ~cell
      ~netlist:nominal_netlist defect_prng ~n:config.defects
  in
  let classes_catastrophic =
    Fault.Collapse.collapse defect_result.Defect.Simulate.instances
  in
  let classes_non_catastrophic =
    Fault.Collapse.derive_non_catastrophic ~tech:config.tech
      classes_catastrophic
  in
  Log.info (fun m ->
      m "[%s] %d effective defects, %d + %d fault classes"
        macro.Macro.Macro_cell.name defect_result.Defect.Simulate.effective
        (List.length classes_catastrophic)
        (List.length classes_non_catastrophic));
  let good =
    Macro.Good_space.compile ~n:config.good_space_dies ~k:config.sigma
      ~tech:config.tech macro good_prng
  in
  let outcomes_catastrophic =
    Macro.Evaluate.run ~macro ~good classes_catastrophic
  in
  let outcomes_non_catastrophic =
    Macro.Evaluate.run ~macro ~good classes_non_catastrophic
  in
  {
    macro;
    sprinkled = defect_result.Defect.Simulate.sprinkled;
    effective = defect_result.Defect.Simulate.effective;
    good;
    classes_catastrophic;
    classes_non_catastrophic;
    outcomes_catastrophic;
    outcomes_non_catastrophic;
  }

let analyze_all config macros =
  (* Force every layout before the fan-out: lazies must not be forced
     concurrently, and the same macro value may appear more than once. *)
  List.iter
    (fun (m : Macro.Macro_cell.t) -> ignore (Lazy.force m.Macro.Macro_cell.cell))
    macros;
  (* The per-macro stages degrade to sequential inside pool workers, so
     this spawns at most [Util.Pool.jobs ()] domains in total. *)
  Util.Pool.parallel_map (analyze config) macros

let outcomes analysis = function
  | Fault.Types.Catastrophic -> analysis.outcomes_catastrophic
  | Fault.Types.Non_catastrophic -> analysis.outcomes_non_catastrophic

let fault_count analysis severity =
  List.fold_left
    (fun acc (o : Macro.Evaluate.outcome) ->
      acc + o.fault_class.Fault.Collapse.count)
    0
    (outcomes analysis severity)
