(** The defect-oriented test path of Fig. 1, end to end, for one macro.

    defect statistics + layout → defect simulation → fault collapsing →
    (non-catastrophic derivation) → circuit-level fault simulation →
    macro-level fault signatures. The caller chains {!Global} for the
    circuit-level scaling step. *)

type config = {
  tech : Process.Tech.t;
  stats : Process.Defect_stats.t;
  defects : int;        (** spots sprinkled per macro *)
  good_space_dies : int;  (** Monte-Carlo dies for the good space *)
  sigma : float;        (** acceptance window width, in σ *)
  seed : int;
}

val default_config : config

type macro_analysis = {
  macro : Macro.Macro_cell.t;
  sprinkled : int;
  effective : int;
  good : Macro.Good_space.t;
  classes_catastrophic : Fault.Collapse.fault_class list;
  classes_non_catastrophic : Fault.Collapse.fault_class list;
  outcomes_catastrophic : Macro.Evaluate.outcome list;
  outcomes_non_catastrophic : Macro.Evaluate.outcome list;
}

(** [analyze config macro] runs the whole per-macro path. Deterministic
    for a given [config.seed] regardless of the {!Util.Pool} job count:
    the defect draws are chunked with per-chunk PRNG streams and all
    parallel stages merge in input order. *)
val analyze : config -> Macro.Macro_cell.t -> macro_analysis

(** [analyze_all config macros] analyses independent macros concurrently
    on the {!Util.Pool} (their layouts are forced up front; the stages
    inside each macro then run sequentially, so the pool is never
    oversubscribed). Same results, in the same order, as
    [List.map (analyze config) macros]. *)
val analyze_all : config -> Macro.Macro_cell.t list -> macro_analysis list

(** All outcomes of one severity. *)
val outcomes :
  macro_analysis -> Fault.Types.severity -> Macro.Evaluate.outcome list

(** Number of simulated fault instances (magnitude-weighted). *)
val fault_count : macro_analysis -> Fault.Types.severity -> int
