(** The defect-oriented test path of Fig. 1, end to end, for one macro.

    defect statistics + layout → defect simulation → fault collapsing →
    (non-catastrophic derivation) → circuit-level fault simulation →
    macro-level fault signatures. The caller chains {!Global} for the
    circuit-level scaling step.

    The fault-simulation stage is contained (see {!Macro.Evaluate}):
    convergence failures are retried along the engine's escalation ladder
    and, if still failing, recorded as unresolved instead of aborting the
    run. Per-macro health counters roll up into a {!run_health} record
    whose counters are byte-identical across {!Util.Pool} job counts. *)

(** Pipeline configuration as a value: build one with {!Config.default}
    and the [with_*] setters, pass it to {!analyze} / {!analyze_all}.

    {[
      let config =
        Core.Pipeline.Config.(
          default |> with_defects 5_000 |> with_seed 42 |> with_strict true)
    ]} *)
module Config : sig
  type t = {
    tech : Process.Tech.t;
    stats : Process.Defect_stats.t;
    defects : int;        (** spots sprinkled per macro *)
    good_space_dies : int;  (** Monte-Carlo dies for the good space *)
    sigma : float;        (** acceptance window width, in σ *)
    seed : int;
    max_retries : int;
        (** escalated re-attempts after a convergence failure (default 1) *)
    strict : bool;
        (** fail fast on the first unresolved class instead of containing
            it (default [false]) *)
    failure_budget : int option;
        (** abort the run once more than this many classes end unresolved;
            checked on merged, ordered results so the outcome is identical
            for any job count (default [None] = unlimited) *)
    inject_failures : float option;
        (** test hook: force this fraction of fault-class simulations to
            raise [No_convergence] deterministically (default [None]) *)
    telemetry : Util.Telemetry.sink;
        (** observability sink installed for the duration of {!analyze} /
            {!analyze_all}; {!Util.Telemetry.null} (the default) leaves
            the ambient sink untouched and costs nothing *)
    cache : Util.Cache.t option;
        (** persistent result cache consulted per macro before any
            simulation work is spawned (default [None] = simulate
            everything). See {!analyze} for the determinism contract. *)
    deadline : Util.Watchdog.limits option;
        (** per-attempt budget for each fault-class simulation, in
            solver iterations and/or wall-clock seconds; the budget
            doubles with every escalated retry. Part of the cache key —
            a deadline changes which classes end unresolved. Iteration
            caps keep the determinism contract; wall-clock caps are
            best-effort (default [None] = unbounded) *)
    checkpoint : Checkpoint.t option;
        (** incremental checkpoint/resume of fault-class outcomes
            (default [None] = off). Requires [cache] — partials are
            stored through it under the macro's key — and is inert
            without one. See {!Checkpoint}. *)
    solver : Circuit.Engine.solver;
        (** linear-solver backend for every simulation stage (default
            {!Circuit.Engine.default_solver} = [Auto]). All backends must
            produce identical tables; [Dense] is the reference path for
            bisecting solver regressions. Part of the cache key. *)
    sprinkle_chunk : int;
        (** defect draws per sprinkle chunk (default
            {!Defect.Simulate.default_chunk_size}). Each chunk consumes
            its own split PRNG stream, so results stay bit-identical for
            any job count at a {e given} chunk size — but the size is
            part of the stream assignment (and therefore of the cache
            key): a different value selects a different, equally valid
            defect sample. Large-N runs raise it to amortize pool
            dispatch overhead. *)
  }

  val default : t

  val with_tech : Process.Tech.t -> t -> t
  val with_stats : Process.Defect_stats.t -> t -> t
  val with_defects : int -> t -> t
  val with_good_space_dies : int -> t -> t
  val with_sigma : float -> t -> t
  val with_seed : int -> t -> t
  val with_max_retries : int -> t -> t
  val with_strict : bool -> t -> t
  val with_failure_budget : int option -> t -> t
  val with_inject_failures : float option -> t -> t
  val with_telemetry : Util.Telemetry.sink -> t -> t

  (** [with_cache (Some dir) config] opens (creating if needed) the
      persistent result cache rooted at [dir], versioned with
      {!Codec.version}; [with_cache None] disables caching. The returned
      handle is shared by every config derived from this one. *)
  val with_cache : string option -> t -> t

  (** [with_cache_handle cache config] installs an existing handle —
      useful when the caller also wants to read {!Util.Cache.stats}
      after the run. *)
  val with_cache_handle : Util.Cache.t option -> t -> t

  val with_deadline : Util.Watchdog.limits option -> t -> t

  (** [with_checkpoint (Some registry) config] enables incremental
      checkpointing; keep the registry to read {!Checkpoint.stats}
      after the run. *)
  val with_checkpoint : Checkpoint.t option -> t -> t

  val with_solver : Circuit.Engine.solver -> t -> t
  val with_sprinkle_chunk : int -> t -> t
end

(** Containment counters for one macro, plus stage wall-clock times.
    All counters are functions of the merged outcome lists only;
    [stage_seconds] is wall-clock and naturally varies between runs, so
    it must be excluded from any determinism comparison. *)
type macro_health = {
  macro_name : string;
  classes : int;      (** fault classes simulated (both severities) *)
  retried : int;      (** classes that needed more than one attempt *)
  degraded : int;     (** classes that recovered on an escalated retry *)
  unresolved : int;   (** classes whose every attempt failed *)
  stage_seconds : (string * float) list;
      (** per-stage wall-clock: sprinkle, collapse, good-space,
          evaluate-cat, evaluate-ncat *)
}

(** {!macro_health} aggregated over a whole run. *)
type run_health = {
  per_macro : macro_health list;
  total_classes : int;
  total_retried : int;
  total_degraded : int;
  total_unresolved : int;
}

type macro_analysis = {
  macro : Macro.Macro_cell.t;
  sprinkled : int;
  effective : int;
  good : Macro.Good_space.t;
  classes_catastrophic : Fault.Collapse.fault_class list;
  classes_non_catastrophic : Fault.Collapse.fault_class list;
  outcomes_catastrophic : Macro.Evaluate.outcome list;
  outcomes_non_catastrophic : Macro.Evaluate.outcome list;
  health : macro_health;
}

(** [run_health analyses] rolls the per-macro health records up into run
    totals (macros in list order). *)
val run_health : macro_analysis list -> run_health

(** [analyze config macro] runs the whole per-macro path. Deterministic
    for a given [config.seed] regardless of the {!Util.Pool} job count:
    the defect draws are chunked with per-chunk PRNG streams and all
    parallel stages merge in input order.

    With [config.cache] set, the cache is consulted first under a key
    fingerprinting every input the result depends on (macro name, its
    nominal netlist and synthesized layout, tech and defect statistics,
    defect/die counts, sigma, seed, retry/strict/injection settings, and
    {!Codec.version}); a hit skips all simulation and re-attaches the
    in-memory [macro]. Determinism contract: a warm run produces
    byte-identical coverage tables, health counters and bounds to the
    cold run at any job count — only [health.stage_seconds] (empty on a
    hit) and wall-clock telemetry differ. The failure budget is
    re-checked on hits, so a cached degraded run still raises under a
    tighter budget.

    With [config.checkpoint] set (and a cache), completed fault-class
    outcomes are persisted incrementally during evaluation and — with
    resume enabled on the registry — restored instead of re-simulated,
    so an interrupted run resumed later produces the same bytes as an
    uninterrupted one (see {!Checkpoint}).

    @raise Util.Resilience.Budget_exhausted when the macro alone exceeds
    [config.failure_budget].
    @raise Util.Pool.Worker_failure wrapping
    [Macro.Evaluate.Simulation_failed] when [config.strict] and a class
    is unresolved.
    @raise Util.Watchdog.Interrupted when cooperative shutdown was
    requested (SIGINT/SIGTERM via
    [Util.Watchdog.install_signal_handlers]): in-flight classes drain,
    checkpoints and partial flushes land, and the exception unwinds for
    the caller to exit with a resumable status. *)
val analyze : Config.t -> Macro.Macro_cell.t -> macro_analysis

(** [analyze_all config macros] analyses independent macros concurrently
    on the {!Util.Pool} (their layouts are forced up front; the stages
    inside each macro then run sequentially, so the pool is never
    oversubscribed). Same results, in the same order, as
    [List.map (analyze config) macros]. The failure budget is re-checked
    against the sum of unresolved classes across all macros, after the
    ordered merge. *)
val analyze_all : Config.t -> Macro.Macro_cell.t list -> macro_analysis list

(** All outcomes of one severity. *)
val outcomes :
  macro_analysis -> Fault.Types.severity -> Macro.Evaluate.outcome list

(** Number of simulated fault instances (magnitude-weighted). *)
val fault_count : macro_analysis -> Fault.Types.severity -> int
