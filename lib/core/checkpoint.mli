(** Incremental checkpoint/resume of fault-class outcomes.

    The result cache ({!Util.Cache}) makes a {e completed} macro analysis
    free to re-run, but a killed campaign used to lose everything since
    the last completed macro — hours of fault simulation on a large
    netlist. This module persists completed fault-class outcomes
    {e during} evaluation, so a resumed run restarts from the last
    checkpoint flush rather than the last completed macro.

    {2 Storage}

    Partials ride the result cache: a macro whose full analysis is keyed
    [key] stores its in-progress outcomes under [key ^ "-partial"]
    (schema {!Codec.partial_outcomes_to_json}). They therefore inherit
    the cache's envelope versioning, atomic tmp-and-rename writes and
    degraded-write containment for free — and because the key
    fingerprints every pipeline input, a checkpoint written under
    different inputs is simply never found. Once the full analysis entry
    is published, {!finish} retires the partial.

    {2 Determinism}

    A restored outcome is handed to [Macro.Evaluate.run]'s [resume]
    hook, which verifies it against the recomputed fault class before
    trusting it; fault simulation is deterministic, so a resumed run
    produces byte-identical coverage tables, health counters and bounds
    to an uninterrupted one at any job count. Only the survival
    statistics (restored/recorded counts) and wall-clock telemetry
    differ — exactly like warm-vs-cold cache runs.

    {2 Concurrency}

    One registry serves a whole run; one {!handle} serves one macro's
    evaluation and is called from {!Util.Pool} worker domains — its
    outcome table is mutex-protected, the registry counters atomic. *)

(** Shared registry: configuration plus run-wide counters. *)
type t

(** [create ()] — a registry with checkpointing on and resume off.
    [resume] makes handles load any existing partial and serve
    {!restore} hits from it. [flush_every] bounds how many freshly
    recorded outcomes may be lost to a hard kill (default 8; clamped to
    at least 1): a flush rewrites the whole partial, so smaller values
    trade write volume for a tighter loss window. [interrupt_after] is a
    deterministic test hook (compare [Pipeline.Config.inject_failures]):
    after the [n]-th recorded outcome, run-wide, it calls
    {!Util.Watchdog.request_shutdown} — letting tests exercise the
    kill-and-resume path without racing a real signal against the
    scheduler. *)
val create :
  ?resume:bool -> ?flush_every:int -> ?interrupt_after:int -> unit -> t

val resume_enabled : t -> bool

(** Run-wide counters: [restored] outcomes served from a loaded partial,
    [recorded] outcomes freshly simulated and checkpointed, [flushes]
    partial writes. For a run that completes, all three are functions of
    the inputs and the pre-existing checkpoint only — independent of the
    job count. *)
type stats = { restored : int; recorded : int; flushes : int }

val stats : t -> stats

(** Per-macro checkpoint state. *)
type handle

(** [handle t ~cache ~key] — open the checkpoint for the macro whose
    full analysis is cached under [key]. With [resume] enabled, loads
    the partial stored under [key ^ "-partial"] (an absent or
    undecodable partial is an empty one — never an error). *)
val handle : t -> cache:Util.Cache.t -> key:string -> handle

(** [restore h ~section ~index] — the checkpointed outcome of the class
    at [index] of evaluation [section] (["cat"] / ["ncat"]), or [None].
    Always [None] when the registry has resume off. *)
val restore :
  handle -> section:string -> index:int -> Macro.Evaluate.outcome option

(** [record h ~section ~index outcome] adds a freshly simulated outcome;
    every [flush_every]-th recorded outcome triggers a flush. Called
    from worker domains. *)
val record :
  handle -> section:string -> index:int -> Macro.Evaluate.outcome -> unit

(** [flush h] persists all outcomes recorded since the last flush (a
    no-op if there are none). Callers run this in a [Fun.protect]
    finalizer around evaluation, so an interrupt's in-flight drain is
    checkpointed on the way out. *)
val flush : handle -> unit

(** [finish h] retires the partial entry — call once the full analysis
    has been published under the macro's own key. *)
val finish : handle -> unit
