type stats = { restored : int; recorded : int; flushes : int }

type t = {
  resume : bool;
  flush_every : int;
  interrupt_after : int option;
  restored_n : int Atomic.t;
  recorded_n : int Atomic.t;
  flushes_n : int Atomic.t;
}

let create ?(resume = false) ?(flush_every = 8) ?interrupt_after () =
  {
    resume;
    flush_every = max 1 flush_every;
    interrupt_after;
    restored_n = Atomic.make 0;
    recorded_n = Atomic.make 0;
    flushes_n = Atomic.make 0;
  }

let resume_enabled t = t.resume

let stats t =
  {
    restored = Atomic.get t.restored_n;
    recorded = Atomic.get t.recorded_n;
    flushes = Atomic.get t.flushes_n;
  }

let src = Logs.Src.create "dotest.checkpoint" ~doc:"incremental checkpoints"

module Log = (val Logs.src_log src : Logs.LOG)

type handle = {
  registry : t;
  cache : Util.Cache.t;
  partial_key : string;
  lock : Mutex.t;
  (* Restored-from-disk and freshly recorded outcomes share one table:
     each fault-class index is either restored or simulated, never both,
     so a [restore] lookup can only hit a disk-loaded entry. *)
  outcomes : (string * int, Macro.Evaluate.outcome) Hashtbl.t;
  mutable unflushed : int;
}

let partial_key key = key ^ "-partial"

let handle registry ~cache ~key =
  let partial_key = partial_key key in
  let outcomes = Hashtbl.create 64 in
  if registry.resume then begin
    match Util.Cache.find cache ~key:partial_key with
    | None -> ()
    | Some payload ->
      (match Codec.partial_outcomes_of_json payload with
      | Ok ps ->
        List.iter
          (fun (p : Codec.partial_outcome) ->
            Hashtbl.replace outcomes (p.Codec.section, p.Codec.index)
              p.Codec.outcome)
          ps;
        Log.info (fun m ->
            m "resuming from %d checkpointed fault-class outcomes"
              (List.length ps))
      | Error e ->
        (* Same containment as a corrupt cache entry: a checkpoint may
           only ever save work, never fail a run. *)
        Log.warn (fun m ->
            m "undecodable checkpoint partial (%s): re-simulating" e))
  end;
  { registry; cache; partial_key; lock = Mutex.create (); outcomes;
    unflushed = 0 }

let with_lock h f =
  Mutex.lock h.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

let restore h ~section ~index =
  if not h.registry.resume then None
  else
    with_lock h @@ fun () ->
    match Hashtbl.find_opt h.outcomes (section, index) with
    | Some o ->
      Atomic.incr h.registry.restored_n;
      Some o
    | None -> None

(* The payload is sorted by (section, index) so its bytes are a function
   of the outcome set alone, not of worker scheduling. *)
let flush_locked h =
  if h.unflushed > 0 then begin
    let ps =
      Hashtbl.fold
        (fun (section, index) outcome acc ->
          { Codec.section; index; outcome } :: acc)
        h.outcomes []
      |> List.sort (fun (a : Codec.partial_outcome) (b : Codec.partial_outcome) ->
             match compare a.Codec.section b.Codec.section with
             | 0 -> compare a.Codec.index b.Codec.index
             | c -> c)
    in
    Util.Cache.store h.cache ~key:h.partial_key
      (Codec.partial_outcomes_to_json ps);
    h.unflushed <- 0;
    Atomic.incr h.registry.flushes_n
  end

let flush h = with_lock h (fun () -> flush_locked h)

let record h ~section ~index outcome =
  (with_lock h @@ fun () ->
   Hashtbl.replace h.outcomes (section, index) outcome;
   h.unflushed <- h.unflushed + 1;
   if h.unflushed >= h.registry.flush_every then flush_locked h);
  let total = 1 + Atomic.fetch_and_add h.registry.recorded_n 1 in
  match h.registry.interrupt_after with
  | Some n when total = n ->
    Util.Watchdog.request_shutdown
      ~reason:"checkpoint interrupt_after (test hook)" ()
  | Some _ | None -> ()

let finish h = Util.Cache.remove h.cache ~key:h.partial_key
