(** The library's one public (de)serialization surface.

    Everything the library persists or emits as JSON goes through this
    module, so the schema of each value is defined in exactly one place:
    the result cache stores per-macro analyses with {!analysis_to_json},
    {!Report.render}'s [`Json] format and the bench harness's [--json]
    mode render through {!table_to_json} / {!metrics_to_json} /
    {!cache_stats_to_json}.

    Encoders are total. Decoders are total in the other direction: any
    JSON value yields [Ok] or a descriptive [Error], never an exception —
    a corrupt cache entry must cost a re-simulation, not a crash. For
    every pair, [of_json (to_json v) = Ok v]; floats survive exactly
    because {!Util.Json} prints the shortest representation that parses
    back to the identical double.

    {!version} stamps both the cache envelope and the cache key: bump it
    whenever simulation semantics or any encoding here changes, and
    every previously written cache entry becomes (safely) stale. *)

type 'a decoder = Util.Json.t -> ('a, string) result

(** Serialization/semantics version of the library (see the module
    preamble). Folded into every cache key and envelope. *)
val version : string

(** {1 Signatures} *)

val voltage_to_json : Macro.Signature.voltage -> Util.Json.t
val voltage_of_json : Macro.Signature.voltage decoder
val current_kind_to_json : Macro.Signature.current_kind -> Util.Json.t
val current_kind_of_json : Macro.Signature.current_kind decoder
val signature_to_json : Macro.Signature.t -> Util.Json.t
val signature_of_json : Macro.Signature.t decoder

(** {1 Faults and fault classes} *)

val fault_to_json : Fault.Types.fault -> Util.Json.t
val fault_of_json : Fault.Types.fault decoder
val instance_to_json : Fault.Types.instance -> Util.Json.t
val instance_of_json : Fault.Types.instance decoder
val fault_class_to_json : Fault.Collapse.fault_class -> Util.Json.t
val fault_class_of_json : Fault.Collapse.fault_class decoder

(** {1 Evaluation outcomes} *)

val status_to_json : Macro.Evaluate.status -> Util.Json.t
val status_of_json : Macro.Evaluate.status decoder
val outcome_to_json : Macro.Evaluate.outcome -> Util.Json.t
val outcome_of_json : Macro.Evaluate.outcome decoder

(** {1 Good-signature space} *)

val good_space_to_json : Macro.Good_space.t -> Util.Json.t
val good_space_of_json : Macro.Good_space.t decoder

(** {1 The per-macro analysis payload}

    Everything {!Pipeline.analyze} computes for one macro except the
    macro value itself (a bundle of closures — the caller re-attaches
    it) and wall-clock timings (which a warm run did not spend).
    This record {e is} the result cache's payload. *)

type analysis = {
  sprinkled : int;
  effective : int;
  good : Macro.Good_space.t;
  classes_catastrophic : Fault.Collapse.fault_class list;
  classes_non_catastrophic : Fault.Collapse.fault_class list;
  outcomes_catastrophic : Macro.Evaluate.outcome list;
  outcomes_non_catastrophic : Macro.Evaluate.outcome list;
}

val analysis_to_json : analysis -> Util.Json.t
val analysis_of_json : analysis decoder

(** {1 Checkpoint partial payloads}

    The incremental-checkpoint schema (see [Checkpoint]): a flat list of
    completed fault-class outcomes, each tagged with the evaluation
    [section] it belongs to (["cat"] / ["ncat"]) and its class [index]
    within that section. Persisted through [Util.Cache] under the
    macro's cache key suffixed ["-partial"], so it inherits the cache's
    envelope versioning, atomic rename and degraded-write containment. *)

type partial_outcome = {
  section : string;
  index : int;
  outcome : Macro.Evaluate.outcome;
}

val partial_outcomes_to_json : partial_outcome list -> Util.Json.t
val partial_outcomes_of_json : partial_outcome list decoder

(** {1 Fingerprints}

    Stable content fingerprints of the inputs a per-macro result depends
    on. Two values with equal fingerprints produce identical analyses;
    anything a fingerprint cannot observe (a macro's [measure] or
    [classify_voltage] closure) is covered by {!version} instead —
    change those semantics, bump the version. *)

val tech_fingerprint : Process.Tech.t -> string
val stats_fingerprint : Process.Defect_stats.t -> string

(** [netlist_fingerprint nl] digests the full structural content:
    devices with element values, waveform views, MOSFET geometry and
    model parameters, and pin-to-node wiring. Two macros sharing a name
    but differing in any device (e.g. the comparator with and without
    the leaky flipflop) fingerprint differently. *)
val netlist_fingerprint : Circuit.Netlist.t -> string

val cell_fingerprint : Layout.Cell.t -> string

(** {1 The request/response wire format}

    The versioned JSON protocol spoken by [dotest serve] and its
    clients (newline-delimited, one value per line). {!api_version}
    stamps every request and response; it is independent of {!version}
    — the wire protocol and the cache payloads have separate
    lifecycles. Decoders are total like everything else here: malformed
    wire bytes decode to [Error], which the service turns into a
    structured [bad_request] response, never a crash.

    A minimal request is [{"api":"dotest-api/1","target":"global"}] —
    every other request field is optional and defaults to the matching
    {!Request.default} value. *)

(** The wire-protocol version: ["dotest-api/1"]. *)
val api_version : string

val request_to_json : Request.t -> Util.Json.t

(** Rejects a missing or non-matching ["api"] stamp; validates field
    shapes and basic ranges (non-negative defect count, positive die
    count). [request_of_json (request_to_json r) = Ok r]. *)
val request_of_json : Request.t decoder

val response_to_json : Request.response -> Util.Json.t
val response_of_json : Request.response decoder

(** Deadline limits as carried inside requests
    ([{"wall_seconds": float|null, "max_iterations": int|null}]). *)
val limits_to_json : Util.Watchdog.limits -> Util.Json.t

val limits_of_json : Util.Watchdog.limits decoder

(** {1 Rendered-report surface} *)

(** [table_to_json t] — array of row objects keyed by column title (the
    [`Json] report format). *)
val table_to_json : Util.Table.t -> Util.Json.t

(** [metrics_to_json m] — [{counters: {...}, gauges: {...}}]. *)
val metrics_to_json : Util.Telemetry.Metrics.t -> Util.Json.t

(** [cache_stats_to_json ~state s] — the five counters plus
    ["state": "cold"|"warm"|"off"]. *)
val cache_stats_to_json :
  state:[ `Cold | `Warm | `Off ] -> Util.Cache.stats -> Util.Json.t
