module J = Util.Json

type 'a decoder = J.t -> ('a, string) result

(* Bump whenever simulation semantics or any encoding below changes:
   every previously written cache entry then reads as stale.
   2: checkpoint partial-outcome payloads; cache stats gained
      write_errors; deadline limits folded into cache keys.
   3: shared-nominal warm start — analyses under an installed context
      start Newton from the derived nominal operating point (all
      backends), which changes which marginal classes resolve. *)
let version = "dotest-codec/3"

(* --- decoder plumbing --------------------------------------------------- *)

let ( let* ) = Result.bind

let error_at what json =
  Error (Printf.sprintf "%s, got %s" what (J.to_string json))

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> error_at (Printf.sprintf "expected field %S" name) json

let as_int json =
  match J.to_int json with
  | Some n -> Ok n
  | None -> error_at "expected an integer" json

let as_float json =
  match J.to_float json with
  | Some x -> Ok x
  | None -> error_at "expected a number" json

let as_str json =
  match J.to_str json with
  | Some s -> Ok s
  | None -> error_at "expected a string" json

let int_field name json = Result.bind (field name json) as_int
let float_field name json = Result.bind (field name json) as_float
let str_field name json = Result.bind (field name json) as_str

(* [Float] must survive exactly; [Json] already prints the shortest
   representation that parses back to the identical double, but an
   integral float would print as an [Int] and decode as one, which
   [to_float] accepts — so floats round-trip through [as_float]. *)
let list_of dec json =
  match J.to_list json with
  | None -> error_at "expected a list" json
  | Some items ->
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        (match dec item with
        | Ok v -> go (i + 1) (v :: acc) rest
        | Error e -> Error (Printf.sprintf "element %d: %s" i e))
    in
    go 0 [] items

let list_field name dec json = Result.bind (field name json) (list_of dec)

(* Optional float field encoded as absence. *)
let opt_float_field name json =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v ->
    let* x = as_float v in
    Ok (Some x)

(* An enumeration keyed by a naming function. *)
let enum ~what ~name_of all =
  let encode v = J.String (name_of v) in
  let decode json =
    let* s = as_str json in
    match List.find_opt (fun v -> name_of v = s) all with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "unknown %s %S" what s)
  in
  encode, decode

(* --- signatures --------------------------------------------------------- *)

let voltage_to_json, voltage_of_json =
  enum ~what:"voltage signature" ~name_of:Macro.Signature.voltage_name
    Macro.Signature.all_voltage

let current_kind_to_json, current_kind_of_json =
  enum ~what:"current kind" ~name_of:Macro.Signature.current_name
    Macro.Signature.all_current

let signature_to_json (s : Macro.Signature.t) =
  J.Obj
    [
      "voltage", voltage_to_json s.Macro.Signature.voltage;
      "currents", J.List (List.map current_kind_to_json s.Macro.Signature.currents);
    ]

let signature_of_json json =
  let* voltage = Result.bind (field "voltage" json) voltage_of_json in
  let* currents = list_field "currents" current_kind_of_json json in
  Ok { Macro.Signature.voltage; currents }

(* --- faults ------------------------------------------------------------- *)

let layer_to_json, layer_of_json =
  enum ~what:"layer" ~name_of:Process.Layer.name Process.Layer.all

let fault_type_to_json, fault_type_of_json =
  enum ~what:"fault type" ~name_of:Fault.Types.fault_type_name
    Fault.Types.all_fault_types

let site_name = function
  | Fault.Types.To_source -> "source"
  | Fault.Types.To_drain -> "drain"
  | Fault.Types.To_channel -> "channel"

let site_to_json, site_of_json =
  enum ~what:"pinhole site" ~name_of:site_name
    [ Fault.Types.To_source; Fault.Types.To_drain; Fault.Types.To_channel ]

let severity_name = function
  | Fault.Types.Catastrophic -> "catastrophic"
  | Fault.Types.Non_catastrophic -> "non-catastrophic"

let severity_to_json, severity_of_json =
  enum ~what:"severity" ~name_of:severity_name
    [ Fault.Types.Catastrophic; Fault.Types.Non_catastrophic ]

(* [Defect_stats.mechanism_name] is not injective ([Extra_material
   Contact] and [Extra_contact] both render "extra-contact"), so the
   mechanism is encoded structurally. *)
let mechanism_to_json (m : Process.Defect_stats.mechanism) =
  match m with
  | Process.Defect_stats.Extra_material layer ->
    J.Obj [ "kind", J.String "extra-material"; "layer", layer_to_json layer ]
  | Process.Defect_stats.Missing_material layer ->
    J.Obj [ "kind", J.String "missing-material"; "layer", layer_to_json layer ]
  | Process.Defect_stats.Gate_oxide_pinhole ->
    J.Obj [ "kind", J.String "gate-oxide-pinhole" ]
  | Process.Defect_stats.Junction_pinhole ->
    J.Obj [ "kind", J.String "junction-pinhole" ]
  | Process.Defect_stats.Thick_oxide_pinhole ->
    J.Obj [ "kind", J.String "thick-oxide-pinhole" ]
  | Process.Defect_stats.Extra_contact ->
    J.Obj [ "kind", J.String "extra-contact" ]
  | Process.Defect_stats.Missing_contact ->
    J.Obj [ "kind", J.String "missing-contact" ]

let mechanism_of_json json =
  let* kind = str_field "kind" json in
  let layered f = Result.map f (Result.bind (field "layer" json) layer_of_json) in
  match kind with
  | "extra-material" ->
    layered (fun l -> Process.Defect_stats.Extra_material l)
  | "missing-material" ->
    layered (fun l -> Process.Defect_stats.Missing_material l)
  | "gate-oxide-pinhole" -> Ok Process.Defect_stats.Gate_oxide_pinhole
  | "junction-pinhole" -> Ok Process.Defect_stats.Junction_pinhole
  | "thick-oxide-pinhole" -> Ok Process.Defect_stats.Thick_oxide_pinhole
  | "extra-contact" -> Ok Process.Defect_stats.Extra_contact
  | "missing-contact" -> Ok Process.Defect_stats.Missing_contact
  | other -> Error (Printf.sprintf "unknown defect mechanism %S" other)

let capacitance_fields = function
  | None -> []
  | Some c -> [ "capacitance", J.Float c ]

let fault_to_json (f : Fault.Types.fault) =
  match f with
  | Fault.Types.Bridge { net_a; net_b; resistance; capacitance; origin } ->
    J.Obj
      ([
         "kind", J.String "bridge";
         "net_a", J.String net_a;
         "net_b", J.String net_b;
         "resistance", J.Float resistance;
       ]
      @ capacitance_fields capacitance
      @ [ "origin", fault_type_to_json origin ])
  | Fault.Types.Bridge_cluster { nets; resistance; capacitance; origin } ->
    J.Obj
      ([
         "kind", J.String "bridge-cluster";
         "nets", J.List (List.map (fun n -> J.String n) nets);
         "resistance", J.Float resistance;
       ]
      @ capacitance_fields capacitance
      @ [ "origin", fault_type_to_json origin ])
  | Fault.Types.Node_split { net; far_pins } ->
    J.Obj
      [
        "kind", J.String "node-split";
        "net", J.String net;
        ( "far_pins",
          J.List
            (List.map
               (fun (device, terminal) ->
                 J.List [ J.String device; J.String terminal ])
               far_pins) );
      ]
  | Fault.Types.Gate_pinhole { device; site; resistance } ->
    J.Obj
      [
        "kind", J.String "gate-pinhole";
        "device", J.String device;
        "site", site_to_json site;
        "resistance", J.Float resistance;
      ]
  | Fault.Types.Junction_leak { net; bulk_net; resistance } ->
    J.Obj
      [
        "kind", J.String "junction-leak";
        "net", J.String net;
        "bulk_net", J.String bulk_net;
        "resistance", J.Float resistance;
      ]
  | Fault.Types.Device_ds_short { device; resistance } ->
    J.Obj
      [
        "kind", J.String "device-ds-short";
        "device", J.String device;
        "resistance", J.Float resistance;
      ]
  | Fault.Types.Parasitic_mos { gate_net; net_a; net_b } ->
    J.Obj
      [
        "kind", J.String "parasitic-mos";
        "gate_net", J.String gate_net;
        "net_a", J.String net_a;
        "net_b", J.String net_b;
      ]

let far_pin_of_json json =
  match J.to_list json with
  | Some [ d; t ] ->
    let* device = as_str d in
    let* terminal = as_str t in
    Ok (device, terminal)
  | Some _ | None -> error_at "expected a [device, terminal] pair" json

let fault_of_json json =
  let* kind = str_field "kind" json in
  match kind with
  | "bridge" ->
    let* net_a = str_field "net_a" json in
    let* net_b = str_field "net_b" json in
    let* resistance = float_field "resistance" json in
    let* capacitance = opt_float_field "capacitance" json in
    let* origin = Result.bind (field "origin" json) fault_type_of_json in
    Ok (Fault.Types.Bridge { net_a; net_b; resistance; capacitance; origin })
  | "bridge-cluster" ->
    let* nets = list_field "nets" as_str json in
    let* resistance = float_field "resistance" json in
    let* capacitance = opt_float_field "capacitance" json in
    let* origin = Result.bind (field "origin" json) fault_type_of_json in
    Ok (Fault.Types.Bridge_cluster { nets; resistance; capacitance; origin })
  | "node-split" ->
    let* net = str_field "net" json in
    let* far_pins = list_field "far_pins" far_pin_of_json json in
    Ok (Fault.Types.Node_split { net; far_pins })
  | "gate-pinhole" ->
    let* device = str_field "device" json in
    let* site = Result.bind (field "site" json) site_of_json in
    let* resistance = float_field "resistance" json in
    Ok (Fault.Types.Gate_pinhole { device; site; resistance })
  | "junction-leak" ->
    let* net = str_field "net" json in
    let* bulk_net = str_field "bulk_net" json in
    let* resistance = float_field "resistance" json in
    Ok (Fault.Types.Junction_leak { net; bulk_net; resistance })
  | "device-ds-short" ->
    let* device = str_field "device" json in
    let* resistance = float_field "resistance" json in
    Ok (Fault.Types.Device_ds_short { device; resistance })
  | "parasitic-mos" ->
    let* gate_net = str_field "gate_net" json in
    let* net_a = str_field "net_a" json in
    let* net_b = str_field "net_b" json in
    Ok (Fault.Types.Parasitic_mos { gate_net; net_a; net_b })
  | other -> Error (Printf.sprintf "unknown fault kind %S" other)

let instance_to_json (i : Fault.Types.instance) =
  J.Obj
    [
      "fault", fault_to_json i.Fault.Types.fault;
      "severity", severity_to_json i.Fault.Types.severity;
      "mechanism", mechanism_to_json i.Fault.Types.mechanism;
    ]

let instance_of_json json =
  let* fault = Result.bind (field "fault" json) fault_of_json in
  let* severity = Result.bind (field "severity" json) severity_of_json in
  let* mechanism = Result.bind (field "mechanism" json) mechanism_of_json in
  Ok { Fault.Types.fault; severity; mechanism }

let fault_class_to_json (fc : Fault.Collapse.fault_class) =
  J.Obj
    [
      "representative", instance_to_json fc.Fault.Collapse.representative;
      "count", J.Int fc.Fault.Collapse.count;
    ]

let fault_class_of_json json =
  let* representative =
    Result.bind (field "representative" json) instance_of_json
  in
  let* count = int_field "count" json in
  Ok { Fault.Collapse.representative; count }

(* --- evaluation outcomes ------------------------------------------------ *)

let status_to_json (s : Macro.Evaluate.status) =
  match s with
  | Macro.Evaluate.Converged -> J.Obj [ "kind", J.String "converged" ]
  | Macro.Evaluate.Recovered { attempts } ->
    J.Obj [ "kind", J.String "recovered"; "attempts", J.Int attempts ]
  | Macro.Evaluate.Unresolved { attempts; error } ->
    J.Obj
      [
        "kind", J.String "unresolved";
        "attempts", J.Int attempts;
        "error", J.String error;
      ]

let status_of_json json =
  let* kind = str_field "kind" json in
  match kind with
  | "converged" -> Ok Macro.Evaluate.Converged
  | "recovered" ->
    let* attempts = int_field "attempts" json in
    Ok (Macro.Evaluate.Recovered { attempts })
  | "unresolved" ->
    let* attempts = int_field "attempts" json in
    let* error = str_field "error" json in
    Ok (Macro.Evaluate.Unresolved { attempts; error })
  | other -> Error (Printf.sprintf "unknown outcome status %S" other)

let outcome_to_json (o : Macro.Evaluate.outcome) =
  J.Obj
    [
      "fault_class", fault_class_to_json o.Macro.Evaluate.fault_class;
      "signature", signature_to_json o.Macro.Evaluate.signature;
      "status", status_to_json o.Macro.Evaluate.status;
    ]

let outcome_of_json json =
  let* fault_class = Result.bind (field "fault_class" json) fault_class_of_json in
  let* signature = Result.bind (field "signature" json) signature_of_json in
  let* status = Result.bind (field "status" json) status_of_json in
  Ok { Macro.Evaluate.fault_class; signature; status }

(* --- good-signature space ----------------------------------------------- *)

let good_space_to_json good =
  J.List
    (List.map
       (fun (name, (w : Util.Stats.window)) ->
         J.Obj
           [
             "name", J.String name;
             "low", J.Float w.Util.Stats.low;
             "high", J.Float w.Util.Stats.high;
           ])
       (Macro.Good_space.windows good))

let good_space_of_json json =
  let window json =
    let* name = str_field "name" json in
    let* low = float_field "low" json in
    let* high = float_field "high" json in
    Ok (name, { Util.Stats.low; high })
  in
  Result.map Macro.Good_space.of_windows (list_of window json)

(* --- the per-macro analysis payload ------------------------------------- *)

type analysis = {
  sprinkled : int;
  effective : int;
  good : Macro.Good_space.t;
  classes_catastrophic : Fault.Collapse.fault_class list;
  classes_non_catastrophic : Fault.Collapse.fault_class list;
  outcomes_catastrophic : Macro.Evaluate.outcome list;
  outcomes_non_catastrophic : Macro.Evaluate.outcome list;
}

let analysis_to_json a =
  J.Obj
    [
      "sprinkled", J.Int a.sprinkled;
      "effective", J.Int a.effective;
      "good", good_space_to_json a.good;
      ( "classes_catastrophic",
        J.List (List.map fault_class_to_json a.classes_catastrophic) );
      ( "classes_non_catastrophic",
        J.List (List.map fault_class_to_json a.classes_non_catastrophic) );
      ( "outcomes_catastrophic",
        J.List (List.map outcome_to_json a.outcomes_catastrophic) );
      ( "outcomes_non_catastrophic",
        J.List (List.map outcome_to_json a.outcomes_non_catastrophic) );
    ]

let analysis_of_json json =
  let* sprinkled = int_field "sprinkled" json in
  let* effective = int_field "effective" json in
  let* good = Result.bind (field "good" json) good_space_of_json in
  let* classes_catastrophic =
    list_field "classes_catastrophic" fault_class_of_json json
  in
  let* classes_non_catastrophic =
    list_field "classes_non_catastrophic" fault_class_of_json json
  in
  let* outcomes_catastrophic =
    list_field "outcomes_catastrophic" outcome_of_json json
  in
  let* outcomes_non_catastrophic =
    list_field "outcomes_non_catastrophic" outcome_of_json json
  in
  Ok
    {
      sprinkled;
      effective;
      good;
      classes_catastrophic;
      classes_non_catastrophic;
      outcomes_catastrophic;
      outcomes_non_catastrophic;
    }

(* --- checkpoint partial payloads ---------------------------------------- *)

type partial_outcome = {
  section : string;
  index : int;
  outcome : Macro.Evaluate.outcome;
}

let partial_outcome_to_json p =
  J.Obj
    [
      "section", J.String p.section;
      "index", J.Int p.index;
      "outcome", outcome_to_json p.outcome;
    ]

let partial_outcome_of_json json =
  let* section = str_field "section" json in
  let* index = int_field "index" json in
  let* outcome = Result.bind (field "outcome" json) outcome_of_json in
  Ok { section; index; outcome }

let partial_outcomes_to_json ps = J.List (List.map partial_outcome_to_json ps)
let partial_outcomes_of_json json = list_of partial_outcome_of_json json

(* --- fingerprints ------------------------------------------------------- *)

(* Floats are rendered in hex ("%h") so fingerprinting never loses bits
   to decimal formatting. *)
let hexf = Printf.sprintf "%h"

let tech_fingerprint (tech : Process.Tech.t) =
  let per_layer name f render =
    List.map
      (fun layer ->
        (* Some electrical functions reject cut layers by contract;
           fingerprint the rejection too. *)
        let value = try render (f layer) with Invalid_argument _ -> "n/a" in
        Printf.sprintf "%s(%s)=%s" name (Process.Layer.name layer) value)
      Process.Layer.all
  in
  Util.Cache.fingerprint
    ([ "tech"; tech.Process.Tech.name ]
    @ per_layer "min_width" tech.Process.Tech.min_width string_of_int
    @ per_layer "min_spacing" tech.Process.Tech.min_spacing string_of_int
    @ per_layer "sheet_resistance" tech.Process.Tech.sheet_resistance hexf
    @ per_layer "short_resistance" tech.Process.Tech.short_resistance hexf
    @ List.map
        (fun (name, value) -> Printf.sprintf "%s=%s" name value)
        [
          "contact_size", string_of_int tech.Process.Tech.contact_size;
          "grid", string_of_int tech.Process.Tech.grid;
          ( "extra_contact_resistance",
            hexf tech.Process.Tech.extra_contact_resistance );
          ( "gate_oxide_pinhole_resistance",
            hexf tech.Process.Tech.gate_oxide_pinhole_resistance );
          ( "junction_pinhole_resistance",
            hexf tech.Process.Tech.junction_pinhole_resistance );
          ( "thick_oxide_pinhole_resistance",
            hexf tech.Process.Tech.thick_oxide_pinhole_resistance );
          ( "shorted_device_resistance",
            hexf tech.Process.Tech.shorted_device_resistance );
          "near_miss_resistance", hexf tech.Process.Tech.near_miss_resistance;
          "near_miss_capacitance", hexf tech.Process.Tech.near_miss_capacitance;
          "vdd", hexf tech.Process.Tech.vdd;
          "temperature", hexf tech.Process.Tech.temperature;
        ])

let stats_fingerprint stats =
  Util.Cache.fingerprint
    ("defect-stats"
    :: List.map
         (fun (e : Process.Defect_stats.entry) ->
           Printf.sprintf "%s rate=%s size=[%s,%s]"
             (J.to_string (mechanism_to_json e.Process.Defect_stats.mechanism))
             (hexf e.Process.Defect_stats.relative_rate)
             (hexf e.Process.Defect_stats.size_min)
             (hexf e.Process.Defect_stats.size_max))
         (Process.Defect_stats.entries stats))

let waveform_part w =
  match Circuit.Waveform.view w with
  | Circuit.Waveform.View_dc v -> Printf.sprintf "dc %s" (hexf v)
  | Circuit.Waveform.View_pwl points ->
    "pwl "
    ^ String.concat ","
        (List.map (fun (t, v) -> Printf.sprintf "%s:%s" (hexf t) (hexf v)) points)
  | Circuit.Waveform.View_pulse { v0; v1; delay; rise; fall; width; period } ->
    Printf.sprintf "pulse %s %s %s %s %s %s %s" (hexf v0) (hexf v1) (hexf delay)
      (hexf rise) (hexf fall) (hexf width) (hexf period)

let device_part (dv : Circuit.Netlist.device_view) =
  let kind =
    match dv.Circuit.Netlist.kind with
    | Circuit.Netlist.Resistor r -> "R " ^ hexf r
    | Circuit.Netlist.Capacitor c -> "C " ^ hexf c
    | Circuit.Netlist.Vsource w -> "V " ^ waveform_part w
    | Circuit.Netlist.Isource w -> "I " ^ waveform_part w
    | Circuit.Netlist.Mosfet spec ->
      Printf.sprintf "M %s vth=%s kp=%s lambda=%s w=%s l=%s"
        (match spec.Circuit.Netlist.polarity with
        | Circuit.Mos_model.Nmos -> "nmos"
        | Circuit.Mos_model.Pmos -> "pmos")
        (hexf spec.Circuit.Netlist.params.Circuit.Mos_model.vth)
        (hexf spec.Circuit.Netlist.params.Circuit.Mos_model.kp)
        (hexf spec.Circuit.Netlist.params.Circuit.Mos_model.lambda)
        (hexf spec.Circuit.Netlist.w) (hexf spec.Circuit.Netlist.l)
  in
  Printf.sprintf "%s | %s | %s" dv.Circuit.Netlist.dev_name kind
    (String.concat " "
       (List.map
          (fun (role, node) ->
            Printf.sprintf "%s=%d" role (Circuit.Netlist.index_of_node node))
          dv.Circuit.Netlist.pin_nodes))

let netlist_fingerprint nl =
  Util.Cache.fingerprint
    ((Printf.sprintf "netlist nodes=%d" (Circuit.Netlist.node_count nl))
    :: List.map (Circuit.Netlist.node_name nl) (Circuit.Netlist.nodes nl)
    @ List.map device_part (Circuit.Netlist.devices nl))

let owner_part = function
  | Layout.Cell.Wire net -> "wire " ^ net
  | Layout.Cell.Device_terminal { device; terminal } ->
    Printf.sprintf "pin %s.%s" device terminal
  | Layout.Cell.Gate { device } -> "gate " ^ device
  | Layout.Cell.Channel { device } -> "channel " ^ device
  | Layout.Cell.Cut { connects_up } ->
    if connects_up then "cut up" else "cut down"

let cell_fingerprint cell =
  let shape_part (s : Layout.Cell.shape) =
    Printf.sprintf "%d %s (%d,%d)-(%d,%d) %s" s.Layout.Cell.id
      (Process.Layer.name s.Layout.Cell.layer)
      s.Layout.Cell.rect.Geometry.Rect.x0 s.Layout.Cell.rect.Geometry.Rect.y0
      s.Layout.Cell.rect.Geometry.Rect.x1 s.Layout.Cell.rect.Geometry.Rect.y1
      (owner_part s.Layout.Cell.owner)
  in
  Util.Cache.fingerprint
    ("cell" :: Layout.Cell.name cell
    :: (Array.to_list (Layout.Cell.shapes cell) |> List.map shape_part))

(* --- rendered-report surface -------------------------------------------- *)

let table_to_json = Util.Table.to_json

let metrics_to_json (m : Util.Telemetry.Metrics.t) =
  J.Obj
    [
      ( "counters",
        J.Obj
          (List.map
             (fun (name, total) -> name, J.Int total)
             m.Util.Telemetry.Metrics.counters) );
      ( "gauges",
        J.Obj
          (List.map
             (fun (name, value) -> name, J.Float value)
             m.Util.Telemetry.Metrics.gauges) );
    ]

let cache_stats_to_json ~state (s : Util.Cache.stats) =
  J.Obj
    [
      ( "state",
        J.String
          (match state with `Cold -> "cold" | `Warm -> "warm" | `Off -> "off")
      );
      "hits", J.Int s.Util.Cache.hits;
      "misses", J.Int s.Util.Cache.misses;
      "stale", J.Int s.Util.Cache.stale;
      "evictions", J.Int s.Util.Cache.evictions;
      "write_errors", J.Int s.Util.Cache.write_errors;
    ]

(* --- the request/response wire format ------------------------------------ *)

(* Version of the wire protocol, independent of the cache codec version:
   a daemon and its clients negotiate on this stamp alone, while cache
   entries keep their own lifecycle. *)
let api_version = "dotest-api/1"

let as_bool json =
  match J.to_bool json with
  | Some b -> Ok b
  | None -> error_at "expected a boolean" json

let bool_field name json = Result.bind (field name json) as_bool

(* Absent and null both decode as [None]: clients may omit optional
   fields entirely. *)
let opt_str_field name json =
  match J.member name json with
  | None | Some J.Null -> Ok None
  | Some v ->
    let* s = as_str v in
    Ok (Some s)

let opt_int_of json =
  match json with
  | J.Null -> Ok None
  | v ->
    let* n = as_int v in
    Ok (Some n)

let limits_to_json (l : Util.Watchdog.limits) =
  J.Obj
    [
      ( "wall_seconds",
        match l.Util.Watchdog.wall_seconds with
        | None -> J.Null
        | Some s -> J.Float s );
      ( "max_iterations",
        match l.Util.Watchdog.max_iterations with
        | None -> J.Null
        | Some n -> J.Int n );
    ]

let limits_of_json json =
  let* wall_seconds = opt_float_field "wall_seconds" json in
  let* max_iterations =
    Result.bind (field "max_iterations" json) opt_int_of
  in
  Ok { Util.Watchdog.wall_seconds; max_iterations }

let solver_to_json, solver_of_json =
  enum ~what:"solver backend" ~name_of:Circuit.Engine.solver_name
    Circuit.Engine.all_solvers

let format_to_json, format_of_json =
  enum ~what:"format" ~name_of:Request.format_name Request.all_formats

let error_code_to_json, error_code_of_json =
  enum ~what:"error code" ~name_of:Request.error_code_name
    Request.all_error_codes

let opt_field name encode = function None -> [] | Some v -> [ name, encode v ]

let request_to_json (r : Request.t) =
  J.Obj
    ([ "api", J.String api_version ]
    @ opt_field "id" (fun s -> J.String s) r.Request.id
    @ [
        "target", J.String (Request.target_name r.Request.target);
        ( "dft",
          J.Bool
            (match r.Request.target with
            | Request.Comparator { dft } | Request.Global { dft } -> dft) );
        "defects", J.Int r.Request.defects;
        "good_space_dies", J.Int r.Request.good_space_dies;
        "sigma", J.Float r.Request.sigma;
        "seed", J.Int r.Request.seed;
        "max_retries", J.Int r.Request.max_retries;
        "strict", J.Bool r.Request.strict;
        ( "inject_failures",
          match r.Request.inject_failures with
          | None -> J.Null
          | Some f -> J.Float f );
        ( "deadline",
          match r.Request.deadline with
          | None -> J.Null
          | Some l -> limits_to_json l );
        "solver", solver_to_json r.Request.solver;
        "format", format_to_json r.Request.format;
      ])

(* Every field except "api" and "target" is optional and defaults to
   {!Request.default}'s value, so a minimal request is
   [{"api":"dotest-api/1","target":"global"}]. *)
let request_of_json json =
  let* api = str_field "api" json in
  if api <> api_version then
    Error (Printf.sprintf "unsupported api version %S (this is %s)" api api_version)
  else
    let opt name dec fallback =
      match J.member name json with
      | None | Some J.Null -> Ok fallback
      | Some v -> dec v
    in
    let d = Request.default in
    let* id = opt_str_field "id" json in
    let* target_name = str_field "target" json in
    let* dft = opt "dft" as_bool false in
    let* target = Request.target_of_name ~name:target_name ~dft in
    let* defects = opt "defects" as_int d.Request.defects in
    let* good_space_dies =
      opt "good_space_dies" as_int d.Request.good_space_dies
    in
    let* sigma = opt "sigma" as_float d.Request.sigma in
    let* seed = opt "seed" as_int d.Request.seed in
    let* max_retries = opt "max_retries" as_int d.Request.max_retries in
    let* strict = opt "strict" as_bool d.Request.strict in
    let* inject_failures =
      opt "inject_failures" (fun v -> Result.map Option.some (as_float v)) None
    in
    let* deadline =
      opt "deadline" (fun v -> Result.map Option.some (limits_of_json v)) None
    in
    let* solver = opt "solver" solver_of_json d.Request.solver in
    let* format = opt "format" format_of_json d.Request.format in
    if defects < 0 then Error "defects must be non-negative"
    else if good_space_dies < 1 then Error "good_space_dies must be positive"
    else
      Ok
        {
          Request.id;
          target;
          defects;
          good_space_dies;
          sigma;
          seed;
          max_retries;
          strict;
          inject_failures;
          deadline;
          solver;
          format;
        }

let table_entry_to_json (t : Request.table) =
  J.Obj [ "title", J.String t.Request.title; "body", J.String t.Request.body ]

let table_entry_of_json json =
  let* title = str_field "title" json in
  let* body = str_field "body" json in
  Ok { Request.title; body }

let response_to_json (r : Request.response) =
  match r with
  | Ok reply ->
    J.Obj
      ([ "api", J.String api_version; "status", J.String "ok" ]
      @ opt_field "id" (fun s -> J.String s) reply.Request.reply_id
      @ [
          ( "tables",
            J.List (List.map table_entry_to_json reply.Request.tables) );
          "cache_hits", J.Int reply.Request.cache_hits;
          "cache_misses", J.Int reply.Request.cache_misses;
          "coalesced", J.Bool reply.Request.coalesced;
          "queue_s", J.Float reply.Request.queue_seconds;
          "evaluate_s", J.Float reply.Request.evaluate_seconds;
        ])
  | Error e ->
    J.Obj
      ([ "api", J.String api_version; "status", J.String "error" ]
      @ opt_field "id" (fun s -> J.String s) e.Request.error_id
      @ [
          "code", error_code_to_json e.Request.code;
          "message", J.String e.Request.message;
          ( "retry_after",
            match e.Request.retry_after with
            | None -> J.Null
            | Some s -> J.Float s );
        ])

let response_of_json json =
  let* api = str_field "api" json in
  if api <> api_version then
    Error (Printf.sprintf "unsupported api version %S (this is %s)" api api_version)
  else
    let* status = str_field "status" json in
    match status with
    | "ok" ->
      let* reply_id = opt_str_field "id" json in
      let* tables = list_field "tables" table_entry_of_json json in
      let* cache_hits = int_field "cache_hits" json in
      let* cache_misses = int_field "cache_misses" json in
      let* coalesced = bool_field "coalesced" json in
      let* queue_seconds = float_field "queue_s" json in
      let* evaluate_seconds = float_field "evaluate_s" json in
      Ok
        (Ok
           {
             Request.reply_id;
             tables;
             cache_hits;
             cache_misses;
             coalesced;
             queue_seconds;
             evaluate_seconds;
           })
    | "error" ->
      let* error_id = opt_str_field "id" json in
      let* code = Result.bind (field "code" json) error_code_of_json in
      let* message = str_field "message" json in
      let* retry_after = opt_float_field "retry_after" json in
      Ok (Error { Request.error_id; code; message; retry_after })
    | other -> Error (Printf.sprintf "unknown response status %S" other)
