(** The process-scoped half of the {!Service}/{!Request} split: one
    analysis service behind the versioned wire API.

    A service owns everything that is shared by every analysis a process
    runs — the persistent result cache handle, the worker-domain pool
    size, the telemetry sink, the failure budget — while each
    {!Request.t} carries only what varies between analyses. {!submit}
    executes one request and {!serve} exposes the same entry point over
    a Unix or TCP socket speaking newline-delimited
    {!Codec.api_version} JSON.

    {2 Concurrency model}

    The domain pool and the telemetry span machinery are per-process
    (domain-local state seeded from the orchestrating domain), so the
    service runs analyses one at a time on a single execution lane and
    uses system threads only for admission and I/O. Concurrency is
    recovered where it actually pays:

    - {e inside} a request, the pipeline fans macros and fault classes
      out over the domain pool exactly as the CLI does;
    - {e across} requests, duplicates coalesce: requests whose
      {!Request.fingerprint}s collide while one is queued or running
      attach to that flight and receive the same tables (computed once,
      marked [coalesced] for the attachers);
    - admission control bounds the number of distinct queued flights at
      [max_pending]; beyond it the service sheds load with an
      [Overloaded] error carrying a [retry_after] hint instead of
      growing an unbounded queue.

    Determinism carries over from the pipeline: the tables in a reply
    are byte-identical to the equivalent CLI run's, whichever lane,
    thread or flight produced them.

    {2 Shutdown}

    {!initiate_shutdown} (the CLI routes the first SIGTERM/SIGINT here)
    drains: queued and running flights complete, every new submission is
    refused with [Shutting_down], the accept loop closes, and {!serve}
    returns so the daemon can exit 0. A second signal escalates to
    {!Util.Watchdog.request_shutdown}, which aborts in-flight pipeline
    work cooperatively (checkpoints still flush). *)

type t

(** [create ()] — a service with no cache, default pool size, the null
    telemetry sink, no failure budget, and room for [max_pending]
    (default 16) distinct queued flights.

    [jobs] is applied with {!Util.Pool.set_jobs} (the pool is a process
    resource; the last service created wins). [telemetry] is installed
    around each request's execution, so per-request spans
    ([service.request], carrying queue/evaluate seconds and cache
    hit/miss attributes) and all pipeline spans beneath them reach it. *)
val create :
  ?cache:Util.Cache.t ->
  ?jobs:int ->
  ?telemetry:Util.Telemetry.sink ->
  ?failure_budget:int ->
  ?max_pending:int ->
  unit ->
  t

(** The service's cache handle, if any (for end-of-run stats). *)
val cache : t -> Util.Cache.t option

(** [submit t request] executes [request] (or attaches to an identical
    in-flight request) and blocks until its response is ready. Never
    raises: every failure mode — malformed request semantics, exhausted
    failure budget, contained simulation failure, overload, shutdown —
    comes back as a structured [Error]. Safe to call from any thread. *)
val submit : t -> Request.t -> Request.response

(** [handle_line t line] is the wire entry point: decode one
    newline-delimited JSON request, {!submit} it, encode the response as
    a single line (no trailing newline). Malformed JSON or a bad
    request decode to a [bad_request]/[unsupported_version] error
    response — the function never raises, so one hostile client line
    cannot take the daemon down. *)
val handle_line : t -> string -> string

(** {1 Counters} *)

(** Monotonic service totals since {!create} (thread-safe snapshot).
    [coalesced] counts attachers only — a flight computed once for three
    requests is 1 completion + 2 coalesced. [cache_hits]/[cache_misses]
    aggregate the per-request result-cache deltas. *)
type stats = {
  submitted : int;
  completed : int;
  failed : int;
  shed : int;
  coalesced : int;
  cache_hits : int;
  cache_misses : int;
}

val stats : t -> stats

(** {1 Serving} *)

type address = Unix_socket of string | Tcp of string * int

(** ["unix:PATH"], a bare path (anything with a [/]) → {!Unix_socket};
    ["HOST:PORT"] → {!Tcp}. *)
val address_of_string : string -> (address, string) result

val address_to_string : address -> string

(** [serve t address] binds, listens, and accepts one thread per
    connection, each reading newline-delimited requests and writing one
    response line per request (through {!handle_line}). Blocks until
    {!initiate_shutdown} (or a process-wide
    {!Util.Watchdog.request_shutdown}) and the subsequent drain
    complete; an existing Unix-socket path is replaced, and the socket
    file is removed on return. [on_ready] fires once the socket is
    listening — tests use it to connect without racing the bind.

    [poll] is called from the accept loop (at least every quarter
    second) and throughout the drain. Signal handlers must not touch
    the service directly — OCaml handlers run at safepoints on whatever
    thread is executing, possibly one already holding a service lock —
    so the CLI's handlers only record atomically and its [poll]
    performs {!initiate_shutdown} / watchdog escalation from here.

    SIGPIPE is set to ignore for the process, so a client that
    disconnects mid-response surfaces as a handler-local [EPIPE]
    instead of killing the daemon; transient [accept] failures
    (ECONNABORTED, EMFILE, EINTR) are logged and the loop keeps
    accepting. Raises [Failure] if a TCP host does not resolve. *)
val serve :
  ?on_ready:(address -> unit) -> ?poll:(unit -> unit) -> t -> address -> unit

(** [call address request] — the one-shot client: connect, send the
    request as one line, read one response line, decode. Connection
    and decode failures come back as [Internal_error] responses rather
    than exceptions, so callers handle exactly one shape. *)
val call : address -> Request.t -> Request.response

(** Begin a graceful drain (idempotent): in-flight and queued work
    completes, new submissions answer [Shutting_down], {!serve}
    returns. *)
val initiate_shutdown : t -> unit

val draining : t -> bool

(** Block until no flight is queued or running (used by {!serve}; also
    by in-process tests that bypass it). *)
val drain : t -> unit
