(** One analysis request as a first-class value.

    The paper's macro-decomposed methodology makes each analysis — a
    netlist/tech/test-parameter bundle — an independent, cacheable unit.
    This module is the per-request half of the {!Service}/[Request] split
    of the public API: everything that varies between two analyses lives
    here (target, defect counts, sigma, seed, solver, deadlines, output
    format), while everything shared by a whole process — cache handle,
    domain pool, telemetry sink, failure budget — lives in {!Service}.

    A request is plain data: no closures, no handles. That is what makes
    it serializable ({!Codec.request_to_json} /
    {!Codec.request_of_json} give it the versioned [dotest-api/1] wire
    format) and content-addressable ({!fingerprint} — two requests with
    equal fingerprints demand byte-identical tables, which is how the
    service coalesces duplicate in-flight work). *)

(** What to analyse. The macro sets themselves are code (bundles of
    closures), so the wire format names them instead of shipping them:
    [Comparator] is the single-macro path of the paper's Tables 1–3 /
    Fig. 3, [Global] the five-macro run with the global scaling step
    (Fig. 4, or Fig. 5 with [dft] applying both DfT measures). *)
type target = Comparator of { dft : bool } | Global of { dft : bool }

type format = [ `Text | `Json | `Csv ]

type t = {
  id : string option;
      (** client correlation id, echoed verbatim in the response and
          excluded from {!fingerprint} *)
  target : target;
  defects : int;
  good_space_dies : int;
  sigma : float;
  seed : int;
  max_retries : int;
  strict : bool;
  inject_failures : float option;
  deadline : Util.Watchdog.limits option;
  solver : Circuit.Engine.solver;
  format : format;  (** rendering of the response tables *)
}

(** Same numeric defaults as {!Pipeline.Config.default}; target
    [Global { dft = false }], text format, no id. *)
val default : t

val with_id : string option -> t -> t
val with_target : target -> t -> t
val with_defects : int -> t -> t
val with_good_space_dies : int -> t -> t
val with_sigma : float -> t -> t
val with_seed : int -> t -> t
val with_max_retries : int -> t -> t
val with_strict : bool -> t -> t
val with_inject_failures : float option -> t -> t
val with_deadline : Util.Watchdog.limits option -> t -> t
val with_solver : Circuit.Engine.solver -> t -> t
val with_format : format -> t -> t

(** ["comparator"] / ["global"] — the wire spelling of a target (the
    [dft] flag travels separately). *)
val target_name : target -> string

(** ["text"] / ["json"] / ["csv"]. *)
val format_name : format -> string

val all_formats : format list

val target_of_name : name:string -> dft:bool -> (target, string) result

(** Content address of the work a request demands: every field except
    [id]. Requests with equal fingerprints produce byte-identical
    response tables (same determinism contract as the result cache), so
    the service computes one of them and duplicates the answer. *)
val fingerprint : t -> string

(** {1 Responses} *)

(** One rendered report artefact: the [title] the CLI prints between
    [== … ==] markers and the table [body] rendered in the request's
    format. The tables of a response are byte-identical to the
    equivalent CLI run's — that is the serve-vs-CLI contract tested in
    CI. *)
type table = { title : string; body : string }

(** The successful payload. [tables] is the deterministic artefact list
    (coverage, health, bounds — never cache stats or wall-clock
    tables); everything else describes how this particular execution
    went and is excluded from byte-identity comparisons. *)
type reply = {
  reply_id : string option;  (** the request's [id], echoed *)
  tables : table list;
  cache_hits : int;  (** per-macro result-cache hits inside this request *)
  cache_misses : int;
  coalesced : bool;
      (** served from another in-flight request's computation *)
  queue_seconds : float;  (** admission → execution start *)
  evaluate_seconds : float;  (** execution start → tables rendered *)
}

(** Structured failure. Decoders never raise: malformed wire input
    becomes [Bad_request], an overloaded service sheds with [Overloaded]
    and a [retry_after] hint, a draining service answers
    [Shutting_down]. [Budget_exhausted] / [Simulation_failed] surface
    the pipeline's contained failure modes; [Internal_error] is the
    catch-all that keeps the daemon alive. *)
type error_code =
  | Bad_request
  | Unsupported_version
  | Overloaded
  | Shutting_down
  | Budget_exhausted
  | Simulation_failed
  | Internal_error

type error = {
  error_id : string option;
  code : error_code;
  message : string;
  retry_after : float option;
      (** seconds; only meaningful with [Overloaded] *)
}

type response = (reply, error) result

(** Stable wire spelling of an error code (["bad_request"], …). *)
val error_code_name : error_code -> string

val error_code_of_name : string -> (error_code, string) result

(** All codes, for exhaustive round-trip tests. *)
val all_error_codes : error_code list
