(** Global scaling: from per-macro results to whole-circuit coverage
    (paper §3.3).

    Per-macro fault-signature probabilities are scaled into global
    probabilities on the basis that the defect density is uniform per unit
    area, so each macro type weighs as (cell area × instance count). *)

type t

(** [combine analyses] computes the area weights and caches the weighted
    global partitions. @raise Invalid_argument on an empty list. *)
val combine : Pipeline.macro_analysis list -> t

val analyses : t -> Pipeline.macro_analysis list

(** [weight t analysis_name] — the normalized area weight of a macro. *)
val weight : t -> string -> float

(** The global detection-mechanism partition for one severity. *)
val partition : t -> Fault.Types.severity -> Testgen.Overlap.cell list

(** The global voltage/current Venn (Fig. 4 / Fig. 5). *)
val venn : t -> Fault.Types.severity -> Testgen.Overlap.venn

(** Global fault coverage for one severity. Unresolved fault classes
    (see {!Macro.Evaluate.status}) keep their optimistic gross-defect
    signature here, matching the seed pipeline's tables. *)
val coverage : t -> Fault.Types.severity -> float

(** [coverage_bounds t severity] is [(pessimistic, optimistic)]: the
    pessimistic bound recomputes coverage with every unresolved class
    remapped to the fault-free signature (undetected by any mechanism),
    the optimistic bound is {!coverage}. On a clean run (no unresolved
    classes) both equal {!coverage}. *)
val coverage_bounds : t -> Fault.Types.severity -> float * float

(** [current_detectability t] — per macro, the share of its catastrophic
    faults detected by current measurements (the §3.3 per-macro claims:
    clock generator 93.8 %, ladder 99.8 %). *)
val current_detectability : t -> (string * float) list

(** Coverage comparison for the §3.4 DfT evaluation: run the pipeline on
    both {!Dft.Measures} macro sets and return
    ((fig4 original), (fig5 improved)). Lives here rather than in [dft]
    because the dependency order runs macro sets → pipeline, not the
    other way around. *)
val compare_coverage :
  ?config:Pipeline.Config.t -> unit -> t * t
