type target = Comparator of { dft : bool } | Global of { dft : bool }

type format = [ `Text | `Json | `Csv ]

type t = {
  id : string option;
  target : target;
  defects : int;
  good_space_dies : int;
  sigma : float;
  seed : int;
  max_retries : int;
  strict : bool;
  inject_failures : float option;
  deadline : Util.Watchdog.limits option;
  solver : Circuit.Engine.solver;
  format : format;
}

(* Kept literal (not read off [Pipeline.Config.default]) because [Codec]
   encodes requests and [Pipeline] depends on [Codec] — reading them here
   would close a dependency cycle. A core.request test pins every field
   to the pipeline default, so the two cannot drift silently. *)
let default =
  {
    id = None;
    target = Global { dft = false };
    defects = 25_000;
    good_space_dies = 48;
    sigma = 3.0;
    seed = 1995;
    max_retries = 1;
    strict = false;
    inject_failures = None;
    deadline = None;
    solver = Circuit.Engine.default_solver;
    format = `Text;
  }

let with_id id r = { r with id }
let with_target target r = { r with target }
let with_defects defects r = { r with defects }
let with_good_space_dies good_space_dies r = { r with good_space_dies }
let with_sigma sigma r = { r with sigma }
let with_seed seed r = { r with seed }
let with_max_retries max_retries r = { r with max_retries }
let with_strict strict r = { r with strict }
let with_inject_failures inject_failures r = { r with inject_failures }
let with_deadline deadline r = { r with deadline }
let with_solver solver r = { r with solver }
let with_format format r = { r with format }

let target_name = function Comparator _ -> "comparator" | Global _ -> "global"

let target_of_name ~name ~dft =
  match name with
  | "comparator" -> Ok (Comparator { dft })
  | "global" -> Ok (Global { dft })
  | other -> Error (Printf.sprintf "unknown target %S" other)

let format_name = function `Text -> "text" | `Json -> "json" | `Csv -> "csv"
let all_formats = [ `Text; `Json; `Csv ]

(* Everything except [id], spelled with the same conventions as the
   pipeline's cache key (%h for floats, explicit none markers) so a
   fingerprint never aliases across field boundaries. *)
let fingerprint r =
  Util.Cache.fingerprint
    [
      "target=" ^ target_name r.target;
      (match r.target with
      | Comparator { dft } | Global { dft } -> Printf.sprintf "dft=%b" dft);
      Printf.sprintf "defects=%d" r.defects;
      Printf.sprintf "good_space_dies=%d" r.good_space_dies;
      Printf.sprintf "sigma=%h" r.sigma;
      Printf.sprintf "seed=%d" r.seed;
      Printf.sprintf "max_retries=%d" r.max_retries;
      Printf.sprintf "strict=%b" r.strict;
      (match r.inject_failures with
      | None -> "inject=none"
      | Some fraction -> Printf.sprintf "inject=%h" fraction);
      (match r.deadline with
      | None -> "deadline=none"
      | Some l ->
        Printf.sprintf "deadline=wall:%s,iters:%s"
          (match l.Util.Watchdog.wall_seconds with
          | None -> "none"
          | Some s -> Printf.sprintf "%h" s)
          (match l.Util.Watchdog.max_iterations with
          | None -> "none"
          | Some n -> string_of_int n));
      "solver=" ^ Circuit.Engine.solver_name r.solver;
      "format=" ^ format_name r.format;
    ]

(* --- responses --------------------------------------------------------- *)

type table = { title : string; body : string }

type reply = {
  reply_id : string option;
  tables : table list;
  cache_hits : int;
  cache_misses : int;
  coalesced : bool;
  queue_seconds : float;
  evaluate_seconds : float;
}

type error_code =
  | Bad_request
  | Unsupported_version
  | Overloaded
  | Shutting_down
  | Budget_exhausted
  | Simulation_failed
  | Internal_error

type error = {
  error_id : string option;
  code : error_code;
  message : string;
  retry_after : float option;
}

type response = (reply, error) result

let all_error_codes =
  [
    Bad_request;
    Unsupported_version;
    Overloaded;
    Shutting_down;
    Budget_exhausted;
    Simulation_failed;
    Internal_error;
  ]

let error_code_name = function
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Budget_exhausted -> "budget_exhausted"
  | Simulation_failed -> "simulation_failed"
  | Internal_error -> "internal_error"

let error_code_of_name name =
  match
    List.find_opt (fun c -> error_code_name c = name) all_error_codes
  with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "unknown error code %S" name)
