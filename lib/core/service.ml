(* One execution lane, many admission threads. The domain pool and the
   telemetry span stacks are process resources seeded from the
   orchestrating domain, so analyses are serialized on [exec]; system
   threads only admit, coalesce, wait and do socket I/O. *)

type outcome =
  | Tables of {
      tables : Request.table list;
      cache_hits : int;
      cache_misses : int;
      evaluate_seconds : float;
    }
  | Failed of Request.error_code * string

type flight = {
  mutable done_ : bool;
  mutable outcome : outcome option;
  mutable attachers : int;
}

type stats = {
  submitted : int;
  completed : int;
  failed : int;
  shed : int;
  coalesced : int;
  cache_hits : int;
  cache_misses : int;
}

type t = {
  cache_handle : Util.Cache.t option;
  telemetry : Util.Telemetry.sink;
  failure_budget : int option;
  max_pending : int;
  lock : Mutex.t;
  changed : Condition.t;  (* flight completion, drain entry *)
  flights : (string, flight) Hashtbl.t;  (* keyed by Request.fingerprint *)
  exec : Mutex.t;  (* the single execution lane *)
  mutable draining_ : bool;
  mutable s : stats;
}

let create ?cache ?jobs ?(telemetry = Util.Telemetry.null) ?failure_budget
    ?(max_pending = 16) () =
  Option.iter Util.Pool.set_jobs jobs;
  {
    cache_handle = cache;
    telemetry;
    failure_budget;
    max_pending = max 1 max_pending;
    lock = Mutex.create ();
    changed = Condition.create ();
    flights = Hashtbl.create 16;
    exec = Mutex.create ();
    draining_ = false;
    s =
      {
        submitted = 0;
        completed = 0;
        failed = 0;
        shed = 0;
        coalesced = 0;
        cache_hits = 0;
        cache_misses = 0;
      };
  }

let cache t = t.cache_handle

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t = locked t (fun () -> t.s)
let draining t = locked t (fun () -> t.draining_)

let initiate_shutdown t =
  locked t (fun () ->
      t.draining_ <- true;
      Condition.broadcast t.changed)

let drain t =
  locked t (fun () ->
      while Hashtbl.length t.flights > 0 do
        Condition.wait t.changed t.lock
      done)

(* --- one analysis ------------------------------------------------------- *)

let config_of t (r : Request.t) =
  Pipeline.Config.(
    default |> with_defects r.defects |> with_good_space_dies r.good_space_dies
    |> with_sigma r.sigma |> with_seed r.seed |> with_max_retries r.max_retries
    |> with_strict r.strict
    |> with_failure_budget t.failure_budget
    |> with_inject_failures r.inject_failures
    |> with_cache_handle t.cache_handle
    |> with_deadline r.deadline
    |> with_checkpoint
         (Option.map (fun _ -> Checkpoint.create ~resume:true ()) t.cache_handle)
    |> with_solver r.solver)

(* The deterministic artefacts of a request: same tables, same titles,
   same order as the CLI prints for the equivalent invocation (the
   serve-vs-CLI byte-identity contract). Execution-dependent output —
   cache stats, run survival, metrics — is deliberately not a table;
   its serve-side analogues are the reply counters and telemetry. *)
let tables_of config (r : Request.t) =
  let render title table =
    { Request.title; body = Report.render ~format:r.format table }
  in
  match r.target with
  | Request.Comparator { dft } ->
    let options =
      if dft then Adc.Comparator.dft_options else Adc.Comparator.default_options
    in
    let analysis = Pipeline.analyze config (Adc.Comparator.macro options) in
    [
      render "Table 1: catastrophic faults and fault classes"
        (Report.table1 analysis);
      render "Table 2: voltage fault signatures" (Report.table2 analysis);
      render "Table 3: current fault signatures" (Report.table3 analysis);
      render "Fig. 3: detectability of catastrophic faults"
        (Report.figure3 analysis);
      render "Run health" (Report.run_health (Pipeline.run_health [ analysis ]));
    ]
  | Request.Global { dft } ->
    let measures = if dft then Dft.Measures.all_measures else [] in
    let macros = Dft.Measures.macro_set ~measures in
    let analyses = Pipeline.analyze_all config macros in
    let g = Global.combine analyses in
    [
      render
        (if dft then "Fig. 5: global detectability after DfT"
         else "Fig. 4: global detectability")
        (Report.figure4 g);
      render "Per-macro current detectability" (Report.macro_current g);
      render "Summary" (Report.summary g);
      render "Run health" (Report.run_health (Pipeline.run_health analyses));
      render "Coverage bounds" (Report.coverage_bounds g);
    ]

let rec root_cause = function
  | Util.Pool.Worker_failure (_, e) -> root_cause e
  | e -> e

(* Runs on the execution lane; must never raise — the daemon's liveness
   depends on every failure mode ending as a structured outcome. *)
let execute t ~queue_seconds (r : Request.t) =
  let cache_stats () =
    match t.cache_handle with
    | Some c -> Util.Cache.stats c
    | None -> Util.Cache.no_stats
  in
  let before = cache_stats () in
  let fail code cause = Failed (code, Printexc.to_string cause) in
  let contained cause =
    match root_cause cause with
    | Util.Watchdog.Interrupted reason ->
      Failed (Request.Shutting_down, "interrupted: " ^ reason)
    | Util.Resilience.Budget_exhausted _ as e ->
      fail Request.Budget_exhausted e
    | Macro.Evaluate.Simulation_failed _ as e ->
      fail Request.Simulation_failed e
    | e -> fail Request.Internal_error e
  in
  Util.Telemetry.with_sink t.telemetry @@ fun () ->
  Util.Telemetry.with_span "service.request"
    ~attrs:
      [
        "target", Util.Telemetry.String (Request.target_name r.target);
        "queue_seconds", Util.Telemetry.Float queue_seconds;
      ]
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let result =
    (* Config telemetry stays null: the service already installed its
       sink as ambient for the span above, and [Pipeline] leaves the
       ambient sink untouched when the config's own sink is null. *)
    try Ok (tables_of (config_of t r) r) with e -> Error e
  in
  let evaluate_seconds = Unix.gettimeofday () -. started in
  let after = cache_stats () in
  let cache_hits = after.Util.Cache.hits - before.Util.Cache.hits in
  let cache_misses = after.Util.Cache.misses - before.Util.Cache.misses in
  Util.Telemetry.add_span_attrs
    [
      "evaluate_seconds", Util.Telemetry.Float evaluate_seconds;
      "cache_hits", Util.Telemetry.Int cache_hits;
      "cache_misses", Util.Telemetry.Int cache_misses;
      "ok", Util.Telemetry.Bool (Result.is_ok result);
    ];
  match result with
  | Ok tables -> Tables { tables; cache_hits; cache_misses; evaluate_seconds }
  | Error cause -> contained cause

(* --- admission, coalescing, shedding ------------------------------------ *)

let error ?(retry_after = None) ~id code message : Request.response =
  Error { Request.error_id = id; code; message; retry_after }

let response_of_outcome ~id ~coalesced ~queue_seconds = function
  | Tables { tables; cache_hits; cache_misses; evaluate_seconds } ->
    Ok
      {
        Request.reply_id = id;
        tables;
        cache_hits;
        cache_misses;
        coalesced;
        queue_seconds;
        evaluate_seconds;
      }
  | Failed (code, message) -> error ~id code message

let bump t f = locked t (fun () -> t.s <- f t.s)

let submit t (r : Request.t) : Request.response =
  let enqueued = Unix.gettimeofday () in
  bump t (fun s -> { s with submitted = s.submitted + 1 });
  Mutex.lock t.lock;
  if t.draining_ then begin
    t.s <- { t.s with failed = t.s.failed + 1 };
    Mutex.unlock t.lock;
    error ~id:r.id Request.Shutting_down
      "service is draining; no new analyses are admitted"
  end
  else
    let key = Request.fingerprint r in
    match Hashtbl.find_opt t.flights key with
    | Some flight ->
      (* Identical work is already queued or running: attach and get the
         same tables, computed once. *)
      flight.attachers <- flight.attachers + 1;
      while not flight.done_ do
        Condition.wait t.changed t.lock
      done;
      t.s <- { t.s with coalesced = t.s.coalesced + 1 };
      Mutex.unlock t.lock;
      let queue_seconds = Unix.gettimeofday () -. enqueued in
      response_of_outcome ~id:r.id ~coalesced:true ~queue_seconds
        (Option.get flight.outcome)
    | None ->
      if Hashtbl.length t.flights >= t.max_pending then begin
        t.s <- { t.s with shed = t.s.shed + 1 };
        let retry_after = Some (0.5 *. float_of_int t.max_pending) in
        Mutex.unlock t.lock;
        error ~retry_after ~id:r.id Request.Overloaded
          (Printf.sprintf "%d analyses already pending; try again later"
             t.max_pending)
      end
      else begin
        let flight = { done_ = false; outcome = None; attachers = 0 } in
        Hashtbl.add t.flights key flight;
        Mutex.unlock t.lock;
        (* [execute]'s never-raises contract is defence in depth, not a
           liveness assumption: the catch-all below plus the two
           [Fun.protect]s guarantee that whatever escapes, the exec lane
           unlocks and the flight completes — otherwise one escaped
           exception would wedge every later submit, all coalesced
           attachers, and drain, forever. *)
        let queue_seconds = ref (Unix.gettimeofday () -. enqueued) in
        let outcome =
          ref (Failed (Request.Internal_error, "analysis aborted before completion"))
        in
        Fun.protect
          ~finally:(fun () ->
            locked t (fun () ->
                flight.outcome <- Some !outcome;
                flight.done_ <- true;
                Hashtbl.remove t.flights key;
                (t.s <-
                   (match !outcome with
                   | Tables { cache_hits; cache_misses; _ } ->
                     {
                       t.s with
                       completed = t.s.completed + 1;
                       cache_hits = t.s.cache_hits + cache_hits;
                       cache_misses = t.s.cache_misses + cache_misses;
                     }
                   | Failed _ -> { t.s with failed = t.s.failed + 1 }));
                Condition.broadcast t.changed))
          (fun () ->
            Mutex.lock t.exec;
            Fun.protect ~finally:(fun () -> Mutex.unlock t.exec) @@ fun () ->
            queue_seconds := Unix.gettimeofday () -. enqueued;
            outcome :=
              (try execute t ~queue_seconds:!queue_seconds r
               with e ->
                 Failed
                   ( Request.Internal_error,
                     "uncontained exception: " ^ Printexc.to_string e )));
        response_of_outcome ~id:r.id ~coalesced:false
          ~queue_seconds:!queue_seconds !outcome
      end

(* --- the wire ----------------------------------------------------------- *)

let handle_line t line =
  let response =
    match Util.Json.of_string line with
    | Error msg ->
      error ~id:None Request.Bad_request ("malformed JSON: " ^ msg)
    | Ok json -> (
      (* Echo the client's correlation id even when the rest of the
         request does not decode. *)
      let id = Option.bind (Util.Json.member "id" json) Util.Json.to_str in
      match Codec.request_of_json json with
      | Ok request -> submit t request
      | Error msg ->
        let code =
          if
            String.length msg >= 11
            && String.sub msg 0 11 = "unsupported"
          then Request.Unsupported_version
          else Request.Bad_request
        in
        error ~id code msg)
  in
  Util.Json.to_string (Codec.response_to_json response)

(* --- the socket server -------------------------------------------------- *)

type address = Unix_socket of string | Tcp of string * int

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let address_of_string s =
  let prefixed prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match prefixed "unix:" with
  | Some path -> Ok (Unix_socket path)
  | None when String.contains s '/' ->
    (* Anything with a '/' is a socket path (the .mli contract), even if
       it also contains a ':' — never parsed as HOST:PORT. *)
    Ok (Unix_socket s)
  | None -> (
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_socket s)
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
        Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ ->
        Error
          (Printf.sprintf
             "cannot parse %S as unix:PATH, a socket path, or HOST:PORT" s)))

(* Strict: a typo'd host must error, not silently become loopback. *)
let resolve_host host =
  match (Unix.gethostbyname host).Unix.h_addr_list with
  | [||] -> failwith (Printf.sprintf "host %S resolves to no addresses" host)
  | addrs -> addrs.(0)
  | exception Not_found ->
    failwith (Printf.sprintf "cannot resolve host %S" host)

let connect = function
  | Unix_socket path ->
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect s (Unix.ADDR_UNIX path);
    s
  | Tcp (host, port) ->
    let addr = resolve_host host in
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect s (Unix.ADDR_INET (addr, port));
    s

let call address (r : Request.t) : Request.response =
  let client_error message =
    Error
      { Request.error_id = r.id; code = Internal_error; message; retry_after = None }
  in
  match connect address with
  | exception Unix.Unix_error (e, _, _) ->
    client_error
      (Printf.sprintf "cannot connect to %s: %s" (address_to_string address)
         (Unix.error_message e))
  | exception Failure msg -> client_error msg
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc (Util.Json.to_string (Codec.request_to_json r));
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | exception End_of_file ->
      client_error "connection closed before a response arrived"
    | line -> (
      match
        Result.bind (Util.Json.of_string line) Codec.response_of_json
      with
      | Ok response -> response
      | Error msg -> client_error ("undecodable response: " ^ msg))

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       let line = input_line ic in
       if String.trim line <> "" then begin
         output_string oc (handle_line t line);
         output_char oc '\n';
         flush oc
       end;
       loop ()
     in
     loop ()
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  close_in_noerr ic

let serve ?on_ready ?(poll = fun () -> ()) t address =
  (* A client that disconnects before its response line is written must
     surface as EPIPE (caught in handle_connection), not as SIGPIPE's
     default disposition, which would kill the whole daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let sock, bound, cleanup =
    match address with
    | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      ( s,
        Unix_socket path,
        fun () -> try Unix.unlink path with Unix.Unix_error _ -> () )
    | Tcp (host, port) ->
      let addr = resolve_host host in
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (Unix.ADDR_INET (addr, port));
      let bound =
        match Unix.getsockname s with
        | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
        | _ -> Tcp (host, port)
      in
      s, bound, fun () -> ()
  in
  Unix.listen sock 64;
  Option.iter (fun f -> f bound) on_ready;
  let stop () =
    poll ();
    draining t || Util.Watchdog.shutdown_requested ()
  in
  (* A transient accept failure (ECONNABORTED; EMFILE under
     thread-per-connection; EINTR) must not kill the loop — log, back
     off briefly so fd exhaustion cannot spin it hot, keep accepting. *)
  let accept_once () =
    match Unix.accept sock with
    | fd, _ -> ignore (Thread.create (handle_connection t) fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "dotest serve: accept: %s\n%!" (Unix.error_message e);
      Thread.delay 0.05
  in
  (* Poll-accept so a drain request is noticed within a quarter second
     even with no connection traffic. *)
  let rec accept_loop () =
    if not (stop ()) then begin
      (match Unix.select [ sock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> accept_once ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  cleanup ();
  initiate_shutdown t;
  (* Drain while still polling: a second signal arriving mid-drain must
     be able to escalate to the watchdog from this thread. *)
  let rec drain_loop () =
    poll ();
    if locked t (fun () -> Hashtbl.length t.flights > 0) then begin
      Thread.delay 0.1;
      drain_loop ()
    end
  in
  drain_loop ()
